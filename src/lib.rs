#![warn(missing_docs)]
// Library paths must surface failures as typed errors or documented
// invariant expects — never bare unwraps (test code is exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # underradar
//!
//! A research-grade reproduction of *"Can Censorship Measurements Be
//! Safe(r)?"* (Ben Jones and Nick Feamster, HotNets 2015): stealthy
//! censorship-measurement techniques evaluated against simulated
//! censorship and surveillance systems.
//!
//! This facade crate re-exports the workspace so applications can depend
//! on one name:
//!
//! * [`netsim`] — deterministic discrete-event network simulator;
//! * [`protocols`] — DNS / SMTP / HTTP substrates;
//! * [`ids`] — the Snort-like signature engine both reference systems use;
//! * [`censor`] — GFC-style censorship models (RST injection, DNS
//!   poisoning, blackholing, URL filtering);
//! * [`surveil`] — the two-stage surveillance model (MVR + analyst);
//! * [`spam`] — the Proofpoint-like scorer behind Figure 2;
//! * [`spoof`] — the Beverly et al. spoofing-feasibility model;
//! * [`workloads`] — population traffic and Syria-style logs;
//! * [`core`] — the measurement techniques themselves, the Figure-1
//!   testbed, verdicts, and risk reports.
//!
//! Most applications only need [`prelude`]:
//!
//! ## Quickstart
//!
//! ```
//! use underradar::prelude::*;
//!
//! // A censor that blackholes twitter.com's web server.
//! let target = TargetSite::numbered("twitter.com", 0).web_ip;
//! let policy = CensorPolicy::new().block_ip(Cidr::host(target));
//! let mut tb = Testbed::build(TestbedConfig { policy, ..TestbedConfig::default() });
//!
//! // Measure it with a botnet-looking SYN scan.
//! let idx = tb.spawn_on_client(
//!     SimTime::ZERO,
//!     Box::new(SynScanProbe::new(target, top_ports(60), vec![80])),
//! );
//! tb.run_secs(30);
//!
//! let scan = tb.client_task::<SynScanProbe>(idx).expect("probe state");
//! let report = RiskReport::evaluate(&tb, &scan.verdict());
//! assert!(scan.verdict().is_censored(), "blocking detected");
//! assert!(report.evades(), "without alerting the surveillance system");
//! ```

pub use underradar_censor as censor;
pub use underradar_core as core;
pub use underradar_ids as ids;
pub use underradar_netsim as netsim;
pub use underradar_protocols as protocols;
pub use underradar_spam as spam;
pub use underradar_spoof as spoof;
pub use underradar_surveil as surveil;
pub use underradar_workloads as workloads;

pub mod prelude {
    //! One-stop imports for driving measurements: the testbed, the unified
    //! [`Probe`] trait with every method that implements it, verdicts and
    //! risk reports, and the campaign engine.

    pub use underradar_campaign::{
        engine as campaign_engine, CampaignReport, CampaignSpec, CellStat, MethodKind, NamedPolicy,
        RetryPolicy, TrialResult,
    };
    pub use underradar_censor::CensorPolicy;
    pub use underradar_core::methods::ddos::{DdosProbe, DdosTally};
    pub use underradar_core::methods::hops::HopProbe;
    pub use underradar_core::methods::overt::OvertProbe;
    pub use underradar_core::methods::scan::SynScanProbe;
    pub use underradar_core::methods::spam::SpamProbe;
    pub use underradar_core::methods::stateful::{MimicServer, RoutedMimicryNet, StatefulMimicry};
    pub use underradar_core::methods::stateless::{StatelessDnsMimicry, StatelessSynMimicry};
    pub use underradar_core::ports::top_ports;
    pub use underradar_core::probe::{Evidence, Probe};
    pub use underradar_core::risk::RiskReport;
    pub use underradar_core::testbed::{TargetSite, Testbed, TestbedConfig};
    pub use underradar_core::verdict::{Mechanism, Verdict};
    pub use underradar_netsim::addr::Cidr;
    pub use underradar_netsim::flow::{FlowId, FlowKey, FlowTuple};
    pub use underradar_netsim::time::{SimDuration, SimTime};
    pub use underradar_protocols::dns::DnsName;
}
