//! The `underradar` command-line tool: run experiments and ad-hoc surveys
//! against the simulated testbed.
//!
//! ```text
//! underradar experiments [E1..E13|all]     regenerate paper tables/figures
//! underradar survey --domains a,b,c [--block d] [--keyword k]
//!                                          run a stealthy survey
//! underradar pcap <out.pcap>               write a sample capture for Wireshark
//! underradar calibrate                     find the Fig-3b reply-TTL window
//! ```

use std::net::Ipv4Addr;
use std::process::ExitCode;

use underradar::censor::CensorPolicy;
use underradar::core::methods::hops::HopProbe;
use underradar::core::methods::spam::SpamProbe;
use underradar::core::methods::stateful::RoutedMimicryNet;
use underradar::core::probe::Probe;
use underradar::core::risk::RiskReport;
use underradar::core::testbed::{Testbed, TestbedConfig};
use underradar::netsim::host::Host;
use underradar::netsim::time::{SimDuration, SimTime};
use underradar::protocols::dns::DnsName;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  underradar experiments [e1..e13|a1|all]\n  underradar survey --domains a,b,c \
         [--block domain]... [--keyword kw]...\n  underradar pcap <out.pcap>\n  underradar calibrate"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("experiments") => experiments(args.get(1).map(String::as_str).unwrap_or("all")),
        Some("survey") => survey(&args[1..]),
        Some("pcap") => match args.get(1) {
            Some(path) => pcap_demo(path),
            None => usage(),
        },
        Some("calibrate") => calibrate(),
        _ => usage(),
    }
}

fn experiments(which: &str) -> ExitCode {
    use underradar_bench::experiments as exp;
    let report = match which.to_ascii_lowercase().as_str() {
        "all" => exp::run_all(),
        "e1" => exp::e01_testbed::run(),
        "e2" => exp::e02_scan::run(),
        "e3" => exp::e03_fig2_spam_cdf::run(),
        "e4" => exp::e04_gfc_dns::run(),
        "e5" => exp::e05_ddos::run(),
        "e6" => exp::e06_fig3a_stateless::run(),
        "e7" => exp::e07_fig3b_stateful::run(),
        "e8" => exp::e08_syria::run(),
        "e9" => exp::e09_mvr::run(),
        "e10" => exp::e10_spoofability::run(),
        "e11" => exp::e11_ethics_load::run(),
        "e12" => exp::e12_risk_matrix::run(),
        "e13" => exp::e13_evasion::run(),
        "a1" => exp::a1_ablations::run(),
        other => {
            eprintln!("unknown experiment '{other}' (e1..e13 or all)");
            return ExitCode::from(2);
        }
    };
    print!("{report}");
    ExitCode::SUCCESS
}

fn survey(args: &[String]) -> ExitCode {
    let mut domains: Vec<String> = Vec::new();
    let mut policy = CensorPolicy::new();
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--domains" if i + 1 < args.len() => {
                domains.extend(args[i + 1].split(',').map(str::to_string));
                i += 2;
            }
            "--block" if i + 1 < args.len() => {
                match DnsName::parse(&args[i + 1]) {
                    Ok(d) => policy = policy.block_domain(&d),
                    Err(e) => {
                        eprintln!("bad --block domain: {e}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--keyword" if i + 1 < args.len() => {
                policy = policy.block_keyword(&args[i + 1]);
                i += 2;
            }
            other => {
                eprintln!("unknown survey argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    if domains.is_empty() {
        eprintln!("survey needs --domains a,b,c");
        return ExitCode::from(2);
    }

    // Build targets for every surveyed domain so the resolver knows them.
    let targets: Vec<underradar::core::testbed::TargetSite> = domains
        .iter()
        .enumerate()
        .map(|(i, d)| underradar::core::testbed::TargetSite::numbered(d, i as u8))
        .collect();
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        targets,
        ..TestbedConfig::default()
    });
    let resolver = tb.resolver_ip;
    let mut idxs = Vec::new();
    for (i, domain) in domains.iter().enumerate() {
        let Ok(d) = DnsName::parse(domain) else {
            eprintln!("skipping invalid domain '{domain}'");
            continue;
        };
        let idx = tb.spawn_on_client(
            SimTime::ZERO + SimDuration::from_secs(2 * i as u64),
            Box::new(SpamProbe::new(&d, resolver, i as u64)),
        );
        idxs.push((domain.clone(), idx));
    }
    tb.run_secs(20 + 3 * domains.len() as u64);

    println!("spam-cloaked survey results");
    println!("---------------------------");
    let mut last_verdict = None;
    for (domain, idx) in &idxs {
        let probe = tb.client_task::<SpamProbe>(*idx).expect("probe state");
        println!("{domain:<24} {}", probe.verdict());
        last_verdict = Some(probe.verdict());
    }
    if let Some(v) = last_verdict {
        let report = RiskReport::evaluate(&tb, &v);
        println!("\nrisk: {}", report.summary());
    }
    ExitCode::SUCCESS
}

fn pcap_demo(path: &str) -> ExitCode {
    // A short censored exchange, captured and written as pcap.
    let policy = CensorPolicy::new().block_keyword("falun");
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        capture: true,
        ..TestbedConfig::default()
    });
    let web = tb.target("bbc.com").expect("bbc target").web_ip;
    tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(underradar::core::methods::ddos::DdosProbe::new(
            web, "bbc.com", "/falun", 2,
        )),
    );
    tb.run_secs(30);
    let cap = tb.sim.capture().expect("capture enabled");
    let bytes = underradar::netsim::pcap::to_pcap(cap);
    match std::fs::write(path, &bytes) {
        Ok(()) => {
            println!(
                "wrote {} packets ({} bytes) to {path}",
                cap.len(),
                bytes.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("write failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn calibrate() -> ExitCode {
    // Hop discovery from the measurement server, then the recommended TTL.
    let mut net = RoutedMimicryNet::build(7, CensorPolicy::new());
    let cover: Ipv4Addr = net.cover_ip;
    net.sim
        .node_mut::<Host>(net.mserver)
        .expect("mserver host")
        .spawn_task_at(SimTime::ZERO, Box::new(HopProbe::new(cover, 33434, 8)));
    net.sim.run_for(SimDuration::from_secs(10)).expect("run");
    let probe = net
        .sim
        .node_ref::<Host>(net.mserver)
        .expect("mserver host")
        .task_ref::<HopProbe>(0)
        .expect("probe state");
    println!("path from measurement server toward {cover}:");
    for (ttl, router) in probe.path() {
        println!("  hop {ttl}: {router}");
    }
    match (probe.hops_to_target(), probe.calibrated_reply_ttl()) {
        (Some(h), Some(t)) => {
            println!("target reached at TTL {h}; calibrated reply TTL = {t}");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("calibration failed: target not reached within the sweep");
            ExitCode::FAILURE
        }
    }
}
