//! A country-scale censorship survey using stealthy methods only.
//!
//! Models the workflow a measurement platform would run from one consenting
//! client inside a censored country: for every target of interest, measure
//! DNS censorship with a spam-style campaign and web reachability with a
//! DDoS-cloaked burst, then print an OONI-style report plus the risk
//! ledger — did any of this alert the surveillance system?
//!
//! ```sh
//! cargo run --example country_survey
//! ```

use underradar::prelude::*;

fn main() {
    // The "country": DNS-blocks twitter, keyword-blocks falun.
    let policy = CensorPolicy::new()
        .block_domain(&DnsName::parse("twitter.com").expect("domain"))
        .block_keyword("falun");
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        seed: 2026,
        ..TestbedConfig::default()
    });
    let resolver = tb.resolver_ip;

    // Spam campaign across every target (warm-up earns the spammer label,
    // which is what keeps the censored lookups out of the analysis stage).
    let survey_domains = ["bbc.com", "example.org", "youtube.com", "twitter.com"];
    let mut spam_idx = Vec::new();
    for (i, domain) in survey_domains.iter().enumerate() {
        let d = DnsName::parse(domain).expect("domain");
        let idx = tb.spawn_on_client(
            SimTime::ZERO + SimDuration::from_secs(2 * i as u64),
            Box::new(SpamProbe::new(&d, resolver, i as u64)),
        );
        spam_idx.push((*domain, idx));
    }

    // DDoS-cloaked keyword checks against a reachable host.
    let web = tb.target("bbc.com").expect("bbc").web_ip;
    let warm = tb.spawn_on_client(
        SimTime::ZERO + SimDuration::from_secs(10),
        Box::new(DdosProbe::new(web, "bbc.com", "/", 60)),
    );
    let keyword_probe = tb.spawn_on_client(
        SimTime::ZERO + SimDuration::from_secs(15),
        Box::new(DdosProbe::new(web, "bbc.com", "/falun-news", 20)),
    );
    let control_probe = tb.spawn_on_client(
        SimTime::ZERO + SimDuration::from_secs(16),
        Box::new(DdosProbe::new(web, "bbc.com", "/weather", 20)),
    );

    tb.run_secs(300);

    println!("censorship survey (stealthy methods only)");
    println!("------------------------------------------");
    for (domain, idx) in &spam_idx {
        let probe = tb.client_task::<SpamProbe>(*idx).expect("spam probe state");
        println!("dns/{domain:<14} -> {}", probe.verdict());
    }
    let kw = tb
        .client_task::<DdosProbe>(keyword_probe)
        .expect("keyword probe");
    let ctl = tb
        .client_task::<DdosProbe>(control_probe)
        .expect("control probe");
    println!("http keyword 'falun'   -> {}", kw.verdict());
    println!("http control path      -> {}", ctl.verdict());
    let _ = warm;

    println!("\nrisk ledger");
    println!("-----------");
    let surveillance = tb.surveillance();
    println!(
        "packets observed by surveillance: {}",
        surveillance.stats().observed
    );
    println!(
        "packets discarded by the MVR:     {}",
        surveillance.stats().discarded
    );
    println!(
        "alerts attributed to the client:  {}",
        surveillance.alerts_for(tb.client_ip)
    );
    println!(
        "client attributed / pursued:      {} / {}",
        surveillance.is_attributed(tb.client_ip),
        surveillance.is_pursued(tb.client_ip)
    );
    println!(
        "\nground truth: the censor acted {} times during the survey",
        tb.censor_actions().len()
    );
}
