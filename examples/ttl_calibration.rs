//! Calibrating the reply TTL for stateful mimicry (Figure 3b).
//!
//! Before running spoofed stateful measurements, the controlled server
//! must pick a reply TTL that crosses the surveillance/censorship taps but
//! dies before the spoofed neighbor ("Scanning the network from the server
//! could yield the number of hops ... making it possible to set reply TTLs
//! so they are dropped after they pass through the surveillance system but
//! before they reach the client", §4.1).
//!
//! This example performs that calibration empirically in the routed
//! topology: sweep TTLs, observe which ones leak to the neighbor (drawing
//! the fatal RST) and which never even reach the censor's vantage.
//!
//! ```sh
//! cargo run --example ttl_calibration
//! ```

use underradar::censor::CensorPolicy;
use underradar::core::methods::stateful::{MimicServer, RoutedMimicryNet, StatefulMimicry};
use underradar::netsim::host::Host;
use underradar::netsim::time::{SimDuration, SimTime};

const PORT: u16 = 7443;
const ISS: u32 = 0x0badcafe;

fn main() {
    println!("reply-TTL calibration for stateful mimicry");
    println!("topology: server -R3- R2[taps] -R1- switch - neighbor");
    println!();
    println!("ttl   tap sees reply   neighbor leak   neighbor RST   flow completed   usable");
    println!("--------------------------------------------------------------------------------");

    let mut best = None;
    for ttl in 1u8..=6 {
        let mut net = RoutedMimicryNet::build(42, CensorPolicy::new());
        net.sim
            .node_mut::<Host>(net.mserver)
            .expect("mserver host")
            .spawn_task_at(
                SimTime::ZERO,
                Box::new(MimicServer::new(PORT, ISS, Some(ttl))),
            );
        net.sim
            .node_mut::<Host>(net.client)
            .expect("client host")
            .spawn_task_at(
                SimTime::ZERO,
                Box::new(StatefulMimicry::new(
                    net.cover_ip,
                    net.mserver_ip,
                    PORT,
                    ISS,
                    b"calibration payload",
                )),
            );
        net.sim
            .run_for(SimDuration::from_secs(10))
            .expect("run within budget");

        let cap = net.sim.capture().expect("capture enabled");
        let tap_sees = cap.records().iter().any(|r| {
            r.to_node == net.censor
                && r.packet.src == net.mserver_ip
                && r.packet
                    .as_tcp()
                    .map(|t| t.flags.has_syn() && t.flags.has_ack())
                    .unwrap_or(false)
        });
        let cover = net.sim.node_ref::<Host>(net.cover).expect("cover host");
        let leak = cover.counters().tcp_in > 0;
        let rst = cover.counters().rst_sent > 0;
        let server = net
            .sim
            .node_ref::<Host>(net.mserver)
            .expect("mserver host")
            .task_ref::<MimicServer>(0)
            .expect("server task");
        let completed = !server.received.is_empty() && !server.was_reset();
        let usable = tap_sees && !leak && completed;
        if usable && best.is_none() {
            best = Some(ttl);
        }
        println!(
            "{ttl:<5} {:<16} {:<15} {:<14} {:<16} {}",
            tap_sees,
            leak,
            rst,
            completed,
            if usable { "<= USE THIS" } else { "" }
        );
    }

    match best {
        Some(ttl) => println!(
            "\ncalibrated reply TTL: {ttl} (observed by monitors at R2, dead before the neighbor)"
        ),
        None => println!("\nno usable TTL found — check the topology's hop counts"),
    }
}
