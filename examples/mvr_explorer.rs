//! Exploring the MVR: why mimicry traffic disappears.
//!
//! Feeds the surveillance system a realistic population mix, then each
//! kind of measurement traffic, and prints the per-class accounting —
//! making §2.1's storage argument visible: measurement traffic that lands
//! in a discarded class never reaches the signature engine.
//!
//! ```sh
//! cargo run --example mvr_explorer
//! ```

use std::net::Ipv4Addr;

use underradar::netsim::addr::Cidr;
use underradar::netsim::packet::Packet;
use underradar::netsim::rng::SimRng;
use underradar::netsim::time::{SimDuration, SimTime};
use underradar::netsim::wire::tcp::TcpFlags;
use underradar::protocols::dns::{DnsMessage, DnsName, QType};
use underradar::surveil::system::{
    default_surveillance_rules, SurveillanceConfig, SurveillanceSystem,
};
use underradar::workloads::population::{PopulationConfig, PopulationTraffic};

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 20, 1, 2);
const TARGET: Ipv4Addr = Ipv4Addr::new(93, 184, 0, 10);
const RESOLVER: Ipv4Addr = Ipv4Addr::new(10, 20, 0, 53);

fn system() -> SurveillanceSystem {
    let home = Cidr::slash16(Ipv4Addr::new(10, 20, 0, 0));
    let rules = default_surveillance_rules(
        home,
        &[DnsName::parse("twitter.com").expect("domain")],
        &["falun".to_string()],
        None,
    );
    SurveillanceSystem::new(SurveillanceConfig::with_rules(rules))
}

fn t(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

fn main() {
    let mut s = system();
    let mut rng = SimRng::seed_from_u64(1);

    // 60 seconds of ordinary campus traffic.
    let population = PopulationTraffic::generate(
        &PopulationConfig {
            client_prefix: Cidr::slash16(Ipv4Addr::new(10, 20, 0, 0)),
            ..PopulationConfig::default()
        },
        &mut rng,
    );
    for tp in &population {
        s.process(tp.time, &tp.packet);
    }
    let baseline_alerts = s.stats().alerts;

    // Measurement traffic, one flavor at a time.
    // (a) an overt DNS lookup of the censored domain;
    let q = DnsMessage::query(1, DnsName::parse("twitter.com").expect("d"), QType::A);
    let overt = Packet::udp(CLIENT, RESOLVER, 5353, 53, q.encode());
    let (overt_decision, overt_alerts) = s.process(t(61_000), &overt);

    // (b) a 60-port SYN scan;
    let mut scan_discarded = 0;
    let mut scan_alerts = 0;
    for port in 0..60u16 {
        let syn = Packet::tcp(
            CLIENT,
            TARGET,
            44000 + port,
            1000 + port,
            0,
            0,
            TcpFlags::syn(),
            vec![],
        );
        let (d, a) = s.process(t(62_000 + u64::from(port)), &syn);
        if !d.retained() {
            scan_discarded += 1;
        }
        scan_alerts += a.len();
    }

    // (c) a 60-request flood carrying the censored keyword.
    let mut flood_discarded = 0;
    let mut flood_alerts = 0;
    for i in 0..60u64 {
        let path_keyword = if i >= 50 { "falun" } else { "frontpage" };
        let req = format!("GET /{path_keyword} HTTP/1.0\r\nHost: x\r\n\r\n");
        let pkt = Packet::tcp(
            CLIENT,
            TARGET,
            45000,
            80,
            1 + i as u32,
            1,
            TcpFlags::psh_ack(),
            req.into_bytes(),
        );
        let (d, a) = s.process(t(70_000 + i * 10), &pkt);
        if !d.retained() {
            flood_discarded += 1;
        }
        flood_alerts += a.len();
    }

    println!("per-class MVR accounting after population + measurement traffic:\n");
    println!(
        "{:<8} {:>10} {:>14} {:>16}",
        "class", "packets", "bytes", "retained bytes"
    );
    for (class, vol) in s.mvr().volumes() {
        if vol.packets == 0 {
            continue;
        }
        println!(
            "{:<8} {:>10} {:>14} {:>16}",
            class.to_string(),
            vol.packets,
            vol.bytes,
            vol.retained_bytes
        );
    }
    println!(
        "\nretention rate: {:.1}% of observed bytes (NSA 2009 budget: 7.5%)",
        s.mvr().retention_rate() * 100.0
    );

    println!("\nwhat happened to each measurement flavor:");
    println!(
        "overt censored lookup: retained={} alerts={}  <- lands on the analyst's desk",
        overt_decision.retained(),
        overt_alerts.len()
    );
    println!(
        "60-port SYN scan:      discarded {}/60, alerts={}  <- classified as scanning",
        scan_discarded, scan_alerts
    );
    println!(
        "keyword inside flood:  discarded {}/60, alerts={}  <- classified as DDoS before the keyword flew",
        flood_discarded, flood_alerts
    );
    println!(
        "\nbaseline population alerts in the same window: {baseline_alerts} \
         (the noise floor any extra alert competes with)"
    );
}
