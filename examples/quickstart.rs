//! Quickstart: measure a keyword censor two ways — overtly (the risky
//! baseline) and with a botnet-looking SYN scan — and compare both the
//! verdicts and what the surveillance system learned about the client.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use underradar::prelude::*;

fn main() {
    // The censor blackholes twitter.com's web server and poisons its DNS.
    let target = TargetSite::numbered("twitter.com", 0).web_ip;
    let domain = DnsName::parse("twitter.com").expect("valid domain");
    let policy = CensorPolicy::new()
        .block_ip(Cidr::host(target))
        .block_domain(&domain);

    println!("== overt (OONI-style) measurement ==");
    {
        let mut tb = Testbed::build(TestbedConfig {
            policy: policy.clone(),
            ..TestbedConfig::default()
        });
        let idx = tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(OvertProbe::new(
                &domain,
                tb.resolver_ip,
                tb.collector_ip,
                "/",
            )),
        );
        tb.run_secs(20);
        let probe = tb.client_task::<OvertProbe>(idx).expect("probe state");
        let report = RiskReport::evaluate(&tb, &probe.verdict());
        println!("verdict: {}", probe.verdict());
        println!("risk:    {}", report.summary());
        println!("         (the client is the lone suspect — this is the problem)\n");
    }

    println!("== scan-cloaked measurement (Method #1) ==");
    {
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            ..TestbedConfig::default()
        });
        let idx = tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(SynScanProbe::new(target, top_ports(60), vec![80])),
        );
        tb.run_secs(30);
        let scan = tb.client_task::<SynScanProbe>(idx).expect("probe state");
        let report = RiskReport::evaluate(&tb, &scan.verdict());
        println!("verdict: {}", scan.verdict());
        println!("risk:    {}", report.summary());
        println!("         (same conclusion, but the MVR discarded the probe traffic)");
    }
}
