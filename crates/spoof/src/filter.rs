//! Ingress source-address validation (BCP 38 and friends).
//!
//! A filter sits where an access network meets the wider network and
//! checks that packets leaving the access side carry source addresses the
//! network could legitimately originate. Granularity decides how much
//! spoofing survives: exact-match filtering kills it, /24-granular
//! filtering still lets a host borrow any neighbor in its /24 — the case
//! Beverly et al. found for 77 % of clients.

use std::any::Any;
use std::net::Ipv4Addr;

use underradar_netsim::addr::Cidr;
use underradar_netsim::node::{IfaceId, Node, NodeCtx};
use underradar_netsim::packet::Packet;

/// How precisely the ingress filter validates source addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterGranularity {
    /// No validation: any source passes.
    None,
    /// Source must fall in the same /24 as the true sender.
    Slash24,
    /// Source must fall in the same /16 as the true sender.
    Slash16,
    /// Source must equal the true sender's address (full BCP 38).
    Exact,
}

impl FilterGranularity {
    /// Whether a host at `actual` may emit a packet with source `claimed`.
    pub fn permits(self, actual: Ipv4Addr, claimed: Ipv4Addr) -> bool {
        match self {
            FilterGranularity::None => true,
            FilterGranularity::Slash24 => Cidr::slash24(actual).contains(claimed),
            FilterGranularity::Slash16 => Cidr::slash16(actual).contains(claimed),
            FilterGranularity::Exact => actual == claimed,
        }
    }

    /// The number of addresses a host can claim under this filter (its
    /// spoofing freedom).
    pub fn address_freedom(self) -> u64 {
        match self {
            FilterGranularity::None => 1u64 << 32,
            FilterGranularity::Slash24 => 256,
            FilterGranularity::Slash16 => 65_536,
            FilterGranularity::Exact => 1,
        }
    }
}

/// Filter statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FilterStats {
    /// Packets forwarded.
    pub passed: u64,
    /// Packets dropped as spoofed.
    pub dropped: u64,
}

/// An in-path ingress filter node: interface 0 faces the access network
/// whose legitimate prefix is `access_prefix`; interface 1 faces the wider
/// network. Traffic entering from the access side must carry a source the
/// filter's granularity allows for that prefix; reverse traffic passes.
pub struct IngressFilterNode {
    name: String,
    access_prefix: Cidr,
    granularity: FilterGranularity,
    stats: FilterStats,
}

impl IngressFilterNode {
    /// Build a filter for an access network.
    pub fn new(name: &str, access_prefix: Cidr, granularity: FilterGranularity) -> Self {
        IngressFilterNode {
            name: name.to_string(),
            access_prefix,
            granularity,
            stats: FilterStats::default(),
        }
    }

    /// Statistics.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    fn egress_allowed(&self, src: Ipv4Addr) -> bool {
        match self.granularity {
            FilterGranularity::None => true,
            // Deployed at the access boundary, the filter can only check
            // membership in the legitimate prefix at its granularity: a
            // /24-granular filter accepts any source within the /24s the
            // access network owns. Exact-match would require per-port
            // state; we model it as "must be inside the access prefix" at
            // /32 granularity only when the prefix itself is a /32.
            FilterGranularity::Slash24 | FilterGranularity::Slash16 | FilterGranularity::Exact => {
                self.access_prefix.contains(src)
            }
        }
    }
}

impl Node for IngressFilterNode {
    fn name(&self) -> &str {
        &self.name
    }

    fn receive(&mut self, ctx: &mut NodeCtx<'_>, iface: IfaceId, packet: Packet) {
        let out = IfaceId(1 - iface.0.min(1));
        if iface == IfaceId(0) && !self.egress_allowed(packet.src) {
            self.stats.dropped += 1;
            return;
        }
        self.stats.passed += 1;
        ctx.send(out, packet);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOST: Ipv4Addr = Ipv4Addr::new(10, 7, 3, 20);

    #[test]
    fn granularity_predicates() {
        let same24 = Ipv4Addr::new(10, 7, 3, 99);
        let same16 = Ipv4Addr::new(10, 7, 200, 1);
        let far = Ipv4Addr::new(172, 16, 0, 1);
        assert!(FilterGranularity::None.permits(HOST, far));
        assert!(FilterGranularity::Slash24.permits(HOST, same24));
        assert!(!FilterGranularity::Slash24.permits(HOST, same16));
        assert!(FilterGranularity::Slash16.permits(HOST, same16));
        assert!(!FilterGranularity::Slash16.permits(HOST, far));
        assert!(FilterGranularity::Exact.permits(HOST, HOST));
        assert!(!FilterGranularity::Exact.permits(HOST, same24));
    }

    #[test]
    fn address_freedom_counts() {
        assert_eq!(FilterGranularity::Exact.address_freedom(), 1);
        assert_eq!(FilterGranularity::Slash24.address_freedom(), 256);
        assert_eq!(FilterGranularity::Slash16.address_freedom(), 65_536);
        assert_eq!(FilterGranularity::None.address_freedom(), 1u64 << 32);
    }

    #[test]
    fn node_drops_out_of_prefix_spoofs() {
        use underradar_netsim::{Host, LinkConfig, SimDuration, SimTime, Simulator, HOST_IFACE};
        let mut sim = Simulator::new(5);
        let inside = sim.add_node(Box::new(Host::new("inside", HOST)));
        let outside_ip = Ipv4Addr::new(93, 184, 216, 34);
        let outside = sim.add_node(Box::new(Host::new("outside", outside_ip)));
        let filter = sim.add_node(Box::new(IngressFilterNode::new(
            "bcp38",
            Cidr::slash24(HOST),
            FilterGranularity::Slash24,
        )));
        sim.wire(inside, HOST_IFACE, filter, IfaceId(0), LinkConfig::ideal())
            .expect("w");
        sim.wire(outside, HOST_IFACE, filter, IfaceId(1), LinkConfig::ideal())
            .expect("w");
        sim.enable_capture();
        // Legit source, in-prefix spoof, out-of-prefix spoof.
        for (src, _expect) in [
            (HOST, true),
            (Ipv4Addr::new(10, 7, 3, 200), true),
            (Ipv4Addr::new(10, 9, 9, 9), false),
        ] {
            let p = Packet::udp(src, outside_ip, 1000, 53, b"q".to_vec());
            sim.send_from(inside, HOST_IFACE, p, SimTime::ZERO)
                .expect("send");
        }
        sim.run_for(SimDuration::from_secs(1)).expect("run");
        let stats = sim
            .node_ref::<IngressFilterNode>(filter)
            .expect("f")
            .stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.passed, 2);
        let cap = sim.capture().expect("cap");
        let delivered: Vec<Ipv4Addr> = cap
            .records()
            .iter()
            .filter(|r| r.to_node == outside)
            .map(|r| r.packet.src)
            .collect();
        assert_eq!(delivered, vec![HOST, Ipv4Addr::new(10, 7, 3, 200)]);
    }

    #[test]
    fn reverse_traffic_passes_unchecked() {
        use underradar_netsim::{Host, LinkConfig, SimDuration, SimTime, Simulator, HOST_IFACE};
        let mut sim = Simulator::new(5);
        let inside = sim.add_node(Box::new(Host::new("inside", HOST)));
        let outside_ip = Ipv4Addr::new(93, 184, 216, 34);
        let outside = sim.add_node(Box::new(Host::new("outside", outside_ip)));
        let filter = sim.add_node(Box::new(IngressFilterNode::new(
            "bcp38",
            Cidr::slash24(HOST),
            FilterGranularity::Exact,
        )));
        sim.wire(inside, HOST_IFACE, filter, IfaceId(0), LinkConfig::ideal())
            .expect("w");
        sim.wire(outside, HOST_IFACE, filter, IfaceId(1), LinkConfig::ideal())
            .expect("w");
        let p = Packet::udp(outside_ip, HOST, 53, 1000, b"resp".to_vec());
        sim.send_from(outside, HOST_IFACE, p, SimTime::ZERO)
            .expect("send");
        sim.run_for(SimDuration::from_secs(1)).expect("run");
        assert_eq!(
            sim.node_ref::<IngressFilterNode>(filter)
                .expect("f")
                .stats()
                .passed,
            1
        );
    }
}
