//! Cover-source selection and anonymity-set arithmetic.
//!
//! §4's goal: make measurement probes "appear to originate from every host
//! on the network", so that attributing any one probe to the real
//! measurement client requires suspecting the whole neighborhood. The
//! anonymity set is the measure of success.

use std::net::Ipv4Addr;

use underradar_netsim::addr::Cidr;
use underradar_netsim::rng::SimRng;

use crate::population::ClientProfile;

/// Pick up to `k` distinct spoofable cover sources for `client`, drawn
/// from its spoofing freedom (excluding its own address). Returns fewer
/// (possibly zero) when filtering leaves no freedom.
pub fn cover_sources(client: &ClientProfile, k: usize, rng: &mut SimRng) -> Vec<Ipv4Addr> {
    let freedom = client.capability.address_freedom();
    if freedom <= 1 {
        return Vec::new();
    }
    let prefix = match client.capability {
        crate::filter::FilterGranularity::Slash24 => Cidr::slash24(client.ip),
        crate::filter::FilterGranularity::Slash16 => Cidr::slash16(client.ip),
        // Unfiltered clients could claim anything; borrowing from the /16
        // keeps cover plausible (neighbors, not Mars).
        crate::filter::FilterGranularity::None => Cidr::slash16(client.ip),
        crate::filter::FilterGranularity::Exact => return Vec::new(),
    };
    let size = prefix.size();
    let k = k.min((size - 1) as usize);
    let mut picked = Vec::with_capacity(k);
    let mut tries = 0;
    while picked.len() < k && tries < k * 20 {
        tries += 1;
        let candidate = prefix.nth(rng.range_u64(0, size));
        if candidate != client.ip && !picked.contains(&candidate) {
            picked.push(candidate);
        }
    }
    picked
}

/// The size of the anonymity set a surveillance system faces: given the
/// distinct source addresses observed emitting probe-like traffic, and the
/// granularity at which the system attributes (per-IP or per-prefix), how
/// many candidate *entities* could the real client be?
pub fn anonymity_set(observed_sources: &[Ipv4Addr], attribution_prefix: u8) -> usize {
    let mut entities: Vec<Ipv4Addr> = observed_sources
        .iter()
        .map(|&ip| Cidr::new(ip, attribution_prefix).network())
        .collect();
    entities.sort();
    entities.dedup();
    entities.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterGranularity;

    fn client(cap: FilterGranularity) -> ClientProfile {
        ClientProfile {
            ip: Ipv4Addr::new(10, 20, 30, 40),
            capability: cap,
        }
    }

    #[test]
    fn filtered_client_has_no_cover() {
        let mut rng = SimRng::seed_from_u64(1);
        assert!(cover_sources(&client(FilterGranularity::Exact), 10, &mut rng).is_empty());
    }

    #[test]
    fn slash24_cover_stays_in_slash24() {
        let mut rng = SimRng::seed_from_u64(2);
        let c = client(FilterGranularity::Slash24);
        let cover = cover_sources(&c, 50, &mut rng);
        assert_eq!(cover.len(), 50);
        let net = Cidr::slash24(c.ip);
        assert!(cover.iter().all(|&ip| net.contains(ip)));
        assert!(!cover.contains(&c.ip), "own address excluded");
        let mut dedup = cover.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 50, "distinct sources");
        // Every cover source is actually spoofable by the client.
        assert!(cover.iter().all(|&ip| c.can_spoof(ip)));
    }

    #[test]
    fn slash16_cover_spreads_wider() {
        let mut rng = SimRng::seed_from_u64(3);
        let c = client(FilterGranularity::Slash16);
        let cover = cover_sources(&c, 500, &mut rng);
        assert_eq!(cover.len(), 500);
        let net16 = Cidr::slash16(c.ip);
        assert!(cover.iter().all(|&ip| net16.contains(ip)));
        // With 500 draws over a /16, some must leave the client's /24.
        let net24 = Cidr::slash24(c.ip);
        assert!(cover.iter().any(|&ip| !net24.contains(ip)));
    }

    #[test]
    fn cover_request_capped_by_prefix_size() {
        let mut rng = SimRng::seed_from_u64(4);
        let c = client(FilterGranularity::Slash24);
        let cover = cover_sources(&c, 10_000, &mut rng);
        assert!(cover.len() <= 255, "cannot exceed the /24 minus self");
        assert!(cover.len() > 200, "but gets most of it: {}", cover.len());
    }

    #[test]
    fn anonymity_set_by_ip_and_by_prefix() {
        let sources = vec![
            Ipv4Addr::new(10, 20, 30, 1),
            Ipv4Addr::new(10, 20, 30, 2),
            Ipv4Addr::new(10, 20, 30, 3),
            Ipv4Addr::new(10, 20, 31, 1),
        ];
        assert_eq!(anonymity_set(&sources, 32), 4, "per-IP: four suspects");
        assert_eq!(anonymity_set(&sources, 24), 2, "per-/24: two neighborhoods");
        assert_eq!(
            anonymity_set(&sources, 16),
            1,
            "per-/16: the whole AS is one suspect"
        );
        assert_eq!(anonymity_set(&[], 32), 0);
    }

    #[test]
    fn single_source_means_no_anonymity() {
        // Overt measurement: one source, anonymity set of 1 — attribution
        // is trivial. Cover traffic is precisely about making this large.
        let sources = vec![Ipv4Addr::new(10, 20, 30, 40)];
        assert_eq!(anonymity_set(&sources, 32), 1);
    }
}
