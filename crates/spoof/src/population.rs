//! Client populations with Beverly-calibrated spoofing capability.

use std::net::Ipv4Addr;

use underradar_netsim::addr::Cidr;
use underradar_netsim::rng::SimRng;

use crate::filter::FilterGranularity;

/// The deployment fractions from Beverly et al. (IMC '09), as cited in
/// §4.2: 77 % of clients can spoof within their /24, 11 % within their
/// /16. The fractions are *cumulative* (the /16 spoofers are a subset of
/// the /24 spoofers); the remaining 23 % cannot spoof at all.
#[derive(Debug, Clone, Copy)]
pub struct BeverlyFractions {
    /// Fraction able to spoof within their /24.
    pub slash24: f64,
    /// Fraction able to spoof within their /16 (subset of `slash24`).
    pub slash16: f64,
    /// Fraction with no filtering at all (subset of `slash16`).
    pub unfiltered: f64,
}

impl Default for BeverlyFractions {
    fn default() -> Self {
        // The paper quotes the /24 and /16 numbers; Beverly also found a
        // small fully-unfiltered tail which we fold into /16 spoofers by
        // default (0 here keeps the headline numbers exact).
        BeverlyFractions {
            slash24: 0.77,
            slash16: 0.11,
            unfiltered: 0.0,
        }
    }
}

/// One client and its spoofing capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientProfile {
    /// The client's address.
    pub ip: Ipv4Addr,
    /// The loosest granularity its network's filtering permits.
    pub capability: FilterGranularity,
}

impl ClientProfile {
    /// Whether this client can emit a packet claiming `src`.
    pub fn can_spoof(&self, src: Ipv4Addr) -> bool {
        self.capability.permits(self.ip, src)
    }
}

/// A sampled population of clients in one access network.
#[derive(Debug, Clone)]
pub struct SpoofPopulation {
    /// The access network prefix.
    pub prefix: Cidr,
    /// The clients.
    pub clients: Vec<ClientProfile>,
}

impl SpoofPopulation {
    /// Sample `n` clients in `prefix` with capabilities drawn from
    /// `fractions`.
    pub fn sample(prefix: Cidr, n: usize, fractions: BeverlyFractions, rng: &mut SimRng) -> Self {
        let mut clients = Vec::with_capacity(n);
        for i in 0..n {
            // Spread addresses across the prefix, skipping .0 hosts.
            let ip = prefix.nth(1 + i as u64);
            let u = rng.unit();
            let capability = if u < fractions.unfiltered {
                FilterGranularity::None
            } else if u < fractions.slash16 {
                FilterGranularity::Slash16
            } else if u < fractions.slash24 {
                FilterGranularity::Slash24
            } else {
                FilterGranularity::Exact
            };
            clients.push(ClientProfile { ip, capability });
        }
        SpoofPopulation { prefix, clients }
    }

    /// Fraction of clients able to spoof within their /24 (includes the
    /// /16-capable and unfiltered, since their freedom is a superset).
    pub fn fraction_spoof_24(&self) -> f64 {
        self.fraction_with(|c| {
            matches!(
                c.capability,
                FilterGranularity::Slash24 | FilterGranularity::Slash16 | FilterGranularity::None
            )
        })
    }

    /// Fraction of clients able to spoof within their /16.
    pub fn fraction_spoof_16(&self) -> f64 {
        self.fraction_with(|c| {
            matches!(
                c.capability,
                FilterGranularity::Slash16 | FilterGranularity::None
            )
        })
    }

    /// Fraction of clients that cannot spoof at all.
    pub fn fraction_filtered(&self) -> f64 {
        self.fraction_with(|c| c.capability == FilterGranularity::Exact)
    }

    fn fraction_with<F: Fn(&ClientProfile) -> bool>(&self, f: F) -> f64 {
        if self.clients.is_empty() {
            return 0.0;
        }
        self.clients.iter().filter(|c| f(c)).count() as f64 / self.clients.len() as f64
    }

    /// Mirror population capability shares into `tel` under
    /// `spoof.population.*` (client count plus per-capability shares in
    /// parts-per-million). Idempotent.
    pub fn export_telemetry(&self, tel: &underradar_telemetry::Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        tel.set_gauge("spoof.population.clients", self.clients.len() as i64);
        tel.set_gauge(
            "spoof.population.spoof24_ppm",
            (self.fraction_spoof_24() * 1e6).round() as i64,
        );
        tel.set_gauge(
            "spoof.population.spoof16_ppm",
            (self.fraction_spoof_16() * 1e6).round() as i64,
        );
        tel.set_gauge(
            "spoof.population.filtered_ppm",
            (self.fraction_filtered() * 1e6).round() as i64,
        );
    }

    /// The client at an address, if present.
    pub fn client(&self, ip: Ipv4Addr) -> Option<&ClientProfile> {
        self.clients.iter().find(|c| c.ip == ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(n: usize, seed: u64) -> SpoofPopulation {
        let mut rng = SimRng::seed_from_u64(seed);
        SpoofPopulation::sample(
            Cidr::slash16(Ipv4Addr::new(10, 20, 0, 0)),
            n,
            BeverlyFractions::default(),
            &mut rng,
        )
    }

    #[test]
    fn fractions_match_beverly_at_scale() {
        let p = pop(20_000, 42);
        let f24 = p.fraction_spoof_24();
        let f16 = p.fraction_spoof_16();
        assert!((f24 - 0.77).abs() < 0.02, "24-spoofable {f24}");
        assert!((f16 - 0.11).abs() < 0.02, "16-spoofable {f16}");
        assert!((p.fraction_filtered() - 0.23).abs() < 0.02);
    }

    #[test]
    fn capability_semantics() {
        let p = pop(5_000, 7);
        let c24 = p
            .clients
            .iter()
            .find(|c| c.capability == FilterGranularity::Slash24)
            .expect("some /24 spoofer");
        let neighbor24 = Cidr::slash24(c24.ip).nth(7);
        assert!(c24.can_spoof(neighbor24));
        let far16 = Cidr::slash16(c24.ip).nth(300);
        assert!(!c24.can_spoof(far16) || Cidr::slash24(c24.ip).contains(far16));
        let c_exact = p
            .clients
            .iter()
            .find(|c| c.capability == FilterGranularity::Exact)
            .expect("some filtered client");
        assert!(c_exact.can_spoof(c_exact.ip));
        assert!(
            !c_exact.can_spoof(Cidr::slash24(c_exact.ip).nth(9))
                || Cidr::slash24(c_exact.ip).nth(9) == c_exact.ip
        );
    }

    #[test]
    fn clients_live_in_prefix_and_are_unique_enough() {
        let p = pop(1000, 9);
        assert!(p.clients.iter().all(|c| p.prefix.contains(c.ip)));
        let mut ips: Vec<Ipv4Addr> = p.clients.iter().map(|c| c.ip).collect();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), 1000, "distinct addresses for distinct clients");
    }

    #[test]
    fn lookup_by_ip() {
        let p = pop(10, 3);
        let target = p.clients[4];
        assert_eq!(p.client(target.ip), Some(&target).copied().as_ref());
        assert!(p.client(Ipv4Addr::new(1, 2, 3, 4)).is_none());
    }

    #[test]
    fn deterministic_sampling() {
        let a = pop(100, 11);
        let b = pop(100, 11);
        assert_eq!(a.clients, b.clients);
    }

    #[test]
    fn empty_population() {
        let p = pop(0, 1);
        assert_eq!(p.fraction_spoof_24(), 0.0);
        assert_eq!(p.fraction_filtered(), 0.0);
    }
}
