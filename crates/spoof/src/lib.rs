#![warn(missing_docs)]
// Library paths must surface failures as typed errors or documented
// invariant expects — never bare unwraps (test code is exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # underradar-spoof
//!
//! The IP-spoofing feasibility model behind §4 of the paper.
//!
//! §4.2 rests on Beverly et al.'s measurement: **77 % of clients can spoof
//! other addresses within their own /24, and 11 % within their own /16**,
//! consistently across regions. This crate models:
//!
//! * [`filter`] — ingress source-address validation at configurable
//!   granularity, both as a pure predicate and as an in-path simulator
//!   node that drops non-conforming spoofs.
//! * [`population`] — client populations sampled to match the Beverly
//!   deployment fractions, with spoofability queries.
//! * [`cover`] — cover-source selection (which neighbor addresses a
//!   mimicking client can borrow) and anonymity-set arithmetic: how many
//!   candidate hosts the surveillance system must consider once cover
//!   traffic makes probes "appear to originate from every host on the
//!   network" (§4).

pub mod cover;
pub mod filter;
pub mod population;

pub use cover::{anonymity_set, cover_sources};
pub use filter::{FilterGranularity, IngressFilterNode};
pub use population::{BeverlyFractions, ClientProfile, SpoofPopulation};
