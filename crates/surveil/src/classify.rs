//! Behavioural traffic classification for the MVR stage.
//!
//! The classifier is deliberately *population-level*: it asks "what kind of
//! sender behaves like this?" using per-source sliding windows, exactly the
//! cheap first-pass filtering a volume-constrained collector must do. It is
//! not a ground-truth oracle — the interesting cases are the measurements
//! that get classified as malware traffic *on purpose*.

use std::fmt;
use std::net::Ipv4Addr;
use underradar_netsim::hash::{FxHashMap, FxHashSet};

use underradar_netsim::packet::{Packet, PacketBody};
use underradar_netsim::time::{SimDuration, SimTime};

/// The classes the MVR sorts traffic into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficClass {
    /// Port/host scanning (nmap-style SYN probing).
    Scan,
    /// Bulk unsolicited email behaviour.
    Spam,
    /// One source of a (distributed) denial-of-service flood.
    DdosSource,
    /// Peer-to-peer bulk transfer.
    P2p,
    /// DNS lookups.
    Dns,
    /// Ordinary web browsing.
    Web,
    /// Ordinary mail delivery (low volume).
    Email,
    /// ICMP (ping/traceroute noise).
    Icmp,
    /// Anything else.
    Other,
}

impl TrafficClass {
    /// Number of classes (array-accounting dimension).
    pub const COUNT: usize = 9;

    /// Every class, in discriminant order ([`TrafficClass::index`] order).
    pub const ALL: [TrafficClass; TrafficClass::COUNT] = [
        TrafficClass::Scan,
        TrafficClass::Spam,
        TrafficClass::DdosSource,
        TrafficClass::P2p,
        TrafficClass::Dns,
        TrafficClass::Web,
        TrafficClass::Email,
        TrafficClass::Icmp,
        TrafficClass::Other,
    ];

    /// Dense discriminant index in `0..COUNT`, for direct array accounting
    /// instead of linear scans over a class list.
    pub const fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::Scan => "scan",
            TrafficClass::Spam => "spam",
            TrafficClass::DdosSource => "ddos",
            TrafficClass::P2p => "p2p",
            TrafficClass::Dns => "dns",
            TrafficClass::Web => "web",
            TrafficClass::Email => "email",
            TrafficClass::Icmp => "icmp",
            TrafficClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// Tunable thresholds for the behavioural detectors.
#[derive(Debug, Clone, Copy)]
pub struct ClassifierConfig {
    /// Sliding window length.
    pub window: SimDuration,
    /// Distinct (dst, port) SYN targets within the window that make a
    /// source a scanner.
    pub scan_targets: usize,
    /// Distinct SMTP destinations within the window that make a source a
    /// spammer.
    pub spam_fanout: usize,
    /// Requests to one (dst, port) within the window that make a source a
    /// DDoS participant.
    pub ddos_rate: usize,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            window: SimDuration::from_secs(60),
            scan_targets: 15,
            spam_fanout: 3,
            ddos_rate: 50,
        }
    }
}

#[derive(Debug, Default)]
struct SourceState {
    window_start: SimTime,
    syn_targets: FxHashSet<(Ipv4Addr, u16)>,
    smtp_dsts: FxHashSet<Ipv4Addr>,
    per_target_hits: FxHashMap<(Ipv4Addr, u16), usize>,
    /// Sticky labels: once a sender crosses a behavioural threshold it
    /// stays in that class for the rest of the window.
    is_scanner: bool,
    is_spammer: bool,
    is_ddos: bool,
}

impl SourceState {
    /// Roll the sliding window: clear behavioural state in place so the
    /// sets keep their allocations across window resets (a chatty source
    /// re-fills them every window).
    fn reset(&mut self, now: SimTime) {
        self.window_start = now;
        self.syn_targets.clear();
        self.smtp_dsts.clear();
        self.per_target_hits.clear();
        self.is_scanner = false;
        self.is_spammer = false;
        self.is_ddos = false;
    }
}

/// The stateful classifier.
///
/// Per-source state follows the arena design used for flow bookkeeping:
/// the hash table maps a source to a dense `u32` slot and the heavy
/// window state lives in a `Vec` arena — table growth rehashes 4-byte
/// indices instead of moving three hash sets per source, and slots stay
/// stable for the classifier's lifetime.
#[derive(Debug)]
pub struct Classifier {
    config: ClassifierConfig,
    index: FxHashMap<Ipv4Addr, u32>,
    sources: Vec<SourceState>,
}

impl Classifier {
    /// Build with the given thresholds.
    pub fn new(config: ClassifierConfig) -> Classifier {
        Classifier {
            config,
            index: FxHashMap::default(),
            sources: Vec::new(),
        }
    }

    /// Number of distinct sources with live behavioural state.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Classify one packet (updates per-source behavioural state).
    pub fn classify(&mut self, now: SimTime, pkt: &Packet) -> TrafficClass {
        let slot = match self.index.get(&pkt.src) {
            Some(&i) => i as usize,
            None => {
                let i = self.sources.len();
                self.index.insert(pkt.src, i as u32);
                self.sources.push(SourceState::default());
                i
            }
        };
        let state = &mut self.sources[slot];
        if now.saturating_since(state.window_start) > self.config.window {
            state.reset(now);
        }

        match &pkt.body {
            PacketBody::Raw { .. } => TrafficClass::P2p,
            PacketBody::Icmp(_) => TrafficClass::Icmp,
            PacketBody::Udp(u) => {
                if u.dst_port == 53 || u.src_port == 53 {
                    // A spam-labeled source's lookups are part of the
                    // campaign: "if spammers send traffic to every domain
                    // in the .com zone, then they are bound to send traffic
                    // to censored domains; ... the MVR will discard the
                    // traffic" (§3.1).
                    if state.is_spammer {
                        return TrafficClass::Spam;
                    }
                    return TrafficClass::Dns;
                }
                TrafficClass::Other
            }
            PacketBody::Tcp(t) => {
                // Behavioural updates.
                if t.flags.has_syn() && !t.flags.has_ack() {
                    state.syn_targets.insert((pkt.dst, t.dst_port));
                    if state.syn_targets.len() >= self.config.scan_targets {
                        state.is_scanner = true;
                    }
                }
                if t.dst_port == 25 {
                    state.smtp_dsts.insert(pkt.dst);
                    if state.smtp_dsts.len() >= self.config.spam_fanout {
                        state.is_spammer = true;
                    }
                }
                if !t.payload.is_empty() {
                    let hits = state
                        .per_target_hits
                        .entry((pkt.dst, t.dst_port))
                        .or_insert(0);
                    *hits += 1;
                    if *hits >= self.config.ddos_rate {
                        state.is_ddos = true;
                    }
                }

                // Sticky behavioural classes first (most specific wins).
                if state.is_scanner && t.flags.has_syn() && !t.flags.has_ack() {
                    return TrafficClass::Scan;
                }
                if state.is_ddos
                    && state
                        .per_target_hits
                        .get(&(pkt.dst, t.dst_port))
                        .map(|h| *h >= self.config.ddos_rate)
                        .unwrap_or(false)
                {
                    return TrafficClass::DdosSource;
                }
                if t.dst_port == 25 || t.src_port == 25 {
                    return if state.is_spammer {
                        TrafficClass::Spam
                    } else {
                        TrafficClass::Email
                    };
                }
                if t.dst_port == 80 || t.dst_port == 443 || t.src_port == 80 || t.src_port == 443 {
                    return TrafficClass::Web;
                }
                // High-port to high-port bulk flows look like P2P.
                if t.src_port >= 1024 && t.dst_port >= 1024 && t.payload.len() >= 512 {
                    return TrafficClass::P2p;
                }
                TrafficClass::Other
            }
        }
    }

    /// Whether a source currently carries a behavioural (malware-ish)
    /// label.
    pub fn source_labels(&self, src: Ipv4Addr) -> (bool, bool, bool) {
        self.index
            .get(&src)
            .map(|&i| &self.sources[i as usize])
            .map(|s| (s.is_scanner, s.is_spammer, s.is_ddos))
            .unwrap_or((false, false, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use underradar_netsim::wire::tcp::TcpFlags;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 9);
    const DST: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

    fn classifier() -> Classifier {
        Classifier::new(ClassifierConfig::default())
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn web_email_dns_icmp_basics() {
        let mut c = classifier();
        let web = Packet::tcp(
            SRC,
            DST,
            40000,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"GET /".to_vec(),
        );
        assert_eq!(c.classify(t(0), &web), TrafficClass::Web);
        let mail = Packet::tcp(
            SRC,
            DST,
            40000,
            25,
            0,
            0,
            TcpFlags::psh_ack(),
            b"HELO".to_vec(),
        );
        assert_eq!(c.classify(t(0), &mail), TrafficClass::Email);
        let dns = Packet::udp(SRC, DST, 5353, 53, b"q".to_vec());
        assert_eq!(c.classify(t(0), &dns), TrafficClass::Dns);
        let ping = Packet::icmp(
            SRC,
            DST,
            underradar_netsim::wire::icmp::IcmpKind::EchoRequest { ident: 0, seq: 0 },
            vec![],
        );
        assert_eq!(c.classify(t(0), &ping), TrafficClass::Icmp);
    }

    #[test]
    fn syn_fanout_becomes_scan() {
        let mut c = classifier();
        let mut classes = Vec::new();
        for port in 0..30u16 {
            let syn = Packet::tcp(SRC, DST, 44000, 1000 + port, 0, 0, TcpFlags::syn(), vec![]);
            classes.push(c.classify(t(0), &syn));
        }
        assert!(
            classes[..10].iter().all(|&cl| cl != TrafficClass::Scan),
            "warm-up not scan yet"
        );
        assert!(
            classes[20..].iter().all(|&cl| cl == TrafficClass::Scan),
            "sticky scan label"
        );
        assert!(c.source_labels(SRC).0);
    }

    #[test]
    fn smtp_fanout_becomes_spam() {
        let mut c = classifier();
        for i in 0..3u8 {
            let mx = Ipv4Addr::new(198, 51, 100, i);
            let pkt = Packet::tcp(
                SRC,
                mx,
                44000,
                25,
                0,
                0,
                TcpFlags::psh_ack(),
                b"MAIL".to_vec(),
            );
            c.classify(t(0), &pkt);
        }
        let pkt = Packet::tcp(
            SRC,
            Ipv4Addr::new(198, 51, 100, 9),
            44000,
            25,
            0,
            0,
            TcpFlags::psh_ack(),
            b"MAIL".to_vec(),
        );
        assert_eq!(c.classify(t(0), &pkt), TrafficClass::Spam);
        assert!(c.source_labels(SRC).1);
    }

    #[test]
    fn repeated_requests_become_ddos() {
        let mut c = classifier();
        let mut last = TrafficClass::Other;
        for _ in 0..60 {
            let pkt = Packet::tcp(
                SRC,
                DST,
                44000,
                80,
                0,
                0,
                TcpFlags::psh_ack(),
                b"GET /victim".to_vec(),
            );
            last = c.classify(t(1), &pkt);
        }
        assert_eq!(last, TrafficClass::DdosSource);
        assert!(c.source_labels(SRC).2);
    }

    #[test]
    fn window_expiry_resets_labels() {
        let mut c = classifier();
        for port in 0..20u16 {
            let syn = Packet::tcp(SRC, DST, 44000, 1000 + port, 0, 0, TcpFlags::syn(), vec![]);
            c.classify(t(0), &syn);
        }
        assert!(c.source_labels(SRC).0);
        // Two minutes later the window rolled.
        let syn = Packet::tcp(SRC, DST, 44000, 5000, 0, 0, TcpFlags::syn(), vec![]);
        assert_ne!(c.classify(t(180), &syn), TrafficClass::Scan);
        assert!(!c.source_labels(SRC).0);
    }

    #[test]
    fn p2p_heuristics() {
        let mut c = classifier();
        let raw = Packet {
            src: SRC,
            dst: DST,
            ttl: 64,
            ident: 0,
            body: underradar_netsim::packet::PacketBody::Raw {
                protocol: 99,
                payload: vec![0; 900],
            },
        };
        assert_eq!(c.classify(t(0), &raw), TrafficClass::P2p);
        let bulk = Packet::tcp(
            SRC,
            DST,
            51413,
            51413,
            0,
            0,
            TcpFlags::psh_ack(),
            vec![0; 1200],
        );
        assert_eq!(c.classify(t(0), &bulk), TrafficClass::P2p);
        let small = Packet::tcp(
            SRC,
            DST,
            51413,
            51413,
            0,
            0,
            TcpFlags::psh_ack(),
            vec![0; 10],
        );
        assert_eq!(c.classify(t(0), &small), TrafficClass::Other);
    }

    #[test]
    fn sources_tracked_independently() {
        let mut c = classifier();
        let other_src = Ipv4Addr::new(10, 0, 1, 77);
        for port in 0..20u16 {
            let syn = Packet::tcp(SRC, DST, 44000, 1000 + port, 0, 0, TcpFlags::syn(), vec![]);
            c.classify(t(0), &syn);
        }
        let innocent = Packet::tcp(other_src, DST, 44000, 6000, 0, 0, TcpFlags::syn(), vec![]);
        assert_ne!(c.classify(t(0), &innocent), TrafficClass::Scan);
    }
}
