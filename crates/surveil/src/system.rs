//! The composed two-stage surveillance system and its simulator node.
//!
//! Pipeline per observed packet (the §2.1 ordering):
//!
//! 1. Flow **metadata** is recorded for everything (the NSA kept 30 days of
//!    connection metadata regardless of content decisions).
//! 2. The **MVR** classifies and discards valueless classes.
//! 3. Retained packets are stored as **content** (3 days) and run through
//!    the **signature engine**; alerts land in the 1-year alert store.
//! 4. The **analyst** triages alerts into investigations under capacity.
//!
//! The `alert_first` ablation swaps steps 2 and 3: the engine sees
//! everything before volume reduction. The paper's techniques evade the
//! default ordering; the ablation shows what a storage-unconstrained
//! adversary would catch.

use std::any::Any;
use std::net::Ipv4Addr;

use underradar_ids::alert::Alert;
use underradar_ids::engine::DetectionEngine;
use underradar_ids::parser::{parse_ruleset, VarTable};
use underradar_ids::rule::Rule;
use underradar_ids::stream::ReassemblyConfig;
use underradar_netsim::addr::Cidr;
use underradar_netsim::node::{IfaceId, Node, NodeCtx};
use underradar_netsim::packet::Packet;
use underradar_netsim::telemetry::Tracer;
use underradar_netsim::time::SimTime;
use underradar_protocols::dns::DnsName;

use crate::analyst::{Analyst, AnalystConfig, Investigation};
use crate::mvr::{Mvr, MvrConfig, MvrDecision};
use crate::store::{ContentRecord, FlowRecord, StoreSet};

/// Configuration for the whole surveillance system.
#[derive(Debug)]
pub struct SurveillanceConfig {
    /// Stage-1 volume reduction.
    pub mvr: MvrConfig,
    /// The signature ruleset run over retained traffic.
    pub rules: Vec<Rule>,
    /// Analyst capacity model.
    pub analyst: AnalystConfig,
    /// Ablation: run signatures before the MVR discards (default false —
    /// the storage-constrained ordering the paper exploits).
    pub alert_first: bool,
    /// Reassembly limits for the signature engine (flow-table capacity
    /// and per-direction buffering caps).
    pub reassembly: ReassemblyConfig,
}

impl SurveillanceConfig {
    /// A config with the given ruleset and paper-default stages.
    pub fn with_rules(rules: Vec<Rule>) -> SurveillanceConfig {
        SurveillanceConfig {
            mvr: MvrConfig::default(),
            rules,
            analyst: AnalystConfig::default(),
            alert_first: false,
            reassembly: ReassemblyConfig::default(),
        }
    }
}

/// Build the subscription-style surveillance ruleset used by the
/// experiments: user-focused rules that catch *overt* censorship
/// measurement behaviour.
///
/// `home_net` scopes "our users"; `watched_domains` and `keywords` mirror
/// the censor's policy (the surveillance side knows what is censored and
/// watches for citizens touching it); `collector` is a known measurement
/// platform endpoint (an OONI-style collector).
pub fn default_surveillance_rules(
    home_net: Cidr,
    watched_domains: &[DnsName],
    keywords: &[String],
    collector: Option<Ipv4Addr>,
) -> Vec<Rule> {
    let mut text = String::from("# surveillance ruleset: catch users probing censored content\n");
    let mut sid = 9_000_000u32;
    for name in watched_domains {
        sid += 1;
        let mut pattern = String::new();
        for label in name.labels() {
            pattern.push_str(&format!("|{:02x}|", label.len()));
            pattern.push_str(&String::from_utf8_lossy(label));
        }
        text.push_str(&format!(
            "alert udp $HOME any -> any 53 (msg:\"user queried censored domain {name}\"; content:\"{pattern}\"; nocase; sid:{sid}; classtype:censored-lookup;)\n"
        ));
    }
    for kw in keywords {
        sid += 1;
        text.push_str(&format!(
            "alert tcp $HOME any -> any any (msg:\"user sent censored keyword {kw}\"; flow:to_server; content:\"{kw}\"; nocase; sid:{sid}; classtype:censored-keyword;)\n"
        ));
    }
    if let Some(c) = collector {
        sid += 1;
        text.push_str(&format!(
            "alert tcp $HOME any -> {c}/32 any (msg:\"user contacted measurement collector\"; flags:S; sid:{sid}; classtype:measurement-platform;)\n"
        ));
    }
    // Generic reconnaissance visibility (fires only when scan traffic is
    // not already discarded by the MVR, i.e. in the alert-first ablation).
    sid += 1;
    text.push_str(&format!(
        "alert tcp $HOME any -> any any (msg:\"rapid SYN fanout\"; flags:S; threshold: type both, track by_src, count 100, seconds 60; sid:{sid}; classtype:recon;)\n"
    ));
    let mut vars = VarTable::new();
    vars.insert(
        "HOME".to_string(),
        underradar_ids::rule::AddrSpec::Net(home_net),
    );
    parse_ruleset(&text, &vars).expect("generated surveillance ruleset parses")
}

/// Running counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SurveillanceStats {
    /// Packets observed.
    pub observed: u64,
    /// Packets retained past the MVR.
    pub retained: u64,
    /// Packets discarded by the MVR.
    pub discarded: u64,
    /// Alerts raised.
    pub alerts: u64,
}

/// The two-stage surveillance system (pure; drive it with packets).
pub struct SurveillanceSystem {
    mvr: Mvr,
    engine: DetectionEngine,
    stores: StoreSet,
    analyst: Analyst,
    alert_first: bool,
    stats: SurveillanceStats,
}

impl SurveillanceSystem {
    /// Build from a config with the paper's NSA-style retention stores
    /// (3 d content / 30 d metadata / 1 y alerts).
    pub fn new(config: SurveillanceConfig) -> SurveillanceSystem {
        Self::with_stores(config, StoreSet::paper_defaults())
    }

    /// Build with the campus-network retention profile from §2.1 (no full
    /// content capture, ~36 h flow records, ~1 y alerts).
    pub fn campus(config: SurveillanceConfig) -> SurveillanceSystem {
        Self::with_stores(config, StoreSet::campus_defaults())
    }

    /// Build with explicit retention stores.
    pub fn with_stores(config: SurveillanceConfig, stores: StoreSet) -> SurveillanceSystem {
        SurveillanceSystem {
            mvr: Mvr::new(config.mvr),
            engine: DetectionEngine::with_reassembly(config.rules, config.reassembly),
            stores,
            analyst: Analyst::new(config.analyst),
            alert_first: config.alert_first,
            stats: SurveillanceStats::default(),
        }
    }

    /// Attach a flight-recorder trace to the pipeline stages: MVR
    /// retain/discard decisions (stage `mvr`) and signature-engine rule
    /// matches (stage `engine`, including its reassembler's stream
    /// decisions).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.mvr.set_tracer(tracer.clone());
        self.engine.set_tracer(tracer);
    }

    /// Process one observed packet through the pipeline.
    pub fn process(&mut self, now: SimTime, pkt: &Packet) -> (MvrDecision, Vec<Alert>) {
        self.stats.observed += 1;

        // Metadata for everything (CDR-style).
        self.stores.metadata.insert(
            now,
            FlowRecord {
                src: pkt.src,
                dst: pkt.dst,
                src_port: pkt.src_port().unwrap_or(0),
                dst_port: pkt.dst_port().unwrap_or(0),
                protocol: pkt.body.protocol().number(),
                bytes: pkt.wire_len() as u64,
                packets: 1,
            },
            pkt.wire_len() as u64,
        );

        let mut alerts = Vec::new();
        if self.alert_first {
            alerts = self.engine.process(now, pkt);
        }

        let decision = self.mvr.process(now, pkt);
        if decision.retained() {
            self.stats.retained += 1;
            self.stores.content.insert(
                now,
                ContentRecord {
                    src: pkt.src,
                    dst: pkt.dst,
                    bytes: pkt.wire_len(),
                    summary: pkt.summary(),
                },
                pkt.wire_len() as u64,
            );
            if !self.alert_first {
                alerts = self.engine.process(now, pkt);
            }
        } else {
            self.stats.discarded += 1;
        }

        for a in &alerts {
            self.stores.alerts.insert(now, a.to_string(), 0);
        }
        self.stats.alerts += alerts.len() as u64;
        (decision, alerts)
    }

    /// Counters.
    pub fn stats(&self) -> SurveillanceStats {
        self.stats
    }

    /// The MVR stage (for volume accounting).
    pub fn mvr(&self) -> &Mvr {
        &self.mvr
    }

    /// The detection engine (for its alert log).
    pub fn engine(&self) -> &DetectionEngine {
        &self.engine
    }

    /// The retention stores.
    pub fn stores(&self) -> &StoreSet {
        &self.stores
    }

    /// Analyst triage over all alerts raised so far.
    pub fn triage(&self) -> Vec<Investigation> {
        self.analyst.triage(self.engine.log().all())
    }

    /// Number of alerts attributed to `src` — the evasion metric: a
    /// measurement evades if this stays zero (§3.2.1: "successful if it can
    /// detect blocking without triggering the MVR to log its traffic").
    pub fn alerts_for(&self, src: Ipv4Addr) -> usize {
        self.engine.log().by_src(src).count()
    }

    /// Whether the analyst would pursue `src`.
    pub fn is_pursued(&self, src: Ipv4Addr) -> bool {
        self.analyst.is_pursued(self.engine.log().all(), src)
    }

    /// Whether `src` is attributed at all.
    pub fn is_attributed(&self, src: Ipv4Addr) -> bool {
        self.analyst.is_attributed(self.engine.log().all(), src)
    }

    /// Mirror the whole pipeline's state into `tel`: pipeline counters
    /// (`surveil.*`), per-class MVR volumes, per-tier store accounting,
    /// the retained-traffic IDS engine (`ids.engine.*`), and analyst
    /// triage (investigations, pursuits, pursuit cost in alerts reviewed).
    /// Idempotent; call at the end of a run.
    pub fn export_telemetry(&self, tel: &underradar_telemetry::Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        let s = self.stats;
        tel.set_counter("surveil.observed", s.observed);
        tel.set_counter("surveil.retained", s.retained);
        tel.set_counter("surveil.discarded", s.discarded);
        tel.set_counter("surveil.alerts", s.alerts);
        self.mvr.export_telemetry(tel);
        self.stores.export_telemetry(tel);
        self.engine.export_telemetry(tel, "ids.engine");
        let triage = self.triage();
        let pursued = triage.iter().filter(|i| i.pursued).count();
        // Pursuit cost: alerts an analyst must review to work the pursued
        // investigations (the §2.1 "expensive to trigger" quantity).
        let pursuit_cost: u64 = triage
            .iter()
            .filter(|i| i.pursued)
            .map(|i| i.alert_count)
            .sum();
        tel.set_gauge("surveil.analyst.investigations", triage.len() as i64);
        tel.set_gauge("surveil.analyst.pursued", pursued as i64);
        tel.set_gauge("surveil.analyst.pursuit_cost_alerts", pursuit_cost as i64);
    }
}

/// Passive simulator node wrapping a [`SurveillanceSystem`]; attach its
/// interface 0 to a switch tap.
pub struct SurveillanceNode {
    name: String,
    system: SurveillanceSystem,
}

impl SurveillanceNode {
    /// Build from a config.
    pub fn new(name: &str, config: SurveillanceConfig) -> SurveillanceNode {
        SurveillanceNode {
            name: name.to_string(),
            system: SurveillanceSystem::new(config),
        }
    }

    /// The inner system.
    pub fn system(&self) -> &SurveillanceSystem {
        &self.system
    }

    /// Attach a flight-recorder trace to the inner system's stages.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.system.set_tracer(tracer);
    }
}

impl Node for SurveillanceNode {
    fn name(&self) -> &str {
        &self.name
    }

    // Pure observer: no randomness, no injected traffic — same-instant
    // deliveries coalesce into one dispatch.
    fn wants_batch(&self) -> bool {
        true
    }

    fn receive(&mut self, ctx: &mut NodeCtx<'_>, _iface: IfaceId, packet: Packet) {
        let _ = self.system.process(ctx.now(), &packet);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use underradar_netsim::wire::tcp::TcpFlags;
    use underradar_protocols::dns::{DnsMessage, QType};

    const HOME: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
    const OUT: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

    fn home_net() -> Cidr {
        Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 8)
    }

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).expect("name")
    }

    fn system(alert_first: bool) -> SurveillanceSystem {
        let rules = default_surveillance_rules(
            home_net(),
            &[name("twitter.com"), name("youtube.com")],
            &["falun".to_string()],
            Some(Ipv4Addr::new(198, 51, 100, 99)),
        );
        let mut cfg = SurveillanceConfig::with_rules(rules);
        cfg.alert_first = alert_first;
        SurveillanceSystem::new(cfg)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + underradar_netsim::time::SimDuration::from_secs(secs)
    }

    #[test]
    fn overt_dns_lookup_is_caught_and_attributed() {
        let mut s = system(false);
        let q = DnsMessage::query(1, name("twitter.com"), QType::A);
        let pkt = Packet::udp(HOME, OUT, 5555, 53, q.encode());
        let (decision, alerts) = s.process(t(0), &pkt);
        assert!(
            decision.retained(),
            "a lone DNS query is ordinary traffic — retained"
        );
        assert_eq!(alerts.len(), 1, "and it trips the censored-lookup rule");
        assert_eq!(s.alerts_for(HOME), 1);
        // Second offense makes the user attributable (min_alerts = 2).
        let q2 = DnsMessage::query(2, name("youtube.com"), QType::A);
        let pkt2 = Packet::udp(HOME, OUT, 5556, 53, q2.encode());
        s.process(t(1), &pkt2);
        assert!(s.is_attributed(HOME));
        assert!(s.is_pursued(HOME), "only suspect, so within capacity");
    }

    #[test]
    fn overt_keyword_request_is_caught() {
        let mut s = system(false);
        let pkt = Packet::tcp(
            HOME,
            OUT,
            40000,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"GET /falun".to_vec(),
        );
        let (_, alerts) = s.process(t(0), &pkt);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].classtype.as_deref(), Some("censored-keyword"));
    }

    #[test]
    fn scan_traffic_discarded_before_rules_default_ordering() {
        let mut s = system(false);
        // 120 SYNs: enough for both the classifier (scan at 15 targets) and
        // the surveillance recon rule (100 SYNs) — but the MVR discards the
        // class first, so the rule never sees packets 15..
        let mut alert_count = 0;
        for port in 0..120u16 {
            let syn = Packet::tcp(HOME, OUT, 44000, 1000 + port, 0, 0, TcpFlags::syn(), vec![]);
            let (_, alerts) = s.process(t(0), &syn);
            alert_count += alerts.len();
        }
        assert_eq!(alert_count, 0, "scan evades: discarded before signatures");
        assert!(s.stats().discarded > 100);
        assert_eq!(s.alerts_for(HOME), 0);
    }

    #[test]
    fn alert_first_ablation_catches_the_scan() {
        let mut s = system(true);
        let mut alert_count = 0;
        for port in 0..120u16 {
            let syn = Packet::tcp(HOME, OUT, 44000, 1000 + port, 0, 0, TcpFlags::syn(), vec![]);
            let (_, alerts) = s.process(t(0), &syn);
            alert_count += alerts.len();
        }
        assert_eq!(
            alert_count, 1,
            "recon threshold fires when rules run before MVR"
        );
    }

    #[test]
    fn collector_contact_is_flagged() {
        let mut s = system(false);
        let syn = Packet::tcp(
            HOME,
            Ipv4Addr::new(198, 51, 100, 99),
            40000,
            443,
            0,
            0,
            TcpFlags::syn(),
            vec![],
        );
        let (_, alerts) = s.process(t(0), &syn);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].classtype.as_deref(), Some("measurement-platform"));
    }

    #[test]
    fn metadata_recorded_even_for_discarded_traffic() {
        let mut s = system(false);
        for port in 0..30u16 {
            let syn = Packet::tcp(HOME, OUT, 44000, 1000 + port, 0, 0, TcpFlags::syn(), vec![]);
            s.process(t(0), &syn);
        }
        let meta = s.stores().metadata.total_inserted();
        assert_eq!(meta, 30, "CDR-style metadata for everything");
        let content = s.stores().content.total_inserted();
        assert!(content < 30, "content only for retained packets");
    }

    #[test]
    fn outside_home_net_is_not_alerted() {
        let mut s = system(false);
        let foreign = Ipv4Addr::new(172, 16, 0, 9);
        let q = DnsMessage::query(1, name("twitter.com"), QType::A);
        let pkt = Packet::udp(foreign, OUT, 5555, 53, q.encode());
        let (_, alerts) = s.process(t(0), &pkt);
        assert!(alerts.is_empty(), "surveillance tracks its own users");
    }

    #[test]
    fn campus_profile_keeps_no_content() {
        let mut s = SurveillanceSystem::campus(SurveillanceConfig::with_rules(vec![]));
        let pkt = Packet::tcp(
            HOME,
            OUT,
            40000,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"GET /".to_vec(),
        );
        s.process(t(0), &pkt);
        assert_eq!(
            s.stores().content.window(),
            underradar_netsim::time::SimDuration::ZERO
        );
        assert_eq!(
            s.stores().metadata.window(),
            underradar_netsim::time::SimDuration::from_hours(36)
        );
        // Content inserted at t still lives at the same instant...
        assert_eq!(s.stores().content.len(), 1);
        // ...but any later packet evicts it (zero retention window).
        let pkt2 = Packet::tcp(
            HOME,
            OUT,
            40001,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"GET /2".to_vec(),
        );
        s.process(t(1), &pkt2);
        assert_eq!(
            s.stores().content.len(),
            1,
            "only the newest instant survives"
        );
    }

    #[test]
    fn telemetry_export_covers_pipeline_and_is_idempotent() {
        use underradar_telemetry::Telemetry;
        let mut s = system(false);
        let q = DnsMessage::query(1, name("twitter.com"), QType::A);
        let pkt = Packet::udp(HOME, OUT, 5555, 53, q.encode());
        s.process(t(0), &pkt);
        let q2 = DnsMessage::query(2, name("youtube.com"), QType::A);
        let pkt2 = Packet::udp(HOME, OUT, 5556, 53, q2.encode());
        s.process(t(1), &pkt2);
        let tel = Telemetry::enabled();
        s.export_telemetry(&tel);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("surveil.observed"), 2);
        assert_eq!(snap.counter("surveil.mvr.dns.packets"), 2);
        assert_eq!(snap.counter("surveil.store.metadata.inserted"), 2);
        assert_eq!(snap.counter("ids.engine.packets"), 2);
        assert_eq!(snap.gauge("surveil.analyst.investigations"), 1);
        assert_eq!(snap.gauge("surveil.analyst.pursued"), 1);
        assert_eq!(snap.gauge("surveil.analyst.pursuit_cost_alerts"), 2);
        // Re-export changes nothing (absolute totals).
        s.export_telemetry(&tel);
        assert_eq!(tel.snapshot(), snap);
    }

    #[test]
    fn node_wrapper_feeds_system() {
        use underradar_netsim::{LinkConfig, Simulator, HOST_IFACE};
        let mut sim = Simulator::new(77);
        let node = sim.add_node(Box::new(SurveillanceNode::new(
            "mvr",
            SurveillanceConfig::with_rules(vec![]),
        )));
        let src_node = sim.add_node(Box::new(underradar_netsim::Host::new("h", HOME)));
        sim.wire(
            src_node,
            HOST_IFACE,
            node,
            IfaceId(0),
            LinkConfig::default(),
        )
        .expect("wire");
        let pkt = Packet::tcp(HOME, OUT, 1, 80, 0, 0, TcpFlags::syn(), vec![]);
        sim.send_from(src_node, HOST_IFACE, pkt, SimTime::ZERO)
            .expect("send");
        sim.run_for(underradar_netsim::SimDuration::from_secs(1))
            .expect("run");
        assert_eq!(
            sim.node_ref::<SurveillanceNode>(node)
                .expect("n")
                .system()
                .stats()
                .observed,
            1
        );
    }
}
