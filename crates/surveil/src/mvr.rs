//! Massive Volume Reduction — the surveillance system's first stage.
//!
//! Models the constraint at the heart of the paper's §2.1 argument: the
//! NSA could store only 7.5 % of the traffic it received and reduced
//! volume by ~30 % up front, "in part by throwing away all peer-to-peer
//! traffic". The MVR therefore:
//!
//! 1. classifies each packet behaviourally ([`crate::classify`]),
//! 2. discards whole classes configured as valueless (default: P2P, scan,
//!    spam, DDoS — high-volume, non-user-attributable noise),
//! 3. tracks how much of the remaining volume fits in the retention budget.
//!
//! The measurement techniques of §3 aim to be discarded at step 2.

use underradar_netsim::flow::FlowTuple;
use underradar_netsim::hash::FxHashSet;
use underradar_netsim::packet::Packet;
use underradar_netsim::telemetry::{TraceRecord, Tracer};
use underradar_netsim::time::SimTime;

use crate::classify::{Classifier, ClassifierConfig, TrafficClass};

/// What the MVR decided about a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MvrDecision {
    /// Discarded at stage 1; the analysis stage never sees it.
    Discard(TrafficClass),
    /// Retained for analysis.
    Retain(TrafficClass),
}

impl MvrDecision {
    /// The class assigned, either way.
    pub fn class(self) -> TrafficClass {
        match self {
            MvrDecision::Discard(c) | MvrDecision::Retain(c) => c,
        }
    }

    /// Whether the packet survived to analysis.
    pub fn retained(self) -> bool {
        matches!(self, MvrDecision::Retain(_))
    }
}

/// MVR configuration.
#[derive(Debug, Clone)]
pub struct MvrConfig {
    /// Classes discarded wholesale.
    pub discard_classes: Vec<TrafficClass>,
    /// Fraction of observed bytes the collector can afford to retain
    /// (the NSA's 2009 figure was 0.075).
    pub retention_budget: f64,
    /// Classifier thresholds.
    pub classifier: ClassifierConfig,
}

impl Default for MvrConfig {
    fn default() -> Self {
        MvrConfig {
            discard_classes: vec![
                TrafficClass::P2p,
                TrafficClass::Scan,
                TrafficClass::Spam,
                TrafficClass::DdosSource,
            ],
            retention_budget: 0.075,
            classifier: ClassifierConfig::default(),
        }
    }
}

/// Per-class byte/packet accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassVolume {
    /// Packets seen.
    pub packets: u64,
    /// Bytes seen.
    pub bytes: u64,
    /// Packets retained.
    pub retained_packets: u64,
    /// Bytes retained.
    pub retained_bytes: u64,
}

/// The MVR stage.
///
/// Per-class accounting is indexed by [`TrafficClass::index`] — the
/// per-packet hot path is two array accesses, not a scan over the class
/// list and a `contains` over the discard list.
#[derive(Debug)]
pub struct Mvr {
    config: MvrConfig,
    classifier: Classifier,
    volumes: [ClassVolume; TrafficClass::COUNT],
    discard_mask: [bool; TrafficClass::COUNT],
    tracer: Tracer,
    /// Dedup sets for trace records, one per class (indexed by
    /// [`TrafficClass::index`], like `volumes`): one record per
    /// (flow, class, verdict). Bounds trace volume under floods — a
    /// 10k-packet P2P burst is one decision, not 10k — while still
    /// recording the moment a flow's classification (and hence its
    /// retention fate) changes. Keying the set by (flow, verdict) and the
    /// array by class keeps the class out of the hashed key.
    traced: [FxHashSet<(FlowTuple, bool)>; TrafficClass::COUNT],
}

impl Mvr {
    /// Build an MVR stage.
    pub fn new(config: MvrConfig) -> Mvr {
        let classifier = Classifier::new(config.classifier);
        let mut discard_mask = [false; TrafficClass::COUNT];
        for class in &config.discard_classes {
            discard_mask[class.index()] = true;
        }
        Mvr {
            config,
            classifier,
            volumes: [ClassVolume::default(); TrafficClass::COUNT],
            discard_mask,
            tracer: Tracer::disabled(),
            traced: std::array::from_fn(|_| FxHashSet::default()),
        }
    }

    /// Attach a flight-recorder trace (stage `mvr`): one retain/discard
    /// record per (flow, class, verdict), carrying the classifying traffic
    /// class.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Process a packet through stage 1.
    pub fn process(&mut self, now: SimTime, pkt: &Packet) -> MvrDecision {
        let class = self.classifier.classify(now, pkt);
        let bytes = pkt.wire_len() as u64;
        let vol = &mut self.volumes[class.index()];
        vol.packets += 1;
        vol.bytes += bytes;
        let decision = if self.discard_mask[class.index()] {
            MvrDecision::Discard(class)
        } else {
            vol.retained_packets += 1;
            vol.retained_bytes += bytes;
            MvrDecision::Retain(class)
        };
        if self.tracer.is_live() {
            self.trace_decision(now, pkt, decision);
        }
        decision
    }

    fn trace_decision(&mut self, now: SimTime, pkt: &Packet, decision: MvrDecision) {
        let flow = pkt.trace_flow();
        let class = decision.class();
        let key = (FlowTuple::of_packet(pkt), decision.retained());
        if !self.traced[class.index()].insert(key) {
            return;
        }
        self.tracer.record(TraceRecord {
            t_ns: now.as_nanos(),
            seq: 0,
            stage: "mvr",
            kind: if decision.retained() {
                "retain"
            } else {
                "discard"
            },
            flow: Some(flow),
            fields: vec![("class", class.to_string().into())],
        });
    }

    /// Per-class accounting, in [`TrafficClass::ALL`] order.
    pub fn volumes(&self) -> Vec<(TrafficClass, ClassVolume)> {
        TrafficClass::ALL
            .iter()
            .map(|&c| (c, self.volumes[c.index()]))
            .collect()
    }

    /// Accounting for one class (O(1)).
    pub fn volume_of(&self, class: TrafficClass) -> ClassVolume {
        self.volumes[class.index()]
    }

    /// Total bytes observed.
    pub fn total_bytes(&self) -> u64 {
        self.volumes.iter().map(|v| v.bytes).sum()
    }

    /// Total bytes retained.
    pub fn retained_bytes(&self) -> u64 {
        self.volumes.iter().map(|v| v.retained_bytes).sum()
    }

    /// The achieved retention fraction (retained / observed).
    pub fn retention_rate(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.retained_bytes() as f64 / total as f64
        }
    }

    /// Whether the achieved retention fits the configured budget — the
    /// check the storage-constraint experiment (E9) reports.
    pub fn within_budget(&self) -> bool {
        self.retention_rate() <= self.config.retention_budget
    }

    /// Access the classifier (e.g. for label queries).
    pub fn classifier(&self) -> &Classifier {
        &self.classifier
    }

    /// Mirror per-class MVR accounting into `tel` under
    /// `surveil.mvr.<class>.*`, plus overall retained/observed totals and
    /// the retention rate in parts-per-million (integer, deterministic).
    /// Idempotent; classes with no traffic are skipped.
    pub fn export_telemetry(&self, tel: &underradar_telemetry::Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        for (class, v) in self.volumes() {
            if v.packets == 0 {
                continue;
            }
            let p = format!("surveil.mvr.{class}");
            tel.set_counter(&format!("{p}.packets"), v.packets);
            tel.set_counter(&format!("{p}.bytes"), v.bytes);
            tel.set_counter(&format!("{p}.retained_packets"), v.retained_packets);
            tel.set_counter(&format!("{p}.retained_bytes"), v.retained_bytes);
        }
        tel.set_counter("surveil.mvr.total_bytes", self.total_bytes());
        tel.set_counter("surveil.mvr.retained_bytes", self.retained_bytes());
        tel.set_gauge(
            "surveil.mvr.retention_ppm",
            (self.retention_rate() * 1e6).round() as i64,
        );
        tel.set_gauge("surveil.mvr.within_budget", i64::from(self.within_budget()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use underradar_netsim::wire::tcp::TcpFlags;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 9);
    const DST: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

    #[test]
    fn scan_traffic_discarded_web_retained() {
        let mut mvr = Mvr::new(MvrConfig::default());
        // Make the source a scanner.
        let mut scan_decisions = Vec::new();
        for port in 0..30u16 {
            let syn = Packet::tcp(SRC, DST, 44000, 1000 + port, 0, 0, TcpFlags::syn(), vec![]);
            scan_decisions.push(mvr.process(SimTime::ZERO, &syn));
        }
        assert!(
            scan_decisions
                .iter()
                .skip(20)
                .all(|d| matches!(d, MvrDecision::Discard(TrafficClass::Scan))),
            "sticky scanners discarded"
        );
        let web = Packet::tcp(
            Ipv4Addr::new(10, 0, 1, 50),
            DST,
            40000,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"GET /".to_vec(),
        );
        assert!(mvr.process(SimTime::ZERO, &web).retained());
    }

    #[test]
    fn p2p_always_discarded() {
        let mut mvr = Mvr::new(MvrConfig::default());
        let raw = Packet {
            src: SRC,
            dst: DST,
            ttl: 64,
            ident: 0,
            body: underradar_netsim::packet::PacketBody::Raw {
                protocol: 99,
                payload: vec![0; 1400],
            },
        };
        let d = mvr.process(SimTime::ZERO, &raw);
        assert_eq!(d, MvrDecision::Discard(TrafficClass::P2p));
        assert_eq!(d.class(), TrafficClass::P2p);
        assert!(!d.retained());
    }

    #[test]
    fn accounting_sums() {
        let mut mvr = Mvr::new(MvrConfig::default());
        let web = Packet::tcp(SRC, DST, 40000, 80, 0, 0, TcpFlags::psh_ack(), vec![0; 100]);
        let raw = Packet {
            src: SRC,
            dst: DST,
            ttl: 64,
            ident: 0,
            body: underradar_netsim::packet::PacketBody::Raw {
                protocol: 99,
                payload: vec![0; 300],
            },
        };
        mvr.process(SimTime::ZERO, &web);
        mvr.process(SimTime::ZERO, &raw);
        assert_eq!(
            mvr.total_bytes(),
            web.wire_len() as u64 + raw.wire_len() as u64
        );
        assert_eq!(mvr.retained_bytes(), web.wire_len() as u64);
        let rate = mvr.retention_rate();
        assert!(rate > 0.0 && rate < 1.0);
    }

    #[test]
    fn custom_discard_classes() {
        let config = MvrConfig {
            discard_classes: vec![TrafficClass::Web],
            ..MvrConfig::default()
        };
        let mut mvr = Mvr::new(config);
        let web = Packet::tcp(
            SRC,
            DST,
            40000,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"GET".to_vec(),
        );
        assert!(!mvr.process(SimTime::ZERO, &web).retained());
        let dns = Packet::udp(SRC, DST, 5000, 53, b"q".to_vec());
        assert!(mvr.process(SimTime::ZERO, &dns).retained());
    }

    #[test]
    fn empty_mvr_rates() {
        let mvr = Mvr::new(MvrConfig::default());
        assert_eq!(mvr.retention_rate(), 0.0);
        assert!(mvr.within_budget());
        assert_eq!(mvr.total_bytes(), 0);
    }
}
