#![warn(missing_docs)]
// Library paths must surface failures as typed errors or documented
// invariant expects — never bare unwraps (test code is exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # underradar-surveil
//!
//! The surveillance-system model from §2 of the paper: a **user-focused**,
//! storage-constrained, two-stage pipeline, in contrast to the
//! transaction-focused censor.
//!
//! Stage 1 — [`mvr::Mvr`], *Massive Volume Reduction*: traffic classifiers
//! ([`classify`]) sort packets into behavioural classes (scan, spam, DDoS
//! source, P2P, web, ...), and whole classes that "do not stand out from
//! the population" or have no intelligence value are discarded before
//! analysis — the NSA threw away all peer-to-peer traffic and could retain
//! only 7.5 % of what it saw (§2.1). The measurement techniques of §3 are
//! designed to land in exactly the discarded classes.
//!
//! Stage 2 — a signature engine over *retained* traffic feeding an
//! [`analyst::Analyst`]: alerts are stored (1 year, like the campus IDS),
//! flow metadata is stored (30 days / 36 hours), content briefly (3 days),
//! and a capacity-limited analyst attributes and pursues the most
//! suspicious users. Attribution of the measurement client is the "risk"
//! every experiment measures.

pub mod analyst;
pub mod classify;
pub mod exposure;
pub mod mvr;
pub mod store;
pub mod system;

pub use analyst::{Analyst, AnalystConfig, Investigation};
pub use classify::{Classifier, TrafficClass};
pub use exposure::{DeclaredCell, ExposureEventKind, ExposureLedger, HostExposure, SafetyAudit};
pub use mvr::{Mvr, MvrConfig, MvrDecision};
pub use store::{ContentRecord, FlowRecord, RetentionStore};
pub use system::{SurveillanceConfig, SurveillanceNode, SurveillanceSystem};
