//! Adversary-eye exposure accounting.
//!
//! The paper's safety question — *what can the adversary attribute to each
//! participating host?* — answered from the adversary's own observations
//! rather than a method's declared risk constants. An [`ExposureLedger`]
//! accumulates per-`(campaign cell, host)` attributable events: IDS alerts
//! raised on the host's traffic, censor responses the host was shown
//! (injected DNS answers, forged RSTs), censor drops of the host's packets,
//! distinct sensitive flows, and bytes of the host's traffic sitting in
//! retention stores — together with first/last exposure sim-time.
//!
//! Every quantity folds commutatively (counters add, first-times min,
//! last-times max), so a ledger assembled from per-trial exports merges to
//! the same bytes regardless of shard count or worker interleaving — the
//! same obligation [`crate::system::SurveillanceSystem`] telemetry already
//! meets. The transport *is* the telemetry registry: [`ExposureLedger::export`]
//! writes `exposure.<cell>.<host>.<metric>` entries into a per-trial scope,
//! and [`ExposureLedger::from_registry`] reconstructs the campaign-wide
//! ledger from the merged registry, so the ledger rides the existing
//! journal codec and `StreamMerger` unchanged.
//!
//! [`SafetyAudit`] folds a ledger against the campaign's *declared* risk
//! (per-cell evasion counts from the trial verdicts) and reports, per host,
//! an **attributability score**; a cell that declared itself fully evaded
//! while the ledger holds attributable events is surfaced as a divergence
//! finding — the paper's point that declared safety and observed exposure
//! are different measurements.

use std::collections::BTreeMap;

use underradar_telemetry::{Registry, Telemetry};

/// Registry key prefix for exported exposure entries.
pub const EXPOSURE_PREFIX: &str = "exposure.";

/// An adversary-side event attributable to a single client host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExposureEventKind {
    /// An IDS/signature alert raised on the host's traffic.
    Alert,
    /// A censor response injected toward the host (DNS answer, forged RST).
    Injection,
    /// A censor drop of the host's packet (blackhole, port drop, URL block).
    Drop,
}

/// Per-host exposure within one campaign cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostExposure {
    /// IDS alerts attributed to this host.
    pub alerts: u64,
    /// Injected censor responses the host was shown.
    pub injections: u64,
    /// Censor drops of the host's packets.
    pub drops: u64,
    /// Distinct sensitive (alert-bearing) flows from this host.
    pub sensitive_flows: u64,
    /// Bytes of the host's traffic held in adversary retention stores.
    pub retained_bytes: u64,
    /// Earliest attributable event, sim-nanoseconds (None: no timed event).
    pub first_ns: Option<u64>,
    /// Latest attributable event, sim-nanoseconds.
    pub last_ns: Option<u64>,
}

impl HostExposure {
    /// Events that directly name this host in the adversary's records.
    pub fn attributable_events(&self) -> u64 {
        self.alerts + self.injections + self.drops
    }

    /// The attributability score.
    ///
    /// Weights order the event kinds by how directly they identify the
    /// host to an analyst (an alert names the host; an injected response
    /// or drop proves the censor matched its traffic; a sensitive flow is
    /// corroboration). Retained bytes only count once at least one
    /// attributable event exists — passive retention of innocuous cover
    /// traffic alone scores zero:
    ///
    /// ```text
    /// score = 1000·alerts + 400·injections + 400·drops
    ///       + 50·sensitive_flows + [attributable > 0]·retained_bytes/64
    /// ```
    pub fn score(&self) -> u64 {
        let byte_term = if self.attributable_events() > 0 {
            self.retained_bytes / 64
        } else {
            0
        };
        1000 * self.alerts
            + 400 * self.injections
            + 400 * self.drops
            + 50 * self.sensitive_flows
            + byte_term
    }

    /// Fold `other` into `self` (commutative, associative).
    pub fn merge(&mut self, other: &HostExposure) {
        self.alerts += other.alerts;
        self.injections += other.injections;
        self.drops += other.drops;
        self.sensitive_flows += other.sensitive_flows;
        self.retained_bytes += other.retained_bytes;
        self.first_ns = match (self.first_ns, other.first_ns) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_ns = self.last_ns.max(other.last_ns);
    }

    fn is_empty(&self) -> bool {
        *self == HostExposure::default()
    }
}

/// A deterministic per-`(cell, host)` exposure ledger.
///
/// Keys are `(campaign cell, host)` where a cell is conventionally
/// `"<method>/<policy>"` and a host is its dotted IPv4 string. `BTreeMap`
/// keying makes every iteration order — and therefore every rendering —
/// independent of insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExposureLedger {
    hosts: BTreeMap<(String, String), HostExposure>,
}

impl ExposureLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        ExposureLedger::default()
    }

    fn entry(&mut self, cell: &str, host: &str) -> &mut HostExposure {
        self.hosts
            .entry((cell.to_string(), host.to_string()))
            .or_default()
    }

    /// Record one attributable event against `host` in `cell` at `t_ns`.
    pub fn record(&mut self, cell: &str, host: &str, kind: ExposureEventKind, t_ns: u64) {
        let e = self.entry(cell, host);
        match kind {
            ExposureEventKind::Alert => e.alerts += 1,
            ExposureEventKind::Injection => e.injections += 1,
            ExposureEventKind::Drop => e.drops += 1,
        }
        e.first_ns = Some(e.first_ns.map_or(t_ns, |f| f.min(t_ns)));
        e.last_ns = Some(e.last_ns.map_or(t_ns, |l| l.max(t_ns)));
    }

    /// Count `n` distinct sensitive flows for `host` in `cell` (no-op at 0,
    /// so empty entries are never created).
    pub fn add_sensitive_flows(&mut self, cell: &str, host: &str, n: u64) {
        if n > 0 {
            self.entry(cell, host).sensitive_flows += n;
        }
    }

    /// Account `bytes` of `host` traffic held in retention stores (no-op
    /// at 0).
    pub fn add_retained(&mut self, cell: &str, host: &str, bytes: u64) {
        if bytes > 0 {
            self.entry(cell, host).retained_bytes += bytes;
        }
    }

    /// Fold `other` into `self` (commutative, associative).
    pub fn merge(&mut self, other: &ExposureLedger) {
        for (key, e) in &other.hosts {
            self.hosts.entry(key.clone()).or_default().merge(e);
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Iterate `((cell, host), exposure)` in deterministic key order.
    pub fn iter(&self) -> impl Iterator<Item = (&(String, String), &HostExposure)> {
        self.hosts.iter()
    }

    /// Export into a telemetry handle as `exposure.<cell>.<host>.<metric>`
    /// counters (zero values skipped) plus a `t_ns` histogram observing
    /// first and last event times; merged-histogram min/max then recover
    /// the campaign-wide first/last exposure commutatively. Host dots are
    /// encoded as `_` so the host occupies exactly one dotted key segment.
    pub fn export(&self, tel: &Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        for ((cell, host), e) in &self.hosts {
            let base = format!("{EXPOSURE_PREFIX}{cell}.{}", host.replace('.', "_"));
            let counters = [
                ("alerts", e.alerts),
                ("injections", e.injections),
                ("drops", e.drops),
                ("sensitive_flows", e.sensitive_flows),
                ("retained_bytes", e.retained_bytes),
            ];
            for (metric, v) in counters {
                if v > 0 {
                    tel.counter(&format!("{base}.{metric}")).add(v);
                }
            }
            if let (Some(first), Some(last)) = (e.first_ns, e.last_ns) {
                tel.observe(&format!("{base}.t_ns"), first);
                if last != first {
                    tel.observe(&format!("{base}.t_ns"), last);
                }
            }
        }
    }

    /// Reconstruct the campaign-wide ledger from a merged registry.
    ///
    /// Inverse of [`ExposureLedger::export`] up to intra-trial event times
    /// (only per-entry first/last survive the histogram, which is all the
    /// ledger stores anyway). Non-exposure entries are ignored.
    pub fn from_registry(reg: &Registry) -> ExposureLedger {
        fn parse(rest: &str) -> Option<(&str, String, &str)> {
            let mut it = rest.rsplitn(3, '.');
            let metric = it.next()?;
            let host = it.next()?.replace('_', ".");
            let cell = it.next()?;
            Some((cell, host, metric))
        }
        let mut ledger = ExposureLedger::new();
        for (name, &v) in &reg.counters {
            let Some(rest) = name.strip_prefix(EXPOSURE_PREFIX) else {
                continue;
            };
            let Some((cell, host, metric)) = parse(rest) else {
                continue;
            };
            let e = ledger.entry(cell, &host);
            match metric {
                "alerts" => e.alerts += v,
                "injections" => e.injections += v,
                "drops" => e.drops += v,
                "sensitive_flows" => e.sensitive_flows += v,
                "retained_bytes" => e.retained_bytes += v,
                _ => {}
            }
        }
        for (name, h) in &reg.histograms {
            let Some(rest) = name.strip_prefix(EXPOSURE_PREFIX) else {
                continue;
            };
            let Some((cell, host, "t_ns")) = parse(rest) else {
                continue;
            };
            if h.count() == 0 {
                continue;
            }
            let e = ledger.entry(cell, &host);
            e.first_ns = Some(e.first_ns.map_or(h.min(), |f| f.min(h.min())));
            e.last_ns = Some(e.last_ns.map_or(h.max(), |l| l.max(h.max())));
        }
        ledger.hosts.retain(|_, e| !e.is_empty());
        ledger
    }
}

/// The declared outcome of one campaign cell, from trial verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeclaredCell {
    /// Cell key, conventionally `"<method>/<policy>"`.
    pub cell: String,
    /// Trials run in this cell.
    pub trials: u64,
    /// Trials whose `RiskReport` declared the measurement evaded.
    pub evaded: u64,
}

#[derive(Debug, Clone)]
struct AuditCell {
    declared: Option<(u64, u64)>,
    hosts: BTreeMap<String, HostExposure>,
}

impl AuditCell {
    fn attributable_events(&self) -> u64 {
        self.hosts.values().map(|e| e.attributable_events()).sum()
    }

    fn max_score(&self) -> u64 {
        self.hosts.values().map(|e| e.score()).max().unwrap_or(0)
    }

    /// A divergence: the cell's verdicts declared every trial evaded, yet
    /// the adversary's own records hold events attributable to a host.
    fn divergent(&self) -> bool {
        matches!(self.declared, Some((trials, evaded)) if trials > 0 && evaded == trials)
            && self.attributable_events() > 0
    }
}

/// A campaign safety audit: ledger-observed exposure folded against the
/// declared per-cell risk, rendered as deterministic text or sorted-key
/// JSON (byte-identical for equal inputs on every platform).
#[derive(Debug, Clone)]
pub struct SafetyAudit {
    cells: BTreeMap<String, AuditCell>,
}

impl SafetyAudit {
    /// Build an audit from a merged ledger and the declared cell outcomes.
    /// Declared cells with no observed exposure still appear (their silence
    /// is the finding "declared risk confirmed absent"), as do ledger cells
    /// nothing declared.
    pub fn build(ledger: &ExposureLedger, declared: &[DeclaredCell]) -> SafetyAudit {
        let mut cells: BTreeMap<String, AuditCell> = BTreeMap::new();
        for d in declared {
            cells
                .entry(d.cell.clone())
                .or_insert_with(|| AuditCell {
                    declared: None,
                    hosts: BTreeMap::new(),
                })
                .declared = Some((d.trials, d.evaded));
        }
        for ((cell, host), e) in ledger.iter() {
            cells
                .entry(cell.clone())
                .or_insert_with(|| AuditCell {
                    declared: None,
                    hosts: BTreeMap::new(),
                })
                .hosts
                .insert(host.clone(), e.clone());
        }
        SafetyAudit { cells }
    }

    /// Number of cells whose declared outcome diverges from observation.
    pub fn divergent_cells(&self) -> usize {
        self.cells.values().filter(|c| c.divergent()).count()
    }

    /// Number of distinct `(cell, host)` entries with non-zero score.
    pub fn exposed_hosts(&self) -> usize {
        self.cells
            .values()
            .flat_map(|c| c.hosts.values())
            .filter(|e| e.score() > 0)
            .count()
    }

    /// Deterministic text rendering: one summary line, one line per cell,
    /// one indented line per host, divergence findings last.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "safety audit: cells={} exposed_hosts={} divergent_cells={}\n",
            self.cells.len(),
            self.exposed_hosts(),
            self.divergent_cells()
        ));
        for (cell, c) in &self.cells {
            let declared = match c.declared {
                Some((trials, evaded)) => format!("{evaded}/{trials} evaded"),
                None => "undeclared".to_string(),
            };
            out.push_str(&format!(
                "cell {cell}: declared {declared}, hosts={} attributable_events={} max_score={}\n",
                c.hosts.len(),
                c.attributable_events(),
                c.max_score()
            ));
            for (host, e) in &c.hosts {
                out.push_str(&format!(
                    "  host {host}: score={} alerts={} injections={} drops={} \
                     sensitive_flows={} retained_bytes={} first_ns={} last_ns={}\n",
                    e.score(),
                    e.alerts,
                    e.injections,
                    e.drops,
                    e.sensitive_flows,
                    e.retained_bytes,
                    e.first_ns.unwrap_or(0),
                    e.last_ns.unwrap_or(0)
                ));
            }
        }
        for (cell, c) in &self.cells {
            if c.divergent() {
                out.push_str(&format!(
                    "divergence: cell {cell} declared fully evaded but the adversary \
                     holds {} attributable events (max_score={})\n",
                    c.attributable_events(),
                    c.max_score()
                ));
            }
        }
        out
    }

    /// Deterministic sorted-key single-line JSON rendering.
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::with_capacity(4096);
        out.push_str("{\"cells\":{");
        for (i, (cell, c)) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (trials, evaded) = c.declared.unwrap_or((0, 0));
            out.push_str(&format!(
                "\"{}\":{{\"attributable_events\":{},\"declared_evaded\":{},\
                 \"declared_trials\":{},\"divergent\":{},\"hosts\":{{",
                esc(cell),
                c.attributable_events(),
                evaded,
                trials,
                u64::from(c.divergent())
            ));
            for (j, (host, e)) in c.hosts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\"{}\":{{\"alerts\":{},\"drops\":{},\"first_ns\":{},\
                     \"injections\":{},\"last_ns\":{},\"retained_bytes\":{},\
                     \"score\":{},\"sensitive_flows\":{}}}",
                    esc(host),
                    e.alerts,
                    e.drops,
                    e.first_ns.unwrap_or(0),
                    e.injections,
                    e.last_ns.unwrap_or(0),
                    e.retained_bytes,
                    e.score(),
                    e.sensitive_flows
                ));
            }
            out.push_str("}}");
        }
        out.push_str(&format!(
            "}},\"divergent_cells\":{},\"exposed_hosts\":{}}}",
            self.divergent_cells(),
            self.exposed_hosts()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExposureLedger {
        let mut l = ExposureLedger::new();
        l.record("scan/control", "10.0.1.2", ExposureEventKind::Alert, 500);
        l.record("scan/control", "10.0.1.2", ExposureEventKind::Alert, 1500);
        l.record(
            "ddos/keyword-rst",
            "10.0.1.2",
            ExposureEventKind::Injection,
            2_000,
        );
        l.record("scan/ip-blackhole", "10.0.9.9", ExposureEventKind::Drop, 77);
        l.add_sensitive_flows("scan/control", "10.0.1.2", 3);
        l.add_retained("scan/control", "10.0.1.2", 6400);
        l.add_retained("scan/control", "10.0.200.1", 1280);
        l
    }

    #[test]
    fn score_gates_retained_bytes_on_attributable_events() {
        let passive = HostExposure {
            retained_bytes: 1_000_000,
            ..HostExposure::default()
        };
        assert_eq!(passive.score(), 0, "retention alone is not attribution");
        let active = HostExposure {
            drops: 1,
            ..passive.clone()
        };
        assert_eq!(active.score(), 400 + 1_000_000 / 64);
        let alerted = HostExposure {
            alerts: 2,
            sensitive_flows: 3,
            retained_bytes: 128,
            ..HostExposure::default()
        };
        assert_eq!(alerted.score(), 2000 + 150 + 2);
    }

    #[test]
    fn export_round_trips_through_a_registry() {
        let ledger = sample();
        let tel = Telemetry::enabled();
        ledger.export(&tel);
        let back = ExposureLedger::from_registry(&tel.snapshot());
        assert_eq!(back, ledger);
    }

    #[test]
    fn sharded_export_merges_to_the_same_ledger() {
        // Whole ledger exported once vs the same events split across two
        // scopes merged in either order: identical reconstruction.
        let whole = sample();
        let tel_a = Telemetry::enabled();
        let tel_b = Telemetry::enabled();
        let mut part_a = ExposureLedger::new();
        part_a.record("scan/control", "10.0.1.2", ExposureEventKind::Alert, 1500);
        part_a.record("scan/ip-blackhole", "10.0.9.9", ExposureEventKind::Drop, 77);
        part_a.add_retained("scan/control", "10.0.1.2", 6400);
        let mut part_b = ExposureLedger::new();
        part_b.record("scan/control", "10.0.1.2", ExposureEventKind::Alert, 500);
        part_b.record(
            "ddos/keyword-rst",
            "10.0.1.2",
            ExposureEventKind::Injection,
            2_000,
        );
        part_b.add_sensitive_flows("scan/control", "10.0.1.2", 3);
        part_b.add_retained("scan/control", "10.0.200.1", 1280);
        part_a.export(&tel_a);
        part_b.export(&tel_b);
        let mut ab = tel_a.snapshot();
        ab.merge(&tel_b.snapshot());
        let mut ba = tel_b.snapshot();
        ba.merge(&tel_a.snapshot());
        assert_eq!(ExposureLedger::from_registry(&ab), whole);
        assert_eq!(ExposureLedger::from_registry(&ba), whole);
        let mut merged = part_a.clone();
        merged.merge(&part_b);
        assert_eq!(merged, whole, "ledger merge agrees with registry merge");
    }

    #[test]
    fn first_and_last_times_survive_the_histogram() {
        let ledger = sample();
        let tel = Telemetry::enabled();
        ledger.export(&tel);
        let back = ExposureLedger::from_registry(&tel.snapshot());
        let key = ("scan/control".to_string(), "10.0.1.2".to_string());
        let e = &back.hosts[&key];
        assert_eq!(e.first_ns, Some(500));
        assert_eq!(e.last_ns, Some(1500));
    }

    #[test]
    fn audit_surfaces_divergence_and_renders_deterministically() {
        let ledger = sample();
        let declared = vec![
            DeclaredCell {
                cell: "scan/control".to_string(),
                trials: 4,
                evaded: 2,
            },
            DeclaredCell {
                cell: "ddos/keyword-rst".to_string(),
                trials: 4,
                evaded: 4,
            },
            DeclaredCell {
                cell: "web/control".to_string(),
                trials: 4,
                evaded: 4,
            },
        ];
        let audit = SafetyAudit::build(&ledger, &declared);
        // keyword-rst declared fully evaded yet holds an injection;
        // web/control declared fully evaded and the ledger agrees;
        // scan/ip-blackhole was never declared at all.
        assert_eq!(audit.divergent_cells(), 1);
        let text = audit.render_text();
        assert!(
            text.contains("divergence: cell ddos/keyword-rst declared fully evaded"),
            "{text}"
        );
        assert!(text.contains("cell web/control: declared 4/4 evaded, hosts=0"));
        assert!(text.contains("cell scan/ip-blackhole: declared undeclared"));
        let json = audit.render_json();
        assert!(json.contains("\"divergent\":1"), "{json}");
        assert!(json.ends_with(&format!(
            "\"divergent_cells\":1,\"exposed_hosts\":{}}}",
            audit.exposed_hosts()
        )));
        // Renders are pure functions of the audit.
        assert_eq!(text, SafetyAudit::build(&ledger, &declared).render_text());
        assert_eq!(json, SafetyAudit::build(&ledger, &declared).render_json());
    }

    #[test]
    fn zero_count_additions_create_no_entries() {
        let mut l = ExposureLedger::new();
        l.add_sensitive_flows("c", "10.0.0.1", 0);
        l.add_retained("c", "10.0.0.1", 0);
        assert!(l.is_empty());
        let tel = Telemetry::enabled();
        l.export(&tel);
        assert!(ExposureLedger::from_registry(&tel.snapshot()).is_empty());
    }
}
