//! Time-windowed retention stores.
//!
//! §2.1's storage numbers, as configuration: the NSA kept *content* for
//! three days and *connection metadata* for 30; the campus network kept
//! flow records ~36 hours and IDS alerts about a year. [`RetentionStore`]
//! is the common mechanism: an append-only log that evicts records older
//! than its window.

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use underradar_netsim::time::{SimDuration, SimTime};

/// A stored content record (what survives MVR).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentRecord {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Wire length in bytes.
    pub bytes: usize,
    /// A one-line summary of the packet (headers + payload preview).
    pub summary: String,
}

/// A flow-metadata record ("like call-data records in a phone network").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRecord {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Source port (0 if none).
    pub src_port: u16,
    /// Destination port (0 if none).
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
    /// Bytes in this record's direction.
    pub bytes: u64,
    /// Packets in this record's direction.
    pub packets: u64,
}

/// A generic append-only store that evicts records older than `window`.
#[derive(Debug)]
pub struct RetentionStore<T> {
    window: SimDuration,
    records: VecDeque<(SimTime, T)>,
    /// Total records ever inserted (survives eviction).
    inserted: u64,
    /// Total bytes attributed to inserted records (caller-supplied).
    inserted_bytes: u64,
}

impl<T> RetentionStore<T> {
    /// A store keeping records for `window`.
    pub fn new(window: SimDuration) -> RetentionStore<T> {
        RetentionStore {
            window,
            records: VecDeque::new(),
            inserted: 0,
            inserted_bytes: 0,
        }
    }

    /// The retention window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Insert a record at `now`, accounting `bytes` toward volume, then
    /// evict anything that has expired.
    pub fn insert(&mut self, now: SimTime, record: T, bytes: u64) {
        self.inserted += 1;
        self.inserted_bytes += bytes;
        self.records.push_back((now, record));
        self.evict(now);
    }

    /// Drop expired records.
    pub fn evict(&mut self, now: SimTime) {
        while let Some((t, _)) = self.records.front() {
            if now.saturating_since(*t) > self.window {
                self.records.pop_front();
            } else {
                break;
            }
        }
    }

    /// Records currently held (after the last eviction).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate over live records.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, T)> {
        self.records.iter()
    }

    /// Total records ever inserted.
    pub fn total_inserted(&self) -> u64 {
        self.inserted
    }

    /// Total bytes ever inserted.
    pub fn total_bytes(&self) -> u64 {
        self.inserted_bytes
    }
}

/// The standard store set from §2.1.
#[derive(Debug)]
pub struct StoreSet {
    /// Packet content, kept 3 days (NSA figure).
    pub content: RetentionStore<ContentRecord>,
    /// Flow metadata, kept 30 days (NSA figure).
    pub metadata: RetentionStore<FlowRecord>,
    /// Alert summaries, kept 1 year (campus IDS figure). Stored as strings
    /// because alerts already live in the engine's `AlertLog`; this store
    /// models *retention*, not structure.
    pub alerts: RetentionStore<String>,
}

impl StoreSet {
    /// Mirror per-tier retention accounting into `tel` under
    /// `surveil.store.<tier>.*`: records/bytes ever inserted (counters),
    /// live record count and the retention window (gauges). Idempotent.
    pub fn export_telemetry(&self, tel: &underradar_telemetry::Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        let tiers: [(&str, u64, u64, u64, SimDuration); 3] = [
            (
                "content",
                self.content.len() as u64,
                self.content.total_inserted(),
                self.content.total_bytes(),
                self.content.window(),
            ),
            (
                "metadata",
                self.metadata.len() as u64,
                self.metadata.total_inserted(),
                self.metadata.total_bytes(),
                self.metadata.window(),
            ),
            (
                "alerts",
                self.alerts.len() as u64,
                self.alerts.total_inserted(),
                self.alerts.total_bytes(),
                self.alerts.window(),
            ),
        ];
        for (tier, live, inserted, bytes, window) in tiers {
            tel.set_counter(&format!("surveil.store.{tier}.inserted"), inserted);
            tel.set_counter(&format!("surveil.store.{tier}.bytes"), bytes);
            tel.set_gauge(&format!("surveil.store.{tier}.live"), live as i64);
            tel.set_gauge(
                &format!("surveil.store.{tier}.window_ns"),
                window.as_nanos() as i64,
            );
        }
    }

    /// Stores with the paper's windows.
    pub fn paper_defaults() -> StoreSet {
        StoreSet {
            content: RetentionStore::new(SimDuration::from_days(3)),
            metadata: RetentionStore::new(SimDuration::from_days(30)),
            alerts: RetentionStore::new(SimDuration::from_days(365)),
        }
    }

    /// Stores with the campus network's windows (36 h metadata, 1 y
    /// alerts, no full content capture — window zero).
    pub fn campus_defaults() -> StoreSet {
        StoreSet {
            content: RetentionStore::new(SimDuration::ZERO),
            metadata: RetentionStore::new(SimDuration::from_hours(36)),
            alerts: RetentionStore::new(SimDuration::from_days(365)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn eviction_honors_window() {
        let mut store: RetentionStore<u32> = RetentionStore::new(SimDuration::from_secs(100));
        store.insert(t(0), 1, 10);
        store.insert(t(50), 2, 10);
        store.insert(t(100), 3, 10);
        assert_eq!(store.len(), 3);
        store.insert(t(140), 4, 10);
        // Record from t=0 has aged out (140 > 100), t=50 still inside.
        assert_eq!(store.len(), 3);
        assert_eq!(
            store.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        store.evict(t(1000));
        assert!(store.is_empty());
        assert_eq!(store.total_inserted(), 4, "history preserved");
        assert_eq!(store.total_bytes(), 40);
    }

    #[test]
    fn zero_window_keeps_nothing_beyond_the_instant() {
        let mut store: RetentionStore<u32> = RetentionStore::new(SimDuration::ZERO);
        store.insert(t(0), 1, 5);
        assert_eq!(store.len(), 1, "same-instant records live");
        store.evict(t(1));
        assert!(store.is_empty());
    }

    #[test]
    fn paper_defaults_windows() {
        let s = StoreSet::paper_defaults();
        assert_eq!(s.content.window(), SimDuration::from_days(3));
        assert_eq!(s.metadata.window(), SimDuration::from_days(30));
        assert_eq!(s.alerts.window(), SimDuration::from_days(365));
        let c = StoreSet::campus_defaults();
        assert_eq!(c.metadata.window(), SimDuration::from_hours(36));
        assert_eq!(c.content.window(), SimDuration::ZERO);
    }

    #[test]
    fn content_outlives_eviction_of_older_entries() {
        let mut s = StoreSet::paper_defaults();
        let rec = ContentRecord {
            src: Ipv4Addr::new(1, 1, 1, 1),
            dst: Ipv4Addr::new(2, 2, 2, 2),
            bytes: 60,
            summary: "pkt".to_string(),
        };
        s.content.insert(SimTime::ZERO, rec.clone(), 60);
        // 2 days later: still there. 4 days later: gone.
        s.content.evict(SimTime::ZERO + SimDuration::from_days(2));
        assert_eq!(s.content.len(), 1);
        s.content.evict(SimTime::ZERO + SimDuration::from_days(4));
        assert!(s.content.is_empty());
    }
}
