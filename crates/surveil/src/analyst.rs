//! The analyst stage: attribution and pursuit under capacity limits.
//!
//! §2.1: "surveillance systems pass the data to a human analyst ...
//! responses may include sending the police to a user and are typically
//! expensive; thus, false positives are costly". §2.2's Syria analysis
//! makes this concrete: 1.57 % of a population touching censored content
//! is "far too many people for the surveillance system to pursue".
//!
//! The model: alerts are grouped by source, ranked by volume and severity,
//! and only the top `pursuit_capacity` sources can be investigated. A
//! measurement client is *at risk* when it is attributed (appears in the
//! ranking at all) and *burned* when it is pursued (falls within capacity).

use std::collections::HashMap;
use std::net::Ipv4Addr;

use underradar_ids::alert::Alert;

/// Analyst configuration.
#[derive(Debug, Clone, Copy)]
pub struct AnalystConfig {
    /// How many sources the organization can investigate per triage run.
    pub pursuit_capacity: usize,
    /// Sources with fewer alerts than this are not even queued (false
    /// positives are costly).
    pub min_alerts: u64,
}

impl Default for AnalystConfig {
    fn default() -> Self {
        AnalystConfig {
            pursuit_capacity: 10,
            min_alerts: 2,
        }
    }
}

/// One investigated (or investigable) source.
#[derive(Debug, Clone, PartialEq)]
pub struct Investigation {
    /// The attributed source address.
    pub src: Ipv4Addr,
    /// Alerts attributed to it.
    pub alert_count: u64,
    /// Distinct rule sids it triggered (breadth of suspicion).
    pub distinct_sids: u64,
    /// Rank in the triage ordering (0 = most suspicious).
    pub rank: usize,
    /// Whether it fell within pursuit capacity.
    pub pursued: bool,
}

/// The analyst.
#[derive(Debug)]
pub struct Analyst {
    config: AnalystConfig,
}

impl Analyst {
    /// An analyst with the given capacity model.
    pub fn new(config: AnalystConfig) -> Analyst {
        Analyst { config }
    }

    /// Triage a body of alerts: group by source, filter, rank, mark the
    /// top `pursuit_capacity` as pursued. Returns investigations sorted by
    /// rank.
    pub fn triage(&self, alerts: &[Alert]) -> Vec<Investigation> {
        let mut per_src: HashMap<Ipv4Addr, (u64, HashMap<u32, ()>)> = HashMap::new();
        for a in alerts {
            let entry = per_src.entry(a.src).or_default();
            entry.0 += 1;
            entry.1.insert(a.sid, ());
        }
        let mut ranked: Vec<Investigation> = per_src
            .into_iter()
            .filter(|(_, (count, _))| *count >= self.config.min_alerts)
            .map(|(src, (alert_count, sids))| Investigation {
                src,
                alert_count,
                distinct_sids: sids.len() as u64,
                rank: 0,
                pursued: false,
            })
            .collect();
        // Most alerts first; breadth of sids breaks ties; address breaks
        // remaining ties deterministically.
        ranked.sort_by(|a, b| {
            b.alert_count
                .cmp(&a.alert_count)
                .then(b.distinct_sids.cmp(&a.distinct_sids))
                .then(a.src.cmp(&b.src))
        });
        for (i, inv) in ranked.iter_mut().enumerate() {
            inv.rank = i;
            inv.pursued = i < self.config.pursuit_capacity;
        }
        ranked
    }

    /// Whether `src` would be pursued given `alerts` — the risk verdict
    /// experiments ask for.
    pub fn is_pursued(&self, alerts: &[Alert], src: Ipv4Addr) -> bool {
        self.triage(alerts)
            .iter()
            .any(|i| i.src == src && i.pursued)
    }

    /// Whether `src` is attributed at all (queued for possible pursuit).
    pub fn is_attributed(&self, alerts: &[Alert], src: Ipv4Addr) -> bool {
        self.triage(alerts).iter().any(|i| i.src == src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use underradar_ids::rule::RuleAction;
    use underradar_netsim::time::SimTime;

    fn alert(sid: u32, src: [u8; 4]) -> Alert {
        Alert {
            time: SimTime::ZERO,
            sid,
            msg: String::new(),
            action: RuleAction::Alert,
            src: src.into(),
            src_port: None,
            dst: [9, 9, 9, 9].into(),
            dst_port: None,
            classtype: None,
        }
    }

    #[test]
    fn ranks_by_alert_volume() {
        let analyst = Analyst::new(AnalystConfig {
            pursuit_capacity: 1,
            min_alerts: 1,
        });
        let mut alerts = Vec::new();
        for _ in 0..5 {
            alerts.push(alert(1, [1, 1, 1, 1]));
        }
        for _ in 0..2 {
            alerts.push(alert(1, [2, 2, 2, 2]));
        }
        let inv = analyst.triage(&alerts);
        assert_eq!(inv.len(), 2);
        assert_eq!(inv[0].src, Ipv4Addr::new(1, 1, 1, 1));
        assert!(inv[0].pursued);
        assert!(!inv[1].pursued, "capacity of 1 spares the second source");
    }

    #[test]
    fn min_alerts_filters_noise() {
        let analyst = Analyst::new(AnalystConfig {
            pursuit_capacity: 10,
            min_alerts: 3,
        });
        let alerts = vec![
            alert(1, [1, 1, 1, 1]),
            alert(1, [1, 1, 1, 1]),
            alert(2, [2, 2, 2, 2]),
        ];
        let inv = analyst.triage(&alerts);
        assert!(inv.is_empty(), "nobody reached 3 alerts");
        assert!(!analyst.is_attributed(&alerts, [1, 1, 1, 1].into()));
    }

    #[test]
    fn distinct_sids_break_ties() {
        let analyst = Analyst::new(AnalystConfig {
            pursuit_capacity: 1,
            min_alerts: 1,
        });
        let alerts = vec![
            alert(1, [1, 1, 1, 1]),
            alert(1, [1, 1, 1, 1]),
            alert(1, [2, 2, 2, 2]),
            alert(7, [2, 2, 2, 2]),
        ];
        let inv = analyst.triage(&alerts);
        assert_eq!(
            inv[0].src,
            Ipv4Addr::new(2, 2, 2, 2),
            "2 sids beats 1 sid at equal count"
        );
    }

    #[test]
    fn capacity_overflow_spares_the_tail() {
        // The Syria argument: when too many users trip alerts, most cannot
        // be pursued.
        let analyst = Analyst::new(AnalystConfig {
            pursuit_capacity: 5,
            min_alerts: 1,
        });
        let mut alerts = Vec::new();
        for i in 0..100u8 {
            alerts.push(alert(1, [10, 0, 0, i]));
            alerts.push(alert(1, [10, 0, 0, i]));
        }
        let inv = analyst.triage(&alerts);
        assert_eq!(inv.len(), 100);
        assert_eq!(inv.iter().filter(|i| i.pursued).count(), 5);
        let pursued_fraction = 5.0 / 100.0;
        assert!(pursued_fraction < 0.1, "the long tail escapes");
    }

    #[test]
    fn pursuit_and_attribution_queries() {
        let analyst = Analyst::new(AnalystConfig {
            pursuit_capacity: 1,
            min_alerts: 2,
        });
        let alerts = vec![
            alert(1, [1, 1, 1, 1]),
            alert(2, [1, 1, 1, 1]),
            alert(1, [2, 2, 2, 2]),
            alert(1, [2, 2, 2, 2]),
            alert(1, [2, 2, 2, 2]),
        ];
        assert!(analyst.is_pursued(&alerts, [2, 2, 2, 2].into()));
        assert!(analyst.is_attributed(&alerts, [1, 1, 1, 1].into()));
        assert!(!analyst.is_pursued(&alerts, [1, 1, 1, 1].into()));
        assert!(!analyst.is_attributed(&alerts, [3, 3, 3, 3].into()));
    }
}
