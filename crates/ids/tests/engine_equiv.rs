//! Old-vs-new engine equivalence: the rebuilt hot path (dense-DFA
//! prefilter, proto/port rule groups, epoch-stamped candidate set,
//! dedup-before-evaluation, seen-retirement) must produce *byte-identical*
//! alert output to the pre-rebuild engine.
//!
//! The oracle here is a [`ReferenceEngine`] that replicates the old
//! engine's observable semantics with no shortlisting at all: every pass
//! rule is evaluated against every packet, every alert rule is a candidate
//! for every packet, and per-flow dedup runs *after* `rule_matches` — the
//! literal pre-rebuild behaviour. (The old prefilter only ever removed
//! rules that provably could not match, so the naive engine and the old
//! engine emit the same alerts; any divergence between the naive engine
//! and the new one is therefore a real behaviour change.)
//!
//! Random rulesets mix alert/pass, flow constraints, nocase and
//! case-sensitive contents, negated contents, dsize, thresholds, port
//! shapes and bidirectional headers; random schedules mix handshakes,
//! in-order and reordered segments, duplicates, RST teardowns with flow
//! reuse, UDP and ICMP traffic.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use underradar_ids::alert::Alert;
use underradar_ids::engine::DetectionEngine;
use underradar_ids::rule::{
    ContentMatch, FlowOption, PortSpec, Proto, Rule, RuleAction, ThresholdKind, ThresholdOption,
};
use underradar_ids::stream::{Direction, FlowContext, StreamReassembler};
use underradar_netsim::packet::Packet;
use underradar_netsim::testprop::{cases, Gen};
use underradar_netsim::time::{SimDuration, SimTime};
use underradar_netsim::wire::icmp::IcmpKind;
use underradar_netsim::wire::tcp::TcpFlags;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
const CLIENT2: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 9);
const SERVER: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

/// The pre-rebuild engine, naively: no prefilter, no grouping, dedup after
/// evaluation. Shares `rule_matches` semantics by re-deriving them from
/// the public rule predicates.
struct ReferenceEngine {
    rules: Vec<Rule>,
    reassembler: StreamReassembler,
    thresholds: HashMap<(u32, Ipv4Addr), (SimTime, u32)>,
    flow_alerted: HashMap<underradar_ids::stream::FlowKey, Vec<u32>>,
    passed: u64,
}

impl ReferenceEngine {
    fn new(rules: Vec<Rule>) -> ReferenceEngine {
        let mut reassembler = StreamReassembler::new();
        reassembler.track_removals(true);
        ReferenceEngine {
            rules,
            reassembler,
            thresholds: HashMap::new(),
            flow_alerted: HashMap::new(),
            passed: 0,
        }
    }

    fn rule_matches(
        rule: &Rule,
        packet: &Packet,
        flow: Option<&FlowContext>,
        stream: &[u8],
    ) -> bool {
        if !rule.header_matches(packet) || !rule.flags_match(packet) {
            return false;
        }
        if !rule.flow.is_empty() {
            let Some(ctx) = flow else { return false };
            for f in &rule.flow {
                let ok = match f {
                    FlowOption::Established => ctx.established,
                    FlowOption::ToServer => ctx.direction == Direction::ToServer,
                    FlowOption::ToClient => ctx.direction == Direction::ToClient,
                };
                if !ok {
                    return false;
                }
            }
            return rule.payload_matches(stream);
        }
        rule.payload_matches(packet.body.payload())
    }

    fn process(&mut self, now: SimTime, packet: &Packet) -> Vec<Alert> {
        let flow_ctx = self.reassembler.process(packet);
        for (key, _id) in self.reassembler.take_removed() {
            self.flow_alerted.remove(&key);
        }
        let stream: &[u8] = match &flow_ctx {
            Some(ctx) => self.reassembler.stream_of(&ctx.key, ctx.direction),
            None => &[],
        };
        // Pass rules: every one, every packet (the old cost model).
        for rule in self.rules.iter().filter(|r| r.action == RuleAction::Pass) {
            if Self::rule_matches(rule, packet, flow_ctx.as_ref(), stream) {
                self.passed += 1;
                return Vec::new();
            }
        }
        let mut fired = Vec::new();
        for rule in self.rules.iter().filter(|r| r.action != RuleAction::Pass) {
            if !Self::rule_matches(rule, packet, flow_ctx.as_ref(), stream) {
                continue;
            }
            // Old ordering: dedup checked only after a successful match.
            // One deliberate divergence from the literal pre-rebuild code:
            // an alert with no live flow behind it (the teardown segment
            // itself, or an RST on an untracked 4-tuple) records no dedup
            // entry. The old engine pushed the sid under the dead flow's
            // key, leaking a suppression onto the *next* flow reusing that
            // 4-tuple — contradicting its own fresh-flow invariant. The
            // generational flow table fixes this by construction, so the
            // oracle models the fixed semantics.
            if !rule.flow.is_empty() {
                if let Some(ctx) = &flow_ctx {
                    let sids = self.flow_alerted.entry(ctx.key).or_default();
                    if sids.contains(&rule.sid) {
                        continue;
                    }
                    if ctx.id.is_some() && !ctx.torn_down {
                        sids.push(rule.sid);
                    }
                }
            }
            if let Some(t) = rule.threshold {
                let track = if t.track_by_src {
                    packet.src
                } else {
                    packet.dst
                };
                let state = self.thresholds.entry((rule.sid, track)).or_insert((now, 0));
                if now.saturating_since(state.0) > SimDuration::from_secs(u64::from(t.seconds)) {
                    *state = (now, 0);
                }
                state.1 += 1;
                let fire = match t.kind {
                    ThresholdKind::Limit => state.1 <= t.count,
                    ThresholdKind::Threshold => t.count > 0 && state.1.is_multiple_of(t.count),
                    ThresholdKind::Both => state.1 == t.count,
                };
                if !fire {
                    continue;
                }
            }
            fired.push(Alert {
                time: now,
                sid: rule.sid,
                msg: rule.msg.clone(),
                action: rule.action,
                src: packet.src,
                src_port: packet.src_port(),
                dst: packet.dst,
                dst_port: packet.dst_port(),
                classtype: rule.classtype.clone(),
            });
        }
        fired
    }
}

const PATTERNS: &[&str] = &["falun", "Falun", "tibet", "FAL", "prox", "et", "GET "];
const FRAGMENTS: &[&str] = &[
    "falun", "FALUN", "fal", "un", "tibet", "TIB", "et ", "proxy", " x ", "GET /", "Falun",
];

fn arb_content(g: &mut Gen, negated_ok: bool) -> ContentMatch {
    let pat = g.choose(PATTERNS).as_bytes().to_vec();
    ContentMatch {
        pattern: pat,
        nocase: g.bool(),
        offset: if g.u8().is_multiple_of(5) {
            g.usize_in(0, 4)
        } else {
            0
        },
        depth: if g.u8().is_multiple_of(6) {
            g.usize_in(4, 30)
        } else {
            0
        },
        negated: negated_ok && g.u8().is_multiple_of(4),
    }
}

fn arb_rule(g: &mut Gen, i: usize) -> Rule {
    let proto = *g.choose(&[
        Proto::Tcp,
        Proto::Tcp,
        Proto::Tcp,
        Proto::Udp,
        Proto::Icmp,
        Proto::Ip,
    ]);
    let mut rule = Rule::alert(proto, 0, &format!("r{i}"));
    // Occasional duplicate sid exercises sid-keyed dedup and thresholds.
    rule.sid = if g.u8().is_multiple_of(8) && i > 0 {
        100 + (i as u32 - 1)
    } else {
        100 + i as u32
    };
    if g.u8().is_multiple_of(5) {
        rule.action = RuleAction::Pass;
    }
    rule.dst_port = match g.u8() % 5 {
        0 => PortSpec::One(80),
        1 => PortSpec::Any,
        2 => PortSpec::Range(50, 100),
        3 => PortSpec::List(vec![80, 53]),
        _ => PortSpec::Not(Box::new(PortSpec::One(53))),
    };
    if g.u8().is_multiple_of(6) {
        rule.src_port = PortSpec::Range(1000, 5000);
    }
    rule.bidirectional = g.u8().is_multiple_of(6);
    let ncontents = g.usize_in(0, 3);
    for c in 0..ncontents {
        rule.contents.push(arb_content(g, c > 0));
    }
    if proto == Proto::Tcp && g.bool() {
        let mut flow = Vec::new();
        if g.bool() {
            flow.push(FlowOption::Established);
        }
        if g.bool() {
            flow.push(*g.choose(&[FlowOption::ToServer, FlowOption::ToClient]));
        }
        rule.flow = flow;
    }
    if g.u8().is_multiple_of(5) {
        rule.threshold = Some(ThresholdOption {
            kind: *g.choose(&[
                ThresholdKind::Limit,
                ThresholdKind::Threshold,
                ThresholdKind::Both,
            ]),
            track_by_src: g.bool(),
            count: g.u32_in(1, 4),
            seconds: 60,
        });
    }
    if g.u8().is_multiple_of(7) {
        rule.dsize = Some((g.usize_in(0, 4), if g.bool() { 0 } else { 40 }));
    }
    rule
}

fn arb_payload(g: &mut Gen) -> Vec<u8> {
    let mut p = Vec::new();
    for _ in 0..g.usize_in(1, 4) {
        p.extend_from_slice(g.choose(FRAGMENTS).as_bytes());
    }
    p
}

/// One TCP flow's scripted packets (handshake plus data), with seqs laid
/// out so segments can be emitted in order, reordered, or duplicated.
struct FlowScript {
    packets: Vec<Packet>,
}

fn arb_flow_script(g: &mut Gen, client: Ipv4Addr, cport: u16) -> FlowScript {
    let mut packets = Vec::new();
    let with_handshake = !g.u8().is_multiple_of(4);
    if with_handshake {
        packets.push(Packet::tcp(
            client,
            SERVER,
            cport,
            80,
            100,
            0,
            TcpFlags::syn(),
            vec![],
        ));
        packets.push(Packet::tcp(
            SERVER,
            client,
            80,
            cport,
            500,
            101,
            TcpFlags::syn_ack(),
            vec![],
        ));
        packets.push(Packet::tcp(
            client,
            SERVER,
            cport,
            80,
            101,
            501,
            TcpFlags::ack(),
            vec![],
        ));
    }
    let mut seq = 101u32;
    for _ in 0..g.usize_in(2, 7) {
        let payload = arb_payload(g);
        let next = seq.wrapping_add(payload.len() as u32);
        packets.push(Packet::tcp(
            client,
            SERVER,
            cport,
            80,
            seq,
            501,
            TcpFlags::psh_ack(),
            payload,
        ));
        seq = next;
    }
    FlowScript { packets }
}

/// Emit the scripts as one interleaved schedule with adversarial twists:
/// adjacent-segment reorders (within hold-back reach), duplicates, RSTs
/// mid-flow, and cross-traffic (UDP/ICMP) — timestamps non-decreasing.
fn arb_schedule(g: &mut Gen) -> Vec<(SimTime, Packet)> {
    let mut scripts = vec![
        arb_flow_script(g, CLIENT, 4000),
        arb_flow_script(g, CLIENT2, 4001),
    ];
    // Occasionally reorder a pair of adjacent data segments.
    for s in &mut scripts {
        if s.packets.len() >= 5 && g.u8().is_multiple_of(3) {
            let i = g.usize_in(3, s.packets.len() - 1);
            s.packets.swap(i, i - 1);
        }
    }
    let mut cursors = vec![0usize; scripts.len()];
    let mut out = Vec::new();
    let mut now = SimTime::ZERO;
    let mut last: Option<Packet> = None;
    loop {
        let open: Vec<usize> = (0..scripts.len())
            .filter(|&i| cursors[i] < scripts[i].packets.len())
            .collect();
        if open.is_empty() {
            break;
        }
        if g.u8().is_multiple_of(4) {
            now += SimDuration::from_secs(u64::from(g.u8() % 40));
        }
        match g.u8() % 12 {
            0 => out.push((now, Packet::udp(CLIENT, SERVER, 5353, 53, arb_payload(g)))),
            1 => out.push((
                now,
                Packet::icmp(
                    CLIENT,
                    SERVER,
                    IcmpKind::EchoRequest { ident: 1, seq: 1 },
                    vec![],
                ),
            )),
            2 => {
                // Duplicate the last emitted packet.
                if let Some(p) = &last {
                    out.push((now, p.clone()));
                }
            }
            3 => {
                // RST the flow mid-script: teardown plus possible reuse.
                let i = *g.choose(&open);
                let cport = 4000 + i as u16;
                let client = if i == 0 { CLIENT } else { CLIENT2 };
                out.push((
                    now,
                    Packet::tcp(client, SERVER, cport, 80, 400, 501, TcpFlags::rst(), vec![]),
                ));
            }
            _ => {
                let i = *g.choose(&open);
                let pkt = scripts[i].packets[cursors[i]].clone();
                cursors[i] += 1;
                last = Some(pkt.clone());
                out.push((now, pkt));
            }
        }
    }
    out
}

/// The rebuilt engine emits byte-identical alerts (and identical pass
/// suppression) to the naive old-semantics reference on random rulesets
/// and adversarial schedules.
#[test]
fn new_engine_matches_old_semantics_byte_for_byte() {
    cases(64, 0xE9_01, |g| {
        let nrules = g.usize_in(3, 14);
        let rules: Vec<Rule> = (0..nrules).map(|i| arb_rule(g, i)).collect();
        let schedule = arb_schedule(g);

        let mut reference = ReferenceEngine::new(rules.clone());
        let mut engine = DetectionEngine::new(rules);
        let mut ref_lines = Vec::new();
        let mut new_lines = Vec::new();
        for (now, pkt) in &schedule {
            for a in reference.process(*now, pkt) {
                ref_lines.push(a.to_string());
            }
            for a in engine.process(*now, pkt) {
                new_lines.push(a.to_string());
            }
        }
        assert_eq!(
            new_lines.join("\n"),
            ref_lines.join("\n"),
            "alert output diverged from old-engine semantics"
        );
        assert_eq!(
            engine.stats().passed,
            reference.passed,
            "pass suppression diverged"
        );
        // The engine's own log carries the same alerts it returned.
        assert_eq!(engine.log().len(), new_lines.len());
    });
}

/// Same equivalence on the quadratic-regression shape: one long flow whose
/// keyword appears in every one of 300 segments. Also bounds the new
/// engine's evaluation count — the old engine re-verified the whole
/// growing window per segment; the new one must stop after the alert.
#[test]
fn long_flow_equivalence_and_bounded_evaluations() {
    let mk_rules = || {
        let mut r = Rule::alert(Proto::Tcp, 7, "kw");
        r.contents.push(ContentMatch::plain(b"falun"));
        r.flow = vec![FlowOption::Established, FlowOption::ToServer];
        vec![r]
    };
    let mut reference = ReferenceEngine::new(mk_rules());
    let mut engine = DetectionEngine::new(mk_rules());
    let t0 = SimTime::ZERO;
    let send = |pkt: &Packet, reference: &mut ReferenceEngine, engine: &mut DetectionEngine| {
        let a = reference.process(t0, pkt);
        let b = engine.process(t0, pkt);
        assert_eq!(
            a.iter().map(|x| x.to_string()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_string()).collect::<Vec<_>>()
        );
        b.len()
    };
    let syn = Packet::tcp(CLIENT, SERVER, 4000, 80, 100, 0, TcpFlags::syn(), vec![]);
    let syn_ack = Packet::tcp(
        SERVER,
        CLIENT,
        80,
        4000,
        500,
        101,
        TcpFlags::syn_ack(),
        vec![],
    );
    let ack = Packet::tcp(CLIENT, SERVER, 4000, 80, 101, 501, TcpFlags::ack(), vec![]);
    send(&syn, &mut reference, &mut engine);
    send(&syn_ack, &mut reference, &mut engine);
    send(&ack, &mut reference, &mut engine);
    let mut fired = 0;
    let mut seq = 101u32;
    let mut evals_at_alert = None;
    for _ in 0..300 {
        let payload = b"falun filler".to_vec();
        let next = seq.wrapping_add(payload.len() as u32);
        let d = Packet::tcp(
            CLIENT,
            SERVER,
            4000,
            80,
            seq,
            501,
            TcpFlags::psh_ack(),
            payload,
        );
        seq = next;
        fired += send(&d, &mut reference, &mut engine);
        if fired > 0 && evals_at_alert.is_none() {
            evals_at_alert = Some(engine.stats().evaluations);
        }
    }
    assert_eq!(fired, 1, "per-flow dedup held on both engines");
    assert_eq!(
        engine.stats().evaluations,
        evals_at_alert.expect("alert fired"),
        "no further evaluations after the alert — quadratic path is gone"
    );
}
