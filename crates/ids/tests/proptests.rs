//! Property tests for the IDS: Aho–Corasick against a naive oracle,
//! content-modifier semantics, parser totality, threshold accounting, and
//! reassembly invariants.

use proptest::prelude::*;
use std::net::Ipv4Addr;

use underradar_ids::aho::{find_sub, AhoCorasick};
use underradar_ids::engine::DetectionEngine;
use underradar_ids::parser::{parse_rule, VarTable};
use underradar_ids::rule::ContentMatch;
use underradar_ids::stream::StreamReassembler;
use underradar_netsim::packet::Packet;
use underradar_netsim::time::SimTime;
use underradar_netsim::wire::tcp::TcpFlags;

fn arb_pattern() -> impl Strategy<Value = (Vec<u8>, bool)> {
    (proptest::collection::vec(any::<u8>(), 1..8), any::<bool>())
}

proptest! {
    /// AC agrees with the naive oracle on which patterns occur.
    #[test]
    fn aho_matches_naive_oracle(
        patterns in proptest::collection::vec(arb_pattern(), 1..12),
        haystack in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let ac = AhoCorasick::new(&patterns);
        let got = ac.matching_patterns(&haystack);
        for (i, (pat, nocase)) in patterns.iter().enumerate() {
            let expected = find_sub(&haystack, pat, *nocase, 0).is_some();
            prop_assert_eq!(got.contains(&i), expected, "pattern {} = {:?}", i, pat);
        }
    }

    /// find_sub with `from` equals searching the suffix.
    #[test]
    fn find_sub_offset_consistency(
        haystack in proptest::collection::vec(any::<u8>(), 0..120),
        needle in proptest::collection::vec(any::<u8>(), 1..6),
        from in 0usize..140,
    ) {
        let direct = find_sub(&haystack, &needle, false, from);
        let suffix = if from <= haystack.len() {
            find_sub(&haystack[from..], &needle, false, 0).map(|p| p + from)
        } else {
            None
        };
        prop_assert_eq!(direct, suffix);
    }

    /// ContentMatch window semantics: a match found with offset/depth is
    /// always inside the declared window.
    #[test]
    fn content_window_respected(
        payload in proptest::collection::vec(any::<u8>(), 0..100),
        needle in proptest::collection::vec(any::<u8>(), 1..4),
        offset in 0usize..110,
        depth in 0usize..110,
    ) {
        let c = ContentMatch { pattern: needle.clone(), nocase: false, offset, depth, negated: false };
        if c.matches(&payload) {
            let end = if depth == 0 { payload.len() } else { (offset + depth).min(payload.len()) };
            let window = payload.get(offset..end).unwrap_or(&[]);
            prop_assert!(find_sub(window, &needle, false, 0).is_some());
        }
    }

    /// Negation is an exact complement.
    #[test]
    fn negated_content_is_complement(
        payload in proptest::collection::vec(any::<u8>(), 0..60),
        needle in proptest::collection::vec(any::<u8>(), 1..4),
    ) {
        let plain = ContentMatch::plain(&needle);
        let negated = ContentMatch { negated: true, ..ContentMatch::plain(&needle) };
        prop_assert_ne!(plain.matches(&payload), negated.matches(&payload));
    }

    /// The rule parser is total over arbitrary printable lines.
    #[test]
    fn parser_never_panics(line in "[ -~]{0,120}") {
        let _ = parse_rule(&line, &VarTable::new());
    }

    /// Engine thresholds: a `limit N` rule alerts at most N times per
    /// window per source, for any event count.
    #[test]
    fn threshold_limit_bound(events in 1usize..60, count in 1u32..10) {
        let rules = underradar_ids::parser::parse_ruleset(
            &format!(
                "alert icmp any any -> any any (msg:\"t\"; threshold: type limit, track by_src, count {count}, seconds 600; sid:1;)"
            ),
            &VarTable::new(),
        ).expect("rule parses");
        let mut engine = DetectionEngine::new(rules);
        let a = Ipv4Addr::new(1, 1, 1, 1);
        let b = Ipv4Addr::new(2, 2, 2, 2);
        let mut fired = 0usize;
        for i in 0..events {
            let pkt = Packet::icmp(
                a,
                b,
                underradar_netsim::wire::icmp::IcmpKind::EchoRequest { ident: 0, seq: i as u16 },
                vec![],
            );
            fired += engine.process(SimTime::from_nanos(i as u64), &pkt).len();
        }
        prop_assert_eq!(fired, events.min(count as usize));
    }

    /// Reassembly: feeding a stream in order always yields the full
    /// concatenation in the flow context (within the buffer cap).
    #[test]
    fn reassembly_accumulates_in_order(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..50), 1..10)) {
        let c = Ipv4Addr::new(10, 0, 0, 1);
        let s = Ipv4Addr::new(10, 0, 0, 2);
        let mut r = StreamReassembler::new();
        let mut expected = Vec::new();
        let mut seq = 1000u32;
        let mut last_stream = Vec::new();
        for chunk in &chunks {
            let pkt = Packet::tcp(c, s, 4000, 80, seq, 0, TcpFlags::psh_ack(), chunk.clone());
            let ctx = r.process(&pkt).expect("tcp");
            prop_assert!(ctx.appended);
            expected.extend_from_slice(chunk);
            seq = seq.wrapping_add(chunk.len() as u32);
            last_stream = ctx.stream;
        }
        prop_assert_eq!(last_stream, expected);
    }

    /// Random segments never panic the reassembler, and flow count stays
    /// bounded by the number of distinct four-tuples.
    #[test]
    fn reassembler_total_and_bounded(segs in proptest::collection::vec(
        (any::<u16>(), any::<u32>(), 0u8..64, proptest::collection::vec(any::<u8>(), 0..20)),
        0..60,
    )) {
        let c = Ipv4Addr::new(10, 0, 0, 1);
        let s = Ipv4Addr::new(10, 0, 0, 2);
        let mut r = StreamReassembler::new();
        let mut tuples = std::collections::HashSet::new();
        for (sport, seq, flags, payload) in segs {
            let sport = 1 + (sport % 8); // few distinct flows
            tuples.insert(sport);
            let pkt = Packet::tcp(c, s, sport, 80, seq, 0, TcpFlags(flags), payload);
            let _ = r.process(&pkt);
        }
        prop_assert!(r.flow_count() <= tuples.len());
    }
}
