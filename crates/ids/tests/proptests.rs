//! Property tests for the IDS: Aho–Corasick against a naive oracle,
//! streaming-cursor equivalence, content-modifier semantics, parser
//! totality, threshold accounting, and reassembly invariants. Inputs come
//! from the in-tree seeded generator ([`underradar_netsim::testprop`]).

use std::net::Ipv4Addr;

use underradar_ids::aho::{find_sub, AcStreamState, AhoCorasick};
use underradar_ids::engine::DetectionEngine;
use underradar_ids::parser::{parse_rule, VarTable};
use underradar_ids::rule::ContentMatch;
use underradar_ids::stream::{Direction, FlowKey, StreamReassembler};
use underradar_netsim::packet::Packet;
use underradar_netsim::testprop::{cases, Gen};
use underradar_netsim::time::SimTime;
use underradar_netsim::wire::tcp::TcpFlags;

fn arb_pattern(g: &mut Gen) -> (Vec<u8>, bool) {
    (g.bytes(1, 8), g.bool())
}

/// AC agrees with the naive oracle on which patterns occur.
#[test]
fn aho_matches_naive_oracle() {
    cases(256, 0xD001, |g| {
        let n = g.usize_in(1, 12);
        let patterns: Vec<(Vec<u8>, bool)> = (0..n).map(|_| arb_pattern(g)).collect();
        let haystack = g.bytes(0, 200);
        let ac = AhoCorasick::new(&patterns);
        let got = ac.matching_patterns(&haystack);
        for (i, (pat, nocase)) in patterns.iter().enumerate() {
            let expected = find_sub(&haystack, pat, *nocase, 0).is_some();
            assert_eq!(got.contains(&i), expected, "pattern {} = {:?}", i, pat);
        }
    });
}

/// Streaming feed over arbitrary chunking reports exactly the patterns a
/// one-shot scan of the concatenation reports.
#[test]
fn aho_feed_equals_one_shot_scan() {
    cases(256, 0xD002, |g| {
        let n = g.usize_in(1, 10);
        let patterns: Vec<(Vec<u8>, bool)> = (0..n).map(|_| arb_pattern(g)).collect();
        let ac = AhoCorasick::new(&patterns);
        let stream = g.bytes(0, 300);
        // Random chunk boundaries.
        let mut state = AcStreamState::default();
        let mut streamed = std::collections::BTreeSet::new();
        let mut pos = 0usize;
        while pos < stream.len() {
            let take = g.usize_in(1, 40).min(stream.len() - pos);
            ac.feed(&mut state, &stream[pos..pos + take], |p| {
                streamed.insert(p);
            });
            pos += take;
        }
        let oneshot: std::collections::BTreeSet<usize> =
            ac.matching_patterns(&stream).into_iter().collect();
        assert_eq!(streamed, oneshot);
    });
}

/// find_sub with `from` equals searching the suffix.
#[test]
fn find_sub_offset_consistency() {
    cases(256, 0xD003, |g| {
        let haystack = g.bytes(0, 120);
        let needle = g.bytes(1, 6);
        let from = g.usize_in(0, 140);
        let direct = find_sub(&haystack, &needle, false, from);
        let suffix = if from <= haystack.len() {
            find_sub(&haystack[from..], &needle, false, 0).map(|p| p + from)
        } else {
            None
        };
        assert_eq!(direct, suffix);
    });
}

/// ContentMatch window semantics: a match found with offset/depth is
/// always inside the declared window.
#[test]
fn content_window_respected() {
    cases(256, 0xD004, |g| {
        let payload = g.bytes(0, 100);
        let needle = g.bytes(1, 4);
        let offset = g.usize_in(0, 110);
        let depth = g.usize_in(0, 110);
        let c = ContentMatch {
            pattern: needle.clone(),
            nocase: false,
            offset,
            depth,
            negated: false,
        };
        if c.matches(&payload) {
            let end = if depth == 0 {
                payload.len()
            } else {
                (offset + depth).min(payload.len())
            };
            let window = payload.get(offset..end).unwrap_or(&[]);
            assert!(find_sub(window, &needle, false, 0).is_some());
        }
    });
}

/// Negation is an exact complement.
#[test]
fn negated_content_is_complement() {
    cases(256, 0xD005, |g| {
        let payload = g.bytes(0, 60);
        let needle = g.bytes(1, 4);
        let plain = ContentMatch::plain(&needle);
        let negated = ContentMatch {
            negated: true,
            ..ContentMatch::plain(&needle)
        };
        assert_ne!(plain.matches(&payload), negated.matches(&payload));
    });
}

/// The rule parser is total over arbitrary printable lines.
#[test]
fn parser_never_panics() {
    cases(512, 0xD006, |g| {
        let line = g.printable(0, 120);
        let _ = parse_rule(&line, &VarTable::new());
    });
}

/// Engine thresholds: a `limit N` rule alerts at most N times per window
/// per source, for any event count.
#[test]
fn threshold_limit_bound() {
    cases(48, 0xD007, |g| {
        let events = g.usize_in(1, 60);
        let count = g.u32_in(1, 10);
        let rules = underradar_ids::parser::parse_ruleset(
            &format!(
                "alert icmp any any -> any any (msg:\"t\"; threshold: type limit, track by_src, count {count}, seconds 600; sid:1;)"
            ),
            &VarTable::new(),
        ).expect("rule parses");
        let mut engine = DetectionEngine::new(rules);
        let a = Ipv4Addr::new(1, 1, 1, 1);
        let b = Ipv4Addr::new(2, 2, 2, 2);
        let mut fired = 0usize;
        for i in 0..events {
            let pkt = Packet::icmp(
                a,
                b,
                underradar_netsim::wire::icmp::IcmpKind::EchoRequest {
                    ident: 0,
                    seq: i as u16,
                },
                vec![],
            );
            fired += engine.process(SimTime::from_nanos(i as u64), &pkt).len();
        }
        assert_eq!(fired, events.min(count as usize));
    });
}

/// Reassembly: feeding a stream in order always yields the full
/// concatenation in the buffered window (within the buffer cap).
#[test]
fn reassembly_accumulates_in_order() {
    cases(128, 0xD008, |g| {
        let c = Ipv4Addr::new(10, 0, 0, 1);
        let s = Ipv4Addr::new(10, 0, 0, 2);
        let n_chunks = g.usize_in(1, 10);
        let chunks: Vec<Vec<u8>> = (0..n_chunks).map(|_| g.bytes(1, 50)).collect();
        let mut r = StreamReassembler::new();
        let mut expected = Vec::new();
        let mut seq = 1000u32;
        let mut key = None;
        for chunk in &chunks {
            let pkt = Packet::tcp(c, s, 4000, 80, seq, 0, TcpFlags::psh_ack(), chunk.clone());
            let ctx = r.process(&pkt).expect("tcp");
            assert!(ctx.appended);
            assert_eq!(ctx.new_bytes, chunk.len());
            expected.extend_from_slice(chunk);
            seq = seq.wrapping_add(chunk.len() as u32);
            key = Some((ctx.key, ctx.direction));
        }
        let (key, dir) = key.expect("at least one chunk");
        assert_eq!(r.stream_of(&key, dir), &expected[..]);
    });
}

/// Random segments never panic the reassembler; flow count stays bounded
/// by the number of distinct four-tuples; and the eviction-order
/// bookkeeping always matches the live flow table exactly (the seed leaked
/// an order entry per flow ever created).
#[test]
fn reassembler_total_and_bounded() {
    cases(192, 0xD009, |g| {
        let c = Ipv4Addr::new(10, 0, 0, 1);
        let s = Ipv4Addr::new(10, 0, 0, 2);
        let mut r = StreamReassembler::new();
        let mut tuples = std::collections::HashSet::new();
        let n = g.usize_in(0, 60);
        for _ in 0..n {
            let sport = 1 + (g.u16() % 8); // few distinct flows
            let seq = g.u32();
            let flags = g.u8_in(0, 64);
            let payload = g.bytes(0, 20);
            tuples.insert(sport);
            let pkt = Packet::tcp(c, s, sport, 80, seq, 0, TcpFlags(flags), payload);
            let ctx = r.process(&pkt);
            // Occasionally tear a flow down explicitly, like the engine may.
            if let Some(ctx) = ctx {
                if g.usize_in(0, 8) == 0 {
                    r.remove(&ctx.key);
                }
            }
            assert_eq!(r.order_len(), r.flow_count());
        }
        assert!(r.flow_count() <= tuples.len());
    });
}

/// `stream_of` on an unknown flow is empty, and direction views are
/// independent.
#[test]
fn stream_of_unknown_flow_is_empty() {
    let r = StreamReassembler::new();
    let key = FlowKey {
        lo: (Ipv4Addr::new(1, 1, 1, 1), 1),
        hi: (Ipv4Addr::new(2, 2, 2, 2), 2),
    };
    assert!(r.stream_of(&key, Direction::ToServer).is_empty());
    assert!(r.stream_of(&key, Direction::ToClient).is_empty());
}
