//! Monitor ≡ endpoint property: a monitor tapping the wire *next to the
//! endpoint* must reconstruct exactly the bytes the endpoint's
//! application received, for any in-bound channel impairment schedule —
//! bounded reordering (adjacent swaps, well inside the monitor's
//! hold-back budget), duplication, and loss repaired by the real stack's
//! RTO/fast-retransmit machinery.
//!
//! This is the complement of E13: that experiment seeds the attacks that
//! *must* diverge (TTL-limited copies, conflicting overlaps, TCB
//! desync); this property pins the attack-free half of the matrix — the
//! monitor/endpoint pair never diverges merely because the channel was
//! unkind. The endpoint is the real simulator TCP stack ([`TcpConn`],
//! both sides), so retransmitted segments genuinely overlap bytes the
//! monitor already holds, and the property checks those overlaps resolve
//! identically at both vantage points.

use std::net::Ipv4Addr;

use underradar_ids::stream::{Direction, FlowKey, StreamReassembler};
use underradar_netsim::testprop::{cases, Gen};
use underradar_netsim::time::{SimDuration, SimTime};
use underradar_netsim::{Packet, TcpConn, TcpEvent};

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
const SERVER: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);
const SPORT: u16 = 40123;
const DPORT: u16 = 80;

/// Wire direction of an in-flight packet.
#[derive(Clone, Copy, PartialEq)]
enum Dest {
    ToServer,
    ToClient,
}

/// One in-flight packet: delivery time, FIFO tiebreak, destination.
struct InFlight {
    at: SimTime,
    order: u64,
    dest: Dest,
    pkt: Packet,
}

struct Wire {
    queue: Vec<InFlight>,
    order: u64,
    /// Impairment budget: total c2s drops this run (bounded so the
    /// stack's retry limit can never be exhausted).
    drops_left: u32,
}

impl Wire {
    fn new(drops_left: u32) -> Wire {
        Wire {
            queue: Vec::new(),
            order: 0,
            drops_left,
        }
    }

    /// Enqueue a client→server packet through the impaired channel.
    fn send_c2s(&mut self, g: &mut Gen, now: SimTime, pkt: Packet) {
        if self.drops_left > 0 && g.u8() < 32 {
            self.drops_left -= 1;
            return;
        }
        if g.u8() < 24 {
            self.push(now, Dest::ToServer, pkt.clone());
        }
        self.push(now, Dest::ToServer, pkt);
    }

    /// Enqueue a server→client packet (the ACK channel is clean — the
    /// property is about the data path the monitor taps).
    fn send_s2c(&mut self, now: SimTime, pkt: Packet) {
        self.push(now, Dest::ToClient, pkt);
    }

    fn push(&mut self, now: SimTime, dest: Dest, pkt: Packet) {
        self.queue.push(InFlight {
            at: now + SimDuration::from_millis(10),
            order: self.order,
            dest,
            pkt,
        });
        self.order += 1;
    }

    /// Swap some adjacent c2s deliveries: displacement of one segment at
    /// a time keeps held-back bytes under one MSS, far inside the
    /// monitor's out-of-order budget.
    fn reorder(&mut self, g: &mut Gen) {
        self.queue.sort_by_key(|f| (f.at, f.order));
        let mut i = 0;
        while i + 1 < self.queue.len() {
            if self.queue[i].dest == Dest::ToServer
                && self.queue[i + 1].dest == Dest::ToServer
                && g.u8() < 48
            {
                let t = self.queue[i].at;
                self.queue[i].at = self.queue[i + 1].at;
                self.queue[i + 1].at = t;
                let o = self.queue[i].order;
                self.queue[i].order = self.queue[i + 1].order;
                self.queue[i + 1].order = o;
                self.queue.swap(i, i + 1);
                i += 2;
            } else {
                i += 1;
            }
        }
    }

    fn pop(&mut self) -> Option<InFlight> {
        if self.queue.is_empty() {
            return None;
        }
        let best = self
            .queue
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| (f.at, f.order))
            .map(|(i, _)| i)
            .expect("non-empty");
        Some(self.queue.remove(best))
    }
}

/// Drive one full connection through the impaired wire and return
/// (monitor stream, endpoint stream, bytes the client queued).
fn run_connection(g: &mut Gen) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let payload = g.bytes(1, 4000);
    let iss = g.u32();
    let mut now = SimTime::ZERO;
    let mut wire = Wire::new(3);

    let mut monitor = StreamReassembler::new();
    let mut key: Option<FlowKey> = None;

    let (mut client, syn) = TcpConn::connect((CLIENT, SPORT), (SERVER, DPORT), iss, now);
    let mut server: Option<TcpConn> = None;
    let mut endpoint_stream: Vec<u8> = Vec::new();
    let mut sent = false;

    wire.send_c2s(g, now, syn);
    let mut steps = 0u32;
    loop {
        steps += 1;
        assert!(steps < 10_000, "driver failed to converge");
        if g.u8() < 64 {
            wire.reorder(g);
        }
        let Some(flight) = wire.pop() else {
            // Wire idle: if the client still has unacknowledged or
            // untransmitted data, fire its retransmission timer.
            if client.has_unacked() && !client.is_closed() {
                now += client.rto();
                let (pkts, events) = client.on_rto(now);
                if events.iter().any(|e| matches!(e, TcpEvent::TimedOut)) {
                    break;
                }
                for p in pkts {
                    wire.send_c2s(g, now, p);
                }
                continue;
            }
            break;
        };
        if flight.at > now {
            now = flight.at;
        }
        // The tap sits on the endpoint's access link: it sees exactly the
        // packets the endpoint sees, in the same order, both directions.
        monitor.set_now(now.as_nanos());
        if let Some(ctx) = monitor.process(&flight.pkt) {
            if ctx.direction == Direction::ToServer {
                key = Some(ctx.key);
            }
        }
        match flight.dest {
            Dest::ToServer => {
                let seg = flight.pkt.as_tcp().expect("driver only sends tcp");
                let conn = match server.as_mut() {
                    Some(conn) => conn,
                    None => {
                        let (conn, syn_ack) = TcpConn::accept(
                            (SERVER, DPORT),
                            (CLIENT, SPORT),
                            seg.seq,
                            g.u32(),
                            now,
                        );
                        wire.send_s2c(now, syn_ack);
                        server = Some(conn);
                        continue;
                    }
                };
                let (replies, events) = conn.on_segment(seg, now);
                for ev in events {
                    if let TcpEvent::Data(d) = ev {
                        endpoint_stream.extend_from_slice(&d);
                    }
                }
                for p in replies {
                    wire.send_s2c(now, p);
                }
            }
            Dest::ToClient => {
                let seg = flight.pkt.as_tcp().expect("driver only sends tcp");
                let (replies, events) = client.on_segment(seg, now);
                for p in replies {
                    wire.send_c2s(g, now, p);
                }
                let connected = events.iter().any(|e| matches!(e, TcpEvent::Connected));
                if connected && !sent {
                    sent = true;
                    for p in client.send(&payload, now) {
                        wire.send_c2s(g, now, p);
                    }
                }
            }
        }
    }

    let monitor_stream = key
        .map(|k| monitor.stream_of(&k, Direction::ToServer).to_vec())
        .unwrap_or_default();
    assert_eq!(
        monitor.stats().ooo_dropped,
        0,
        "impairments stayed in bound"
    );
    (monitor_stream, endpoint_stream, payload)
}

/// Under bounded loss/reorder/duplication, the monitor's reassembled
/// client→server stream is byte-identical to the bytes the endpoint
/// delivered to its application — and those are the bytes the client
/// queued (the channel impairments were fully repaired).
#[test]
fn monitor_stream_equals_endpoint_stream_under_impairments() {
    cases(120, 0xE9D0_71B5, |g| {
        let (monitor, endpoint, payload) = run_connection(g);
        assert_eq!(
            endpoint, payload,
            "endpoint received exactly what the client sent"
        );
        assert_eq!(
            monitor, endpoint,
            "monitor reconstruction diverged from the endpoint"
        );
    });
}
