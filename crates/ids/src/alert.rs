//! Alerts and the alert log.

use std::fmt;
use std::net::Ipv4Addr;

use underradar_netsim::time::SimTime;

use crate::rule::RuleAction;

/// One rule firing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// When the rule fired.
    pub time: SimTime,
    /// Rule id.
    pub sid: u32,
    /// Rule message.
    pub msg: String,
    /// Rule action.
    pub action: RuleAction,
    /// Packet source address.
    pub src: Ipv4Addr,
    /// Packet source port, if any.
    pub src_port: Option<u16>,
    /// Packet destination address.
    pub dst: Ipv4Addr,
    /// Packet destination port, if any.
    pub dst_port: Option<u16>,
    /// Rule classtype, if declared.
    pub classtype: Option<String>,
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] sid={} \"{}\" {}:{} -> {}:{}",
            self.time,
            self.sid,
            self.msg,
            self.src,
            self.src_port.map_or("-".to_string(), |p| p.to_string()),
            self.dst,
            self.dst_port.map_or("-".to_string(), |p| p.to_string()),
        )
    }
}

/// An append-only alert log with query helpers.
#[derive(Debug, Default)]
pub struct AlertLog {
    alerts: Vec<Alert>,
}

impl AlertLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an alert.
    pub fn push(&mut self, alert: Alert) {
        self.alerts.push(alert);
    }

    /// All alerts, in time order.
    pub fn all(&self) -> &[Alert] {
        &self.alerts
    }

    /// Number of alerts.
    pub fn len(&self) -> usize {
        self.alerts.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.alerts.is_empty()
    }

    /// Alerts for one rule.
    pub fn by_sid(&self, sid: u32) -> impl Iterator<Item = &Alert> {
        self.alerts.iter().filter(move |a| a.sid == sid)
    }

    /// Alerts attributable to one source address — the surveillance
    /// system's user-attribution query.
    pub fn by_src(&self, src: Ipv4Addr) -> impl Iterator<Item = &Alert> {
        self.alerts.iter().filter(move |a| a.src == src)
    }

    /// Distinct source addresses appearing in the log.
    pub fn distinct_sources(&self) -> Vec<Ipv4Addr> {
        let mut srcs: Vec<Ipv4Addr> = self.alerts.iter().map(|a| a.src).collect();
        srcs.sort();
        srcs.dedup();
        srcs
    }

    /// Drop all alerts.
    pub fn clear(&mut self) {
        self.alerts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(sid: u32, src: [u8; 4]) -> Alert {
        Alert {
            time: SimTime::ZERO,
            sid,
            msg: format!("rule {sid}"),
            action: RuleAction::Alert,
            src: src.into(),
            src_port: Some(1234),
            dst: [10, 0, 0, 1].into(),
            dst_port: Some(80),
            classtype: None,
        }
    }

    #[test]
    fn queries() {
        let mut log = AlertLog::new();
        log.push(alert(1, [1, 1, 1, 1]));
        log.push(alert(2, [1, 1, 1, 1]));
        log.push(alert(1, [2, 2, 2, 2]));
        assert_eq!(log.len(), 3);
        assert_eq!(log.by_sid(1).count(), 2);
        assert_eq!(log.by_src([1, 1, 1, 1].into()).count(), 2);
        assert_eq!(log.distinct_sources().len(), 2);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn display_includes_ids() {
        let a = alert(42, [9, 9, 9, 9]);
        let s = a.to_string();
        assert!(s.contains("sid=42"));
        assert!(s.contains("9.9.9.9:1234"));
    }
}
