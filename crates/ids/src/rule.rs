//! The rule model: what a parsed Snort-dialect rule looks like and how its
//! header predicates evaluate against a packet.

use std::fmt;
use std::net::Ipv4Addr;

use underradar_netsim::addr::Cidr;
use underradar_netsim::packet::{Packet, PacketBody};

/// What the IDS does when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleAction {
    /// Raise an alert (and, for an inline censor, trigger its response).
    Alert,
    /// Log without alerting.
    Log,
    /// Explicitly ignore matching traffic.
    Pass,
    /// Drop (inline deployments).
    Drop,
    /// Drop and answer with RST/ICMP (inline deployments).
    Reject,
}

impl fmt::Display for RuleAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleAction::Alert => "alert",
            RuleAction::Log => "log",
            RuleAction::Pass => "pass",
            RuleAction::Drop => "drop",
            RuleAction::Reject => "reject",
        };
        f.write_str(s)
    }
}

/// Protocol selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// TCP only.
    Tcp,
    /// UDP only.
    Udp,
    /// ICMP only.
    Icmp,
    /// Any IP packet.
    Ip,
}

impl Proto {
    /// Whether `packet` is of this protocol.
    pub fn matches(self, packet: &Packet) -> bool {
        matches!(
            (self, &packet.body),
            (Proto::Ip, _)
                | (Proto::Tcp, PacketBody::Tcp(_))
                | (Proto::Udp, PacketBody::Udp(_))
                | (Proto::Icmp, PacketBody::Icmp(_))
        )
    }
}

/// An address predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrSpec {
    /// Matches every address.
    Any,
    /// Matches addresses inside the prefix.
    Net(Cidr),
    /// Matches addresses in any of the prefixes.
    List(Vec<Cidr>),
    /// Negation.
    Not(Box<AddrSpec>),
}

impl AddrSpec {
    /// Evaluate against an address.
    pub fn matches(&self, addr: Ipv4Addr) -> bool {
        match self {
            AddrSpec::Any => true,
            AddrSpec::Net(c) => c.contains(addr),
            AddrSpec::List(cs) => cs.iter().any(|c| c.contains(addr)),
            AddrSpec::Not(inner) => !inner.matches(addr),
        }
    }
}

/// A port predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortSpec {
    /// Matches every port (and packets without ports, for ip/icmp rules).
    Any,
    /// A single port.
    One(u16),
    /// An inclusive range.
    Range(u16, u16),
    /// Any of a list.
    List(Vec<u16>),
    /// Negation.
    Not(Box<PortSpec>),
}

impl PortSpec {
    /// Evaluate against a port (`None` = the packet has no port).
    pub fn matches(&self, port: Option<u16>) -> bool {
        match (self, port) {
            (PortSpec::Any, _) => true,
            (PortSpec::Not(inner), _) => !inner.matches(port),
            (_, None) => false,
            (PortSpec::One(x), Some(p)) => p == *x,
            (PortSpec::Range(lo, hi), Some(p)) => p >= *lo && p <= *hi,
            (PortSpec::List(xs), Some(p)) => xs.contains(&p),
        }
    }
}

/// A `content` option with its modifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentMatch {
    /// Bytes to find.
    pub pattern: Vec<u8>,
    /// Case-insensitive matching.
    pub nocase: bool,
    /// Start searching at this payload offset.
    pub offset: usize,
    /// Search only the first `depth` bytes from `offset` (0 = unlimited).
    pub depth: usize,
    /// Negated content (`content:!"..."`): rule matches only if absent.
    pub negated: bool,
}

impl ContentMatch {
    /// Plain case-sensitive content.
    pub fn plain(pattern: &[u8]) -> ContentMatch {
        ContentMatch {
            pattern: pattern.to_vec(),
            nocase: false,
            offset: 0,
            depth: 0,
            negated: false,
        }
    }

    /// Evaluate against a payload.
    pub fn matches(&self, payload: &[u8]) -> bool {
        let window_end = if self.depth == 0 {
            payload.len()
        } else {
            (self.offset + self.depth).min(payload.len())
        };
        let window = payload.get(self.offset..window_end).unwrap_or(&[]);
        let found = crate::aho::find_sub(window, &self.pattern, self.nocase, 0).is_some();
        found != self.negated
    }
}

/// `flow` option values the engine honors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowOption {
    /// Only match inside an established TCP connection.
    Established,
    /// Match client-to-server direction (port-based heuristic).
    ToServer,
    /// Match server-to-client direction.
    ToClient,
}

/// `threshold` option kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdKind {
    /// Alert at most `count` times per window.
    Limit,
    /// Alert only once `count` events accumulate in the window.
    Threshold,
    /// Alert on the `count`-th event then at most once per window.
    Both,
}

/// A `threshold` option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdOption {
    /// The kind of rate control.
    pub kind: ThresholdKind,
    /// Track state per source (true) or per destination (false).
    pub track_by_src: bool,
    /// Event count parameter.
    pub count: u32,
    /// Window length in seconds.
    pub seconds: u32,
}

/// TCP flags predicate: all bits in `set` must be set; bits in `clear`
/// must not be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlagsSpec {
    /// Bits required set.
    pub set: u8,
    /// Bits required clear.
    pub clear: u8,
}

/// A complete rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Action on match.
    pub action: RuleAction,
    /// Protocol selector.
    pub proto: Proto,
    /// Source address predicate.
    pub src: AddrSpec,
    /// Source port predicate.
    pub src_port: PortSpec,
    /// Destination address predicate.
    pub dst: AddrSpec,
    /// Destination port predicate.
    pub dst_port: PortSpec,
    /// Bidirectional (`<>`) rather than directional (`->`).
    pub bidirectional: bool,
    /// Human-readable message.
    pub msg: String,
    /// Rule id.
    pub sid: u32,
    /// Content matches (all must hold, in order of appearance).
    pub contents: Vec<ContentMatch>,
    /// TCP flags requirement.
    pub flags: Option<FlagsSpec>,
    /// Payload size constraint `(min, max)`; `max == 0` means unbounded.
    pub dsize: Option<(usize, usize)>,
    /// Flow constraints.
    pub flow: Vec<FlowOption>,
    /// Rate limiting.
    pub threshold: Option<ThresholdOption>,
    /// Free-form classification tag.
    pub classtype: Option<String>,
}

impl Rule {
    /// A minimal alert rule skeleton (used by tests and builders).
    pub fn alert(proto: Proto, sid: u32, msg: &str) -> Rule {
        Rule {
            action: RuleAction::Alert,
            proto,
            src: AddrSpec::Any,
            src_port: PortSpec::Any,
            dst: AddrSpec::Any,
            dst_port: PortSpec::Any,
            bidirectional: false,
            msg: msg.to_string(),
            sid,
            contents: Vec::new(),
            flags: None,
            dsize: None,
            flow: Vec::new(),
            threshold: None,
            classtype: None,
        }
    }

    /// Whether the rule's header (proto/addr/port/direction) matches.
    pub fn header_matches(&self, packet: &Packet) -> bool {
        if !self.proto.matches(packet) {
            return false;
        }
        let forward = self.src.matches(packet.src)
            && self.dst.matches(packet.dst)
            && self.src_port.matches(packet.src_port())
            && self.dst_port.matches(packet.dst_port());
        if forward {
            return true;
        }
        if self.bidirectional {
            return self.src.matches(packet.dst)
                && self.dst.matches(packet.src)
                && self.src_port.matches(packet.dst_port())
                && self.dst_port.matches(packet.src_port());
        }
        false
    }

    /// Whether the rule's payload-level options match `payload` (content,
    /// dsize). Flags are checked separately since they need the TCP header.
    pub fn payload_matches(&self, payload: &[u8]) -> bool {
        if let Some((min, max)) = self.dsize {
            if payload.len() < min {
                return false;
            }
            if max != 0 && payload.len() > max {
                return false;
            }
        }
        self.contents.iter().all(|c| c.matches(payload))
    }

    /// Whether the TCP flags requirement matches.
    pub fn flags_match(&self, packet: &Packet) -> bool {
        match (self.flags, packet.as_tcp()) {
            (None, _) => true,
            (Some(spec), Some(tcp)) => {
                tcp.flags.0 & spec.set == spec.set && tcp.flags.0 & spec.clear == 0
            }
            (Some(_), None) => false,
        }
    }

    /// The first positive content (the "fast pattern" used for
    /// prefiltering), if any.
    pub fn fast_pattern(&self) -> Option<&ContentMatch> {
        self.contents
            .iter()
            .find(|c| !c.negated && !c.pattern.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use underradar_netsim::wire::tcp::TcpFlags;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 5);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 2, 6);

    fn tcp_pkt(payload: &[u8]) -> Packet {
        Packet::tcp(A, B, 4000, 80, 0, 0, TcpFlags::psh_ack(), payload.to_vec())
    }

    #[test]
    fn addr_spec_matching() {
        let spec = AddrSpec::Net(Cidr::slash24(A));
        assert!(spec.matches(A));
        assert!(!spec.matches(B));
        let not = AddrSpec::Not(Box::new(spec));
        assert!(!not.matches(A));
        assert!(not.matches(B));
        let list = AddrSpec::List(vec![Cidr::host(A), Cidr::host(B)]);
        assert!(list.matches(A) && list.matches(B));
        assert!(!list.matches(Ipv4Addr::new(1, 2, 3, 4)));
    }

    #[test]
    fn port_spec_matching() {
        assert!(PortSpec::Any.matches(Some(80)));
        assert!(PortSpec::Any.matches(None));
        assert!(PortSpec::One(80).matches(Some(80)));
        assert!(!PortSpec::One(80).matches(Some(81)));
        assert!(!PortSpec::One(80).matches(None));
        assert!(PortSpec::Range(1, 1024).matches(Some(25)));
        assert!(!PortSpec::Range(1, 1024).matches(Some(2000)));
        assert!(PortSpec::List(vec![25, 80, 443]).matches(Some(443)));
        let not = PortSpec::Not(Box::new(PortSpec::One(80)));
        assert!(!not.matches(Some(80)));
        assert!(not.matches(Some(81)));
        assert!(not.matches(None));
    }

    #[test]
    fn content_modifiers() {
        let payload = b"HEADER falun gong BODY";
        let mut c = ContentMatch::plain(b"falun");
        assert!(c.matches(payload));
        c.nocase = true;
        assert!(c.matches(b"FALUN"));
        // Offset past the match position.
        let c = ContentMatch {
            offset: 10,
            ..ContentMatch::plain(b"falun")
        };
        assert!(!c.matches(payload));
        // Depth window too small.
        let c = ContentMatch {
            offset: 0,
            depth: 5,
            ..ContentMatch::plain(b"falun")
        };
        assert!(!c.matches(payload));
        let c = ContentMatch {
            offset: 7,
            depth: 5,
            ..ContentMatch::plain(b"falun")
        };
        assert!(c.matches(payload));
        // Negated.
        let c = ContentMatch {
            negated: true,
            ..ContentMatch::plain(b"tibet")
        };
        assert!(c.matches(payload));
        let c = ContentMatch {
            negated: true,
            ..ContentMatch::plain(b"falun")
        };
        assert!(!c.matches(payload));
    }

    #[test]
    fn header_match_direction() {
        let mut rule = Rule::alert(Proto::Tcp, 1, "t");
        rule.src = AddrSpec::Net(Cidr::slash24(A));
        rule.dst_port = PortSpec::One(80);
        let pkt = tcp_pkt(b"x");
        assert!(rule.header_matches(&pkt));
        // Reverse direction fails without <>.
        let mut rev = pkt.clone();
        std::mem::swap(&mut rev.src, &mut rev.dst);
        if let PacketBody::Tcp(t) = &mut rev.body {
            std::mem::swap(&mut t.src_port, &mut t.dst_port);
        }
        assert!(!rule.header_matches(&rev));
        rule.bidirectional = true;
        assert!(rule.header_matches(&rev));
    }

    #[test]
    fn flags_and_dsize() {
        let mut rule = Rule::alert(Proto::Tcp, 2, "syn only");
        rule.flags = Some(FlagsSpec {
            set: TcpFlags::SYN,
            clear: TcpFlags::ACK,
        });
        let syn = Packet::tcp(A, B, 1, 2, 0, 0, TcpFlags::syn(), vec![]);
        let syn_ack = Packet::tcp(A, B, 1, 2, 0, 0, TcpFlags::syn_ack(), vec![]);
        assert!(rule.flags_match(&syn));
        assert!(!rule.flags_match(&syn_ack));
        let udp = Packet::udp(A, B, 1, 2, vec![]);
        assert!(!rule.flags_match(&udp), "flags on non-TCP never match");

        let mut rule = Rule::alert(Proto::Tcp, 3, "big");
        rule.dsize = Some((10, 0));
        assert!(!rule.payload_matches(b"short"));
        assert!(rule.payload_matches(b"long enough payload"));
        rule.dsize = Some((0, 4));
        assert!(rule.payload_matches(b"ok"));
        assert!(!rule.payload_matches(b"too long"));
    }

    #[test]
    fn fast_pattern_skips_negated() {
        let mut rule = Rule::alert(Proto::Tcp, 4, "t");
        rule.contents = vec![
            ContentMatch {
                negated: true,
                ..ContentMatch::plain(b"absent")
            },
            ContentMatch::plain(b"present"),
        ];
        assert_eq!(
            rule.fast_pattern().map(|c| c.pattern.as_slice()),
            Some(&b"present"[..])
        );
        rule.contents.truncate(1);
        assert!(rule.fast_pattern().is_none());
    }

    #[test]
    fn proto_selector() {
        let tcp = tcp_pkt(b"");
        let udp = Packet::udp(A, B, 1, 2, vec![]);
        assert!(Proto::Tcp.matches(&tcp));
        assert!(!Proto::Tcp.matches(&udp));
        assert!(Proto::Ip.matches(&tcp) && Proto::Ip.matches(&udp));
    }
}
