//! Aho–Corasick multi-pattern string matching, implemented from scratch.
//!
//! A *fast pattern matcher*: one automaton over the distinguishing
//! content of every rule lets a single pass over a payload shortlist the
//! rules worth full evaluation, which is how Snort scales to large
//! subscription rulesets.
//!
//! Supports per-pattern case-insensitivity by folding input bytes during the
//! scan for insensitive patterns (two automata: sensitive and folded).
//!
//! This module is the **reference implementation** (plus the
//! [`find_sub`] substring helper used by rule verification). The
//! detection engine's and tap censor's hot paths run
//! [`crate::dfa::PrefilterDfa`] instead — the same automaton flattened
//! into a dense byte-classed DFA with a blocked skip loop, roughly an
//! order of magnitude faster (see `DESIGN.md` §12); its oracle tests
//! check it against the naive semantics this module also embodies.

use std::collections::VecDeque;

/// A single automaton (the public type composes two of these).
#[derive(Debug, Default)]
struct Automaton {
    /// goto function: per state, 256-way transition table index.
    goto_fn: Vec<[u32; 256]>,
    /// fail links.
    fail: Vec<u32>,
    /// Pattern ids terminating at each state (including via suffix links).
    output: Vec<Vec<u32>>,
    patterns: usize,
}

const NONE: u32 = u32::MAX;

impl Automaton {
    fn build(patterns: &[Vec<u8>]) -> Automaton {
        let mut a = Automaton {
            goto_fn: vec![[NONE; 256]],
            fail: vec![0],
            output: vec![Vec::new()],
            patterns: patterns.len(),
        };
        // Phase 1: trie.
        for (id, pat) in patterns.iter().enumerate() {
            let mut state = 0usize;
            for &b in pat {
                let next = a.goto_fn[state][b as usize];
                state = if next == NONE {
                    let new_state = a.goto_fn.len() as u32;
                    a.goto_fn[state][b as usize] = new_state;
                    a.goto_fn.push([NONE; 256]);
                    a.fail.push(0);
                    a.output.push(Vec::new());
                    new_state as usize
                } else {
                    next as usize
                };
            }
            a.output[state].push(id as u32);
        }
        // Phase 2: BFS fail links; convert to a complete goto function.
        let mut queue = VecDeque::new();
        for b in 0..256 {
            let s = a.goto_fn[0][b];
            if s == NONE {
                a.goto_fn[0][b] = 0;
            } else {
                a.fail[s as usize] = 0;
                queue.push_back(s);
            }
        }
        while let Some(state) = queue.pop_front() {
            let state = state as usize;
            for b in 0..256 {
                let next = a.goto_fn[state][b];
                if next == NONE {
                    a.goto_fn[state][b] = a.goto_fn[a.fail[state] as usize][b];
                } else {
                    let f = a.goto_fn[a.fail[state] as usize][b];
                    a.fail[next as usize] = f;
                    let inherited = a.output[f as usize].clone();
                    a.output[next as usize].extend(inherited);
                    queue.push_back(next);
                }
            }
        }
        a
    }

    /// Scan `haystack`, invoking `hit(pattern_id, end_offset)` per match.
    fn scan<F: FnMut(u32, usize)>(&self, haystack: &[u8], fold: bool, hit: F) {
        let mut state = 0u32;
        self.advance(&mut state, haystack, fold, hit);
    }

    /// Advance a persistent cursor over `chunk`, invoking
    /// `hit(pattern_id, end_offset)` per match ending within the chunk.
    /// Offsets are chunk-relative.
    fn advance<F: FnMut(u32, usize)>(
        &self,
        cursor: &mut u32,
        chunk: &[u8],
        fold: bool,
        mut hit: F,
    ) {
        if self.patterns == 0 {
            return;
        }
        let mut state = *cursor as usize;
        for (i, &byte) in chunk.iter().enumerate() {
            let b = if fold {
                byte.to_ascii_lowercase()
            } else {
                byte
            };
            state = self.goto_fn[state][b as usize] as usize;
            for &id in &self.output[state] {
                hit(id, i + 1);
            }
        }
        *cursor = state as u32;
    }
}

/// Persistent matcher position for one byte stream: carries the automaton
/// cursors across chunk boundaries so a stream can be matched incrementally
/// — each byte is examined exactly once, and patterns that straddle chunk
/// (TCP segment) boundaries are still found. `Default` is the stream start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AcStreamState {
    sensitive: u32,
    insensitive: u32,
}

/// A multi-pattern matcher with per-pattern case sensitivity.
#[derive(Debug)]
pub struct AhoCorasick {
    sensitive: Automaton,
    /// Patterns stored lowercase; input is folded during the scan.
    insensitive: Automaton,
    /// Maps (automaton, local id) back to the caller's pattern index.
    sensitive_ids: Vec<usize>,
    insensitive_ids: Vec<usize>,
    pattern_count: usize,
}

/// A single match: which pattern, and the byte offset just past its end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Index of the pattern (in construction order).
    pub pattern: usize,
    /// Offset one past the last matched byte.
    pub end: usize,
}

impl AhoCorasick {
    /// Build a matcher from `(pattern, case_insensitive)` pairs. Empty
    /// patterns never match.
    pub fn new(patterns: &[(Vec<u8>, bool)]) -> AhoCorasick {
        let mut sens = Vec::new();
        let mut sens_ids = Vec::new();
        let mut insens = Vec::new();
        let mut insens_ids = Vec::new();
        for (idx, (pat, nocase)) in patterns.iter().enumerate() {
            if pat.is_empty() {
                continue;
            }
            if *nocase {
                insens.push(pat.to_ascii_lowercase());
                insens_ids.push(idx);
            } else {
                sens.push(pat.clone());
                sens_ids.push(idx);
            }
        }
        AhoCorasick {
            sensitive: Automaton::build(&sens),
            insensitive: Automaton::build(&insens),
            sensitive_ids: sens_ids,
            insensitive_ids: insens_ids,
            pattern_count: patterns.len(),
        }
    }

    /// Number of patterns the matcher was built from.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// All matches in `haystack`, in end-offset order per automaton.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        self.sensitive.scan(haystack, false, |id, end| {
            out.push(Match {
                pattern: self.sensitive_ids[id as usize],
                end,
            });
        });
        self.insensitive.scan(haystack, true, |id, end| {
            out.push(Match {
                pattern: self.insensitive_ids[id as usize],
                end,
            });
        });
        out.sort_by_key(|m| (m.end, m.pattern));
        out
    }

    /// The set of distinct patterns occurring in `haystack` (the prefilter
    /// query: "which rules could possibly fire?").
    pub fn matching_patterns(&self, haystack: &[u8]) -> Vec<usize> {
        let mut seen = vec![false; self.pattern_count];
        self.sensitive.scan(haystack, false, |id, _| {
            seen[self.sensitive_ids[id as usize]] = true;
        });
        self.insensitive.scan(haystack, true, |id, _| {
            seen[self.insensitive_ids[id as usize]] = true;
        });
        seen.iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i))
            .collect()
    }

    /// Whether any pattern occurs in `haystack` (early-exit possible but the
    /// scan is already linear; kept simple).
    pub fn any_match(&self, haystack: &[u8]) -> bool {
        !self.matching_patterns(haystack).is_empty()
    }

    /// Incremental scan: advance `state` over `chunk`, invoking
    /// `hit(pattern_index)` for every pattern occurrence that *ends* inside
    /// `chunk` (a pattern may repeat). Feeding a stream chunk-by-chunk finds
    /// exactly the matches a one-shot scan of the concatenation would,
    /// including matches that straddle chunk boundaries, without rescanning
    /// earlier bytes.
    pub fn feed<F: FnMut(usize)>(&self, state: &mut AcStreamState, chunk: &[u8], mut hit: F) {
        self.sensitive
            .advance(&mut state.sensitive, chunk, false, |id, _| {
                hit(self.sensitive_ids[id as usize]);
            });
        self.insensitive
            .advance(&mut state.insensitive, chunk, true, |id, _| {
                hit(self.insensitive_ids[id as usize]);
            });
    }
}

/// Naive single-pattern search used for rule verification (with optional
/// case folding). Returns the offset of the first occurrence at or after
/// `from`.
pub fn find_sub(haystack: &[u8], needle: &[u8], nocase: bool, from: usize) -> Option<usize> {
    if needle.is_empty() {
        return Some(from.min(haystack.len()));
    }
    if from >= haystack.len() || haystack.len() - from < needle.len() {
        return None;
    }
    let eq = |a: u8, b: u8| {
        if nocase {
            a.eq_ignore_ascii_case(&b)
        } else {
            a == b
        }
    };
    'outer: for start in from..=haystack.len() - needle.len() {
        for (i, &nb) in needle.iter().enumerate() {
            if !eq(haystack[start + i], nb) {
                continue 'outer;
            }
        }
        return Some(start);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pats(p: &[(&str, bool)]) -> Vec<(Vec<u8>, bool)> {
        p.iter().map(|(s, n)| (s.as_bytes().to_vec(), *n)).collect()
    }

    #[test]
    fn classic_he_hers_his_she() {
        let ac = AhoCorasick::new(&pats(&[
            ("he", false),
            ("she", false),
            ("his", false),
            ("hers", false),
        ]));
        let matches = ac.find_all(b"ushers");
        let found: Vec<(usize, usize)> = matches.iter().map(|m| (m.pattern, m.end)).collect();
        // "she" ends at 4, "he" ends at 4, "hers" ends at 6.
        assert!(found.contains(&(0, 4)), "{found:?}");
        assert!(found.contains(&(1, 4)), "{found:?}");
        assert!(found.contains(&(3, 6)), "{found:?}");
        assert!(!found.iter().any(|&(p, _)| p == 2), "no 'his'");
    }

    #[test]
    fn overlapping_matches_reported() {
        let ac = AhoCorasick::new(&pats(&[("aa", false)]));
        let matches = ac.find_all(b"aaaa");
        assert_eq!(matches.len(), 3);
    }

    #[test]
    fn case_insensitive_patterns_fold_input() {
        let ac = AhoCorasick::new(&pats(&[("falun", true), ("GET", false)]));
        assert_eq!(ac.matching_patterns(b"FaLuN gong article"), vec![0]);
        assert_eq!(
            ac.matching_patterns(b"get / http"),
            Vec::<usize>::new(),
            "GET is sensitive"
        );
        assert_eq!(ac.matching_patterns(b"GET / falun"), vec![0, 1]);
    }

    #[test]
    fn empty_pattern_set_and_empty_haystack() {
        let ac = AhoCorasick::new(&[]);
        assert!(ac.find_all(b"anything").is_empty());
        let ac = AhoCorasick::new(&pats(&[("x", false)]));
        assert!(ac.find_all(b"").is_empty());
        let ac = AhoCorasick::new(&[(Vec::new(), false)]);
        assert!(ac.find_all(b"abc").is_empty(), "empty patterns never match");
    }

    #[test]
    fn binary_patterns() {
        let ac = AhoCorasick::new(&[(vec![0x00, 0xff, 0x00], false), (vec![0xde, 0xad], false)]);
        let hay = [0x01, 0x00, 0xff, 0x00, 0xde, 0xad, 0xbe];
        let matches = ac.find_all(&hay);
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[0], Match { pattern: 0, end: 4 });
        assert_eq!(matches[1], Match { pattern: 1, end: 6 });
    }

    #[test]
    fn matching_patterns_dedups() {
        let ac = AhoCorasick::new(&pats(&[("ab", false)]));
        assert_eq!(ac.matching_patterns(b"ababab"), vec![0]);
        assert!(ac.any_match(b"xxabxx"));
        assert!(!ac.any_match(b"xxaxbx"));
    }

    #[test]
    fn against_naive_oracle() {
        // Cross-check AC against find_sub on a fixed corpus.
        let patterns = ["tor", "GFW", "block", "bbc", "xyz"];
        let hay = b"the GFW will block bbc.com and torproject.org; BLOCK too";
        let ac = AhoCorasick::new(&pats(&[
            ("tor", false),
            ("GFW", false),
            ("block", true),
            ("bbc", false),
            ("xyz", false),
        ]));
        let got = ac.matching_patterns(hay);
        for (i, p) in patterns.iter().enumerate() {
            let nocase = i == 2;
            let expect = find_sub(hay, p.as_bytes(), nocase, 0).is_some();
            assert_eq!(got.contains(&i), expect, "pattern {p}");
        }
    }

    #[test]
    fn feed_matches_across_chunk_boundaries() {
        let ac = AhoCorasick::new(&pats(&[("falun", true), ("GET", false)]));
        let mut state = AcStreamState::default();
        let mut hits = Vec::new();
        ac.feed(&mut state, b"GET /fal", |p| hits.push(p));
        assert_eq!(hits, vec![1], "only GET so far");
        ac.feed(&mut state, b"un HTTP", |p| hits.push(p));
        assert_eq!(hits, vec![1, 0], "straddling keyword found incrementally");
    }

    #[test]
    fn feed_equals_one_shot_scan_for_any_split() {
        let ac = AhoCorasick::new(&pats(&[("aba", false), ("bab", true), ("xyz", false)]));
        let hay = b"abababxybabaxyzab";
        let mut whole: Vec<usize> = Vec::new();
        let mut s = AcStreamState::default();
        ac.feed(&mut s, hay, |p| whole.push(p));
        // Hit order interleaves differently across chunk boundaries (the two
        // automata run per chunk); the match multiset must be identical.
        whole.sort_unstable();
        for split in 0..hay.len() {
            let mut parts: Vec<usize> = Vec::new();
            let mut st = AcStreamState::default();
            ac.feed(&mut st, &hay[..split], |p| parts.push(p));
            ac.feed(&mut st, &hay[split..], |p| parts.push(p));
            parts.sort_unstable();
            assert_eq!(parts, whole, "split at {split}");
        }
    }

    #[test]
    fn find_sub_offsets_and_nocase() {
        let hay = b"abcABCabc";
        assert_eq!(find_sub(hay, b"ABC", false, 0), Some(3));
        assert_eq!(find_sub(hay, b"ABC", true, 0), Some(0));
        assert_eq!(find_sub(hay, b"ABC", true, 1), Some(3));
        assert_eq!(find_sub(hay, b"ABC", false, 4), None);
        assert_eq!(find_sub(hay, b"", false, 2), Some(2));
        assert_eq!(find_sub(hay, b"toolongpattern", false, 0), None);
    }
}
