//! Text parser for the Snort-dialect rule language.
//!
//! Grammar (one rule per line):
//!
//! ```text
//! action proto src_addr src_port (->|<>) dst_addr dst_port ( option; option; ... )
//! ```
//!
//! * addresses: `any`, `a.b.c.d`, `a.b.c.d/nn`, `$VAR`, `!spec`,
//!   `[spec,spec,...]`
//! * ports: `any`, `80`, `1:1024`, `[25,80,443]`, `!spec`
//! * options: `msg:"..."`, `content:"..."` (supports `|de ad|` hex runs and
//!   `!` negation) with `nocase`/`offset:n`/`depth:n` modifiers applying to
//!   the preceding content, `flags:S+A` style, `dsize:min<>max|>n|<n`,
//!   `flow:established,to_server`, `threshold: type limit, track by_src,
//!   count n, seconds s`, `sid:n`, `classtype:name`, `rev:n` (ignored),
//!   `priority:n` (ignored).

use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

use underradar_netsim::addr::Cidr;
use underradar_netsim::wire::tcp::TcpFlags;

use crate::rule::{
    AddrSpec, ContentMatch, FlagsSpec, FlowOption, PortSpec, Proto, Rule, RuleAction,
    ThresholdKind, ThresholdOption,
};

/// A rule-parsing failure, with the offending fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleParseError {
    /// What went wrong.
    pub message: String,
    /// The line (1-based) for ruleset parsing; 0 for single-rule parsing.
    pub line: usize,
}

impl RuleParseError {
    fn new(message: impl Into<String>) -> RuleParseError {
        RuleParseError {
            message: message.into(),
            line: 0,
        }
    }
}

impl fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "rule parse error at line {}: {}",
                self.line, self.message
            )
        } else {
            write!(f, "rule parse error: {}", self.message)
        }
    }
}

impl std::error::Error for RuleParseError {}

/// Variable bindings for `$VAR` address references.
pub type VarTable = HashMap<String, AddrSpec>;

/// Parse a whole ruleset: one rule per line, `#` comments and blank lines
/// ignored.
pub fn parse_ruleset(text: &str, vars: &VarTable) -> Result<Vec<Rule>, RuleParseError> {
    let mut rules = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rule = parse_rule(line, vars).map_err(|mut e| {
            e.line = i + 1;
            e
        })?;
        rules.push(rule);
    }
    Ok(rules)
}

/// Parse a single rule line.
pub fn parse_rule(line: &str, vars: &VarTable) -> Result<Rule, RuleParseError> {
    let (header, options) = match line.find('(') {
        Some(idx) => {
            let opts = line[idx..]
                .strip_prefix('(')
                .and_then(|s| s.trim_end().strip_suffix(')'))
                .ok_or_else(|| RuleParseError::new("unbalanced option parentheses"))?;
            (&line[..idx], Some(opts))
        }
        None => (line, None),
    };

    let tokens: Vec<&str> = header.split_whitespace().collect();
    if tokens.len() != 7 {
        return Err(RuleParseError::new(format!(
            "expected 7 header tokens (action proto src sport dir dst dport), got {}",
            tokens.len()
        )));
    }

    let action = match tokens[0] {
        "alert" => RuleAction::Alert,
        "log" => RuleAction::Log,
        "pass" => RuleAction::Pass,
        "drop" => RuleAction::Drop,
        "reject" => RuleAction::Reject,
        other => return Err(RuleParseError::new(format!("unknown action '{other}'"))),
    };
    let proto = match tokens[1] {
        "tcp" => Proto::Tcp,
        "udp" => Proto::Udp,
        "icmp" => Proto::Icmp,
        "ip" => Proto::Ip,
        other => return Err(RuleParseError::new(format!("unknown protocol '{other}'"))),
    };
    let src = parse_addr(tokens[2], vars)?;
    let src_port = parse_port(tokens[3])?;
    let bidirectional = match tokens[4] {
        "->" => false,
        "<>" => true,
        other => return Err(RuleParseError::new(format!("unknown direction '{other}'"))),
    };
    let dst = parse_addr(tokens[5], vars)?;
    let dst_port = parse_port(tokens[6])?;

    let mut rule = Rule {
        action,
        proto,
        src,
        src_port,
        dst,
        dst_port,
        bidirectional,
        msg: String::new(),
        sid: 0,
        contents: Vec::new(),
        flags: None,
        dsize: None,
        flow: Vec::new(),
        threshold: None,
        classtype: None,
    };

    if let Some(opts) = options {
        parse_options(opts, &mut rule)?;
    }
    Ok(rule)
}

fn parse_addr(token: &str, vars: &VarTable) -> Result<AddrSpec, RuleParseError> {
    if let Some(rest) = token.strip_prefix('!') {
        return Ok(AddrSpec::Not(Box::new(parse_addr(rest, vars)?)));
    }
    if token == "any" {
        return Ok(AddrSpec::Any);
    }
    if let Some(name) = token.strip_prefix('$') {
        return vars
            .get(name)
            .cloned()
            .ok_or_else(|| RuleParseError::new(format!("undefined variable '${name}'")));
    }
    if let Some(list) = token.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut nets = Vec::new();
        for item in list.split(',') {
            match parse_addr(item.trim(), vars)? {
                AddrSpec::Net(c) => nets.push(c),
                AddrSpec::List(cs) => nets.extend(cs),
                _ => {
                    return Err(RuleParseError::new(
                        "address lists may only contain networks",
                    ))
                }
            }
        }
        return Ok(AddrSpec::List(nets));
    }
    if token.contains('/') {
        let cidr: Cidr = token
            .parse()
            .map_err(|_| RuleParseError::new(format!("bad CIDR '{token}'")))?;
        return Ok(AddrSpec::Net(cidr));
    }
    let ip: Ipv4Addr = token
        .parse()
        .map_err(|_| RuleParseError::new(format!("bad address '{token}'")))?;
    Ok(AddrSpec::Net(Cidr::host(ip)))
}

fn parse_port(token: &str) -> Result<PortSpec, RuleParseError> {
    if let Some(rest) = token.strip_prefix('!') {
        return Ok(PortSpec::Not(Box::new(parse_port(rest)?)));
    }
    if token == "any" {
        return Ok(PortSpec::Any);
    }
    if let Some(list) = token.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let ports = list
            .split(',')
            .map(|p| p.trim().parse::<u16>())
            .collect::<Result<Vec<u16>, _>>()
            .map_err(|_| RuleParseError::new(format!("bad port list '{token}'")))?;
        return Ok(PortSpec::List(ports));
    }
    if let Some((lo, hi)) = token.split_once(':') {
        let lo: u16 = if lo.is_empty() {
            0
        } else {
            lo.parse()
                .map_err(|_| RuleParseError::new(format!("bad port range '{token}'")))?
        };
        let hi: u16 = if hi.is_empty() {
            u16::MAX
        } else {
            hi.parse()
                .map_err(|_| RuleParseError::new(format!("bad port range '{token}'")))?
        };
        return Ok(PortSpec::Range(lo, hi));
    }
    let p: u16 = token
        .parse()
        .map_err(|_| RuleParseError::new(format!("bad port '{token}'")))?;
    Ok(PortSpec::One(p))
}

/// Split option text on `;`, honoring quoted strings.
fn split_options(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut escape = false;
    for c in text.chars() {
        if escape {
            current.push(c);
            escape = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                current.push(c);
                escape = true;
            }
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            ';' if !in_quotes => {
                parts.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current.trim().to_string());
    }
    parts.retain(|p| !p.is_empty());
    parts
}

/// Decode a quoted content string with `\"` escapes and `|hex|` runs.
fn decode_content(quoted: &str) -> Result<Vec<u8>, RuleParseError> {
    let inner = quoted
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| RuleParseError::new(format!("content must be quoted: {quoted}")))?;
    let mut out = Vec::new();
    let mut chars = inner.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                let next = chars
                    .next()
                    .ok_or_else(|| RuleParseError::new("dangling escape in content"))?;
                out.push(next as u8);
            }
            '|' => {
                let mut hex = String::new();
                for h in chars.by_ref() {
                    if h == '|' {
                        break;
                    }
                    hex.push(h);
                }
                for byte_str in hex.split_whitespace() {
                    let b = u8::from_str_radix(byte_str, 16).map_err(|_| {
                        RuleParseError::new(format!("bad hex byte '{byte_str}' in content"))
                    })?;
                    out.push(b);
                }
            }
            _ => {
                let mut buf = [0u8; 4];
                out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            }
        }
    }
    Ok(out)
}

fn parse_flags(value: &str) -> Result<FlagsSpec, RuleParseError> {
    // e.g. "S" (SYN and nothing else required set... Snort semantics: exact
    // match unless '+' suffix). We implement: letters = bits that must be
    // set; '+' = allow extra bits; without '+', all other flag bits must be
    // clear. '!' prefix unsupported.
    let (letters, plus) = match value.strip_suffix('+') {
        Some(l) => (l, true),
        None => (value, false),
    };
    let mut set = 0u8;
    for c in letters.chars() {
        set |= match c.to_ascii_uppercase() {
            'F' => TcpFlags::FIN,
            'S' => TcpFlags::SYN,
            'R' => TcpFlags::RST,
            'P' => TcpFlags::PSH,
            'A' => TcpFlags::ACK,
            'U' => TcpFlags::URG,
            other => {
                return Err(RuleParseError::new(format!("unknown TCP flag '{other}'")));
            }
        };
    }
    let clear = if plus { 0 } else { !set & 0x3f };
    Ok(FlagsSpec { set, clear })
}

fn parse_dsize(value: &str) -> Result<(usize, usize), RuleParseError> {
    let value = value.trim();
    if let Some((lo, hi)) = value.split_once("<>") {
        let lo: usize = lo
            .trim()
            .parse()
            .map_err(|_| RuleParseError::new(format!("bad dsize '{value}'")))?;
        let hi: usize = hi
            .trim()
            .parse()
            .map_err(|_| RuleParseError::new(format!("bad dsize '{value}'")))?;
        return Ok((lo, hi));
    }
    if let Some(n) = value.strip_prefix('>') {
        let n: usize = n
            .trim()
            .parse()
            .map_err(|_| RuleParseError::new(format!("bad dsize '{value}'")))?;
        return Ok((n + 1, 0));
    }
    if let Some(n) = value.strip_prefix('<') {
        let n: usize = n
            .trim()
            .parse()
            .map_err(|_| RuleParseError::new(format!("bad dsize '{value}'")))?;
        return Ok((0, n.saturating_sub(1)));
    }
    let n: usize = value
        .parse()
        .map_err(|_| RuleParseError::new(format!("bad dsize '{value}'")))?;
    Ok((n, n))
}

fn parse_threshold(value: &str) -> Result<ThresholdOption, RuleParseError> {
    let mut kind = None;
    let mut track_by_src = true;
    let mut count = None;
    let mut seconds = None;
    for part in value.split(',') {
        let part = part.trim();
        let mut words = part.split_whitespace();
        match (words.next(), words.next()) {
            (Some("type"), Some(t)) => {
                kind = Some(match t {
                    "limit" => ThresholdKind::Limit,
                    "threshold" => ThresholdKind::Threshold,
                    "both" => ThresholdKind::Both,
                    other => {
                        return Err(RuleParseError::new(format!(
                            "unknown threshold type '{other}'"
                        )))
                    }
                });
            }
            (Some("track"), Some(t)) => {
                track_by_src = match t {
                    "by_src" => true,
                    "by_dst" => false,
                    other => return Err(RuleParseError::new(format!("unknown track '{other}'"))),
                };
            }
            (Some("count"), Some(n)) => {
                count = Some(
                    n.parse::<u32>()
                        .map_err(|_| RuleParseError::new(format!("bad threshold count '{n}'")))?,
                );
            }
            (Some("seconds"), Some(n)) => {
                seconds =
                    Some(n.parse::<u32>().map_err(|_| {
                        RuleParseError::new(format!("bad threshold seconds '{n}'"))
                    })?);
            }
            _ => {
                return Err(RuleParseError::new(format!(
                    "bad threshold clause '{part}'"
                )))
            }
        }
    }
    Ok(ThresholdOption {
        kind: kind.ok_or_else(|| RuleParseError::new("threshold missing type"))?,
        track_by_src,
        count: count.ok_or_else(|| RuleParseError::new("threshold missing count"))?,
        seconds: seconds.ok_or_else(|| RuleParseError::new("threshold missing seconds"))?,
    })
}

fn parse_options(text: &str, rule: &mut Rule) -> Result<(), RuleParseError> {
    for opt in split_options(text) {
        let (key, value) = match opt.split_once(':') {
            Some((k, v)) => (k.trim(), Some(v.trim().to_string())),
            None => (opt.as_str(), None),
        };
        match key {
            "msg" => {
                let v = value.ok_or_else(|| RuleParseError::new("msg needs a value"))?;
                rule.msg = v.trim_matches('"').to_string();
            }
            "content" => {
                let v = value.ok_or_else(|| RuleParseError::new("content needs a value"))?;
                let (negated, quoted) = match v.strip_prefix('!') {
                    Some(rest) => (true, rest.trim()),
                    None => (false, v.as_str()),
                };
                rule.contents.push(ContentMatch {
                    pattern: decode_content(quoted)?,
                    nocase: false,
                    offset: 0,
                    depth: 0,
                    negated,
                });
            }
            "nocase" => {
                let c = rule
                    .contents
                    .last_mut()
                    .ok_or_else(|| RuleParseError::new("nocase before any content"))?;
                c.nocase = true;
            }
            "offset" => {
                let v = value.ok_or_else(|| RuleParseError::new("offset needs a value"))?;
                let c = rule
                    .contents
                    .last_mut()
                    .ok_or_else(|| RuleParseError::new("offset before any content"))?;
                c.offset = v
                    .parse()
                    .map_err(|_| RuleParseError::new(format!("bad offset '{v}'")))?;
            }
            "depth" => {
                let v = value.ok_or_else(|| RuleParseError::new("depth needs a value"))?;
                let c = rule
                    .contents
                    .last_mut()
                    .ok_or_else(|| RuleParseError::new("depth before any content"))?;
                c.depth = v
                    .parse()
                    .map_err(|_| RuleParseError::new(format!("bad depth '{v}'")))?;
            }
            "flags" => {
                let v = value.ok_or_else(|| RuleParseError::new("flags needs a value"))?;
                rule.flags = Some(parse_flags(&v)?);
            }
            "dsize" => {
                let v = value.ok_or_else(|| RuleParseError::new("dsize needs a value"))?;
                rule.dsize = Some(parse_dsize(&v)?);
            }
            "flow" => {
                let v = value.ok_or_else(|| RuleParseError::new("flow needs a value"))?;
                for f in v.split(',') {
                    rule.flow.push(match f.trim() {
                        "established" => FlowOption::Established,
                        "to_server" => FlowOption::ToServer,
                        "to_client" => FlowOption::ToClient,
                        "stateless" => continue,
                        other => {
                            return Err(RuleParseError::new(format!("unknown flow '{other}'")))
                        }
                    });
                }
            }
            "threshold" => {
                let v = value.ok_or_else(|| RuleParseError::new("threshold needs a value"))?;
                rule.threshold = Some(parse_threshold(&v)?);
            }
            "sid" => {
                let v = value.ok_or_else(|| RuleParseError::new("sid needs a value"))?;
                rule.sid = v
                    .parse()
                    .map_err(|_| RuleParseError::new(format!("bad sid '{v}'")))?;
            }
            "classtype" => {
                rule.classtype = value;
            }
            "rev" | "priority" | "reference" | "metadata" | "gid" => {
                // Accepted and ignored: present in real rulesets.
            }
            other => {
                return Err(RuleParseError::new(format!("unknown option '{other}'")));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars() -> VarTable {
        let mut v = VarTable::new();
        v.insert(
            "HOME_NET".to_string(),
            AddrSpec::Net(Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 8)),
        );
        v.insert(
            "EXTERNAL_NET".to_string(),
            AddrSpec::Not(Box::new(AddrSpec::Net(Cidr::new(
                Ipv4Addr::new(10, 0, 0, 0),
                8,
            )))),
        );
        v
    }

    #[test]
    fn parses_gfw_style_keyword_rule() {
        let rule = parse_rule(
            r#"alert tcp $HOME_NET any -> any 80 (msg:"GFW keyword falun"; content:"falun"; nocase; sid:3000001; rev:2;)"#,
            &vars(),
        )
        .expect("parse");
        assert_eq!(rule.action, RuleAction::Alert);
        assert_eq!(rule.proto, Proto::Tcp);
        assert_eq!(rule.dst_port, PortSpec::One(80));
        assert_eq!(rule.msg, "GFW keyword falun");
        assert_eq!(rule.sid, 3000001);
        assert_eq!(rule.contents.len(), 1);
        assert!(rule.contents[0].nocase);
        assert_eq!(rule.contents[0].pattern, b"falun");
        assert!(rule.src.matches(Ipv4Addr::new(10, 1, 2, 3)));
        assert!(!rule.src.matches(Ipv4Addr::new(11, 1, 2, 3)));
    }

    #[test]
    fn parses_scan_detector_with_threshold_and_flags() {
        let rule = parse_rule(
            r#"alert tcp any any -> $HOME_NET any (msg:"SYN scan"; flags:S; threshold: type threshold, track by_src, count 20, seconds 60; sid:1000010;)"#,
            &vars(),
        )
        .expect("parse");
        let f = rule.flags.expect("flags");
        assert_eq!(f.set, TcpFlags::SYN);
        assert_ne!(f.clear & TcpFlags::ACK, 0, "plain S forbids ACK");
        let t = rule.threshold.expect("threshold");
        assert_eq!(t.kind, ThresholdKind::Threshold);
        assert!(t.track_by_src);
        assert_eq!((t.count, t.seconds), (20, 60));
    }

    #[test]
    fn flags_plus_allows_extra_bits() {
        let rule = parse_rule(
            "alert tcp any any -> any any (msg:\"syn maybe more\"; flags:S+; sid:5;)",
            &VarTable::new(),
        )
        .expect("parse");
        let f = rule.flags.expect("flags");
        assert_eq!(f.set, TcpFlags::SYN);
        assert_eq!(f.clear, 0);
    }

    #[test]
    fn hex_content_and_negated_content() {
        let rule = parse_rule(
            r#"alert udp any any -> any 53 (msg:"dns odd"; content:"|01 00 00 01|"; offset:2; depth:4; content:!"safe"; sid:6;)"#,
            &VarTable::new(),
        )
        .expect("parse");
        assert_eq!(rule.contents.len(), 2);
        assert_eq!(rule.contents[0].pattern, vec![0x01, 0x00, 0x00, 0x01]);
        assert_eq!(rule.contents[0].offset, 2);
        assert_eq!(rule.contents[0].depth, 4);
        assert!(rule.contents[1].negated);
        assert_eq!(rule.contents[1].pattern, b"safe");
    }

    #[test]
    fn escaped_quote_and_semicolon_in_content() {
        let rule = parse_rule(
            r#"alert tcp any any -> any any (msg:"m"; content:"a\"b;c"; sid:7;)"#,
            &VarTable::new(),
        )
        .expect("parse");
        assert_eq!(rule.contents[0].pattern, b"a\"b;c");
    }

    #[test]
    fn port_specs() {
        let vt = VarTable::new();
        let r = parse_rule("alert tcp any 1:1024 -> any [25,587] (sid:1;)", &vt).expect("p");
        assert_eq!(r.src_port, PortSpec::Range(1, 1024));
        assert_eq!(r.dst_port, PortSpec::List(vec![25, 587]));
        let r = parse_rule("alert tcp any !80 -> any :1000 (sid:2;)", &vt).expect("p");
        assert!(matches!(r.src_port, PortSpec::Not(_)));
        assert_eq!(r.dst_port, PortSpec::Range(0, 1000));
        let r = parse_rule("alert tcp any 1024: -> any any (sid:3;)", &vt).expect("p");
        assert_eq!(r.src_port, PortSpec::Range(1024, u16::MAX));
    }

    #[test]
    fn address_lists_and_negation() {
        let r = parse_rule(
            "alert ip [192.0.2.0/24,198.51.100.7] any -> !203.0.113.0/24 any (sid:4;)",
            &VarTable::new(),
        )
        .expect("p");
        assert!(r.src.matches(Ipv4Addr::new(192, 0, 2, 77)));
        assert!(r.src.matches(Ipv4Addr::new(198, 51, 100, 7)));
        assert!(!r.src.matches(Ipv4Addr::new(198, 51, 100, 8)));
        assert!(!r.dst.matches(Ipv4Addr::new(203, 0, 113, 5)));
        assert!(r.dst.matches(Ipv4Addr::new(8, 8, 8, 8)));
    }

    #[test]
    fn dsize_forms() {
        let vt = VarTable::new();
        let d = |s: &str| {
            parse_rule(
                &format!("alert tcp any any -> any any (dsize:{s}; sid:1;)"),
                &vt,
            )
            .expect("p")
            .dsize
            .expect("dsize")
        };
        assert_eq!(d(">100"), (101, 0));
        assert_eq!(d("<100"), (0, 99));
        assert_eq!(d("300<>400"), (300, 400));
        assert_eq!(d("64"), (64, 64));
    }

    #[test]
    fn ruleset_with_comments_and_line_numbers_in_errors() {
        let text = "\n# censor rules\nalert tcp any any -> any 80 (msg:\"a\"; sid:1;)\n\nbogus rule here\n";
        let err = parse_ruleset(text, &VarTable::new()).expect_err("bad line");
        assert_eq!(err.line, 5);
        let ok = parse_ruleset("# only comments\n\n", &VarTable::new()).expect("empty ok");
        assert!(ok.is_empty());
    }

    #[test]
    fn undefined_variable_is_an_error() {
        let err = parse_rule("alert tcp $NOPE any -> any any (sid:1;)", &VarTable::new())
            .expect_err("undefined");
        assert!(err.message.contains("NOPE"));
    }

    #[test]
    fn rejects_malformed_headers() {
        let vt = VarTable::new();
        assert!(parse_rule("alert tcp any any -> any", &vt).is_err());
        assert!(parse_rule("alarm tcp any any -> any any (sid:1;)", &vt).is_err());
        assert!(parse_rule("alert xtp any any -> any any (sid:1;)", &vt).is_err());
        assert!(parse_rule("alert tcp any any >> any any (sid:1;)", &vt).is_err());
        assert!(parse_rule("alert tcp any any -> any any (sid:1;", &vt).is_err());
    }

    #[test]
    fn bidirectional_rule() {
        let r = parse_rule("alert tcp any any <> any 25 (sid:9;)", &VarTable::new()).expect("p");
        assert!(r.bidirectional);
    }

    #[test]
    fn modifier_before_content_is_an_error() {
        let err = parse_rule(
            "alert tcp any any -> any any (nocase; content:\"x\"; sid:1;)",
            &VarTable::new(),
        )
        .expect_err("nocase first");
        assert!(err.message.contains("nocase"));
    }
}
