//! The detection engine: rule evaluation over packets and reassembled
//! streams.
//!
//! Architecture mirrors Snort's: a multi-pattern *fast pattern* prefilter
//! (a dense byte-classed DFA, [`crate::dfa`], over each rule's first
//! positive content — pass rules included) shortlists candidate rules per
//! packet; rules with no usable fast pattern are bucketed by protocol and
//! destination port so header predicates cull them before any payload
//! work. Candidates are then verified against all header and payload
//! predicates. `pass` rules suppress the packet entirely (Snort's
//! pass-over-alert ordering). `flow`-qualified rules match against the
//! reassembled stream rather than the single segment, with per-flow alert
//! dedup so a keyword firing once does not re-fire on every later segment
//! of the same flow.
//!
//! The hot path makes no per-packet allocations: the candidate shortlist
//! is an engine-owned epoch-stamped set ([`CandidateSet`]) — inserting is
//! a stamp compare, clearing is an epoch bump — sorted before evaluation
//! so rule order (and alert output) is deterministic.
//!
//! Stream matching is incremental: each flow direction carries a
//! persistent `u32` DFA cursor, and each in-order segment feeds only its
//! *new* bytes — keywords straddling segment boundaries are still found,
//! without rescanning the buffered window on every packet. A stream
//! rule whose fast pattern has appeared joins the direction's `seen`
//! list, which holds only rules that can still fire: a rule is *retired*
//! the moment its sid enters the per-flow dedup set, and the dedup check
//! runs *before* evaluation, so an already-alerted flow stops paying full
//! window scans per segment (the earlier design re-verified the whole
//! growing window on every later segment — O(window × segments)).
//!
//! The prefilter DFA is case-folded; hits for case-*sensitive* fast
//! patterns are confirmed against the exact bytes at the match offset
//! before a rule becomes a candidate, so candidate sets match what the
//! two-automata Aho–Corasick produced.
//!
//! Per-flow matcher and dedup state lives in a *dense side table* indexed
//! by the reassembler's [`FlowId::index`]: no `(key, direction)` hash per
//! packet — the flow context carries the handle and the engine
//! dereferences. Slots store the generation they were initialized for, so
//! recycled flow slots start clean by construction; the teardown log is
//! still drained each packet to keep the live-state count exact, and
//! engine memory stays bounded by the flow table's high-water mark. One
//! consequence of teardown-before-evaluation: a stream rule can no longer
//! fire on the RST segment itself — by then the buffer is gone, which is
//! precisely the monitor blindness the paper's §4.1 mimicry relies on.
//!
//! [`DetectionEngine::process_batch`] is the scale entry point: it runs a
//! same-instant packet run through the identical per-packet pipeline but
//! appends alerts into one caller-owned buffer and hoists per-call
//! bookkeeping (trace clock, teardown drain scheduling) out of the loop —
//! byte-identical verdicts to per-packet [`DetectionEngine::process`].

use std::net::Ipv4Addr;

use underradar_netsim::hash::FxHashMap;

use underradar_netsim::packet::{Packet, PacketBody};
use underradar_netsim::telemetry::{TraceRecord, Tracer};
use underradar_netsim::time::{SimDuration, SimTime};

use crate::alert::{Alert, AlertLog};
use crate::dfa::{PrefilterDfa, DFA_START};
use crate::rule::{FlowOption, PortSpec, Proto, Rule, RuleAction, ThresholdKind};
use crate::stream::{Direction, FlowContext, FlowId, ReassemblyConfig, StreamReassembler};

/// Engine statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Packets processed.
    pub packets: u64,
    /// Alert/log rules fully evaluated (post-prefilter, post-dedup).
    pub evaluations: u64,
    /// Alerts raised.
    pub alerts: u64,
    /// Packets suppressed by `pass` rules.
    pub passed: u64,
    /// Pass rules fully evaluated (post-prefilter/grouping).
    pub pass_evaluations: u64,
    /// Bytes fed through the fast-pattern prefilter (per-packet scans plus
    /// incremental stream cursor feeds).
    pub ac_bytes_scanned: u64,
}

#[derive(Debug, Clone, Copy)]
struct ThresholdState {
    window_start: SimTime,
    count: u32,
    alerted_in_window: u32,
}

/// Per-flow-direction incremental match state: the DFA cursor plus the
/// stream rules whose fast pattern has appeared and that can still fire
/// (sorted by rule index; retired on per-flow alert dedup).
#[derive(Debug)]
struct StreamMatchState {
    cursor: u32,
    seen: Vec<u32>,
}

impl Default for StreamMatchState {
    fn default() -> StreamMatchState {
        StreamMatchState {
            cursor: DFA_START,
            seen: Vec::new(),
        }
    }
}

/// Dense per-flow engine state, indexed by [`FlowId::index`]. A slot is
/// meaningful only while `live` is set and `gen` matches the presented
/// handle's generation; a recycled arena index carries a bumped
/// generation and is reset in place on first touch, so stale matcher or
/// dedup state can never leak into a new flow. The table's length is
/// bounded by the reassembler flow table's high-water mark, and cleared
/// slots keep their `Vec` capacities — steady-state churn allocates
/// nothing.
#[derive(Debug, Default)]
struct FlowEngineState {
    gen: u32,
    live: bool,
    c2s: StreamMatchState,
    s2c: StreamMatchState,
    /// Stream-rule dedup: sids already alerted on this flow.
    alerted: Vec<u32>,
}

impl FlowEngineState {
    fn dir(&self, dir: Direction) -> &StreamMatchState {
        match dir {
            Direction::ToServer => &self.c2s,
            Direction::ToClient => &self.s2c,
        }
    }

    fn clear(&mut self) {
        self.c2s.cursor = DFA_START;
        self.c2s.seen.clear();
        self.s2c.cursor = DFA_START;
        self.s2c.seen.clear();
        self.alerted.clear();
    }
}

/// One prefilter pattern's bookkeeping: the rule it shortlists and, for
/// case-sensitive patterns, the exact bytes to confirm (the DFA itself
/// matches case-folded).
#[derive(Debug)]
struct PatternMeta {
    rule: u32,
    exact: Option<Vec<u8>>,
}

/// Rules with no usable fast pattern, bucketed by the header predicates
/// that are cheap to key on: protocol and (for TCP/UDP with literal
/// destination ports) the destination port. A packet pulls one port
/// bucket plus its protocol's generic list instead of evaluating every
/// unfiltered rule.
#[derive(Debug, Default)]
struct RuleGroups {
    tcp_by_port: FxHashMap<u16, Vec<u32>>,
    udp_by_port: FxHashMap<u16, Vec<u32>>,
    /// TCP rules whose destination port is not a literal (any/range/not)
    /// or that are bidirectional.
    tcp_any: Vec<u32>,
    udp_any: Vec<u32>,
    /// Rules that can match a portless ICMP packet.
    icmp: Vec<u32>,
    /// Rules that can match a raw (unhandled-protocol) packet: `ip` rules
    /// whose port predicates admit "no port".
    raw: Vec<u32>,
}

impl RuleGroups {
    fn add(&mut self, idx: u32, rule: &Rule) {
        // A packet with no ports (ICMP/raw) satisfies a port predicate
        // only if the spec admits `None`; evaluate that exactly rather
        // than enumerating spec shapes.
        let portless_ok = rule.src_port.matches(None) && rule.dst_port.matches(None);
        let tcp = matches!(rule.proto, Proto::Tcp | Proto::Ip);
        let udp = matches!(rule.proto, Proto::Udp | Proto::Ip);
        if tcp {
            Self::add_ported(&mut self.tcp_by_port, &mut self.tcp_any, idx, rule);
        }
        if udp {
            Self::add_ported(&mut self.udp_by_port, &mut self.udp_any, idx, rule);
        }
        if matches!(rule.proto, Proto::Icmp | Proto::Ip) && portless_ok {
            self.icmp.push(idx);
        }
        if rule.proto == Proto::Ip && portless_ok {
            self.raw.push(idx);
        }
    }

    fn add_ported(
        by_port: &mut FxHashMap<u16, Vec<u32>>,
        any: &mut Vec<u32>,
        idx: u32,
        rule: &Rule,
    ) {
        if rule.bidirectional {
            // Reverse-direction matching keys on the *source* port spec;
            // keep it out of the port buckets.
            any.push(idx);
            return;
        }
        match &rule.dst_port {
            PortSpec::One(p) => by_port.entry(*p).or_default().push(idx),
            PortSpec::List(ps) => {
                for p in ps {
                    let bucket = by_port.entry(*p).or_default();
                    if bucket.last() != Some(&idx) {
                        bucket.push(idx);
                    }
                }
            }
            _ => any.push(idx),
        }
    }

    /// The (port bucket, generic list) pair this packet can match.
    fn buckets(&self, packet: &Packet) -> (Option<&Vec<u32>>, &Vec<u32>) {
        let port = packet.dst_port();
        match &packet.body {
            PacketBody::Tcp(_) => (port.and_then(|p| self.tcp_by_port.get(&p)), &self.tcp_any),
            PacketBody::Udp(_) => (port.and_then(|p| self.udp_by_port.get(&p)), &self.udp_any),
            PacketBody::Icmp(_) => (None, &self.icmp),
            PacketBody::Raw { .. } => (None, &self.raw),
        }
    }
}

/// A reusable epoch-stamped rule-index set: `insert` is O(1) with no
/// allocation in steady state, `begin` clears by bumping the epoch.
#[derive(Debug, Default)]
struct CandidateSet {
    epoch: u64,
    stamp: Vec<u64>,
    list: Vec<u32>,
}

impl CandidateSet {
    fn with_universe(n: usize) -> CandidateSet {
        CandidateSet {
            epoch: 0,
            stamp: vec![0; n],
            list: Vec::with_capacity(n.min(64)),
        }
    }

    fn begin(&mut self) {
        self.epoch += 1;
        self.list.clear();
    }

    #[inline]
    fn insert(&mut self, idx: u32) {
        let slot = &mut self.stamp[idx as usize];
        if *slot != self.epoch {
            *slot = self.epoch;
            self.list.push(idx);
        }
    }
}

/// A Snort-like detection engine over a fixed ruleset.
pub struct DetectionEngine {
    rules: Vec<Rule>,
    /// Fast-pattern prefilter over every rule with a usable fast pattern —
    /// alert *and* pass; `patterns[i]` describes automaton pattern `i`.
    prefilter: PrefilterDfa,
    patterns: Vec<PatternMeta>,
    /// Rules with no usable fast pattern, culled by proto/port grouping.
    groups: RuleGroups,
    /// `rule.flow` non-empty (matches the reassembled stream).
    is_stream: Vec<bool>,
    /// `rule.action == Pass`.
    is_pass: Vec<bool>,
    reassembler: StreamReassembler,
    thresholds: FxHashMap<(u32, Ipv4Addr), ThresholdState>,
    /// Dense per-flow matcher and dedup state, indexed by
    /// [`FlowId::index`]; no per-packet key hash after flow setup.
    flow_states: Vec<FlowEngineState>,
    /// Slots in `flow_states` currently live (leak-test introspection).
    live_states: usize,
    /// Reused per-packet candidate shortlist (no per-packet allocation).
    candidates: CandidateSet,
    log: AlertLog,
    stats: EngineStats,
    /// Flight recorder for rule-match decisions; disabled by default.
    tracer: Tracer,
}

impl DetectionEngine {
    /// Compile an engine from a ruleset with default reassembly limits.
    pub fn new(rules: Vec<Rule>) -> DetectionEngine {
        Self::with_reassembly(rules, ReassemblyConfig::default())
    }

    /// Compile an engine with explicit reassembly limits (flow-table
    /// capacity and per-direction buffer/hold-back windows).
    pub fn with_reassembly(rules: Vec<Rule>, cfg: ReassemblyConfig) -> DetectionEngine {
        let mut folded: Vec<Vec<u8>> = Vec::new();
        let mut patterns = Vec::new();
        let mut groups = RuleGroups::default();
        let mut is_stream = vec![false; rules.len()];
        let mut is_pass = vec![false; rules.len()];
        for (idx, rule) in rules.iter().enumerate() {
            is_stream[idx] = !rule.flow.is_empty();
            is_pass[idx] = rule.action == RuleAction::Pass;
            match rule.fast_pattern() {
                Some(c) => {
                    folded.push(c.pattern.to_ascii_lowercase());
                    patterns.push(PatternMeta {
                        rule: idx as u32,
                        exact: (!c.nocase).then(|| c.pattern.clone()),
                    });
                }
                None => groups.add(idx as u32, rule),
            }
        }
        let mut reassembler = StreamReassembler::with_config(cfg);
        reassembler.track_removals(true);
        DetectionEngine {
            prefilter: PrefilterDfa::new(&folded),
            patterns,
            groups,
            is_stream,
            is_pass,
            candidates: CandidateSet::with_universe(rules.len()),
            rules,
            reassembler,
            thresholds: FxHashMap::default(),
            flow_states: Vec::new(),
            live_states: 0,
            log: AlertLog::new(),
            stats: EngineStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// The live state slot for `id`, if one was created for exactly this
    /// flow (index *and* generation match). Over the bare table so
    /// callers can hold other field borrows.
    fn state_in(states: &[FlowEngineState], id: FlowId) -> Option<&FlowEngineState> {
        let st = states.get(id.index())?;
        (st.live && st.gen == id.generation()).then_some(st)
    }

    /// The state slot for `id`, creating or recycling it in place. Takes
    /// the fields rather than `&mut self` so callers can hold disjoint
    /// borrows (e.g. a stream view from the reassembler).
    fn ensure_state<'a>(
        states: &'a mut Vec<FlowEngineState>,
        live_states: &mut usize,
        id: FlowId,
    ) -> &'a mut FlowEngineState {
        let idx = id.index();
        if idx >= states.len() {
            states.resize_with(idx + 1, FlowEngineState::default);
        }
        let st = &mut states[idx];
        if !st.live || st.gen != id.generation() {
            // A live slot under a different generation means the arena
            // recycled the index before this packet's removal log was
            // drained (evict-and-create in one insert): the old flow's
            // liveness transfers to the new one, net zero.
            if !st.live {
                *live_states += 1;
            }
            st.gen = id.generation();
            st.live = true;
            st.clear();
        }
        st
    }

    /// Disable RST-teardown in the reassembler (ablation knob).
    pub fn set_rst_teardown(&mut self, on: bool) {
        self.reassembler.rst_teardown = on;
    }

    /// Attach a flight-recorder handle; rule matches record under the
    /// `engine` stage and the reassembler's decisions under `stream`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.reassembler.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The alert log.
    pub fn log(&self) -> &AlertLog {
        &self.log
    }

    /// Engine statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Reassembler statistics.
    pub fn reassembly_stats(&self) -> crate::stream::ReassemblyStats {
        self.reassembler.stats()
    }

    /// Flows currently tracked by the reassembler's arena table.
    pub fn live_flows(&self) -> usize {
        self.reassembler.flow_count()
    }

    /// Number of per-flow matcher states currently live (introspection
    /// for leak tests; bounded by live flows).
    pub fn flow_state_count(&self) -> usize {
        self.live_states
    }

    /// Total stream rules currently pending across live flow directions
    /// (introspection: bounded growth is the point of seen-retirement).
    pub fn pending_stream_rules(&self) -> usize {
        self.flow_states
            .iter()
            .filter(|s| s.live)
            .map(|s| s.c2s.seen.len() + s.s2c.seen.len())
            .sum()
    }

    /// Approximate bytes held by per-flow engine state and the flow
    /// table (memory-budget introspection for population-scale runs).
    pub fn flow_memory_bytes(&self) -> usize {
        let side = self.flow_states.capacity() * std::mem::size_of::<FlowEngineState>()
            + self
                .flow_states
                .iter()
                .map(|s| {
                    (s.c2s.seen.capacity() + s.s2c.seen.capacity() + s.alerted.capacity())
                        * std::mem::size_of::<u32>()
                })
                .sum::<usize>();
        side + self.reassembler.table_bytes()
    }

    /// The compiled rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Mirror engine, reassembler and flow-state totals into `tel` under
    /// `<prefix>.…` names. Idempotent (absolute totals), so it can be
    /// called at any point; `prefix` distinguishes multiple engines (e.g.
    /// `ids` for a monitor, `surveil.engine` for the MVR's).
    pub fn export_telemetry(&self, tel: &underradar_telemetry::Telemetry, prefix: &str) {
        if !tel.is_enabled() {
            return;
        }
        let s = self.stats;
        tel.set_counter(&format!("{prefix}.packets"), s.packets);
        tel.set_counter(&format!("{prefix}.evaluations"), s.evaluations);
        tel.set_counter(&format!("{prefix}.alerts"), s.alerts);
        tel.set_counter(&format!("{prefix}.passed"), s.passed);
        tel.set_counter(&format!("{prefix}.pass_evaluations"), s.pass_evaluations);
        tel.set_counter(&format!("{prefix}.ac_bytes_scanned"), s.ac_bytes_scanned);
        tel.set_gauge(
            &format!("{prefix}.prefilter.patterns"),
            self.prefilter.pattern_count() as i64,
        );
        tel.set_gauge(
            &format!("{prefix}.prefilter.states"),
            self.prefilter.state_count() as i64,
        );
        let r = self.reassembler.stats();
        tel.set_counter(&format!("{prefix}.flows.created"), r.flows_created);
        tel.set_counter(&format!("{prefix}.flows.evicted"), r.evicted);
        tel.set_counter(&format!("{prefix}.flows.rst_teardowns"), r.rst_teardowns);
        tel.set_counter(&format!("{prefix}.flows.fin_teardowns"), r.fin_teardowns);
        tel.set_counter(&format!("{prefix}.flows.removals"), r.removals);
        tel.set_counter(&format!("{prefix}.segments"), r.segments);
        tel.set_counter(&format!("{prefix}.bytes_appended"), r.bytes_appended);
        tel.set_counter(&format!("{prefix}.bytes_copied"), r.bytes_copied());
        tel.set_counter(&format!("{prefix}.reassembly.ooo_held"), r.ooo_held);
        tel.set_counter(&format!("{prefix}.reassembly.ooo_dropped"), r.ooo_dropped);
        tel.set_counter(
            &format!("{prefix}.reassembly.overlap_trimmed"),
            r.overlap_trimmed,
        );
        tel.set_counter(&format!("{prefix}.reassembly.dup_ignored"), r.dup_ignored);
        tel.set_gauge(
            &format!("{prefix}.flows.live"),
            self.reassembler.flow_count() as i64,
        );
        tel.set_gauge(
            &format!("{prefix}.flow_match_states"),
            self.live_states as i64,
        );
        tel.set_gauge(
            &format!("{prefix}.flows.capacity"),
            self.reassembler.flow_capacity().min(i64::MAX as usize) as i64,
        );
        tel.set_gauge(
            &format!("{prefix}.flows.table_bytes"),
            self.flow_memory_bytes() as i64,
        );
    }

    /// Process one packet; returns the alerts it raised (also appended to
    /// the log).
    pub fn process(&mut self, now: SimTime, packet: &Packet) -> Vec<Alert> {
        let mut fired = Vec::new();
        self.process_into(now, packet, &mut fired);
        fired
    }

    /// Process a same-instant packet run, appending every alert to `out`.
    ///
    /// Verdict-identical to calling [`DetectionEngine::process`] per
    /// packet — same alerts, stats, telemetry, traces — but the per-call
    /// output allocation is amortized into one caller-owned buffer. This
    /// is the engine half of the scale path: the netsim side coalesces
    /// same-instant deliveries ([`Node::receive_batch`]) and hands the
    /// whole run here in one dispatch.
    ///
    /// [`Node::receive_batch`]: underradar_netsim::node::Node::receive_batch
    pub fn process_batch(&mut self, now: SimTime, packets: &[Packet], out: &mut Vec<Alert>) {
        for packet in packets {
            self.process_into(now, packet, out);
        }
    }

    fn process_into(&mut self, now: SimTime, packet: &Packet, out: &mut Vec<Alert>) {
        self.stats.packets += 1;
        if self.tracer.is_live() {
            self.reassembler.set_now(now.as_nanos());
        }
        let flow_ctx = self.reassembler.process(packet);

        // Feed newly appended stream bytes to the flow's persistent
        // prefilter cursor, then drop state for flows this packet tore down
        // (RST / completed close / eviction).
        let payload = packet.body.payload();
        if let Some(ctx) = &flow_ctx {
            if ctx.appended {
                let id = ctx.id.expect("appended bytes imply a live flow");
                // Feed the newly reassembled tail, not the raw segment:
                // with hold-back and overlap trimming the appended bytes
                // can differ from this segment's payload in both content
                // and length.
                let view = self.reassembler.stream_of_id(id, ctx.direction);
                let tail = &view[view.len() - ctx.new_bytes.min(view.len())..];
                self.stats.ac_bytes_scanned += tail.len() as u64;
                let base = view.len() - tail.len();
                let st = Self::ensure_state(&mut self.flow_states, &mut self.live_states, id);
                let FlowEngineState {
                    c2s, s2c, alerted, ..
                } = st;
                let StreamMatchState { cursor, seen } = match ctx.direction {
                    Direction::ToServer => c2s,
                    Direction::ToClient => s2c,
                };
                let alerted: &Vec<u32> = alerted;
                let patterns = &self.patterns;
                let is_stream = &self.is_stream;
                let is_pass = &self.is_pass;
                let rules = &self.rules;
                self.prefilter.feed(cursor, tail, |pat, end| {
                    let m = &patterns[pat];
                    let idx = m.rule as usize;
                    if !is_stream[idx] {
                        return;
                    }
                    // Case-sensitive patterns: confirm the exact bytes in
                    // the window (the DFA matched case-folded). If the
                    // window no longer reaches back to the match start
                    // (front-trimmed), admit it — over-admission only adds
                    // a candidate that full verification rejects.
                    if let Some(exact) = &m.exact {
                        let end_abs = base + end;
                        if let Some(start) = end_abs.checked_sub(exact.len()) {
                            if &view[start..end_abs] != exact.as_slice() {
                                return;
                            }
                        }
                    }
                    // Already-alerted rules can never fire again on this
                    // flow; keep them out of `seen` so they stop costing
                    // anything per segment.
                    if !is_pass[idx] && alerted.contains(&rules[idx].sid) {
                        return;
                    }
                    if let Err(pos) = seen.binary_search(&m.rule) {
                        seen.insert(pos, m.rule);
                    }
                });
            }
        }
        for (_key, id) in self.reassembler.take_removed() {
            if let Some(st) = self.flow_states.get_mut(id.index()) {
                if st.live && st.gen == id.generation() {
                    st.live = false;
                    st.clear();
                    self.live_states -= 1;
                }
            }
        }

        // The reassembled window for this segment's direction — borrowed,
        // never cloned. A torn-down flow's handle is stale by now, so the
        // arena's generation check yields the empty window, matching the
        // removed-flow behavior of the old key lookup.
        let stream: &[u8] = match &flow_ctx {
            Some(ctx) => match ctx.id {
                Some(id) => self.reassembler.stream_of_id(id, ctx.direction),
                None => &[],
            },
            None => &[],
        };

        // Candidate shortlist: prefilter over this packet's payload, stream
        // rules whose fast pattern has appeared in the flow (incremental),
        // and the proto/port groups for patternless rules. Sorted so rules
        // evaluate in rule order — alert output is order-deterministic.
        self.stats.ac_bytes_scanned += payload.len() as u64;
        self.candidates.begin();
        {
            let patterns = &self.patterns;
            let cand = &mut self.candidates;
            self.prefilter.scan(payload, |pat, end| {
                let m = &patterns[pat];
                if let Some(exact) = &m.exact {
                    let start = end - exact.len();
                    if &payload[start..end] != exact.as_slice() {
                        return;
                    }
                }
                cand.insert(m.rule);
            });
            if let Some(ctx) = &flow_ctx {
                if let Some(st) = ctx.id.and_then(|id| Self::state_in(&self.flow_states, id)) {
                    for &idx in &st.dir(ctx.direction).seen {
                        cand.insert(idx);
                    }
                }
            }
            let (ported, generic) = self.groups.buckets(packet);
            if let Some(bucket) = ported {
                for &idx in bucket {
                    cand.insert(idx);
                }
            }
            for &idx in generic {
                cand.insert(idx);
            }
        }
        self.candidates.list.sort_unstable();

        // Pass rules win over everything.
        for i in 0..self.candidates.list.len() {
            let idx = self.candidates.list[i] as usize;
            if !self.is_pass[idx] {
                continue;
            }
            self.stats.pass_evaluations += 1;
            let rule = &self.rules[idx];
            if Self::rule_matches(rule, packet, flow_ctx.as_ref(), stream) {
                self.stats.passed += 1;
                return;
            }
        }

        for i in 0..self.candidates.list.len() {
            let idx = self.candidates.list[i] as usize;
            if self.is_pass[idx] {
                continue;
            }
            let rule = &self.rules[idx];
            // Per-flow dedup for stream-matched rules, checked *before*
            // evaluation: an already-alerted flow must not pay a full
            // stream scan per segment.
            if self.is_stream[idx] {
                if let Some(ctx) = &flow_ctx {
                    if let Some(st) = ctx.id.and_then(|id| Self::state_in(&self.flow_states, id)) {
                        if st.alerted.contains(&rule.sid) {
                            continue;
                        }
                    }
                }
            }
            self.stats.evaluations += 1;
            if !Self::rule_matches(rule, packet, flow_ctx.as_ref(), stream) {
                continue;
            }
            if self.is_stream[idx] {
                // Record dedup state only for flows that are still live:
                // a rule firing on the teardown segment itself has no flow
                // left to dedup against (the next flow on the 4-tuple gets
                // a fresh generation regardless).
                if let Some(ctx) = &flow_ctx {
                    if !ctx.torn_down {
                        if let Some(id) = ctx.id {
                            let st = Self::ensure_state(
                                &mut self.flow_states,
                                &mut self.live_states,
                                id,
                            );
                            st.alerted.push(rule.sid);
                            // Retire the rule from both directions' pending
                            // lists: it can never fire again on this flow.
                            for s in [&mut st.c2s, &mut st.s2c] {
                                if let Ok(pos) = s.seen.binary_search(&(idx as u32)) {
                                    s.seen.remove(pos);
                                }
                            }
                        }
                    }
                }
            }
            // Threshold suppression.
            if let Some(t) = rule.threshold {
                let track = if t.track_by_src {
                    packet.src
                } else {
                    packet.dst
                };
                let state = self
                    .thresholds
                    .entry((rule.sid, track))
                    .or_insert(ThresholdState {
                        window_start: now,
                        count: 0,
                        alerted_in_window: 0,
                    });
                if now.saturating_since(state.window_start)
                    > SimDuration::from_secs(u64::from(t.seconds))
                {
                    state.window_start = now;
                    state.count = 0;
                    state.alerted_in_window = 0;
                }
                state.count += 1;
                let fire = match t.kind {
                    ThresholdKind::Limit => state.count <= t.count,
                    ThresholdKind::Threshold => t.count > 0 && state.count.is_multiple_of(t.count),
                    ThresholdKind::Both => state.count == t.count,
                };
                if !fire {
                    continue;
                }
                state.alerted_in_window += 1;
            }
            let rule = &self.rules[idx];
            let alert = Alert {
                time: now,
                sid: rule.sid,
                msg: rule.msg.clone(),
                action: rule.action,
                src: packet.src,
                src_port: packet.src_port(),
                dst: packet.dst,
                dst_port: packet.dst_port(),
                classtype: rule.classtype.clone(),
            };
            self.stats.alerts += 1;
            if self.tracer.is_live() {
                // Byte offset of the matched fast pattern — within the
                // buffered stream window for stream rules, the packet
                // payload otherwise (the search is paid only while
                // tracing). Case sensitivity follows the content's
                // `nocase` modifier.
                let offset = rule
                    .fast_pattern()
                    .and_then(|c| {
                        let hay: &[u8] = if rule.flow.is_empty() {
                            payload
                        } else {
                            stream
                        };
                        crate::aho::find_sub(hay, &c.pattern, c.nocase, 0)
                    })
                    .unwrap_or(0) as u64;
                self.tracer.record(TraceRecord {
                    t_ns: now.as_nanos(),
                    seq: 0,
                    stage: "engine",
                    kind: "rule_match",
                    flow: Some(packet.trace_flow()),
                    fields: vec![
                        ("sid", u64::from(rule.sid).into()),
                        ("offset", offset.into()),
                        ("msg", rule.msg.clone().into()),
                    ],
                });
            }
            self.log.push(alert.clone());
            out.push(alert);
        }
    }

    fn rule_matches(
        rule: &Rule,
        packet: &Packet,
        flow: Option<&FlowContext>,
        stream: &[u8],
    ) -> bool {
        if !rule.header_matches(packet) || !rule.flags_match(packet) {
            return false;
        }
        // Flow constraints.
        if !rule.flow.is_empty() {
            let Some(ctx) = flow else { return false };
            for f in &rule.flow {
                let ok = match f {
                    FlowOption::Established => ctx.established,
                    FlowOption::ToServer => ctx.direction == Direction::ToServer,
                    FlowOption::ToClient => ctx.direction == Direction::ToClient,
                };
                if !ok {
                    return false;
                }
            }
            // Stream-qualified rules match the reassembled stream.
            return rule.payload_matches(stream);
        }
        rule.payload_matches(packet.body.payload())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_ruleset, VarTable};
    use underradar_netsim::wire::tcp::TcpFlags;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
    const S: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

    fn engine(rules_text: &str) -> DetectionEngine {
        let rules = parse_ruleset(rules_text, &VarTable::new()).expect("rules parse");
        DetectionEngine::new(rules)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    /// Three-way handshake on `C:4000 -> S:80`; returns the next seq.
    fn handshake(e: &mut DetectionEngine) -> u32 {
        let syn = Packet::tcp(C, S, 4000, 80, 100, 0, TcpFlags::syn(), vec![]);
        let syn_ack = Packet::tcp(S, C, 80, 4000, 500, 101, TcpFlags::syn_ack(), vec![]);
        let ack = Packet::tcp(C, S, 4000, 80, 101, 501, TcpFlags::ack(), vec![]);
        assert!(e.process(t(0), &syn).is_empty());
        assert!(e.process(t(0), &syn_ack).is_empty());
        assert!(e.process(t(0), &ack).is_empty());
        101
    }

    #[test]
    fn keyword_rule_fires_on_packet_payload() {
        let mut e =
            engine(r#"alert tcp any any -> any 80 (msg:"kw"; content:"falun"; nocase; sid:1;)"#);
        let pkt = Packet::tcp(
            C,
            S,
            4000,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"GET /FALUN".to_vec(),
        );
        let alerts = e.process(t(0), &pkt);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].sid, 1);
        let miss = Packet::tcp(
            C,
            S,
            4000,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"GET /news".to_vec(),
        );
        assert!(e.process(t(0), &miss).is_empty());
    }

    #[test]
    fn case_sensitive_prefilter_hit_requires_exact_bytes() {
        // The DFA matches case-folded; the engine must confirm exact bytes
        // for case-sensitive patterns before evaluating the rule at all.
        let mut e = engine(r#"alert tcp any any -> any 80 (msg:"cs"; content:"Falun"; sid:2;)"#);
        let wrong = Packet::tcp(C, S, 1, 80, 0, 0, TcpFlags::psh_ack(), b"FALUN".to_vec());
        assert!(e.process(t(0), &wrong).is_empty());
        assert_eq!(
            e.stats().evaluations,
            0,
            "folded-only occurrence never becomes a candidate"
        );
        let right = Packet::tcp(C, S, 1, 80, 0, 0, TcpFlags::psh_ack(), b"Falun".to_vec());
        assert_eq!(e.process(t(0), &right).len(), 1);
    }

    #[test]
    fn stream_rule_catches_split_keyword() {
        let mut e = engine(
            r#"alert tcp any any -> any 80 (msg:"kw-stream"; flow:established,to_server; content:"falun"; sid:2;)"#,
        );
        handshake(&mut e);
        // Keyword split across two segments: per-segment matching cannot
        // see it, stream matching can.
        let d1 = Packet::tcp(
            C,
            S,
            4000,
            80,
            101,
            501,
            TcpFlags::psh_ack(),
            b"GET /fal".to_vec(),
        );
        let d2 = Packet::tcp(
            C,
            S,
            4000,
            80,
            109,
            501,
            TcpFlags::psh_ack(),
            b"un HTTP".to_vec(),
        );
        assert!(e.process(t(0), &d1).is_empty());
        let alerts = e.process(t(0), &d2);
        assert_eq!(alerts.len(), 1, "reassembled match");
        // Dedup: more segments on the same flow do not re-fire.
        let d3 = Packet::tcp(
            C,
            S,
            4000,
            80,
            116,
            501,
            TcpFlags::psh_ack(),
            b" again falun".to_vec(),
        );
        assert!(e.process(t(0), &d3).is_empty());
    }

    #[test]
    fn dedup_skips_evaluation_after_first_alert() {
        // The quadratic-flow regression test: after a stream rule alerts,
        // later segments must not re-evaluate it — no per-segment scan of
        // the growing window, even when the keyword keeps appearing.
        let mut e = engine(
            r#"alert tcp any any -> any 80 (msg:"kw-stream"; flow:established,to_server; content:"falun"; sid:70;)"#,
        );
        let mut seq = handshake(&mut e);
        let hit = b"falun ".to_vec();
        let first = Packet::tcp(C, S, 4000, 80, seq, 501, TcpFlags::psh_ack(), hit.clone());
        seq += hit.len() as u32;
        assert_eq!(e.process(t(0), &first).len(), 1);
        let after_alert = e.stats().evaluations;
        assert_eq!(
            e.pending_stream_rules(),
            0,
            "alerted rule retired from the pending list"
        );
        for _ in 0..1000 {
            let d = Packet::tcp(C, S, 4000, 80, seq, 501, TcpFlags::psh_ack(), hit.clone());
            seq += hit.len() as u32;
            assert!(e.process(t(0), &d).is_empty());
        }
        assert_eq!(
            e.stats().evaluations,
            after_alert,
            "evaluations flat across 1000 post-alert segments"
        );
    }

    #[test]
    fn established_required_rule_ignores_bare_segments() {
        let mut e = engine(
            r#"alert tcp any any -> any 80 (msg:"est"; flow:established; content:"x"; sid:3;)"#,
        );
        // Data with no observed handshake: flow exists but not established.
        let d = Packet::tcp(C, S, 4000, 80, 5, 0, TcpFlags::psh_ack(), b"xxx".to_vec());
        assert!(e.process(t(0), &d).is_empty());
    }

    #[test]
    fn pass_rule_suppresses_alerts() {
        let mut e = engine(
            "pass tcp 10.0.1.2 any -> any any (msg:\"trusted\"; sid:10;)\n\
             alert tcp any any -> any 80 (msg:\"kw\"; content:\"falun\"; sid:11;)",
        );
        let pkt = Packet::tcp(C, S, 4000, 80, 0, 0, TcpFlags::psh_ack(), b"falun".to_vec());
        assert!(e.process(t(0), &pkt).is_empty());
        assert_eq!(e.stats().passed, 1);
        let other = Packet::tcp(
            Ipv4Addr::new(10, 0, 1, 3),
            S,
            4000,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"falun".to_vec(),
        );
        assert_eq!(e.process(t(0), &other).len(), 1);
    }

    #[test]
    fn pass_rules_with_content_are_prefiltered() {
        // 50 pass rules with distinct content predicates must cost nothing
        // on innocuous traffic: their patterns ride the same prefilter scan
        // (ac_bytes_scanned is rule-count-independent) and none is
        // evaluated unless its pattern appears.
        let mut text = String::new();
        for i in 0..50 {
            text.push_str(&format!(
                "pass tcp any any -> any any (msg:\"ok{i}\"; content:\"allowlisted-{i}-end\"; sid:{};)\n",
                200 + i
            ));
        }
        text.push_str("alert tcp any any -> any 80 (msg:\"kw\"; content:\"falun\"; sid:300;)\n");
        let mut e = engine(&text);
        let innocuous = Packet::tcp(C, S, 1, 80, 0, 0, TcpFlags::psh_ack(), b"plain".to_vec());
        for _ in 0..10 {
            assert!(e.process(t(0), &innocuous).is_empty());
        }
        assert_eq!(
            e.stats().pass_evaluations,
            0,
            "no pass rule evaluated without its pattern appearing"
        );
        // 10 per-packet payload scans plus one stream feed (only the first
        // segment appends; the rest are duplicates): rule-count-free.
        assert_eq!(
            e.stats().ac_bytes_scanned,
            11 * b"plain".len() as u64,
            "prefilter cost is payload bytes, independent of rule count"
        );
        // A matching pass pattern still suppresses.
        let allow = Packet::tcp(
            C,
            S,
            1,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"falun allowlisted-7-end".to_vec(),
        );
        assert!(e.process(t(0), &allow).is_empty());
        assert_eq!(e.stats().passed, 1);
        assert_eq!(e.stats().pass_evaluations, 1);
    }

    #[test]
    fn patternless_rules_grouped_by_port() {
        let mut e = engine(
            "alert tcp any any -> any 80 (msg:\"http\"; sid:80;)\n\
             alert tcp any any -> any 443 (msg:\"tls\"; sid:81;)",
        );
        let to81 = Packet::tcp(C, S, 1, 81, 0, 0, TcpFlags::psh_ack(), b"x".to_vec());
        assert!(e.process(t(0), &to81).is_empty());
        assert_eq!(
            e.stats().evaluations,
            0,
            "wrong-port packet pulls no bucket"
        );
        let to80 = Packet::tcp(C, S, 1, 80, 0, 0, TcpFlags::psh_ack(), b"x".to_vec());
        assert_eq!(e.process(t(0), &to80)[0].sid, 80);
        assert_eq!(e.stats().evaluations, 1, "only the port-80 bucket ran");
    }

    #[test]
    fn port_constrained_rule_cannot_match_portless_packet() {
        // An icmp rule with a literal port predicate can never match (ICMP
        // has no ports); the groups cull it before evaluation.
        let mut e = engine(r#"alert icmp any any -> any 80 (msg:"impossible"; sid:82;)"#);
        let ping = Packet::icmp(
            C,
            S,
            underradar_netsim::wire::icmp::IcmpKind::EchoRequest { ident: 1, seq: 1 },
            vec![],
        );
        assert!(e.process(t(0), &ping).is_empty());
        assert_eq!(e.stats().evaluations, 0);
    }

    #[test]
    fn syn_scan_threshold_fires_at_count() {
        let mut e = engine(
            r#"alert tcp any any -> any any (msg:"scan"; flags:S; threshold: type both, track by_src, count 5, seconds 60; sid:20;)"#,
        );
        let mut total = 0;
        for port in 0..10u16 {
            let syn = Packet::tcp(C, S, 40000 + port, 80 + port, 0, 0, TcpFlags::syn(), vec![]);
            total += e.process(t(0), &syn).len();
        }
        assert_eq!(total, 1, "'both' fires exactly once per window");
        // New window after expiry: fires again at the 5th SYN.
        let mut again = 0;
        for port in 0..5u16 {
            let syn = Packet::tcp(C, S, 41000 + port, 80 + port, 0, 0, TcpFlags::syn(), vec![]);
            again += e.process(t(120), &syn).len();
        }
        assert_eq!(again, 1);
    }

    #[test]
    fn threshold_limit_allows_first_n() {
        let mut e = engine(
            r#"alert icmp any any -> any any (msg:"ping"; threshold: type limit, track by_src, count 2, seconds 60; sid:21;)"#,
        );
        let ping = Packet::icmp(
            C,
            S,
            underradar_netsim::wire::icmp::IcmpKind::EchoRequest { ident: 1, seq: 1 },
            vec![],
        );
        let mut fired = 0;
        for _ in 0..6 {
            fired += e.process(t(1), &ping).len();
        }
        assert_eq!(fired, 2);
    }

    #[test]
    fn thresholds_track_sources_independently() {
        let mut e = engine(
            r#"alert tcp any any -> any any (msg:"scan"; flags:S; threshold: type both, track by_src, count 3, seconds 60; sid:22;)"#,
        );
        let c2 = Ipv4Addr::new(10, 0, 1, 99);
        let mut fired_c = 0;
        let mut fired_c2 = 0;
        for i in 0..3u16 {
            let p1 = Packet::tcp(C, S, 40000 + i, 80, 0, 0, TcpFlags::syn(), vec![]);
            let p2 = Packet::tcp(c2, S, 40000 + i, 80, 0, 0, TcpFlags::syn(), vec![]);
            fired_c += e.process(t(0), &p1).len();
            fired_c2 += e.process(t(0), &p2).len();
        }
        assert_eq!(
            (fired_c, fired_c2),
            (1, 1),
            "each source hits its own threshold"
        );
    }

    #[test]
    fn rst_injection_rule_and_teardown_interplay() {
        // A rule watching for server RSTs (how a measurement client's
        // reference censor is validated) fires on the injected RST.
        let mut e =
            engine(r#"alert tcp any 80 -> any any (msg:"rst from server"; flags:R+; sid:30;)"#);
        let rst = Packet::tcp(S, C, 80, 4000, 1, 1, TcpFlags::rst_ack(), vec![]);
        assert_eq!(e.process(t(0), &rst).len(), 1);
    }

    #[test]
    fn prefilter_only_evaluates_plausible_rules() {
        let mut rules_text = String::new();
        for i in 0..50 {
            // "-end" suffix keeps patterns from being prefixes of each other
            // (kw-3 would otherwise also match inside kw-33).
            rules_text.push_str(&format!(
                "alert tcp any any -> any any (msg:\"kw{i}\"; content:\"unique-keyword-{i}-end\"; sid:{};)\n",
                100 + i
            ));
        }
        let mut e = engine(&rules_text);
        let pkt = Packet::tcp(
            C,
            S,
            1,
            2,
            0,
            0,
            TcpFlags::psh_ack(),
            b"unique-keyword-33-end present".to_vec(),
        );
        let alerts = e.process(t(0), &pkt);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].sid, 133);
        // Only the matching rule was fully evaluated.
        assert_eq!(e.stats().evaluations, 1);
    }

    #[test]
    fn udp_and_icmp_rules() {
        let mut e = engine(
            "alert udp any any -> any 53 (msg:\"dns q\"; sid:40;)\n\
             alert icmp any any -> any any (msg:\"icmp\"; sid:41;)",
        );
        let dns = Packet::udp(C, S, 5353, 53, b"query".to_vec());
        let ping = Packet::icmp(
            C,
            S,
            underradar_netsim::wire::icmp::IcmpKind::TimeExceeded,
            vec![],
        );
        assert_eq!(e.process(t(0), &dns)[0].sid, 40);
        assert_eq!(e.process(t(0), &ping)[0].sid, 41);
        assert_eq!(e.log().len(), 2);
    }

    #[test]
    fn ip_rule_matches_raw_protocol_packet() {
        let mut e = engine(r#"alert ip any any -> any any (msg:"any ip"; sid:42;)"#);
        let raw = Packet {
            src: C,
            dst: S,
            ttl: 64,
            ident: 7,
            body: PacketBody::Raw {
                protocol: 99,
                payload: b"p2p-chunk".to_vec(),
            },
        };
        assert_eq!(e.process(t(0), &raw)[0].sid, 42);
    }

    #[test]
    fn negated_content_rule() {
        let mut e = engine(
            r#"alert tcp any any -> any 80 (msg:"no host header"; content:"GET "; content:!"Host:"; sid:50;)"#,
        );
        let without = Packet::tcp(
            C,
            S,
            1,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"GET / HTTP/1.0\r\n\r\n".to_vec(),
        );
        let with = Packet::tcp(
            C,
            S,
            1,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"GET / HTTP/1.0\r\nHost: x\r\n\r\n".to_vec(),
        );
        assert_eq!(e.process(t(0), &without).len(), 1);
        assert!(e.process(t(0), &with).is_empty());
    }

    #[test]
    fn teardown_releases_per_flow_matcher_state() {
        let mut e = engine(
            r#"alert tcp any any -> any 80 (msg:"kw-stream"; flow:established,to_server; content:"falun"; sid:60;)"#,
        );
        handshake(&mut e);
        let d = Packet::tcp(
            C,
            S,
            4000,
            80,
            101,
            501,
            TcpFlags::psh_ack(),
            b"falun".to_vec(),
        );
        assert_eq!(e.process(t(0), &d).len(), 1);
        assert!(
            e.flow_state_count() > 0,
            "matcher state held while flow lives"
        );
        let rst = Packet::tcp(C, S, 4000, 80, 106, 501, TcpFlags::rst(), vec![]);
        let _ = e.process(t(0), &rst);
        assert_eq!(
            e.flow_state_count(),
            0,
            "matcher state dropped with the flow"
        );
        // A new flow on the same 4-tuple is clean: the keyword fires again
        // rather than being suppressed by stale dedup state.
        let syn2 = Packet::tcp(C, S, 4000, 80, 700, 0, TcpFlags::syn(), vec![]);
        let syn_ack2 = Packet::tcp(S, C, 80, 4000, 900, 701, TcpFlags::syn_ack(), vec![]);
        let ack2 = Packet::tcp(C, S, 4000, 80, 701, 901, TcpFlags::ack(), vec![]);
        let _ = e.process(t(1), &syn2);
        let _ = e.process(t(1), &syn_ack2);
        let _ = e.process(t(1), &ack2);
        let d2 = Packet::tcp(
            C,
            S,
            4000,
            80,
            701,
            901,
            TcpFlags::psh_ack(),
            b"falun".to_vec(),
        );
        assert_eq!(e.process(t(1), &d2).len(), 1, "fresh flow, fresh dedup");
    }

    #[test]
    fn stream_keyword_straddling_many_segments() {
        // One byte per segment: only the incremental cursor can see this
        // without rescanning the window each time.
        let mut e = engine(
            r#"alert tcp any any -> any 80 (msg:"kw-stream"; flow:established,to_server; content:"falun"; sid:61;)"#,
        );
        let mut seq = handshake(&mut e);
        let mut fired = 0;
        for b in b"xfalunx" {
            let d = Packet::tcp(C, S, 4000, 80, seq, 501, TcpFlags::psh_ack(), vec![*b]);
            fired += e.process(t(0), &d).len();
            seq = seq.wrapping_add(1);
        }
        assert_eq!(fired, 1);
    }

    #[test]
    fn stream_rule_catches_keyword_delivered_out_of_order() {
        // The keyword's halves arrive reordered; the hold-back queue
        // reassembles them and the cursor sees the spliced tail — no
        // segment carries "falun" on its own.
        let mut e = engine(
            r#"alert tcp any any -> any 80 (msg:"kw-stream"; flow:established,to_server; content:"falun"; sid:62;)"#,
        );
        handshake(&mut e);
        let late = Packet::tcp(
            C,
            S,
            4000,
            80,
            107,
            501,
            TcpFlags::psh_ack(),
            b"lun HTTP".to_vec(),
        );
        assert!(e.process(t(0), &late).is_empty(), "held: gap before it");
        let first = Packet::tcp(
            C,
            S,
            4000,
            80,
            101,
            501,
            TcpFlags::psh_ack(),
            b"GET fa".to_vec(),
        );
        let alerts = e.process(t(0), &first);
        assert_eq!(alerts.len(), 1, "keyword found across reordered segments");
        assert_eq!(alerts[0].sid, 62);
        assert_eq!(e.reassembly_stats().ooo_held, 1);
    }

    #[test]
    fn trace_offset_respects_case_sensitivity() {
        // A case-sensitive rule whose pattern also appears earlier in the
        // wrong case: the recorded offset must point at the exact-case
        // occurrence (the old search used eq_ignore_ascii_case always).
        let mut e = engine(
            r#"alert tcp any any -> any 80 (msg:"cs-stream"; flow:established,to_server; content:"Falun"; sid:90;)"#,
        );
        let tracer = Tracer::with_capacity(16);
        e.set_tracer(tracer.clone());
        handshake(&mut e);
        let d = Packet::tcp(
            C,
            S,
            4000,
            80,
            101,
            501,
            TcpFlags::psh_ack(),
            b"FALUN -- Falun".to_vec(),
        );
        assert_eq!(e.process(t(0), &d).len(), 1);
        let rec = tracer
            .records()
            .into_iter()
            .find(|r| r.kind == "rule_match")
            .expect("rule_match traced");
        assert_eq!(
            rec.field_u64("offset"),
            Some(9),
            "offset names the exact-case occurrence, not the folded one"
        );
    }

    #[test]
    fn batch_processing_matches_per_packet_verdicts() {
        // process_batch must be verdict- and stats-identical to a
        // per-packet loop over the same traffic: same alerts in the same
        // order, same counters, same flow-state footprint.
        let rules = r#"alert tcp any any -> any 80 (msg:"kw-stream"; flow:established,to_server; content:"falun"; sid:500;)
alert tcp any any -> any 80 (msg:"kw-pkt"; content:"tulip"; nocase; sid:501;)
pass tcp 10.0.9.9 any -> any any (msg:"trusted"; sid:502;)"#;
        let mut per_packet = engine(rules);
        let mut batched = engine(rules);
        let trusted = Ipv4Addr::new(10, 0, 9, 9);
        let mut packets = vec![
            Packet::tcp(C, S, 4000, 80, 100, 0, TcpFlags::syn(), vec![]),
            Packet::tcp(S, C, 80, 4000, 500, 101, TcpFlags::syn_ack(), vec![]),
            Packet::tcp(C, S, 4000, 80, 101, 501, TcpFlags::ack(), vec![]),
            Packet::tcp(
                C,
                S,
                4000,
                80,
                101,
                501,
                TcpFlags::psh_ack(),
                b"fal".to_vec(),
            ),
            Packet::tcp(
                C,
                S,
                4000,
                80,
                104,
                501,
                TcpFlags::psh_ack(),
                b"un!".to_vec(),
            ),
            Packet::tcp(C, S, 4001, 80, 0, 0, TcpFlags::psh_ack(), b"TULIP".to_vec()),
            Packet::tcp(
                trusted,
                S,
                1,
                80,
                0,
                0,
                TcpFlags::psh_ack(),
                b"tulip".to_vec(),
            ),
            Packet::tcp(C, S, 4000, 80, 107, 501, TcpFlags::rst(), vec![]),
        ];
        // Also exercise slot recycling inside one batch: a fresh flow on
        // the recycled 4-tuple re-fires the stream rule.
        packets.extend([
            Packet::tcp(C, S, 4000, 80, 900, 0, TcpFlags::syn(), vec![]),
            Packet::tcp(S, C, 80, 4000, 300, 901, TcpFlags::syn_ack(), vec![]),
            Packet::tcp(C, S, 4000, 80, 901, 301, TcpFlags::ack(), vec![]),
            Packet::tcp(
                C,
                S,
                4000,
                80,
                901,
                301,
                TcpFlags::psh_ack(),
                b"falun".to_vec(),
            ),
        ]);
        let mut loop_alerts = Vec::new();
        for p in &packets {
            loop_alerts.extend(per_packet.process(t(0), p));
        }
        let mut batch_alerts = Vec::new();
        batched.process_batch(t(0), &packets, &mut batch_alerts);
        let sids: Vec<u32> = batch_alerts.iter().map(|a| a.sid).collect();
        assert_eq!(sids, vec![500, 501, 500], "stream, packet, recycled-flow");
        assert_eq!(
            loop_alerts.iter().map(|a| a.sid).collect::<Vec<_>>(),
            sids,
            "batched verdicts identical to per-packet"
        );
        let (a, b) = (per_packet.stats(), batched.stats());
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.alerts, b.alerts);
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.ac_bytes_scanned, b.ac_bytes_scanned);
        assert_eq!(per_packet.flow_state_count(), batched.flow_state_count());
    }

    #[test]
    fn recycled_flow_slot_starts_clean() {
        // Arena slot reuse: after teardown the same index is handed to the
        // next flow under a new generation. The dense side table must not
        // leak the old flow's dedup set into it — and flow_state_count must
        // return to zero once the recycled flow also tears down.
        let mut e = engine(
            r#"alert tcp any any -> any 80 (msg:"kw"; flow:established,to_server; content:"falun"; sid:700;)"#,
        );
        for round in 0..5u32 {
            let seq = 100 + round * 1000;
            let syn = Packet::tcp(C, S, 4000, 80, seq, 0, TcpFlags::syn(), vec![]);
            let syn_ack = Packet::tcp(S, C, 80, 4000, 500, seq + 1, TcpFlags::syn_ack(), vec![]);
            let ack = Packet::tcp(C, S, 4000, 80, seq + 1, 501, TcpFlags::ack(), vec![]);
            let data = Packet::tcp(
                C,
                S,
                4000,
                80,
                seq + 1,
                501,
                TcpFlags::psh_ack(),
                b"falun".to_vec(),
            );
            let rst = Packet::tcp(C, S, 4000, 80, seq + 6, 501, TcpFlags::rst(), vec![]);
            let _ = e.process(t(0), &syn);
            let _ = e.process(t(0), &syn_ack);
            let _ = e.process(t(0), &ack);
            assert_eq!(
                e.process(t(0), &data).len(),
                1,
                "round {round}: recycled slot must not inherit dedup"
            );
            let _ = e.process(t(0), &rst);
            assert_eq!(e.flow_state_count(), 0, "round {round}: state released");
        }
        assert_eq!(e.stats().alerts, 5);
    }

    #[test]
    fn engine_honors_reassembly_config() {
        // A two-flow table: the third concurrent flow evicts the oldest,
        // and the evicted flow's matcher state goes with it.
        let rules = parse_ruleset(
            r#"alert tcp any any -> any 80 (msg:"kw"; flow:established,to_server; content:"falun"; sid:800;)"#,
            &VarTable::new(),
        )
        .expect("rules parse");
        let mut e = DetectionEngine::with_reassembly(
            rules,
            crate::stream::ReassemblyConfig {
                max_flows: 2,
                ..Default::default()
            },
        );
        for port in 0..3u16 {
            let syn = Packet::tcp(C, S, 4100 + port, 80, 100, 0, TcpFlags::syn(), vec![]);
            let syn_ack = Packet::tcp(S, C, 80, 4100 + port, 500, 101, TcpFlags::syn_ack(), vec![]);
            let ack = Packet::tcp(C, S, 4100 + port, 80, 101, 501, TcpFlags::ack(), vec![]);
            let data = Packet::tcp(
                C,
                S,
                4100 + port,
                80,
                101,
                501,
                TcpFlags::psh_ack(),
                b"falun".to_vec(),
            );
            let _ = e.process(t(0), &syn);
            let _ = e.process(t(0), &syn_ack);
            let _ = e.process(t(0), &ack);
            assert_eq!(e.process(t(0), &data).len(), 1);
        }
        assert_eq!(e.reassembly_stats().evicted, 1, "third flow evicted one");
        assert_eq!(e.flow_state_count(), 2, "evicted flow's state released");
        assert!(e.flow_memory_bytes() > 0);
    }

    #[test]
    fn trace_offset_for_nocase_rule_finds_first_folded_occurrence() {
        let mut e =
            engine(r#"alert tcp any any -> any 80 (msg:"nc"; content:"falun"; nocase; sid:91;)"#);
        let tracer = Tracer::with_capacity(16);
        e.set_tracer(tracer.clone());
        let d = Packet::tcp(
            C,
            S,
            4000,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"xx FALUN".to_vec(),
        );
        assert_eq!(e.process(t(0), &d).len(), 1);
        let rec = tracer
            .records()
            .into_iter()
            .find(|r| r.kind == "rule_match")
            .expect("rule_match traced");
        assert_eq!(rec.field_u64("offset"), Some(3));
    }
}
