//! The detection engine: rule evaluation over packets and reassembled
//! streams.
//!
//! Architecture mirrors Snort's: a multi-pattern *fast pattern* prefilter
//! (one Aho–Corasick automaton over each rule's first positive content)
//! shortlists candidate rules per packet; candidates are then verified
//! against all header and payload predicates. `pass` rules suppress the
//! packet entirely (Snort's pass-over-alert ordering). `flow`-qualified
//! rules match against the reassembled stream rather than the single
//! segment, with per-flow alert dedup so a keyword firing once does not
//! re-fire on every later segment of the same flow.
//!
//! Stream matching is incremental: each flow direction carries a
//! persistent [`AcStreamState`] cursor into the prefilter automaton, and
//! each in-order segment feeds only its *new* bytes — keywords straddling
//! segment boundaries are still found, without rescanning the buffered
//! window on every packet (the seed rescanned the full direction buffer,
//! and cloned it into the flow context, per segment). Candidate rules are
//! then verified against the borrowed window from
//! [`StreamReassembler::stream_of`]. Per-flow matcher and dedup state is
//! dropped in lockstep with reassembler teardowns, so engine memory is
//! bounded by live flows. One consequence of teardown-before-evaluation:
//! a stream rule can no longer fire on the RST segment itself — by then
//! the buffer is gone, which is precisely the monitor blindness the
//! paper's §4.1 mimicry relies on.

use std::net::Ipv4Addr;

use underradar_netsim::hash::FxHashMap;

use underradar_netsim::packet::Packet;
use underradar_netsim::telemetry::{TraceRecord, Tracer};
use underradar_netsim::time::{SimDuration, SimTime};

use crate::aho::{AcStreamState, AhoCorasick};
use crate::alert::{Alert, AlertLog};
use crate::rule::{FlowOption, Rule, RuleAction, ThresholdKind};
use crate::stream::{Direction, FlowContext, FlowKey, StreamReassembler};

/// Engine statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Packets processed.
    pub packets: u64,
    /// Rules fully evaluated (post-prefilter).
    pub evaluations: u64,
    /// Alerts raised.
    pub alerts: u64,
    /// Packets suppressed by `pass` rules.
    pub passed: u64,
    /// Bytes fed through the Aho–Corasick prefilter (per-packet scans plus
    /// incremental stream cursor feeds).
    pub ac_bytes_scanned: u64,
}

#[derive(Debug, Clone, Copy)]
struct ThresholdState {
    window_start: SimTime,
    count: u32,
    alerted_in_window: u32,
}

/// Per-flow-direction incremental match state: the automaton cursor plus
/// the rules whose fast pattern has appeared anywhere in the stream.
#[derive(Debug, Default)]
struct StreamMatchState {
    ac: AcStreamState,
    seen: Vec<usize>,
}

/// A Snort-like detection engine over a fixed ruleset.
pub struct DetectionEngine {
    rules: Vec<Rule>,
    /// Prefilter automaton over fast patterns; `prefilter_rule[i]` is the
    /// rule index for automaton pattern `i`.
    prefilter: AhoCorasick,
    prefilter_rule: Vec<usize>,
    /// Rules with no usable fast pattern: always evaluated.
    unfiltered: Vec<usize>,
    /// Indexes of pass rules (checked first).
    pass_rules: Vec<usize>,
    reassembler: StreamReassembler,
    thresholds: FxHashMap<(u32, Ipv4Addr), ThresholdState>,
    /// Incremental prefilter state per live flow direction.
    flow_streams: FxHashMap<(FlowKey, Direction), StreamMatchState>,
    /// Stream-rule dedup: sids already alerted per live flow.
    flow_alerted: FxHashMap<FlowKey, Vec<u32>>,
    log: AlertLog,
    stats: EngineStats,
    /// Flight recorder for rule-match decisions; disabled by default.
    tracer: Tracer,
}

impl DetectionEngine {
    /// Compile an engine from a ruleset.
    pub fn new(rules: Vec<Rule>) -> DetectionEngine {
        let mut patterns = Vec::new();
        let mut prefilter_rule = Vec::new();
        let mut unfiltered = Vec::new();
        let mut pass_rules = Vec::new();
        for (idx, rule) in rules.iter().enumerate() {
            if rule.action == RuleAction::Pass {
                pass_rules.push(idx);
                continue;
            }
            match rule.fast_pattern() {
                Some(c) => {
                    patterns.push((c.pattern.clone(), c.nocase));
                    prefilter_rule.push(idx);
                }
                None => unfiltered.push(idx),
            }
        }
        let mut reassembler = StreamReassembler::new();
        reassembler.track_removals(true);
        DetectionEngine {
            prefilter: AhoCorasick::new(&patterns),
            prefilter_rule,
            unfiltered,
            pass_rules,
            rules,
            reassembler,
            thresholds: FxHashMap::default(),
            flow_streams: FxHashMap::default(),
            flow_alerted: FxHashMap::default(),
            log: AlertLog::new(),
            stats: EngineStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Disable RST-teardown in the reassembler (ablation knob).
    pub fn set_rst_teardown(&mut self, on: bool) {
        self.reassembler.rst_teardown = on;
    }

    /// Attach a flight-recorder handle; rule matches record under the
    /// `engine` stage and the reassembler's decisions under `stream`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.reassembler.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The alert log.
    pub fn log(&self) -> &AlertLog {
        &self.log
    }

    /// Engine statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Reassembler statistics.
    pub fn reassembly_stats(&self) -> crate::stream::ReassemblyStats {
        self.reassembler.stats()
    }

    /// Number of per-flow-direction matcher states currently held
    /// (introspection for leak tests; bounded by 2 × live flows).
    pub fn flow_state_count(&self) -> usize {
        self.flow_streams.len()
    }

    /// The compiled rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Mirror engine, reassembler and flow-state totals into `tel` under
    /// `<prefix>.…` names. Idempotent (absolute totals), so it can be
    /// called at any point; `prefix` distinguishes multiple engines (e.g.
    /// `ids` for a monitor, `surveil.engine` for the MVR's).
    pub fn export_telemetry(&self, tel: &underradar_telemetry::Telemetry, prefix: &str) {
        if !tel.is_enabled() {
            return;
        }
        let s = self.stats;
        tel.set_counter(&format!("{prefix}.packets"), s.packets);
        tel.set_counter(&format!("{prefix}.evaluations"), s.evaluations);
        tel.set_counter(&format!("{prefix}.alerts"), s.alerts);
        tel.set_counter(&format!("{prefix}.passed"), s.passed);
        tel.set_counter(&format!("{prefix}.ac_bytes_scanned"), s.ac_bytes_scanned);
        let r = self.reassembler.stats();
        tel.set_counter(&format!("{prefix}.flows.created"), r.flows_created);
        tel.set_counter(&format!("{prefix}.flows.evicted"), r.evicted);
        tel.set_counter(&format!("{prefix}.flows.rst_teardowns"), r.rst_teardowns);
        tel.set_counter(&format!("{prefix}.flows.fin_teardowns"), r.fin_teardowns);
        tel.set_counter(&format!("{prefix}.flows.removals"), r.removals);
        tel.set_counter(&format!("{prefix}.segments"), r.segments);
        tel.set_counter(&format!("{prefix}.bytes_appended"), r.bytes_appended);
        tel.set_counter(&format!("{prefix}.bytes_copied"), r.bytes_copied());
        tel.set_counter(&format!("{prefix}.reassembly.ooo_held"), r.ooo_held);
        tel.set_counter(&format!("{prefix}.reassembly.ooo_dropped"), r.ooo_dropped);
        tel.set_counter(
            &format!("{prefix}.reassembly.overlap_trimmed"),
            r.overlap_trimmed,
        );
        tel.set_counter(&format!("{prefix}.reassembly.dup_ignored"), r.dup_ignored);
        tel.set_gauge(
            &format!("{prefix}.flows.live"),
            self.reassembler.flow_count() as i64,
        );
        tel.set_gauge(
            &format!("{prefix}.flow_match_states"),
            self.flow_streams.len() as i64,
        );
    }

    /// Process one packet; returns the alerts it raised (also appended to
    /// the log).
    pub fn process(&mut self, now: SimTime, packet: &Packet) -> Vec<Alert> {
        self.stats.packets += 1;
        if self.tracer.is_live() {
            self.reassembler.set_now(now.as_nanos());
        }
        let flow_ctx = self.reassembler.process(packet);

        // Feed newly appended stream bytes to the flow's persistent
        // prefilter cursor, then drop state for flows this packet tore down
        // (RST / completed close / eviction).
        let payload = packet.body.payload();
        if let Some(ctx) = &flow_ctx {
            if ctx.appended {
                // Feed the newly reassembled tail, not the raw segment:
                // with hold-back and overlap trimming the appended bytes
                // can differ from this segment's payload in both content
                // and length.
                let view = self.reassembler.stream_of(&ctx.key, ctx.direction);
                let tail = &view[view.len() - ctx.new_bytes.min(view.len())..];
                self.stats.ac_bytes_scanned += tail.len() as u64;
                let st = self
                    .flow_streams
                    .entry((ctx.key, ctx.direction))
                    .or_default();
                let StreamMatchState { ac, seen } = st;
                let prefilter_rule = &self.prefilter_rule;
                self.prefilter.feed(ac, tail, |p| {
                    let rule_idx = prefilter_rule[p];
                    if !seen.contains(&rule_idx) {
                        seen.push(rule_idx);
                    }
                });
            }
        }
        for key in self.reassembler.take_removed() {
            self.flow_streams.remove(&(key, Direction::ToServer));
            self.flow_streams.remove(&(key, Direction::ToClient));
            self.flow_alerted.remove(&key);
        }

        // The reassembled window for this segment's direction — borrowed,
        // never cloned.
        let stream: &[u8] = match &flow_ctx {
            Some(ctx) => self.reassembler.stream_of(&ctx.key, ctx.direction),
            None => &[],
        };

        // Pass rules win over everything.
        for &idx in &self.pass_rules {
            let rule = &self.rules[idx];
            if Self::rule_matches(rule, packet, flow_ctx.as_ref(), stream) {
                self.stats.passed += 1;
                return Vec::new();
            }
        }

        // Candidate set: prefilter over this packet's payload, rules whose
        // fast pattern has appeared in the flow's stream (incremental), and
        // rules with no fast pattern.
        self.stats.ac_bytes_scanned += payload.len() as u64;
        let mut candidates: Vec<usize> = self
            .prefilter
            .matching_patterns(payload)
            .into_iter()
            .map(|p| self.prefilter_rule[p])
            .collect();
        if let Some(ctx) = &flow_ctx {
            if let Some(st) = self.flow_streams.get(&(ctx.key, ctx.direction)) {
                candidates.extend_from_slice(&st.seen);
            }
        }
        candidates.extend_from_slice(&self.unfiltered);
        candidates.sort_unstable();
        candidates.dedup();

        let mut fired = Vec::new();
        for idx in candidates {
            self.stats.evaluations += 1;
            let rule = &self.rules[idx];
            if !Self::rule_matches(rule, packet, flow_ctx.as_ref(), stream) {
                continue;
            }
            // Per-flow dedup for stream-matched rules.
            if !rule.flow.is_empty() {
                if let Some(ctx) = &flow_ctx {
                    let sids = self.flow_alerted.entry(ctx.key).or_default();
                    if sids.contains(&rule.sid) {
                        continue;
                    }
                    sids.push(rule.sid);
                }
            }
            // Threshold suppression.
            if let Some(t) = rule.threshold {
                let track = if t.track_by_src {
                    packet.src
                } else {
                    packet.dst
                };
                let state = self
                    .thresholds
                    .entry((rule.sid, track))
                    .or_insert(ThresholdState {
                        window_start: now,
                        count: 0,
                        alerted_in_window: 0,
                    });
                if now.saturating_since(state.window_start)
                    > SimDuration::from_secs(u64::from(t.seconds))
                {
                    state.window_start = now;
                    state.count = 0;
                    state.alerted_in_window = 0;
                }
                state.count += 1;
                let fire = match t.kind {
                    ThresholdKind::Limit => state.count <= t.count,
                    ThresholdKind::Threshold => t.count > 0 && state.count.is_multiple_of(t.count),
                    ThresholdKind::Both => state.count == t.count,
                };
                if !fire {
                    continue;
                }
                state.alerted_in_window += 1;
            }
            let rule = &self.rules[idx];
            let alert = Alert {
                time: now,
                sid: rule.sid,
                msg: rule.msg.clone(),
                action: rule.action,
                src: packet.src,
                src_port: packet.src_port(),
                dst: packet.dst,
                dst_port: packet.dst_port(),
                classtype: rule.classtype.clone(),
            };
            self.stats.alerts += 1;
            if self.tracer.is_live() {
                // Byte offset of the matched fast pattern within the
                // buffered stream window (the window search is paid only
                // while tracing).
                let offset = rule
                    .fast_pattern()
                    .and_then(|c| {
                        let needle: &[u8] = &c.pattern;
                        stream
                            .windows(needle.len().max(1))
                            .position(|w| w.eq_ignore_ascii_case(needle))
                    })
                    .unwrap_or(0) as u64;
                self.tracer.record(TraceRecord {
                    t_ns: now.as_nanos(),
                    seq: 0,
                    stage: "engine",
                    kind: "rule_match",
                    flow: Some(packet.trace_flow()),
                    fields: vec![
                        ("sid", u64::from(rule.sid).into()),
                        ("offset", offset.into()),
                        ("msg", rule.msg.clone().into()),
                    ],
                });
            }
            self.log.push(alert.clone());
            fired.push(alert);
        }
        fired
    }

    fn rule_matches(
        rule: &Rule,
        packet: &Packet,
        flow: Option<&FlowContext>,
        stream: &[u8],
    ) -> bool {
        if !rule.header_matches(packet) || !rule.flags_match(packet) {
            return false;
        }
        // Flow constraints.
        if !rule.flow.is_empty() {
            let Some(ctx) = flow else { return false };
            for f in &rule.flow {
                let ok = match f {
                    FlowOption::Established => ctx.established,
                    FlowOption::ToServer => ctx.direction == Direction::ToServer,
                    FlowOption::ToClient => ctx.direction == Direction::ToClient,
                };
                if !ok {
                    return false;
                }
            }
            // Stream-qualified rules match the reassembled stream.
            return rule.payload_matches(stream);
        }
        rule.payload_matches(packet.body.payload())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_ruleset, VarTable};
    use underradar_netsim::wire::tcp::TcpFlags;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
    const S: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

    fn engine(rules_text: &str) -> DetectionEngine {
        let rules = parse_ruleset(rules_text, &VarTable::new()).expect("rules parse");
        DetectionEngine::new(rules)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn keyword_rule_fires_on_packet_payload() {
        let mut e =
            engine(r#"alert tcp any any -> any 80 (msg:"kw"; content:"falun"; nocase; sid:1;)"#);
        let pkt = Packet::tcp(
            C,
            S,
            4000,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"GET /FALUN".to_vec(),
        );
        let alerts = e.process(t(0), &pkt);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].sid, 1);
        let miss = Packet::tcp(
            C,
            S,
            4000,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"GET /news".to_vec(),
        );
        assert!(e.process(t(0), &miss).is_empty());
    }

    #[test]
    fn stream_rule_catches_split_keyword() {
        let mut e = engine(
            r#"alert tcp any any -> any 80 (msg:"kw-stream"; flow:established,to_server; content:"falun"; sid:2;)"#,
        );
        // Handshake.
        let syn = Packet::tcp(C, S, 4000, 80, 100, 0, TcpFlags::syn(), vec![]);
        let syn_ack = Packet::tcp(S, C, 80, 4000, 500, 101, TcpFlags::syn_ack(), vec![]);
        let ack = Packet::tcp(C, S, 4000, 80, 101, 501, TcpFlags::ack(), vec![]);
        assert!(e.process(t(0), &syn).is_empty());
        assert!(e.process(t(0), &syn_ack).is_empty());
        assert!(e.process(t(0), &ack).is_empty());
        // Keyword split across two segments: per-segment matching cannot
        // see it, stream matching can.
        let d1 = Packet::tcp(
            C,
            S,
            4000,
            80,
            101,
            501,
            TcpFlags::psh_ack(),
            b"GET /fal".to_vec(),
        );
        let d2 = Packet::tcp(
            C,
            S,
            4000,
            80,
            109,
            501,
            TcpFlags::psh_ack(),
            b"un HTTP".to_vec(),
        );
        assert!(e.process(t(0), &d1).is_empty());
        let alerts = e.process(t(0), &d2);
        assert_eq!(alerts.len(), 1, "reassembled match");
        // Dedup: more segments on the same flow do not re-fire.
        let d3 = Packet::tcp(
            C,
            S,
            4000,
            80,
            116,
            501,
            TcpFlags::psh_ack(),
            b" again falun".to_vec(),
        );
        assert!(e.process(t(0), &d3).is_empty());
    }

    #[test]
    fn established_required_rule_ignores_bare_segments() {
        let mut e = engine(
            r#"alert tcp any any -> any 80 (msg:"est"; flow:established; content:"x"; sid:3;)"#,
        );
        // Data with no observed handshake: flow exists but not established.
        let d = Packet::tcp(C, S, 4000, 80, 5, 0, TcpFlags::psh_ack(), b"xxx".to_vec());
        assert!(e.process(t(0), &d).is_empty());
    }

    #[test]
    fn pass_rule_suppresses_alerts() {
        let mut e = engine(
            "pass tcp 10.0.1.2 any -> any any (msg:\"trusted\"; sid:10;)\n\
             alert tcp any any -> any 80 (msg:\"kw\"; content:\"falun\"; sid:11;)",
        );
        let pkt = Packet::tcp(C, S, 4000, 80, 0, 0, TcpFlags::psh_ack(), b"falun".to_vec());
        assert!(e.process(t(0), &pkt).is_empty());
        assert_eq!(e.stats().passed, 1);
        let other = Packet::tcp(
            Ipv4Addr::new(10, 0, 1, 3),
            S,
            4000,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"falun".to_vec(),
        );
        assert_eq!(e.process(t(0), &other).len(), 1);
    }

    #[test]
    fn syn_scan_threshold_fires_at_count() {
        let mut e = engine(
            r#"alert tcp any any -> any any (msg:"scan"; flags:S; threshold: type both, track by_src, count 5, seconds 60; sid:20;)"#,
        );
        let mut total = 0;
        for port in 0..10u16 {
            let syn = Packet::tcp(C, S, 40000 + port, 80 + port, 0, 0, TcpFlags::syn(), vec![]);
            total += e.process(t(0), &syn).len();
        }
        assert_eq!(total, 1, "'both' fires exactly once per window");
        // New window after expiry: fires again at the 5th SYN.
        let mut again = 0;
        for port in 0..5u16 {
            let syn = Packet::tcp(C, S, 41000 + port, 80 + port, 0, 0, TcpFlags::syn(), vec![]);
            again += e.process(t(120), &syn).len();
        }
        assert_eq!(again, 1);
    }

    #[test]
    fn threshold_limit_allows_first_n() {
        let mut e = engine(
            r#"alert icmp any any -> any any (msg:"ping"; threshold: type limit, track by_src, count 2, seconds 60; sid:21;)"#,
        );
        let ping = Packet::icmp(
            C,
            S,
            underradar_netsim::wire::icmp::IcmpKind::EchoRequest { ident: 1, seq: 1 },
            vec![],
        );
        let mut fired = 0;
        for _ in 0..6 {
            fired += e.process(t(1), &ping).len();
        }
        assert_eq!(fired, 2);
    }

    #[test]
    fn thresholds_track_sources_independently() {
        let mut e = engine(
            r#"alert tcp any any -> any any (msg:"scan"; flags:S; threshold: type both, track by_src, count 3, seconds 60; sid:22;)"#,
        );
        let c2 = Ipv4Addr::new(10, 0, 1, 99);
        let mut fired_c = 0;
        let mut fired_c2 = 0;
        for i in 0..3u16 {
            let p1 = Packet::tcp(C, S, 40000 + i, 80, 0, 0, TcpFlags::syn(), vec![]);
            let p2 = Packet::tcp(c2, S, 40000 + i, 80, 0, 0, TcpFlags::syn(), vec![]);
            fired_c += e.process(t(0), &p1).len();
            fired_c2 += e.process(t(0), &p2).len();
        }
        assert_eq!(
            (fired_c, fired_c2),
            (1, 1),
            "each source hits its own threshold"
        );
    }

    #[test]
    fn rst_injection_rule_and_teardown_interplay() {
        // A rule watching for server RSTs (how a measurement client's
        // reference censor is validated) fires on the injected RST.
        let mut e =
            engine(r#"alert tcp any 80 -> any any (msg:"rst from server"; flags:R+; sid:30;)"#);
        let rst = Packet::tcp(S, C, 80, 4000, 1, 1, TcpFlags::rst_ack(), vec![]);
        assert_eq!(e.process(t(0), &rst).len(), 1);
    }

    #[test]
    fn prefilter_only_evaluates_plausible_rules() {
        let mut rules_text = String::new();
        for i in 0..50 {
            // "-end" suffix keeps patterns from being prefixes of each other
            // (kw-3 would otherwise also match inside kw-33).
            rules_text.push_str(&format!(
                "alert tcp any any -> any any (msg:\"kw{i}\"; content:\"unique-keyword-{i}-end\"; sid:{};)\n",
                100 + i
            ));
        }
        let mut e = engine(&rules_text);
        let pkt = Packet::tcp(
            C,
            S,
            1,
            2,
            0,
            0,
            TcpFlags::psh_ack(),
            b"unique-keyword-33-end present".to_vec(),
        );
        let alerts = e.process(t(0), &pkt);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].sid, 133);
        // Only the matching rule was fully evaluated.
        assert_eq!(e.stats().evaluations, 1);
    }

    #[test]
    fn udp_and_icmp_rules() {
        let mut e = engine(
            "alert udp any any -> any 53 (msg:\"dns q\"; sid:40;)\n\
             alert icmp any any -> any any (msg:\"icmp\"; sid:41;)",
        );
        let dns = Packet::udp(C, S, 5353, 53, b"query".to_vec());
        let ping = Packet::icmp(
            C,
            S,
            underradar_netsim::wire::icmp::IcmpKind::TimeExceeded,
            vec![],
        );
        assert_eq!(e.process(t(0), &dns)[0].sid, 40);
        assert_eq!(e.process(t(0), &ping)[0].sid, 41);
        assert_eq!(e.log().len(), 2);
    }

    #[test]
    fn negated_content_rule() {
        let mut e = engine(
            r#"alert tcp any any -> any 80 (msg:"no host header"; content:"GET "; content:!"Host:"; sid:50;)"#,
        );
        let without = Packet::tcp(
            C,
            S,
            1,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"GET / HTTP/1.0\r\n\r\n".to_vec(),
        );
        let with = Packet::tcp(
            C,
            S,
            1,
            80,
            0,
            0,
            TcpFlags::psh_ack(),
            b"GET / HTTP/1.0\r\nHost: x\r\n\r\n".to_vec(),
        );
        assert_eq!(e.process(t(0), &without).len(), 1);
        assert!(e.process(t(0), &with).is_empty());
    }

    #[test]
    fn teardown_releases_per_flow_matcher_state() {
        let mut e = engine(
            r#"alert tcp any any -> any 80 (msg:"kw-stream"; flow:established,to_server; content:"falun"; sid:60;)"#,
        );
        let syn = Packet::tcp(C, S, 4000, 80, 100, 0, TcpFlags::syn(), vec![]);
        let syn_ack = Packet::tcp(S, C, 80, 4000, 500, 101, TcpFlags::syn_ack(), vec![]);
        let ack = Packet::tcp(C, S, 4000, 80, 101, 501, TcpFlags::ack(), vec![]);
        let _ = e.process(t(0), &syn);
        let _ = e.process(t(0), &syn_ack);
        let _ = e.process(t(0), &ack);
        let d = Packet::tcp(
            C,
            S,
            4000,
            80,
            101,
            501,
            TcpFlags::psh_ack(),
            b"falun".to_vec(),
        );
        assert_eq!(e.process(t(0), &d).len(), 1);
        assert!(
            e.flow_state_count() > 0,
            "matcher state held while flow lives"
        );
        let rst = Packet::tcp(C, S, 4000, 80, 106, 501, TcpFlags::rst(), vec![]);
        let _ = e.process(t(0), &rst);
        assert_eq!(
            e.flow_state_count(),
            0,
            "matcher state dropped with the flow"
        );
        // A new flow on the same 4-tuple is clean: the keyword fires again
        // rather than being suppressed by stale dedup state.
        let syn2 = Packet::tcp(C, S, 4000, 80, 700, 0, TcpFlags::syn(), vec![]);
        let syn_ack2 = Packet::tcp(S, C, 80, 4000, 900, 701, TcpFlags::syn_ack(), vec![]);
        let ack2 = Packet::tcp(C, S, 4000, 80, 701, 901, TcpFlags::ack(), vec![]);
        let _ = e.process(t(1), &syn2);
        let _ = e.process(t(1), &syn_ack2);
        let _ = e.process(t(1), &ack2);
        let d2 = Packet::tcp(
            C,
            S,
            4000,
            80,
            701,
            901,
            TcpFlags::psh_ack(),
            b"falun".to_vec(),
        );
        assert_eq!(e.process(t(1), &d2).len(), 1, "fresh flow, fresh dedup");
    }

    #[test]
    fn stream_keyword_straddling_many_segments() {
        // One byte per segment: only the incremental cursor can see this
        // without rescanning the window each time.
        let mut e = engine(
            r#"alert tcp any any -> any 80 (msg:"kw-stream"; flow:established,to_server; content:"falun"; sid:61;)"#,
        );
        let syn = Packet::tcp(C, S, 4000, 80, 100, 0, TcpFlags::syn(), vec![]);
        let syn_ack = Packet::tcp(S, C, 80, 4000, 500, 101, TcpFlags::syn_ack(), vec![]);
        let ack = Packet::tcp(C, S, 4000, 80, 101, 501, TcpFlags::ack(), vec![]);
        let _ = e.process(t(0), &syn);
        let _ = e.process(t(0), &syn_ack);
        let _ = e.process(t(0), &ack);
        let mut fired = 0;
        let mut seq = 101u32;
        for b in b"xfalunx" {
            let d = Packet::tcp(C, S, 4000, 80, seq, 501, TcpFlags::psh_ack(), vec![*b]);
            fired += e.process(t(0), &d).len();
            seq = seq.wrapping_add(1);
        }
        assert_eq!(fired, 1);
    }

    #[test]
    fn stream_rule_catches_keyword_delivered_out_of_order() {
        // The keyword's halves arrive reordered; the hold-back queue
        // reassembles them and the cursor sees the spliced tail — no
        // segment carries "falun" on its own.
        let mut e = engine(
            r#"alert tcp any any -> any 80 (msg:"kw-stream"; flow:established,to_server; content:"falun"; sid:62;)"#,
        );
        let syn = Packet::tcp(C, S, 4000, 80, 100, 0, TcpFlags::syn(), vec![]);
        let syn_ack = Packet::tcp(S, C, 80, 4000, 500, 101, TcpFlags::syn_ack(), vec![]);
        let ack = Packet::tcp(C, S, 4000, 80, 101, 501, TcpFlags::ack(), vec![]);
        let _ = e.process(t(0), &syn);
        let _ = e.process(t(0), &syn_ack);
        let _ = e.process(t(0), &ack);
        let late = Packet::tcp(
            C,
            S,
            4000,
            80,
            107,
            501,
            TcpFlags::psh_ack(),
            b"lun HTTP".to_vec(),
        );
        assert!(e.process(t(0), &late).is_empty(), "held: gap before it");
        let first = Packet::tcp(
            C,
            S,
            4000,
            80,
            101,
            501,
            TcpFlags::psh_ack(),
            b"GET fa".to_vec(),
        );
        let alerts = e.process(t(0), &first);
        assert_eq!(alerts.len(), 1, "keyword found across reordered segments");
        assert_eq!(alerts[0].sid, 62);
        assert_eq!(e.reassembly_stats().ooo_held, 1);
    }
}
