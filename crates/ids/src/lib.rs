#![warn(missing_docs)]
// Library paths must surface failures as typed errors or documented
// invariant expects — never bare unwraps (test code is exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # underradar-ids
//!
//! A Snort-like signature-based intrusion detection engine.
//!
//! The paper models *both* reference systems as off-path signature IDSes
//! ("we know from leaked documents that the NSA surveillance system and GFC
//! are functionally off-path, signature-based IDS systems, like Snort",
//! §3.2.1). This crate supplies that engine:
//!
//! * [`rule`]/[`parser`] — a Snort-dialect rule language: actions, protocol
//!   and address/port predicates with `$VAR` substitution and negation,
//!   `content` matches with `nocase`/`offset`/`depth`, TCP `flags`,
//!   `dsize`, `flow` state, and `threshold` rate limiting.
//! * [`aho`] — a from-scratch Aho–Corasick multi-pattern matcher (kept as
//!   the reference implementation and substring-search helper).
//! * [`dfa`] — the same automaton flattened into a dense byte-classed DFA
//!   with a root-row skip loop: the fast-pattern prefilter actually used
//!   by the engine and the tap censor (Snort's architecture, at GB/s).
//! * [`stream`] — TCP stream reassembly with the RST-teardown semantics the
//!   paper's stateful mimicry exploits (§4.1): a RST makes the reassembler
//!   stop looking at the flow.
//! * [`engine`] — rule evaluation over packets and reassembled streams,
//!   producing [`alert::Alert`]s.

pub mod aho;
pub mod alert;
pub mod dfa;
pub mod engine;
pub mod lru;
pub mod parser;
pub mod rule;
pub mod stream;

pub use aho::AhoCorasick;
pub use alert::{Alert, AlertLog};
pub use dfa::PrefilterDfa;
pub use engine::DetectionEngine;
pub use parser::{parse_rule, parse_ruleset, RuleParseError};
pub use rule::{
    AddrSpec, ContentMatch, FlowOption, PortSpec, Proto, Rule, RuleAction, ThresholdKind,
    ThresholdOption,
};
pub use stream::{FlowKey, StreamReassembler};
