//! A dense, byte-classed DFA built from a set of fast patterns: the
//! engine's multi-pattern prefilter.
//!
//! The [`crate::aho`] Aho–Corasick matcher is correct but walks a
//! `Vec<[u32; 256]>` goto table through two automata (case-sensitive and
//! case-folded), which tops out around 400 MB/s. This module flattens a
//! single *case-folded* Aho–Corasick automaton into the classic dense-DFA
//! layout so the inner loop is one table load per input byte:
//!
//! * **Case folding is baked into the byte-class map** — every pattern is
//!   lowered at build time and `cls[b]` maps a raw input byte to the class
//!   of its folded value, so the scan loop never folds. Case-sensitive
//!   patterns therefore *over-trigger* on differently-cased occurrences;
//!   callers confirm the exact bytes at the reported end offset (the
//!   engine does, against the packet payload or stream window) before
//!   treating a hit as real.
//! * **Byte-class alphabet** — input bytes that appear in no pattern share
//!   class 0, whose column is all-root; the table is `nstates × nclasses`
//!   instead of `nstates × 256`, which keeps 500-rule tables inside L2.
//! * **Interleaved premultiplied rows** — a state is stored as its row
//!   base (`state × nclasses`) with bit 31 flagging match states, so a
//!   transition is `trans[base + cls[b]]` with no multiply and the match
//!   check is one bit test.
//! * **Root-row skip loop** — a 256-entry row specialised for state 0
//!   (indexed by the *raw* byte, folding included). While the automaton
//!   sits in the root state — the overwhelmingly common case on
//!   non-matching traffic — the next load depends only on the input byte,
//!   not on the previous state, which breaks the DFA's serial dependency
//!   chain and lets the loads pipeline.
//!
//! Streaming works exactly as in [`crate::aho`]: a cursor is a bare `u32`
//! (the encoded state), fed chunk-by-chunk with [`PrefilterDfa::feed`], so
//! patterns straddling TCP segment boundaries are still found.

use std::collections::VecDeque;

/// Bit 31 of an encoded state: set when the state has pattern outputs.
const MATCH_BIT: u32 = 1 << 31;
/// The encoded state's row base (`state × nclasses`).
const STATE_MASK: u32 = MATCH_BIT - 1;
/// Trie-construction sentinel for "no edge".
const NONE: u32 = u32::MAX;

/// The start-of-stream cursor value for [`PrefilterDfa::feed`].
pub const DFA_START: u32 = 0;

/// A dense byte-classed DFA over a fixed set of case-folded patterns.
///
/// Pattern ids are the indices into the slice passed to
/// [`PrefilterDfa::new`]; empty patterns are accepted but never match.
pub struct PrefilterDfa {
    /// Raw input byte → byte class of its case-folded value.
    cls: [u8; 256],
    /// Number of byte classes (class 0 = bytes in no pattern).
    nclasses: u32,
    /// Interleaved transition rows: `trans[base + cls[b]]` is the encoded
    /// next state (premultiplied base | `MATCH_BIT`).
    trans: Vec<u32>,
    /// State 0's transitions indexed by raw byte (folding baked in).
    root: Box<[u32; 256]>,
    /// `root_live[b] != 0` iff `root[b] != 0` — byte `b` moves the
    /// automaton off the root state (or matches a 1-byte pattern). A
    /// compact u8 mirror of `root` so the skip loop below can OR eight
    /// lookups together per iteration.
    root_live: Box<[u8; 256]>,
    /// Little-endian byte-*pair* liveness: `pair_live[b0 | b1 << 8] == 0`
    /// iff consuming `b0` then `b1` from the root state ends back at the
    /// root with no match at either step — the pair is exactly skippable.
    /// This is what makes the skip loop fast on real traffic: a pattern's
    /// first byte followed by a non-continuation byte (e.g. the `p` of
    /// "report" against `pattern-…` rules) returns to root *within* the
    /// pair instead of breaking the bulk loop, so near-miss bytes cost
    /// nothing. 64 KB, built by composing the (much smaller) class-pair
    /// table.
    pair_live: Box<[u8; 65536]>,
    /// Per-state output ranges into `out_ids`; length `nstates + 1`.
    out_start: Vec<u32>,
    /// Flattened pattern outputs (own plus fail-chain, precomputed).
    out_ids: Vec<u32>,
    nstates: u32,
    npatterns: usize,
}

impl PrefilterDfa {
    /// Build the DFA from `patterns`. Patterns are case-folded internally;
    /// matching is therefore ASCII-case-insensitive (see module docs for
    /// how case-sensitive callers confirm hits).
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> PrefilterDfa {
        // 1. Byte classes first: one class per distinct folded pattern
        //    byte, class 0 for everything else. Knowing the alphabet up
        //    front lets every later stage — trie, BFS, dense table — work
        //    over `nclasses`-wide rows instead of 256-wide ones, which is
        //    what keeps engine construction cheap enough to run per trial.
        let mut class_of = [0u8; 256];
        let mut nclasses: u32 = 1;
        for pat in patterns {
            for &b in pat.as_ref() {
                let b = b.to_ascii_lowercase() as usize;
                if class_of[b] == 0 {
                    class_of[b] = nclasses as u8;
                    nclasses += 1;
                }
            }
        }
        let mut cls = [0u8; 256];
        for b in 0..256u16 {
            cls[b as usize] = class_of[(b as u8).to_ascii_lowercase() as usize];
        }
        let nc = nclasses as usize;

        // 2. Trie over the folded patterns, class-indexed rows in one
        //    arena (transient: the encoded table below is what survives).
        //    Class 0 never gets an edge — no pattern contains such a byte.
        let mut goto_: Vec<u32> = vec![NONE; nc];
        let mut out: Vec<Vec<u32>> = vec![Vec::new()];
        for (id, pat) in patterns.iter().enumerate() {
            let pat = pat.as_ref();
            if pat.is_empty() {
                continue;
            }
            let mut s = 0usize;
            for &b in pat {
                let c = class_of[b.to_ascii_lowercase() as usize] as usize;
                let next = goto_[s * nc + c];
                s = if next == NONE {
                    goto_.resize(goto_.len() + nc, NONE);
                    out.push(Vec::new());
                    let n = (out.len() - 1) as u32;
                    goto_[s * nc + c] = n;
                    n as usize
                } else {
                    next as usize
                };
            }
            out[s].push(id as u32);
        }

        // 3. BFS failure links; complete the goto function in place and
        //    merge fail-chain outputs (the fail state is always processed
        //    before its dependents, being strictly shallower). Unreached
        //    columns — class 0 everywhere, and classes with no edge from
        //    a state's fail chain — complete to the root, state 0.
        let nstates = out.len() as u32;
        let mut fail = vec![0u32; nstates as usize];
        let mut queue = VecDeque::new();
        for slot in goto_.iter_mut().take(nc) {
            let t = *slot;
            if t == NONE {
                *slot = 0;
            } else {
                fail[t as usize] = 0;
                queue.push_back(t);
            }
        }
        while let Some(s) = queue.pop_front() {
            let f = fail[s as usize] as usize;
            let inherited = out[f].clone();
            out[s as usize].extend(inherited);
            for c in 0..nc {
                let t = goto_[s as usize * nc + c];
                if t == NONE {
                    goto_[s as usize * nc + c] = goto_[f * nc + c];
                } else {
                    fail[t as usize] = goto_[f * nc + c];
                    queue.push_back(t);
                }
            }
        }

        // 4. Dense interleaved table with premultiplied, match-flagged
        //    entries; specialise state 0 into a raw-byte-indexed row.
        let enc = |t: u32| -> u32 {
            let base = t * nclasses;
            debug_assert!(base < MATCH_BIT, "state table exceeds encodable range");
            if out[t as usize].is_empty() {
                base
            } else {
                base | MATCH_BIT
            }
        };
        let trans: Vec<u32> = goto_.iter().map(|&t| enc(t)).collect();
        let mut root = Box::new([0u32; 256]);
        let mut root_live = Box::new([0u8; 256]);
        for b in 0..256 {
            root[b] = trans[cls[b] as usize];
            root_live[b] = u8::from(root[b] != 0);
        }

        // Pair liveness over byte *classes* first (nclasses² entries), then
        // expanded through `cls` to the 64 KB raw-byte-pair table. A pair
        // is dead — exactly skippable — iff neither step matches and the
        // automaton is back at the root afterwards.
        let mut cls_pair_live = vec![1u8; nc * nc];
        for c0 in 0..nc {
            let s1 = trans[c0];
            if s1 & MATCH_BIT != 0 {
                continue; // every (c0, *) pair stays live
            }
            let base1 = (s1 & STATE_MASK) as usize;
            for c1 in 0..nc {
                cls_pair_live[c0 * nc + c1] = u8::from(trans[base1 + c1] != 0);
            }
        }
        // Expand through `cls` to the 64 KB raw table. The table is laid
        // out little-endian (`b0 | b1 << 8`), so a fixed `b1` owns one
        // contiguous 256-byte segment whose contents depend only on
        // `cls[b1]` — build one 256-byte column per class and memcpy it
        // into place, keeping this (per-engine-build) expansion at a few
        // microseconds instead of 64 K strided writes.
        let mut cols = vec![[0u8; 256]; nc];
        for (c1, col) in cols.iter_mut().enumerate() {
            for b0 in 0..256usize {
                col[b0] = cls_pair_live[cls[b0] as usize * nc + c1];
            }
        }
        let mut pair_live = vec![0u8; 1 << 16].into_boxed_slice();
        for b1 in 0..256usize {
            pair_live[b1 << 8..][..256].copy_from_slice(&cols[cls[b1] as usize]);
        }
        let pair_live: Box<[u8; 65536]> = pair_live.try_into().expect("built with 65536 entries");

        // 5. Flatten outputs.
        let mut out_start = Vec::with_capacity(goto_.len() + 1);
        let mut out_ids = Vec::new();
        out_start.push(0u32);
        for ids in &out {
            out_ids.extend_from_slice(ids);
            out_start.push(out_ids.len() as u32);
        }

        PrefilterDfa {
            cls,
            nclasses,
            trans,
            root,
            root_live,
            pair_live,
            out_start,
            out_ids,
            nstates,
            npatterns: patterns.len(),
        }
    }

    /// Number of patterns the DFA was built from.
    pub fn pattern_count(&self) -> usize {
        self.npatterns
    }

    /// Number of DFA states.
    pub fn state_count(&self) -> usize {
        self.nstates as usize
    }

    /// Number of byte classes (including the shared "other" class 0).
    pub fn class_count(&self) -> usize {
        self.nclasses as usize
    }

    /// Walk `chunk` from encoded state `s`, invoking `hit(pattern_id,
    /// end_offset)` for every (case-folded) match; `end_offset` is the
    /// exclusive end of the match within `chunk`. Returns the final state.
    #[inline]
    fn run<F: FnMut(usize, usize)>(&self, mut s: u32, chunk: &[u8], hit: &mut F) -> u32 {
        // An empty automaton (no non-empty patterns) has only the root
        // state and can never match or leave it — don't touch the bytes.
        if self.nstates <= 1 {
            return s;
        }
        let live = &*self.root_live;
        let pl = &*self.pair_live;
        let n = chunk.len();
        let mut i = 0usize;
        while i < n {
            let raw = chunk[i] as usize;
            if s == 0 {
                if live[raw] == 0 {
                    i += 1;
                    // Blocked root skip: while the automaton sits in the
                    // root state — the overwhelmingly common case on
                    // non-matching traffic — test eight bytes per
                    // iteration as four *independent* pair lookups over
                    // one 64-bit load. Unlike the serial state walk these
                    // loads pipeline; and because a dead pair absorbs
                    // near-miss bytes (first-byte hit, no continuation)
                    // without leaving the loop, mispredicted breaks are
                    // rare even on pattern-adjacent traffic.
                    while i + 8 <= n {
                        let w =
                            u64::from_le_bytes(chunk[i..i + 8].try_into().expect("8-byte window"));
                        let any = pl[(w & 0xffff) as usize]
                            | pl[(w >> 16 & 0xffff) as usize]
                            | pl[(w >> 32 & 0xffff) as usize]
                            | pl[(w >> 48) as usize];
                        if any != 0 {
                            break;
                        }
                        i += 8;
                    }
                    continue;
                }
                // Leaving the root: the load depends only on the raw byte.
                s = self.root[raw];
            } else {
                let base = (s & STATE_MASK) as usize;
                s = self.trans[base + self.cls[raw] as usize];
            }
            i += 1;
            if s & MATCH_BIT != 0 {
                let st = ((s & STATE_MASK) / self.nclasses) as usize;
                let (lo, hi) = (self.out_start[st], self.out_start[st + 1]);
                for &id in &self.out_ids[lo as usize..hi as usize] {
                    hit(id as usize, i);
                }
            }
        }
        s
    }

    /// One-shot scan of `hay`; `hit(pattern_id, end_offset)` per match.
    #[inline]
    pub fn scan<F: FnMut(usize, usize)>(&self, hay: &[u8], mut hit: F) {
        self.run(DFA_START, hay, &mut hit);
    }

    /// Incremental scan: advance `cursor` over `chunk`, reporting matches
    /// that end inside it (`end_offset` is relative to `chunk`). Matches
    /// straddling earlier chunks are found — the cursor carries the
    /// automaton state across calls. Start cursors at [`DFA_START`].
    #[inline]
    pub fn feed<F: FnMut(usize, usize)>(&self, cursor: &mut u32, chunk: &[u8], mut hit: F) {
        *cursor = self.run(*cursor, chunk, &mut hit);
    }

    /// Whether any pattern matches anywhere in `hay` (case-folded).
    pub fn any_match(&self, hay: &[u8]) -> bool {
        let mut found = false;
        // `run` has no early exit; fine for the rare non-hot-path callers.
        self.scan(hay, |_, _| found = true);
        found
    }
}

impl std::fmt::Debug for PrefilterDfa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefilterDfa")
            .field("patterns", &self.npatterns)
            .field("states", &self.nstates)
            .field("classes", &self.nclasses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use underradar_netsim::testprop::{cases, Gen};

    /// All (pattern_id, end_offset) pairs, via the DFA.
    fn dfa_matches(dfa: &PrefilterDfa, hay: &[u8]) -> Vec<(usize, usize)> {
        let mut got = Vec::new();
        dfa.scan(hay, |id, end| got.push((id, end)));
        got.sort_unstable();
        got
    }

    /// Oracle: naive case-insensitive window compare.
    fn naive_matches(patterns: &[&[u8]], hay: &[u8]) -> Vec<(usize, usize)> {
        let mut got = Vec::new();
        for (id, pat) in patterns.iter().enumerate() {
            if pat.is_empty() {
                continue;
            }
            for end in pat.len()..=hay.len() {
                if hay[end - pat.len()..end].eq_ignore_ascii_case(pat) {
                    got.push((id, end));
                }
            }
        }
        got.sort_unstable();
        got
    }

    #[test]
    fn classic_overlapping_patterns() {
        let pats: Vec<&[u8]> = vec![b"he", b"she", b"his", b"hers"];
        let dfa = PrefilterDfa::new(&pats);
        assert_eq!(
            dfa_matches(&dfa, b"ushers"),
            vec![(0, 4), (1, 4), (3, 6)],
            "suffix outputs surface through fail-chain flattening"
        );
    }

    #[test]
    fn matching_is_case_folded() {
        let pats: Vec<&[u8]> = vec![b"Falun", b"TIBET"];
        let dfa = PrefilterDfa::new(&pats);
        assert_eq!(dfa_matches(&dfa, b"..fAlUn..tibet"), vec![(0, 7), (1, 14)]);
    }

    #[test]
    fn empty_patterns_never_match() {
        let pats: Vec<&[u8]> = vec![b"", b"x"];
        let dfa = PrefilterDfa::new(&pats);
        assert_eq!(dfa_matches(&dfa, b"xx"), vec![(1, 1), (1, 2)]);
        let none = PrefilterDfa::new::<&[u8]>(&[]);
        assert_eq!(dfa_matches(&none, b"anything"), vec![]);
        assert!(!none.any_match(b"anything"));
    }

    #[test]
    fn feed_across_chunks_equals_one_shot() {
        let pats: Vec<&[u8]> = vec![b"falun", b"lun"];
        let dfa = PrefilterDfa::new(&pats);
        let hay = b"xxfalunyy";
        let whole = dfa_matches(&dfa, hay);
        // Split at every boundary; end offsets re-based to the whole input.
        for cut in 0..hay.len() {
            let mut cursor = DFA_START;
            let mut got = Vec::new();
            dfa.feed(&mut cursor, &hay[..cut], |id, end| got.push((id, end)));
            dfa.feed(&mut cursor, &hay[cut..], |id, end| {
                got.push((id, cut + end))
            });
            got.sort_unstable();
            assert_eq!(got, whole, "split at {cut}");
        }
    }

    #[test]
    fn matches_agree_with_naive_oracle() {
        let alphabet = b"abAB.";
        cases(200, 0x0DFA, |g: &mut Gen| {
            let npats = g.usize_in(1, 6);
            let pats: Vec<Vec<u8>> = (0..npats)
                .map(|_| {
                    let len = g.usize_in(1, 5);
                    g.string_from(alphabet, len).into_bytes()
                })
                .collect();
            // Long enough to exercise the blocked pair-skip loop (≥ 8-byte
            // windows), not just the per-byte path.
            let hay_len = g.usize_in(0, 200);
            let hay = g.string_from(alphabet, hay_len).into_bytes();
            let dfa = PrefilterDfa::new(&pats);
            let pat_refs: Vec<&[u8]> = pats.iter().map(|p| p.as_slice()).collect();
            assert_eq!(dfa_matches(&dfa, &hay), naive_matches(&pat_refs, &hay));
        });
    }

    #[test]
    fn streamed_matches_agree_with_one_shot_under_random_chunking() {
        let alphabet = b"faluntibe.";
        cases(100, 0xFEED, |g: &mut Gen| {
            let pats: Vec<Vec<u8>> = (0..g.usize_in(1, 5))
                .map(|_| {
                    let len = g.usize_in(1, 6);
                    g.string_from(alphabet, len).into_bytes()
                })
                .collect();
            let hay_len = g.usize_in(0, 60);
            let hay = g.string_from(alphabet, hay_len).into_bytes();
            let dfa = PrefilterDfa::new(&pats);
            let whole = dfa_matches(&dfa, &hay);
            let mut cursor = DFA_START;
            let mut got = Vec::new();
            let mut off = 0;
            while off < hay.len() {
                let take = g.usize_in(1, 8).min(hay.len() - off);
                dfa.feed(&mut cursor, &hay[off..off + take], |id, end| {
                    got.push((id, off + end));
                });
                off += take;
            }
            got.sort_unstable();
            assert_eq!(got, whole);
        });
    }

    #[test]
    fn introspection_counts() {
        let pats: Vec<&[u8]> = vec![b"ab", b"ac"];
        let dfa = PrefilterDfa::new(&pats);
        assert_eq!(dfa.pattern_count(), 2);
        assert_eq!(dfa.state_count(), 4, "root + a + ab + ac");
        assert_eq!(dfa.class_count(), 4, "other + a + b + c");
    }
}
