//! O(1) insertion-order bookkeeping for flow eviction.
//!
//! The reassembler evicts the least-recently-*created* flow when its table
//! is full. [`OrderQueue`] is an intrusive doubly-linked list over a slab:
//! push, arbitrary removal (by the node id stored in the flow) and
//! pop-oldest are all O(1), and the structure never retains entries for
//! flows that have been torn down — memory is bounded by the number of
//! live flows (the seed implementation kept a `Vec` of every key ever
//! inserted and paid O(n) per eviction).

/// Sentinel for "no node".
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<K> {
    key: Option<K>,
    prev: u32,
    next: u32,
}

/// A FIFO queue over copyable keys with O(1) removal from the middle.
///
/// `push_back` returns a stable node id; store it alongside the keyed value
/// and hand it back to [`OrderQueue::remove`] when the value is dropped.
#[derive(Debug, Clone, Default)]
pub struct OrderQueue<K> {
    nodes: Vec<Node<K>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl<K: Copy> OrderQueue<K> {
    /// An empty queue.
    pub fn new() -> OrderQueue<K> {
        OrderQueue {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of queued keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append `key` as the newest entry; returns its node id.
    pub fn push_back(&mut self, key: K) -> u32 {
        let id = match self.free.pop() {
            Some(id) => {
                self.nodes[id as usize] = Node {
                    key: Some(key),
                    prev: self.tail,
                    next: NIL,
                };
                id
            }
            None => {
                let id = self.nodes.len() as u32;
                self.nodes.push(Node {
                    key: Some(key),
                    prev: self.tail,
                    next: NIL,
                });
                id
            }
        };
        if self.tail != NIL {
            self.nodes[self.tail as usize].next = id;
        } else {
            self.head = id;
        }
        self.tail = id;
        self.len += 1;
        id
    }

    /// The oldest key, if any.
    pub fn front(&self) -> Option<K> {
        if self.head == NIL {
            None
        } else {
            self.nodes[self.head as usize].key
        }
    }

    /// Remove and return the oldest key.
    pub fn pop_front(&mut self) -> Option<K> {
        if self.head == NIL {
            return None;
        }
        let id = self.head;
        let key = self.nodes[id as usize].key;
        self.unlink(id);
        key
    }

    /// Remove the entry with node id `id` (as returned by `push_back`).
    /// Removing an already-removed id is a no-op.
    pub fn remove(&mut self, id: u32) {
        if (id as usize) < self.nodes.len() && self.nodes[id as usize].key.is_some() {
            self.unlink(id);
        }
    }

    fn unlink(&mut self, id: u32) {
        let (prev, next) = {
            let n = &mut self.nodes[id as usize];
            n.key = None;
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.free.push(id);
        self.len -= 1;
    }

    /// Total slab capacity (live + free-listed slots) — assertable bound in
    /// leak tests: capacity never exceeds the high-water mark of live flows.
    pub fn slab_size(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = OrderQueue::new();
        for i in 0..5u32 {
            q.push_back(i);
        }
        assert_eq!(q.len(), 5);
        for i in 0..5u32 {
            assert_eq!(q.front(), Some(i));
            assert_eq!(q.pop_front(), Some(i));
        }
        assert_eq!(q.pop_front(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn middle_removal_preserves_order() {
        let mut q = OrderQueue::new();
        let ids: Vec<u32> = (0..5u32).map(|i| q.push_back(i)).collect();
        q.remove(ids[2]);
        q.remove(ids[0]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_front(), Some(1));
        assert_eq!(q.pop_front(), Some(3));
        assert_eq!(q.pop_front(), Some(4));
    }

    #[test]
    fn removal_is_idempotent_and_slots_recycle() {
        let mut q = OrderQueue::new();
        let a = q.push_back(10u32);
        q.remove(a);
        q.remove(a);
        assert!(q.is_empty());
        // Churn: slab stays at the live high-water mark.
        for round in 0..100u32 {
            let id = q.push_back(round);
            q.remove(id);
        }
        assert!(q.slab_size() <= 1, "slab recycled: {}", q.slab_size());
    }

    #[test]
    fn interleaved_churn_stays_bounded() {
        let mut q = OrderQueue::new();
        let mut live = std::collections::VecDeque::new();
        for i in 0..10_000u32 {
            live.push_back(q.push_back(i));
            if live.len() > 16 {
                q.remove(live.pop_front().expect("nonempty"));
            }
        }
        assert_eq!(q.len(), 16);
        assert!(q.slab_size() <= 17, "slab: {}", q.slab_size());
    }
}
