//! O(1) insertion-order bookkeeping — moved to the shared netsim arena.
//!
//! The intrusive slab-backed order queue that lived here was extracted
//! into [`underradar_netsim::slab`] so flow tables, reassembly
//! bookkeeping, and MVR class state share one audited implementation.
//! The ported [`OrderQueue`] hands out generational [`OrderId`] handles
//! instead of raw `u32` node ids: a stale handle (already removed, or its
//! slot since recycled) is detected and removal through it is a no-op,
//! where the old raw ids could alias a recycled slot.
//!
//! This module re-exports the shared types so IDS-side callers keep a
//! natural path; the reassembler itself now uses the higher-level
//! [`underradar_netsim::flow::FlowTable`], which threads the same
//! intrusive-order pattern through its arena slots.

pub use underradar_netsim::slab::{OrderId, OrderQueue, Slab, SlabKey};

#[cfg(test)]
mod tests {
    use super::*;

    /// The re-exported queue keeps the original module's contract: FIFO
    /// order, O(1) middle removal, slab bounded by peak live entries.
    #[test]
    fn reexported_queue_keeps_lru_contract() {
        let mut q = OrderQueue::new();
        let ids: Vec<OrderId<u32>> = (0..5u32).map(|k| q.push_back(k)).collect();
        q.remove(ids[2]);
        q.remove(ids[2]); // idempotent
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop_front(), Some(0));
        assert_eq!(q.front(), Some(1));
        assert!(q.slab_size() <= 5);
    }
}
