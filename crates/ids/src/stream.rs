//! TCP stream reassembly for the detection engine.
//!
//! Keyword rules must match content that straddles segment boundaries, so
//! the engine reassembles each TCP flow's byte stream per direction. The
//! reassembler also encodes the property the paper's stateful mimicry
//! exploits (§4.1): **on RST the flow is torn down and the engine stops
//! looking at it** ("upon receiving a reply, a spoofed client would send a
//! RST, possibly forcing the censorship system's TCP reassembler to stop
//! looking at the flow"). That behaviour is configurable so the ablation
//! experiment can turn it off.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use underradar_netsim::packet::{Packet, TcpSegment};

/// Per-direction cap on buffered stream bytes; older bytes are discarded
/// (the monitor has bounded per-flow memory — §2.1's storage argument).
pub const MAX_DIR_BUFFER: usize = 8 * 1024;

/// Cap on tracked flows; least-recently-created flows are evicted.
pub const MAX_FLOWS: usize = 100_000;

/// Canonical flow identifier: endpoint pair ordered so both directions map
/// to the same key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Lower endpoint (by (ip, port) ordering).
    pub lo: (Ipv4Addr, u16),
    /// Higher endpoint.
    pub hi: (Ipv4Addr, u16),
}

impl FlowKey {
    /// Build from a packet's endpoints (TCP only).
    pub fn of(pkt: &Packet, seg: &TcpSegment) -> FlowKey {
        let a = (pkt.src, seg.src_port);
        let b = (pkt.dst, seg.dst_port);
        if a <= b {
            FlowKey { lo: a, hi: b }
        } else {
            FlowKey { lo: b, hi: a }
        }
    }
}

/// Which way a segment is heading relative to the connection initiator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// From the initiator (client) to the responder (server).
    ToServer,
    /// From the responder back to the initiator.
    ToClient,
}

#[derive(Debug, Default)]
struct DirBuffer {
    next_seq: Option<u32>,
    data: Vec<u8>,
}

impl DirBuffer {
    /// Append in-order payload; out-of-order segments are ignored (the
    /// sender will retransmit). Returns whether bytes were appended.
    fn push(&mut self, seq: u32, payload: &[u8]) -> bool {
        if payload.is_empty() {
            return false;
        }
        match self.next_seq {
            Some(expected) if seq == expected => {
                self.next_seq = Some(expected.wrapping_add(payload.len() as u32));
            }
            Some(_) => return false,
            None => {
                // Mid-stream pickup (monitor started late): accept and sync.
                self.next_seq = Some(seq.wrapping_add(payload.len() as u32));
            }
        }
        self.data.extend_from_slice(payload);
        if self.data.len() > MAX_DIR_BUFFER {
            let excess = self.data.len() - MAX_DIR_BUFFER;
            self.data.drain(..excess);
        }
        true
    }
}

#[derive(Debug)]
struct Flow {
    /// The initiator endpoint (sent the first SYN, or the first segment
    /// seen for mid-stream pickups).
    client: (Ipv4Addr, u16),
    established: bool,
    syn_seen: bool,
    synack_seen: bool,
    c2s: DirBuffer,
    s2c: DirBuffer,
}

/// What the reassembler reports about the flow a segment belongs to.
#[derive(Debug, Clone)]
pub struct FlowContext {
    /// The flow key.
    pub key: FlowKey,
    /// Direction of this segment.
    pub direction: Direction,
    /// Whether the three-way handshake completed.
    pub established: bool,
    /// Reassembled bytes in this segment's direction (bounded tail),
    /// including this segment's payload if it was in order.
    pub stream: Vec<u8>,
    /// Whether this segment's payload was appended in order.
    pub appended: bool,
}

/// Reassembly statistics (assertable in experiments).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReassemblyStats {
    /// Flows created.
    pub flows_created: u64,
    /// Flows torn down by RST.
    pub rst_teardowns: u64,
    /// Flows completed by FIN.
    pub fin_teardowns: u64,
    /// TCP segments processed.
    pub segments: u64,
    /// Flows evicted due to the flow-table cap.
    pub evicted: u64,
}

/// The stream reassembler.
#[derive(Debug)]
pub struct StreamReassembler {
    flows: HashMap<FlowKey, Flow>,
    /// Insertion order for eviction.
    order: Vec<FlowKey>,
    /// Tear down flows on RST (the real-IDS default, and the paper's
    /// exploited behaviour). When `false`, RSTs are ignored — the ablation.
    pub rst_teardown: bool,
    stats: ReassemblyStats,
}

impl Default for StreamReassembler {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamReassembler {
    /// A reassembler with RST teardown on.
    pub fn new() -> StreamReassembler {
        StreamReassembler {
            flows: HashMap::new(),
            order: Vec::new(),
            rst_teardown: true,
            stats: ReassemblyStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> ReassemblyStats {
        self.stats
    }

    /// Number of currently tracked flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Whether a flow is currently tracked.
    pub fn is_tracked(&self, key: &FlowKey) -> bool {
        self.flows.contains_key(key)
    }

    /// Process a TCP packet; returns flow context for rule evaluation, or
    /// `None` for non-TCP packets.
    pub fn process(&mut self, pkt: &Packet) -> Option<FlowContext> {
        let seg = pkt.as_tcp()?;
        self.stats.segments += 1;
        let key = FlowKey::of(pkt, seg);

        // RST teardown: report the segment against the dying flow, then
        // forget it.
        if seg.flags.has_rst() && self.rst_teardown {
            let ctx = self.flows.get(&key).map(|flow| FlowContext {
                key,
                direction: direction_of(flow, pkt, seg),
                established: flow.established,
                stream: buffer_of(flow, pkt, seg).data.clone(),
                appended: false,
            });
            if self.flows.remove(&key).is_some() {
                self.stats.rst_teardowns += 1;
            }
            return Some(ctx.unwrap_or(FlowContext {
                key,
                direction: Direction::ToServer,
                established: false,
                stream: Vec::new(),
                appended: false,
            }));
        }

        if !self.flows.contains_key(&key) {
            // New flow. Initiator inference: a bare SYN marks a real open;
            // otherwise treat the observed sender as the client.
            self.evict_if_full();
            let mut flow = Flow {
                client: (pkt.src, seg.src_port),
                established: false,
                syn_seen: seg.flags.has_syn() && !seg.flags.has_ack(),
                synack_seen: false,
                c2s: DirBuffer::default(),
                s2c: DirBuffer::default(),
            };
            if flow.syn_seen {
                flow.c2s.next_seq = Some(seg.seq.wrapping_add(1));
            }
            self.flows.insert(key, flow);
            self.order.push(key);
            self.stats.flows_created += 1;
        }

        let flow = self.flows.get_mut(&key).expect("flow just ensured");
        let direction = direction_of(flow, pkt, seg);

        // Handshake tracking.
        if seg.flags.has_syn() && seg.flags.has_ack() && direction == Direction::ToClient {
            flow.synack_seen = true;
            flow.s2c.next_seq = Some(seg.seq.wrapping_add(1));
        } else if seg.flags.has_syn() && !seg.flags.has_ack() && direction == Direction::ToServer {
            flow.syn_seen = true;
            flow.c2s.next_seq = Some(seg.seq.wrapping_add(1));
        } else if seg.flags.has_ack() && flow.syn_seen && flow.synack_seen {
            flow.established = true;
        }

        let appended = match direction {
            Direction::ToServer => flow.c2s.push(seg.seq, &seg.payload),
            Direction::ToClient => flow.s2c.push(seg.seq, &seg.payload),
        };
        if appended {
            let buf = match direction {
                Direction::ToServer => &mut flow.c2s,
                Direction::ToClient => &mut flow.s2c,
            };
            buf.next_seq = Some(seg.seq.wrapping_add(seg.payload.len() as u32));
        }
        // Advance expected seq past FINs so retransmitted FINs don't desync.
        if seg.flags.has_fin() {
            let buf = match direction {
                Direction::ToServer => &mut flow.c2s,
                Direction::ToClient => &mut flow.s2c,
            };
            if let Some(n) = buf.next_seq {
                let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
                if fin_seq == n {
                    buf.next_seq = Some(n.wrapping_add(1));
                }
            }
        }

        // FIN completion does not remove the flow here; long-lived flow
        // state is bounded by the flow-table cap, and the engine may call
        // [`StreamReassembler::remove`] when its policy says tracking ends.
        Some(FlowContext {
            key,
            direction,
            established: flow.established,
            stream: match direction {
                Direction::ToServer => flow.c2s.data.clone(),
                Direction::ToClient => flow.s2c.data.clone(),
            },
            appended,
        })
    }

    /// Forget a flow (used by the engine after it decides tracking should
    /// end, e.g. FIN completion policies).
    pub fn remove(&mut self, key: &FlowKey) {
        if self.flows.remove(key).is_some() {
            self.stats.fin_teardowns += 1;
        }
    }

    fn evict_if_full(&mut self) {
        if self.flows.len() < MAX_FLOWS {
            return;
        }
        // Evict oldest still-present flows.
        while let Some(oldest) = self.order.first().copied() {
            self.order.remove(0);
            if self.flows.remove(&oldest).is_some() {
                self.stats.evicted += 1;
                break;
            }
        }
    }
}

fn direction_of(flow: &Flow, pkt: &Packet, seg: &TcpSegment) -> Direction {
    if (pkt.src, seg.src_port) == flow.client {
        Direction::ToServer
    } else {
        Direction::ToClient
    }
}

fn buffer_of<'a>(flow: &'a Flow, pkt: &Packet, seg: &TcpSegment) -> &'a DirBuffer {
    if (pkt.src, seg.src_port) == flow.client {
        &flow.c2s
    } else {
        &flow.s2c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use underradar_netsim::wire::tcp::TcpFlags;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
    const S: Ipv4Addr = Ipv4Addr::new(10, 0, 2, 2);

    fn pkt(src: Ipv4Addr, dst: Ipv4Addr, sp: u16, dp: u16, seq: u32, flags: TcpFlags, payload: &[u8]) -> Packet {
        Packet::tcp(src, dst, sp, dp, seq, 0, flags, payload.to_vec())
    }

    fn handshake(r: &mut StreamReassembler) {
        let syn = pkt(C, S, 4000, 80, 100, TcpFlags::syn(), b"");
        let ctx = r.process(&syn).expect("syn ctx");
        assert_eq!(ctx.direction, Direction::ToServer);
        assert!(!ctx.established);
        let syn_ack = pkt(S, C, 80, 4000, 500, TcpFlags::syn_ack(), b"");
        let ctx = r.process(&syn_ack).expect("synack ctx");
        assert_eq!(ctx.direction, Direction::ToClient);
        let ack = pkt(C, S, 4000, 80, 101, TcpFlags::ack(), b"");
        let ctx = r.process(&ack).expect("ack ctx");
        assert!(ctx.established, "handshake complete");
    }

    #[test]
    fn reassembles_across_segments() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        // "falun" split across two segments.
        let d1 = pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), b"GET /fal");
        let ctx = r.process(&d1).expect("d1");
        assert!(ctx.appended);
        assert_eq!(ctx.stream, b"GET /fal");
        let d2 = pkt(C, S, 4000, 80, 109, TcpFlags::psh_ack(), b"un HTTP/1.0");
        let ctx = r.process(&d2).expect("d2");
        assert_eq!(ctx.stream, b"GET /falun HTTP/1.0");
        assert!(ctx.established);
    }

    #[test]
    fn directions_keep_separate_buffers() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        let _ = r.process(&pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), b"request"));
        let ctx = r.process(&pkt(S, C, 80, 4000, 501, TcpFlags::psh_ack(), b"response"));
        let ctx = ctx.expect("ctx");
        assert_eq!(ctx.direction, Direction::ToClient);
        assert_eq!(ctx.stream, b"response");
    }

    #[test]
    fn out_of_order_segments_ignored_until_retransmit() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        let skip = pkt(C, S, 4000, 80, 150, TcpFlags::psh_ack(), b"later");
        let ctx = r.process(&skip).expect("skip");
        assert!(!ctx.appended, "gap: not appended");
        let inorder = pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), b"first");
        let ctx = r.process(&inorder).expect("inorder");
        assert!(ctx.appended);
        assert_eq!(ctx.stream, b"first");
    }

    #[test]
    fn rst_teardown_stops_tracking() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        let key = FlowKey::of(
            &pkt(C, S, 4000, 80, 0, TcpFlags::ack(), b""),
            pkt(C, S, 4000, 80, 0, TcpFlags::ack(), b"").as_tcp().expect("t"),
        );
        assert!(r.is_tracked(&key));
        let rst = pkt(C, S, 4000, 80, 101, TcpFlags::rst(), b"");
        let ctx = r.process(&rst).expect("rst ctx");
        assert!(ctx.established, "context reflects the flow that died");
        assert!(!r.is_tracked(&key), "flow forgotten after RST");
        assert_eq!(r.stats().rst_teardowns, 1);
        // Subsequent data is a fresh, non-established flow: the censor has
        // lost the stream — the paper's exploit.
        let more = pkt(C, S, 4000, 80, 106, TcpFlags::psh_ack(), b"secret keyword");
        let ctx = r.process(&more).expect("more");
        assert!(!ctx.established);
    }

    #[test]
    fn rst_teardown_can_be_disabled() {
        let mut r = StreamReassembler::new();
        r.rst_teardown = false;
        handshake(&mut r);
        let rst = pkt(C, S, 4000, 80, 101, TcpFlags::rst(), b"");
        let _ = r.process(&rst);
        let key = FlowKey::of(
            &pkt(C, S, 4000, 80, 0, TcpFlags::ack(), b""),
            pkt(C, S, 4000, 80, 0, TcpFlags::ack(), b"").as_tcp().expect("t"),
        );
        assert!(r.is_tracked(&key), "ablation: RST ignored");
        let more = pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), b"keyword");
        let ctx = r.process(&more).expect("more");
        assert!(ctx.established, "flow still established");
    }

    #[test]
    fn mid_stream_pickup_syncs() {
        let mut r = StreamReassembler::new();
        // Monitor sees only the data segment (no handshake observed).
        let d = pkt(C, S, 4000, 80, 7777, TcpFlags::psh_ack(), b"mid-stream data");
        let ctx = r.process(&d).expect("ctx");
        assert!(ctx.appended);
        assert!(!ctx.established);
        assert_eq!(ctx.stream, b"mid-stream data");
        let d2 = pkt(C, S, 4000, 80, 7777 + 15, TcpFlags::psh_ack(), b" more");
        let ctx = r.process(&d2).expect("ctx2");
        assert_eq!(ctx.stream, b"mid-stream data more");
    }

    #[test]
    fn buffer_is_bounded() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        let mut seq = 101u32;
        for _ in 0..20 {
            let payload = vec![b'x'; 1000];
            let d = pkt(C, S, 4000, 80, seq, TcpFlags::psh_ack(), &payload);
            let ctx = r.process(&d).expect("ctx");
            assert!(ctx.stream.len() <= MAX_DIR_BUFFER);
            seq = seq.wrapping_add(1000);
        }
    }

    #[test]
    fn non_tcp_packets_are_ignored() {
        let mut r = StreamReassembler::new();
        let udp = Packet::udp(C, S, 1, 2, b"dgram".to_vec());
        assert!(r.process(&udp).is_none());
        assert_eq!(r.stats().segments, 0);
    }

    #[test]
    fn flow_key_is_direction_independent() {
        let fwd = pkt(C, S, 4000, 80, 0, TcpFlags::ack(), b"");
        let rev = pkt(S, C, 80, 4000, 0, TcpFlags::ack(), b"");
        let k1 = FlowKey::of(&fwd, fwd.as_tcp().expect("t"));
        let k2 = FlowKey::of(&rev, rev.as_tcp().expect("t"));
        assert_eq!(k1, k2);
    }
}
