//! TCP stream reassembly for the detection engine.
//!
//! Keyword rules must match content that straddles segment boundaries, so
//! the engine reassembles each TCP flow's byte stream per direction. The
//! reassembler also encodes the property the paper's stateful mimicry
//! exploits (§4.1): **on RST the flow is torn down and the engine stops
//! looking at it** ("upon receiving a reply, a spoofed client would send a
//! RST, possibly forcing the censorship system's TCP reassembler to stop
//! looking at the flow"). That behaviour is configurable so the ablation
//! experiment can turn it off.
//!
//! The reassembler is built for line-rate streaming: processing a segment
//! never copies more than that segment's payload (amortized — the bounded
//! per-direction window compacts in large strides), and flow bookkeeping
//! lives in an arena-backed [`FlowTable`]: one hash lookup when a segment
//! arrives, index dereferences for everything else, O(1) oldest-first
//! eviction. Every [`FlowContext`] carries the flow's generational
//! [`FlowId`] so consumers (the engine's per-flow matcher state, censor
//! verdict caches) can keep their own state in dense side tables indexed
//! by [`FlowId::index`] instead of re-hashing the key per packet.
//!
//! Out-of-order segments are *held back* (bounded by
//! [`DirLimits::holdback`]) until the gap before them fills, overlapping
//! retransmits are resolved by a configurable [`OverlapPolicy`] (the
//! Ptacek–Newsham ambiguity: `KeepFirst` keeps the bytes already seen and
//! contributes only the unseen suffix, `KeepLast` lets a later copy
//! rewrite them — real endpoints differ, so a monitor's choice is an
//! evasion surface either way), and all sequence comparisons are
//! windowed — so channel impairments within the hold-back bound cost
//! nothing, while everything beyond it is counted ([`ReassemblyStats`])
//! rather than silently skewing verdicts.

use std::net::Ipv4Addr;

use underradar_netsim::flow::FlowTable;
pub use underradar_netsim::flow::{FlowId, FlowKey};
use underradar_netsim::packet::{Packet, TcpSegment};
pub use underradar_netsim::stack::tcp::OverlapPolicy;
use underradar_netsim::telemetry::{TraceFlow, TraceRecord, Tracer};

/// Default per-direction cap on buffered stream bytes; older bytes are
/// discarded (the monitor has bounded per-flow memory — §2.1's storage
/// argument). Override via [`DirLimits::window`].
pub const MAX_DIR_BUFFER: usize = 8 * 1024;

/// Default per-direction cap on *held* out-of-order bytes awaiting a gap
/// fill. Segments beyond this (or displaced further than the window ahead
/// of the expected sequence) are dropped and counted — the bound past
/// which channel impairments become stream divergence. Override via
/// [`DirLimits::holdback`].
pub const MAX_OOO_BUFFER: usize = 4 * 1024;

/// Default cap on tracked flows; least-recently-created flows are
/// evicted. Override via [`ReassemblyConfig::max_flows`].
pub const MAX_FLOWS: usize = 100_000;

/// `a < b` in windowed 32-bit TCP sequence space (RFC 1982-style
/// wrap-around comparison: correct for distances under 2^31).
#[inline]
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` in windowed 32-bit TCP sequence space.
#[inline]
pub fn seq_le(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) <= 0
}

/// Which way a segment is heading relative to the connection initiator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// From the initiator (client) to the responder (server).
    ToServer,
    /// From the responder back to the initiator.
    ToClient,
}

/// Per-direction buffering limits: the in-order window and the
/// out-of-order hold-back budget, both in bytes. A monitor's per-flow
/// memory ceiling is roughly `2 * (window + holdback)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirLimits {
    /// Cap on buffered in-order stream bytes (the matcher's lookback).
    pub window: usize,
    /// Cap on held out-of-order bytes awaiting a gap fill.
    pub holdback: usize,
}

impl Default for DirLimits {
    fn default() -> Self {
        DirLimits {
            window: MAX_DIR_BUFFER,
            holdback: MAX_OOO_BUFFER,
        }
    }
}

/// Construction-time reassembler knobs (surfaced through
/// `TestbedConfig` so experiments can sweep them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReassemblyConfig {
    /// Flow-table capacity; oldest flows are evicted beyond it. 0 means
    /// unbounded.
    pub max_flows: usize,
    /// Per-direction buffering limits.
    pub limits: DirLimits,
    /// How conflicting retransmits over already-seen bytes resolve.
    /// `KeepFirst` (the monitor default, and the seed's only behaviour)
    /// trusts the first copy; `KeepLast` mirrors endpoints that accept
    /// the latest copy, letting experiments align or misalign the monitor
    /// with the endpoint under test.
    pub overlap: OverlapPolicy,
}

impl Default for ReassemblyConfig {
    fn default() -> Self {
        ReassemblyConfig {
            max_flows: MAX_FLOWS,
            limits: DirLimits::default(),
            overlap: OverlapPolicy::KeepFirst,
        }
    }
}

/// One direction's reassembly state: the in-order window plus the
/// bounded hold-back queue. Public so benches and property harnesses can
/// drive the buffer directly; [`StreamReassembler`] is the normal entry.
#[derive(Debug, Default)]
pub struct DirBuffer {
    next_seq: Option<u32>,
    /// Raw byte storage; the live window is `data[start..]`.
    data: Vec<u8>,
    /// Logical start of the live window. Advanced when the window exceeds
    /// [`DirLimits::window`]; storage is compacted only once `start`
    /// crosses the window size, so each buffered byte is moved at most
    /// once.
    start: usize,
    fin_seen: bool,
    /// Hold-back queue: out-of-order segments waiting for the gap before
    /// them to fill. Unsorted (drained by windowed-seq scan); bounded by
    /// [`DirLimits::holdback`] bytes.
    held: Vec<(u32, Vec<u8>)>,
    /// Total payload bytes across `held`.
    held_bytes: usize,
}

impl DirBuffer {
    /// Offer a segment. In-order payload is appended; a segment landing
    /// beyond the expected sequence is *held* (up to the hold-back
    /// budget) until the gap fills; a retransmit overlapping already-seen
    /// bytes resolves per `overlap` — [`OverlapPolicy::KeepFirst`]
    /// contributes only the unseen suffix, [`OverlapPolicy::KeepLast`]
    /// additionally rewrites the already-buffered bytes it covers (where
    /// they are still inside the live window). All comparisons are
    /// windowed, so flows crossing the 2^32 sequence wrap don't desync.
    /// Returns the number of bytes newly appended to the in-order stream
    /// (including any held segments this one unblocked); rewritten bytes
    /// do not count as new.
    #[inline]
    pub fn push(
        &mut self,
        seq: u32,
        payload: &[u8],
        limits: DirLimits,
        overlap: OverlapPolicy,
        stats: &mut ReassemblyStats,
    ) -> usize {
        if payload.is_empty() {
            return 0;
        }
        // In-order fast path: nothing held and the segment lands exactly
        // at the expected sequence — the overwhelmingly common case on
        // healthy links, kept free of the dispatch below.
        if self.next_seq == Some(seq) && self.held.is_empty() {
            self.append_in_order(payload, limits, stats);
            return payload.len();
        }
        if self.next_seq.is_none() {
            // Mid-stream pickup (monitor started late): accept and sync.
            self.next_seq = Some(seq);
        }
        let mut appended = self.accept(seq, payload, limits, overlap, stats);
        if appended > 0 && !self.held.is_empty() {
            appended += self.drain_held(limits, overlap, stats);
        }
        appended
    }

    /// Apply one segment against the current expected sequence: append,
    /// resolve-overlap-and-append, hold, or drop. Returns bytes appended
    /// in order.
    fn accept(
        &mut self,
        seq: u32,
        payload: &[u8],
        limits: DirLimits,
        overlap: OverlapPolicy,
        stats: &mut ReassemblyStats,
    ) -> usize {
        let expected = self.next_seq.expect("push set next_seq");
        let end = seq.wrapping_add(payload.len() as u32);
        if seq_le(end, expected) {
            // Every byte already seen: a stale retransmit. KeepFirst
            // ignores it; KeepLast lets it rewrite the copy on record.
            if overlap == OverlapPolicy::KeepLast && self.rewrite_overlap(seq, payload) > 0 {
                stats.overlap_rewritten += 1;
            } else {
                stats.dup_ignored += 1;
            }
            return 0;
        }
        if seq_lt(seq, expected) {
            // Partial overlap (repacketized retransmit): the unseen suffix
            // always appends; the already-seen prefix is either discarded
            // (KeepFirst) or overwrites the buffered copy (KeepLast).
            let trim = expected.wrapping_sub(seq) as usize;
            if overlap == OverlapPolicy::KeepLast && self.rewrite_overlap(seq, payload) > 0 {
                stats.overlap_rewritten += 1;
            } else {
                stats.overlap_trimmed += 1;
            }
            self.append_in_order(&payload[trim..], limits, stats);
            return payload.len() - trim;
        }
        if seq == expected {
            self.append_in_order(payload, limits, stats);
            return payload.len();
        }
        // Future segment: hold it while it stays within the displacement
        // window and the hold-back byte budget.
        let offset = seq.wrapping_sub(expected) as usize;
        if offset <= limits.window && self.held_bytes + payload.len() <= limits.holdback {
            stats.ooo_held += 1;
            self.held_bytes += payload.len();
            self.held.push((seq, payload.to_vec()));
        } else {
            stats.ooo_dropped += 1;
        }
        0
    }

    /// Overwrite already-reassembled bytes the segment covers, where they
    /// are still inside the live window (bytes compacted past the window
    /// are gone for good — no policy can resurrect them). Returns the
    /// number of bytes rewritten.
    fn rewrite_overlap(&mut self, seq: u32, payload: &[u8]) -> usize {
        let expected = self.next_seq.expect("rewrite follows accept");
        let live = self.data.len() - self.start;
        let win_base = expected.wrapping_sub(live as u32);
        // Bytes of the payload that precede the expected sequence.
        let old_len = (expected.wrapping_sub(seq) as usize).min(payload.len());
        // Clip the old part to the live window.
        let (skip, win_off) = if seq_lt(seq, win_base) {
            (win_base.wrapping_sub(seq) as usize, 0usize)
        } else {
            (0usize, seq.wrapping_sub(win_base) as usize)
        };
        if skip >= old_len {
            return 0;
        }
        let n = old_len - skip;
        let dst = self.start + win_off;
        self.data[dst..dst + n].copy_from_slice(&payload[skip..old_len]);
        n
    }

    /// After an in-order append, apply every held segment the new expected
    /// sequence has reached (repeatedly — one drain can unblock the next).
    fn drain_held(
        &mut self,
        limits: DirLimits,
        overlap: OverlapPolicy,
        stats: &mut ReassemblyStats,
    ) -> usize {
        let mut total = 0;
        loop {
            let expected = self.next_seq.expect("in-order data present");
            let Some(idx) = self.held.iter().position(|(s, _)| seq_le(*s, expected)) else {
                break;
            };
            let (seq, payload) = self.held.swap_remove(idx);
            self.held_bytes -= payload.len();
            total += self.accept(seq, &payload, limits, overlap, stats);
        }
        total
    }

    /// Extend the stream with bytes known to start at the expected
    /// sequence, advancing it and maintaining the bounded window.
    #[inline]
    fn append_in_order(&mut self, payload: &[u8], limits: DirLimits, stats: &mut ReassemblyStats) {
        let expected = self.next_seq.expect("in-order append");
        self.next_seq = Some(expected.wrapping_add(payload.len() as u32));
        self.data.extend_from_slice(payload);
        stats.bytes_appended += payload.len() as u64;
        let live = self.data.len() - self.start;
        if live > limits.window {
            self.start += live - limits.window;
        }
        if self.start >= limits.window {
            stats.bytes_compacted += (self.data.len() - self.start) as u64;
            self.data.drain(..self.start);
            self.start = 0;
        }
    }

    /// The buffered window (bounded tail of the direction's stream).
    pub fn view(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

#[derive(Debug)]
struct Flow {
    /// The initiator endpoint (sent the first SYN, or the first segment
    /// seen for mid-stream pickups).
    client: (Ipv4Addr, u16),
    established: bool,
    syn_seen: bool,
    synack_seen: bool,
    c2s: DirBuffer,
    s2c: DirBuffer,
}

/// What the reassembler reports about the flow a segment belongs to.
///
/// Deliberately small and `Copy`: the buffered stream itself is *not*
/// cloned per segment — read it through [`StreamReassembler::stream_of_id`]
/// (an index dereference, no hash), and match incrementally by feeding
/// the last `new_bytes` of that view (the newly reassembled tail) to a
/// persistent [`crate::aho::AcStreamState`].
#[derive(Debug, Clone, Copy)]
pub struct FlowContext {
    /// The flow key.
    pub key: FlowKey,
    /// The flow's table handle. `None` for a RST against an untracked
    /// flow. Stale once `torn_down` is set (the slot is already freed),
    /// but still usable as a side-table index for the dying flow's state.
    pub id: Option<FlowId>,
    /// Direction of this segment.
    pub direction: Direction,
    /// Whether the three-way handshake completed.
    pub established: bool,
    /// Whether this segment extended the in-order stream.
    pub appended: bool,
    /// Bytes newly appended to this direction's stream. May exceed the
    /// segment's payload length (the segment unblocked held out-of-order
    /// data) or fall short of it (an already-seen prefix was trimmed).
    pub new_bytes: usize,
    /// Length of the buffered (windowed) stream after this segment.
    pub stream_len: usize,
    /// The flow was torn down while processing this segment (RST, or a
    /// completed FIN/FIN/ACK close); its buffers are gone.
    pub torn_down: bool,
}

/// Reassembly statistics (assertable in experiments).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReassemblyStats {
    /// Flows created.
    pub flows_created: u64,
    /// Flows torn down by RST.
    pub rst_teardowns: u64,
    /// Flows torn down by an observed FIN/FIN/ACK close.
    pub fin_teardowns: u64,
    /// Flows removed by an explicit [`StreamReassembler::remove`] call
    /// (engine policy decisions; split from `fin_teardowns`, which the
    /// seed conflated with every removal).
    pub removals: u64,
    /// TCP segments processed.
    pub segments: u64,
    /// Flows evicted due to the flow-table cap.
    pub evicted: u64,
    /// Payload bytes copied into direction buffers.
    pub bytes_appended: u64,
    /// Bytes moved by window compaction (amortized ≤ 1 per appended byte).
    pub bytes_compacted: u64,
    /// Out-of-order segments held back awaiting a gap fill.
    pub ooo_held: u64,
    /// Out-of-order segments dropped: displaced beyond the window or past
    /// the hold-back budget.
    pub ooo_dropped: u64,
    /// Retransmits whose already-seen prefix was trimmed (suffix kept) —
    /// the [`OverlapPolicy::KeepFirst`] resolution.
    pub overlap_trimmed: u64,
    /// Retransmits that overwrote already-buffered bytes — the
    /// [`OverlapPolicy::KeepLast`] resolution. Always 0 under `KeepFirst`.
    pub overlap_rewritten: u64,
    /// Segments ignored because every byte was already seen.
    pub dup_ignored: u64,
}

impl ReassemblyStats {
    /// Total bytes the reassembler has copied. For an N-byte flow this is
    /// ≤ 2·N regardless of segmentation — the no-per-segment-clone
    /// invariant the throughput tests assert.
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_appended + self.bytes_compacted
    }
}

/// The stream reassembler.
#[derive(Debug)]
pub struct StreamReassembler {
    /// Arena-backed flow state: hash once at setup/teardown, index
    /// dereferences per segment, O(1) oldest-first eviction.
    flows: FlowTable<Flow>,
    limits: DirLimits,
    overlap: OverlapPolicy,
    /// Tear down flows on RST (the real-IDS default, and the paper's
    /// exploited behaviour). When `false`, RSTs are ignored — the ablation.
    pub rst_teardown: bool,
    stats: ReassemblyStats,
    /// Teardown log for consumers carrying per-flow state (matcher cursors,
    /// alert dedup). Only populated when `track_removals` is on.
    removed: Vec<(FlowKey, FlowId)>,
    track_removals: bool,
    /// Flight recorder for reassembly decisions (hold/drop/trim/dup/evict).
    /// Disabled by default: one branch per processed segment.
    tracer: Tracer,
    /// Simulated time stamped onto trace records. `process` has no time
    /// parameter, so time-aware callers (engine, censors) push the clock in
    /// via [`StreamReassembler::set_now`] when tracing is live.
    now_ns: u64,
}

impl Default for StreamReassembler {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamReassembler {
    /// A reassembler with RST teardown on and default limits.
    pub fn new() -> StreamReassembler {
        Self::with_config(ReassemblyConfig::default())
    }

    /// A reassembler with explicit capacity and buffering limits.
    pub fn with_config(cfg: ReassemblyConfig) -> StreamReassembler {
        StreamReassembler {
            flows: FlowTable::new(cfg.max_flows),
            limits: cfg.limits,
            overlap: cfg.overlap,
            rst_teardown: true,
            stats: ReassemblyStats::default(),
            removed: Vec::new(),
            track_removals: false,
            tracer: Tracer::disabled(),
            now_ns: 0,
        }
    }

    /// The per-direction buffering limits in force.
    pub fn limits(&self) -> DirLimits {
        self.limits
    }

    /// The overlap-resolution policy in force.
    pub fn overlap_policy(&self) -> OverlapPolicy {
        self.overlap
    }

    /// The flow-table eviction threshold.
    pub fn flow_capacity(&self) -> usize {
        self.flows.capacity()
    }

    /// Attach a flight-recorder handle (disabled handles cost one branch
    /// per segment).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached flight-recorder handle.
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// Set the simulated time stamped onto subsequent trace records.
    pub fn set_now(&mut self, t_ns: u64) {
        self.now_ns = t_ns;
    }

    /// Record torn-down flows so a consumer can drop its own per-flow
    /// state in lockstep. The consumer must call
    /// [`StreamReassembler::take_removed`] regularly or the log grows.
    pub fn track_removals(&mut self, on: bool) {
        self.track_removals = on;
        if !on {
            self.removed.clear();
        }
    }

    /// Drain the teardown log (flows removed since the last call, with
    /// the handle each held while live).
    pub fn take_removed(&mut self) -> Vec<(FlowKey, FlowId)> {
        std::mem::take(&mut self.removed)
    }

    /// Statistics so far.
    pub fn stats(&self) -> ReassemblyStats {
        self.stats
    }

    /// Number of currently tracked flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Walk the intrusive creation-order list and count live entries.
    /// Always equal to [`StreamReassembler::flow_count`] — the
    /// leak-regression invariant. O(live flows); test/diagnostic only.
    pub fn order_len(&self) -> usize {
        self.flows.linked_len()
    }

    /// Approximate bytes of flow-table backing storage (slab slots plus
    /// the setup hash index; excludes per-direction buffer heap). The
    /// per-flow memory-budget figure the scale experiment reports.
    pub fn table_bytes(&self) -> usize {
        self.flows.approx_bytes()
    }

    /// Total slab slots (live + free): bounded by the live high-water
    /// mark, never by total churn. Dense side tables indexed by
    /// [`FlowId::index`] need at most this many entries.
    pub fn slab_size(&self) -> usize {
        self.flows.slab_size()
    }

    /// Whether a flow is currently tracked.
    pub fn is_tracked(&self, key: &FlowKey) -> bool {
        self.flows.lookup(key).is_some()
    }

    /// The handle for a tracked flow.
    pub fn flow_id(&self, key: &FlowKey) -> Option<FlowId> {
        self.flows.lookup(key)
    }

    /// The buffered stream window for a flow direction (empty if the flow
    /// is not tracked). Borrowed — no copy. Hashes the key; per-packet
    /// consumers should prefer [`StreamReassembler::stream_of_id`].
    pub fn stream_of(&self, key: &FlowKey, direction: Direction) -> &[u8] {
        match self.flows.lookup(key) {
            Some(id) => self.stream_of_id(id, direction),
            None => &[],
        }
    }

    /// The buffered stream window behind a flow handle (empty if stale).
    /// An index dereference — the per-packet path.
    pub fn stream_of_id(&self, id: FlowId, direction: Direction) -> &[u8] {
        match self.flows.get(id) {
            Some(flow) => match direction {
                Direction::ToServer => flow.c2s.view(),
                Direction::ToClient => flow.s2c.view(),
            },
            None => &[],
        }
    }

    /// Process a TCP packet; returns flow context for rule evaluation, or
    /// `None` for non-TCP packets.
    pub fn process(&mut self, pkt: &Packet) -> Option<FlowContext> {
        let seg = pkt.as_tcp()?;
        self.stats.segments += 1;
        let key = FlowKey::of(pkt, seg);

        // RST teardown: report the segment against the dying flow, then
        // forget it.
        if seg.flags.has_rst() && self.rst_teardown {
            let ctx = match self.flows.lookup(&key) {
                Some(id) => {
                    let flow = self.flows.get(id).expect("looked-up handle is live");
                    FlowContext {
                        key,
                        id: Some(id),
                        direction: direction_of(flow, pkt, seg),
                        established: flow.established,
                        appended: false,
                        new_bytes: 0,
                        stream_len: 0,
                        torn_down: true,
                    }
                }
                None => FlowContext {
                    key,
                    id: None,
                    direction: Direction::ToServer,
                    established: false,
                    appended: false,
                    new_bytes: 0,
                    stream_len: 0,
                    torn_down: false,
                },
            };
            if self.teardown(&key) {
                self.stats.rst_teardowns += 1;
                if self.tracer.is_live() {
                    // The flight-recorder evidence for the paper's §4.1
                    // exploit: the monitor stopped looking at this flow
                    // here, whatever the endpoint decided.
                    self.tracer.record(TraceRecord {
                        t_ns: self.now_ns,
                        seq: 0,
                        stage: "stream",
                        kind: "rst_teardown",
                        flow: Some(pkt.trace_flow()),
                        fields: vec![("seq_lo", (seg.seq as u64).into())],
                    });
                }
            }
            return Some(ctx);
        }

        let id = match self.flows.lookup(&key) {
            Some(id) => id,
            None => {
                // New flow. Initiator inference: a bare SYN marks a real
                // open; otherwise treat the observed sender as the client.
                let mut flow = Flow {
                    client: (pkt.src, seg.src_port),
                    established: false,
                    syn_seen: seg.flags.has_syn() && !seg.flags.has_ack(),
                    synack_seen: false,
                    c2s: DirBuffer::default(),
                    s2c: DirBuffer::default(),
                };
                if flow.syn_seen {
                    flow.c2s.next_seq = Some(seg.seq.wrapping_add(1));
                }
                let (id, evicted) = self.flows.insert(key, flow);
                self.stats.flows_created += 1;
                if let Some((evicted_id, evicted_key, _)) = evicted {
                    self.stats.evicted += 1;
                    if self.track_removals {
                        self.removed.push((evicted_key, evicted_id));
                    }
                    if self.tracer.is_live() {
                        self.tracer.record(TraceRecord {
                            t_ns: self.now_ns,
                            seq: 0,
                            stage: "stream",
                            kind: "evicted",
                            flow: Some(TraceFlow {
                                src: evicted_key.lo.0,
                                src_port: evicted_key.lo.1,
                                dst: evicted_key.hi.0,
                                dst_port: evicted_key.hi.1,
                            }),
                            fields: Vec::new(),
                        });
                    }
                }
                id
            }
        };

        let limits = self.limits;
        let flow = self.flows.get_mut(id).expect("flow just ensured");
        let direction = direction_of(flow, pkt, seg);

        // Handshake tracking.
        if seg.flags.has_syn() && seg.flags.has_ack() && direction == Direction::ToClient {
            flow.synack_seen = true;
            flow.s2c.next_seq = Some(seg.seq.wrapping_add(1));
        } else if seg.flags.has_syn() && !seg.flags.has_ack() && direction == Direction::ToServer {
            flow.syn_seen = true;
            flow.c2s.next_seq = Some(seg.seq.wrapping_add(1));
        } else if seg.flags.has_ack() && flow.syn_seen && flow.synack_seen {
            flow.established = true;
        }

        let buf = match direction {
            Direction::ToServer => &mut flow.c2s,
            Direction::ToClient => &mut flow.s2c,
        };
        let stats_before = if self.tracer.is_live() {
            Some(self.stats)
        } else {
            None
        };
        let new_bytes = buf.push(seg.seq, &seg.payload, limits, self.overlap, &mut self.stats);
        if let Some(before) = stats_before {
            trace_reassembly(&self.tracer, self.now_ns, &before, &self.stats, pkt, seg);
        }
        // Advance expected seq past FINs so retransmitted FINs don't desync.
        if seg.flags.has_fin() {
            buf.fin_seen = true;
            if let Some(n) = buf.next_seq {
                let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
                if fin_seq == n {
                    buf.next_seq = Some(n.wrapping_add(1));
                }
            }
        }

        let established = flow.established;
        let stream_len = match direction {
            Direction::ToServer => flow.c2s.view().len(),
            Direction::ToClient => flow.s2c.view().len(),
        };
        // A pure ACK after FINs in both directions completes the close: stop
        // tracking so long runs of short flows don't pin table slots until
        // eviction (the engine may still call [`StreamReassembler::remove`]
        // for its own policies).
        let close_complete = flow.c2s.fin_seen
            && flow.s2c.fin_seen
            && seg.flags.has_ack()
            && !seg.flags.has_fin()
            && !seg.flags.has_syn()
            && seg.payload.is_empty();
        if close_complete && self.teardown(&key) {
            self.stats.fin_teardowns += 1;
        }

        Some(FlowContext {
            key,
            id: Some(id),
            direction,
            established,
            appended: new_bytes > 0,
            new_bytes,
            stream_len,
            torn_down: close_complete,
        })
    }

    /// Forget a flow (used by the engine after it decides tracking should
    /// end). Counted under `removals`, not `fin_teardowns`.
    pub fn remove(&mut self, key: &FlowKey) {
        if self.teardown(key) {
            self.stats.removals += 1;
        }
    }

    /// Drop a flow and all its bookkeeping. Returns whether it existed.
    fn teardown(&mut self, key: &FlowKey) -> bool {
        match self.flows.lookup(key) {
            Some(id) => {
                self.flows.remove(id);
                if self.track_removals {
                    self.removed.push((*key, id));
                }
                true
            }
            None => false,
        }
    }
}

/// Emit one flight-recorder record per reassembly decision the segment
/// triggered (stats deltas across the [`DirBuffer::push`]): segments held
/// out of order, dropped past the hold-back budget, overlap-trimmed
/// retransmits, and fully-duplicate discards. A gap-filling segment can
/// drain held segments whose accepts also decide — those count here too,
/// attributed to the triggering packet.
fn trace_reassembly(
    tracer: &Tracer,
    t_ns: u64,
    before: &ReassemblyStats,
    after: &ReassemblyStats,
    pkt: &Packet,
    seg: &TcpSegment,
) {
    let flow = Some(pkt.trace_flow());
    let seq_lo = seg.seq as u64;
    let seq_hi = seg.seq.wrapping_add(seg.payload.len() as u32) as u64;
    let emit = |kind: &'static str, n: u64| {
        for _ in 0..n {
            tracer.record(TraceRecord {
                t_ns,
                seq: 0,
                stage: "stream",
                kind,
                flow,
                fields: vec![("seq_lo", seq_lo.into()), ("seq_hi", seq_hi.into())],
            });
        }
    };
    emit("ooo_held", after.ooo_held - before.ooo_held);
    emit("ooo_dropped", after.ooo_dropped - before.ooo_dropped);
    emit(
        "overlap_trimmed",
        after.overlap_trimmed - before.overlap_trimmed,
    );
    emit(
        "overlap_rewritten",
        after.overlap_rewritten - before.overlap_rewritten,
    );
    emit("dup_ignored", after.dup_ignored - before.dup_ignored);
}

fn direction_of(flow: &Flow, pkt: &Packet, seg: &TcpSegment) -> Direction {
    if (pkt.src, seg.src_port) == flow.client {
        Direction::ToServer
    } else {
        Direction::ToClient
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use underradar_netsim::wire::tcp::TcpFlags;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
    const S: Ipv4Addr = Ipv4Addr::new(10, 0, 2, 2);

    fn pkt(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        sp: u16,
        dp: u16,
        seq: u32,
        flags: TcpFlags,
        payload: &[u8],
    ) -> Packet {
        Packet::tcp(src, dst, sp, dp, seq, 0, flags, payload.to_vec())
    }

    fn stream_vec(r: &StreamReassembler, ctx: &FlowContext) -> Vec<u8> {
        r.stream_of(&ctx.key, ctx.direction).to_vec()
    }

    fn handshake(r: &mut StreamReassembler) {
        let syn = pkt(C, S, 4000, 80, 100, TcpFlags::syn(), b"");
        let ctx = r.process(&syn).expect("syn ctx");
        assert_eq!(ctx.direction, Direction::ToServer);
        assert!(!ctx.established);
        let syn_ack = pkt(S, C, 80, 4000, 500, TcpFlags::syn_ack(), b"");
        let ctx = r.process(&syn_ack).expect("synack ctx");
        assert_eq!(ctx.direction, Direction::ToClient);
        let ack = pkt(C, S, 4000, 80, 101, TcpFlags::ack(), b"");
        let ctx = r.process(&ack).expect("ack ctx");
        assert!(ctx.established, "handshake complete");
    }

    #[test]
    fn reassembles_across_segments() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        // "falun" split across two segments.
        let d1 = pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), b"GET /fal");
        let ctx = r.process(&d1).expect("d1");
        assert!(ctx.appended);
        assert_eq!(ctx.new_bytes, 8);
        assert_eq!(stream_vec(&r, &ctx), b"GET /fal");
        let d2 = pkt(C, S, 4000, 80, 109, TcpFlags::psh_ack(), b"un HTTP/1.0");
        let ctx = r.process(&d2).expect("d2");
        assert_eq!(stream_vec(&r, &ctx), b"GET /falun HTTP/1.0");
        assert_eq!(ctx.stream_len, 19);
        assert!(ctx.established);
    }

    #[test]
    fn context_handle_gives_dense_stream_access() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        let d = pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), b"dense");
        let ctx = r.process(&d).expect("ctx");
        let id = ctx.id.expect("live flow carries its handle");
        assert_eq!(r.stream_of_id(id, ctx.direction), b"dense");
        assert_eq!(r.flow_id(&ctx.key), Some(id), "handle is stable");
        // After teardown the handle goes stale and reads as empty.
        let _ = r.process(&pkt(C, S, 4000, 80, 106, TcpFlags::rst(), b""));
        assert!(r.stream_of_id(id, ctx.direction).is_empty());
    }

    #[test]
    fn directions_keep_separate_buffers() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        let _ = r.process(&pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), b"request"));
        let ctx = r.process(&pkt(S, C, 80, 4000, 501, TcpFlags::psh_ack(), b"response"));
        let ctx = ctx.expect("ctx");
        assert_eq!(ctx.direction, Direction::ToClient);
        assert_eq!(stream_vec(&r, &ctx), b"response");
    }

    #[test]
    fn out_of_order_segment_held_until_gap_fills() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        // Arrives 5 bytes early: held, not appended.
        let early = pkt(C, S, 4000, 80, 106, TcpFlags::psh_ack(), b"later");
        let ctx = r.process(&early).expect("early");
        assert!(!ctx.appended, "gap: held back, not appended");
        assert_eq!(ctx.new_bytes, 0);
        assert_eq!(r.stats().ooo_held, 1);
        // The gap fill releases both: one segment, ten reassembled bytes.
        let fill = pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), b"first");
        let ctx = r.process(&fill).expect("fill");
        assert!(ctx.appended);
        assert_eq!(ctx.new_bytes, 10, "fill plus the held segment");
        assert_eq!(stream_vec(&r, &ctx), b"firstlater");
        assert_eq!(r.stats().ooo_dropped, 0);
    }

    #[test]
    fn reorder_within_holdback_reconstructs_exactly() {
        // Three segments delivered 2,3,1: the stream still comes out whole.
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        let _ = r.process(&pkt(C, S, 4000, 80, 106, TcpFlags::psh_ack(), b"bbbbb"));
        let _ = r.process(&pkt(C, S, 4000, 80, 111, TcpFlags::psh_ack(), b"ccccc"));
        let ctx = r
            .process(&pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), b"aaaaa"))
            .expect("ctx");
        assert_eq!(ctx.new_bytes, 15);
        assert_eq!(stream_vec(&r, &ctx), b"aaaaabbbbbccccc");
        assert_eq!(r.stats().ooo_held, 2);
    }

    #[test]
    fn partial_overlap_appends_only_the_unseen_suffix() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        let _ = r.process(&pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), b"abcdef"));
        // Repacketized retransmit: covers [104, 112) while [101, 107) is
        // already reassembled — only "ghi" is new.
        let ctx = r
            .process(&pkt(C, S, 4000, 80, 104, TcpFlags::psh_ack(), b"defghi"))
            .expect("ctx");
        assert!(ctx.appended);
        assert_eq!(ctx.new_bytes, 3, "unseen suffix only");
        assert_eq!(stream_vec(&r, &ctx), b"abcdefghi");
        assert_eq!(r.stats().overlap_trimmed, 1);
    }

    fn keep_last(max_flows: usize) -> StreamReassembler {
        StreamReassembler::with_config(ReassemblyConfig {
            max_flows,
            limits: DirLimits::default(),
            overlap: OverlapPolicy::KeepLast,
        })
    }

    /// The Ptacek–Newsham overlap ambiguity: the same schedule — "falun"
    /// then a same-range retransmit carrying "files" — reassembles to
    /// different streams under the two policies. This is the divergence
    /// surface E13's overlapping-retransmit evasion class exercises.
    #[test]
    fn overlap_policy_decides_which_retransmit_copy_wins() {
        // KeepFirst (default): the first copy is the stream on record.
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        let _ = r.process(&pkt(
            C,
            S,
            4000,
            80,
            101,
            TcpFlags::psh_ack(),
            b"GET /falun",
        ));
        let ctx = r
            .process(&pkt(C, S, 4000, 80, 106, TcpFlags::psh_ack(), b"files"))
            .expect("retransmit");
        assert!(!ctx.appended);
        assert_eq!(stream_vec(&r, &ctx), b"GET /falun");
        assert_eq!(r.stats().dup_ignored, 1);
        assert_eq!(r.stats().overlap_rewritten, 0);

        // KeepLast: the later copy rewrites the buffered bytes.
        let mut r = keep_last(MAX_FLOWS);
        handshake(&mut r);
        let _ = r.process(&pkt(
            C,
            S,
            4000,
            80,
            101,
            TcpFlags::psh_ack(),
            b"GET /falun",
        ));
        let ctx = r
            .process(&pkt(C, S, 4000, 80, 106, TcpFlags::psh_ack(), b"files"))
            .expect("retransmit");
        assert!(!ctx.appended, "rewritten bytes are not new bytes");
        assert_eq!(stream_vec(&r, &ctx), b"GET /files");
        assert_eq!(r.stats().overlap_rewritten, 1);
        assert_eq!(r.stats().dup_ignored, 0);
    }

    /// KeepLast on a partial overlap: the already-seen prefix rewrites and
    /// the unseen suffix still appends (one decision, counted once).
    #[test]
    fn keep_last_partial_overlap_rewrites_prefix_and_appends_suffix() {
        let mut r = keep_last(MAX_FLOWS);
        handshake(&mut r);
        let _ = r.process(&pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), b"abcdef"));
        // Covers [104, 112): "DEF" rewrites, "ghi" is new.
        let ctx = r
            .process(&pkt(C, S, 4000, 80, 104, TcpFlags::psh_ack(), b"DEFghi"))
            .expect("ctx");
        assert_eq!(ctx.new_bytes, 3, "suffix only");
        assert_eq!(stream_vec(&r, &ctx), b"abcDEFghi");
        let s = r.stats();
        assert_eq!(s.overlap_rewritten, 1);
        assert_eq!(s.overlap_trimmed, 0, "one decision, not two");
    }

    /// KeepLast conflicts held out of order resolve on drain: two copies of
    /// the same future range, the later one wins once the gap fills.
    #[test]
    fn keep_last_resolves_held_out_of_order_conflicts() {
        let mut r = keep_last(MAX_FLOWS);
        handshake(&mut r);
        let _ = r.process(&pkt(C, S, 4000, 80, 106, TcpFlags::psh_ack(), b"falun"));
        let _ = r.process(&pkt(C, S, 4000, 80, 106, TcpFlags::psh_ack(), b"files"));
        assert_eq!(r.stats().ooo_held, 2, "both copies held across the gap");
        let ctx = r
            .process(&pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), b"GET /"))
            .expect("fill");
        assert_eq!(stream_vec(&r, &ctx), b"GET /files", "later copy wins");
        assert_eq!(r.stats().overlap_rewritten, 1);
    }

    /// A rewrite reaching behind the live window only touches bytes still
    /// buffered — compacted history cannot be resurrected.
    #[test]
    fn keep_last_rewrite_is_clipped_to_the_live_window() {
        let mut r = StreamReassembler::with_config(ReassemblyConfig {
            max_flows: MAX_FLOWS,
            limits: DirLimits {
                window: 8,
                holdback: 64,
            },
            overlap: OverlapPolicy::KeepLast,
        });
        handshake(&mut r);
        let _ = r.process(&pkt(
            C,
            S,
            4000,
            80,
            101,
            TcpFlags::psh_ack(),
            b"0123456789ab",
        ));
        // Window now holds "456789ab" (last 8). A retransmit of [101, 113)
        // rewrites only the windowed tail.
        let ctx = r
            .process(&pkt(
                C,
                S,
                4000,
                80,
                101,
                TcpFlags::psh_ack(),
                b"XXXXXXXXXXXX",
            ))
            .expect("ctx");
        assert_eq!(stream_vec(&r, &ctx), b"XXXXXXXX");
        assert_eq!(r.stats().overlap_rewritten, 1);
    }

    /// The RST teardown leaves a flight-recorder record naming the decision
    /// (the §4.1 causal chain's first divergent step for TCB-desync runs).
    #[test]
    fn rst_teardown_emits_trace_record() {
        let mut r = StreamReassembler::new();
        let tracer = Tracer::with_capacity(16);
        r.set_tracer(tracer.clone());
        handshake(&mut r);
        r.set_now(42);
        let _ = r.process(&pkt(C, S, 4000, 80, 101, TcpFlags::rst(), b""));
        let records = tracer.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kind, "rst_teardown");
        assert_eq!(records[0].stage, "stream");
        assert_eq!(records[0].t_ns, 42);
        // An RST against an untracked flow tears nothing down: no record.
        let _ = r.process(&pkt(C, S, 4999, 80, 7, TcpFlags::rst(), b""));
        assert_eq!(tracer.records().len(), 1);
    }

    #[test]
    fn pure_duplicates_are_ignored_and_counted() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        let d = pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), b"payload");
        let _ = r.process(&d);
        let ctx = r.process(&d).expect("dup");
        assert!(!ctx.appended);
        assert_eq!(ctx.new_bytes, 0);
        assert_eq!(stream_vec(&r, &ctx), b"payload", "stream unchanged");
        assert_eq!(r.stats().dup_ignored, 1);
    }

    #[test]
    fn sequence_wrap_does_not_desync() {
        // A flow whose payload crosses the 2^32 sequence wrap: windowed
        // comparisons keep appending where exact arithmetic would desync.
        let mut r = StreamReassembler::new();
        let start = u32::MAX - 4; // 5 bytes before the wrap
        let d1 = pkt(C, S, 4000, 80, start, TcpFlags::psh_ack(), b"abcde");
        let ctx = r.process(&d1).expect("pre-wrap");
        assert!(ctx.appended);
        // Next expected seq is 0 (wrapped). A duplicate of the pre-wrap
        // bytes must be recognized as stale, not future.
        let dup = pkt(C, S, 4000, 80, start, TcpFlags::psh_ack(), b"abcde");
        let ctx = r.process(&dup).expect("dup");
        assert!(!ctx.appended, "pre-wrap retransmit is stale");
        let d2 = pkt(C, S, 4000, 80, 0, TcpFlags::psh_ack(), b"fghij");
        let ctx = r.process(&d2).expect("post-wrap");
        assert!(ctx.appended);
        assert_eq!(stream_vec(&r, &ctx), b"abcdefghij");
        // An overlapping retransmit straddling the wrap keeps its suffix.
        let straddle = pkt(
            C,
            S,
            4000,
            80,
            u32::MAX - 1,
            TcpFlags::psh_ack(),
            b"deFGHIJKL",
        );
        let ctx = r.process(&straddle).expect("straddle");
        assert_eq!(ctx.new_bytes, 2);
        assert_eq!(stream_vec(&r, &ctx), b"abcdefghijKL");
    }

    #[test]
    fn holdback_budget_drops_and_counts_excess() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        // Fill the hold-back budget with a gap at the front.
        let mut seq = 201u32;
        let chunk = 1024;
        for _ in 0..(MAX_OOO_BUFFER / chunk) {
            let d = pkt(C, S, 4000, 80, seq, TcpFlags::psh_ack(), &vec![b'h'; chunk]);
            let ctx = r.process(&d).expect("held");
            assert!(!ctx.appended);
            seq = seq.wrapping_add(chunk as u32);
        }
        assert_eq!(r.stats().ooo_held, (MAX_OOO_BUFFER / chunk) as u64);
        // The budget is full: the next out-of-order byte is dropped.
        let over = pkt(C, S, 4000, 80, seq, TcpFlags::psh_ack(), b"x");
        let _ = r.process(&over);
        assert_eq!(r.stats().ooo_dropped, 1);
        // A segment displaced beyond the window is dropped outright.
        let far = pkt(
            C,
            S,
            4000,
            80,
            101 + MAX_DIR_BUFFER as u32 + 1,
            TcpFlags::psh_ack(),
            b"x",
        );
        let _ = r.process(&far);
        assert_eq!(r.stats().ooo_dropped, 2);
        // In-order data still flows and releases everything held.
        let fill = pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), &[b'f'; 100]);
        let ctx = r.process(&fill).expect("fill");
        assert_eq!(ctx.new_bytes, 100 + MAX_OOO_BUFFER);
    }

    /// ISSUE satellite: the hold-back cap and flow-table capacity are
    /// construction-time knobs, not baked-in constants.
    #[test]
    fn limits_and_capacity_are_configurable() {
        let cfg = ReassemblyConfig {
            max_flows: 2,
            limits: DirLimits {
                window: 64,
                holdback: 16,
            },
            overlap: OverlapPolicy::KeepFirst,
        };
        let mut r = StreamReassembler::with_config(cfg);
        assert_eq!(r.limits(), cfg.limits);
        assert_eq!(r.flow_capacity(), 2);
        // An out-of-order segment over the reduced hold-back budget drops
        // where the default budget would have held it.
        let _ = r.process(&pkt(C, S, 4000, 80, 100, TcpFlags::psh_ack(), b"a"));
        let over = pkt(C, S, 4000, 80, 110, TcpFlags::psh_ack(), &[b'x'; 17]);
        let _ = r.process(&over);
        assert_eq!(r.stats().ooo_dropped, 1, "17 bytes > 16-byte hold-back");
        let within = pkt(C, S, 4000, 80, 110, TcpFlags::psh_ack(), &[b'x'; 16]);
        let _ = r.process(&within);
        assert_eq!(r.stats().ooo_held, 1, "16 bytes fit the budget");
        // The in-order window trims to 64 bytes.
        let bulk = pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), &[b'y'; 200]);
        let ctx = r.process(&bulk).expect("bulk");
        assert!(ctx.stream_len <= 64);
        // A third flow evicts the oldest: capacity 2 is enforced.
        let _ = r.process(&pkt(C, S, 4001, 80, 1, TcpFlags::syn(), b""));
        let _ = r.process(&pkt(C, S, 4002, 80, 1, TcpFlags::syn(), b""));
        assert_eq!(r.flow_count(), 2);
        assert_eq!(r.stats().evicted, 1);
    }

    /// ISSUE satellite: for arbitrary segmentation, duplication, bounded
    /// reordering and overlapping retransmit schedules within the hold-back
    /// bound, the monitor's reconstructed stream equals what the endpoint
    /// (receiving the same bytes in order) would see — byte for byte.
    #[test]
    fn monitor_stream_matches_endpoint_under_impairment_schedules() {
        use underradar_netsim::testprop::cases;
        cases(64, 0xD1CE_BEEF, |g| {
            let total = g.usize_in(64, 2048);
            let stream: Vec<u8> = (0..total).map(|_| g.u8()).collect();
            let isn = g.u32(); // exercise arbitrary (incl. wrapping) bases
                               // Cut the stream into segments.
            let mut segs = Vec::new();
            let mut off = 0usize;
            while off < total {
                let len = g.usize_in(1, 1 + (total - off).min(256));
                segs.push((off, len));
                off += len;
            }
            // Delivery schedule: bounded displacement (hold-back-sized),
            // occasional duplicates and overlapping re-sends.
            let mut schedule: Vec<(usize, usize, usize)> = Vec::new(); // (rank, off, len)
            for (i, &(off, len)) in segs.iter().enumerate() {
                let rank = i * 4 + g.usize_in(0, 8); // displacement ≤ 2 slots
                schedule.push((rank, off, len));
                if g.usize_in(0, 8) == 0 {
                    schedule.push((rank + g.usize_in(0, 8), off, len)); // duplicate
                }
                if off > 0 && g.usize_in(0, 8) == 0 {
                    // Overlapping retransmit reaching back a few bytes.
                    let back = g.usize_in(1, off.min(32) + 1);
                    schedule.push((rank + g.usize_in(0, 4), off - back, len.min(back + 16)));
                }
            }
            schedule.sort_by_key(|&(rank, off, _)| (rank, off));
            let mut r = StreamReassembler::new();
            let wrap = |o: usize| isn.wrapping_add(o as u32);
            // Sync the monitor at the stream base, as a SYN would.
            let _ = r.process(&pkt(
                C,
                S,
                4000,
                80,
                wrap(0),
                TcpFlags::psh_ack(),
                &stream[..1],
            ));
            let mut ctx = None;
            let mut reassembled = 1usize;
            for &(_, off, len) in &schedule {
                let end = (off + len).min(total);
                let p = pkt(
                    C,
                    S,
                    4000,
                    80,
                    wrap(off),
                    TcpFlags::psh_ack(),
                    &stream[off..end],
                );
                let c = r.process(&p).expect("tcp");
                reassembled += c.new_bytes;
                ctx = Some(c);
            }
            let ctx = ctx.expect("nonempty schedule");
            let got = r.stream_of(&ctx.key, ctx.direction);
            let want = &stream[total - got.len()..];
            assert_eq!(got, want, "monitor window diverged from endpoint stream");
            assert_eq!(reassembled, total, "every byte reassembled exactly once");
            assert_eq!(r.stats().ooo_dropped, 0, "schedule stayed within bounds");
        });
    }

    /// ISSUE satellite: for any delivery schedule, the flight recorder's
    /// stream-stage record count equals the sum of the stage's decision
    /// counters — the trace is complete by construction, never sampled.
    #[test]
    fn trace_record_count_equals_stage_decision_counters() {
        use underradar_netsim::testprop::cases;
        cases(48, 0x7AC3_0001, |g| {
            let total = g.usize_in(64, 2048);
            let stream: Vec<u8> = (0..total).map(|_| g.u8()).collect();
            let isn = g.u32();
            let mut segs = Vec::new();
            let mut off = 0usize;
            while off < total {
                let len = g.usize_in(1, 1 + (total - off).min(256));
                segs.push((off, len));
                off += len;
            }
            // Unbounded displacement on purpose: this schedule may overflow
            // the hold-back budget, so every decision kind can fire.
            let mut schedule: Vec<(usize, usize, usize)> = Vec::new();
            for (i, &(off, len)) in segs.iter().enumerate() {
                let rank = i * 4 + g.usize_in(0, 40);
                schedule.push((rank, off, len));
                if g.usize_in(0, 6) == 0 {
                    schedule.push((rank + g.usize_in(0, 12), off, len));
                }
                if off > 0 && g.usize_in(0, 6) == 0 {
                    let back = g.usize_in(1, off.min(32) + 1);
                    schedule.push((rank + g.usize_in(0, 6), off - back, len.min(back + 16)));
                }
            }
            schedule.sort_by_key(|&(rank, off, _)| (rank, off));
            let mut r = StreamReassembler::new();
            let tracer = Tracer::with_capacity(1 << 16); // never evicts here
            r.set_tracer(tracer.clone());
            let wrap = |o: usize| isn.wrapping_add(o as u32);
            let _ = r.process(&pkt(
                C,
                S,
                4000,
                80,
                wrap(0),
                TcpFlags::psh_ack(),
                &stream[..1],
            ));
            for (i, &(_, off, len)) in schedule.iter().enumerate() {
                r.set_now(i as u64);
                let end = (off + len).min(total);
                let p = pkt(
                    C,
                    S,
                    4000,
                    80,
                    wrap(off),
                    TcpFlags::psh_ack(),
                    &stream[off..end],
                );
                let _ = r.process(&p);
            }
            let s = r.stats();
            let decisions = s.ooo_held
                + s.ooo_dropped
                + s.overlap_trimmed
                + s.overlap_rewritten
                + s.dup_ignored
                + s.evicted;
            assert_eq!(
                tracer.records().len() as u64 + tracer.dropped(),
                decisions,
                "one trace record per reassembly decision"
            );
            assert_eq!(tracer.dropped(), 0, "capacity chosen to avoid eviction");
            assert!(
                tracer.records().iter().all(|rec| rec.stage == "stream"),
                "only stream-stage records on this path"
            );
        });
    }

    #[test]
    fn rst_teardown_stops_tracking() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        let key = FlowKey::of(
            &pkt(C, S, 4000, 80, 0, TcpFlags::ack(), b""),
            pkt(C, S, 4000, 80, 0, TcpFlags::ack(), b"")
                .as_tcp()
                .expect("t"),
        );
        assert!(r.is_tracked(&key));
        let rst = pkt(C, S, 4000, 80, 101, TcpFlags::rst(), b"");
        let ctx = r.process(&rst).expect("rst ctx");
        assert!(ctx.established, "context reflects the flow that died");
        assert!(ctx.torn_down);
        assert!(ctx.id.is_some(), "dying flow still names its handle");
        assert!(!r.is_tracked(&key), "flow forgotten after RST");
        assert_eq!(r.stats().rst_teardowns, 1);
        assert_eq!(r.order_len(), 0, "order bookkeeping freed with the flow");
        // Subsequent data is a fresh, non-established flow: the censor has
        // lost the stream — the paper's exploit.
        let more = pkt(C, S, 4000, 80, 106, TcpFlags::psh_ack(), b"secret keyword");
        let ctx = r.process(&more).expect("more");
        assert!(!ctx.established);
    }

    #[test]
    fn rst_teardown_can_be_disabled() {
        let mut r = StreamReassembler::new();
        r.rst_teardown = false;
        handshake(&mut r);
        let rst = pkt(C, S, 4000, 80, 101, TcpFlags::rst(), b"");
        let _ = r.process(&rst);
        let key = FlowKey::of(
            &pkt(C, S, 4000, 80, 0, TcpFlags::ack(), b""),
            pkt(C, S, 4000, 80, 0, TcpFlags::ack(), b"")
                .as_tcp()
                .expect("t"),
        );
        assert!(r.is_tracked(&key), "ablation: RST ignored");
        let more = pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), b"keyword");
        let ctx = r.process(&more).expect("more");
        assert!(ctx.established, "flow still established");
    }

    #[test]
    fn mid_stream_pickup_syncs() {
        let mut r = StreamReassembler::new();
        // Monitor sees only the data segment (no handshake observed).
        let d = pkt(
            C,
            S,
            4000,
            80,
            7777,
            TcpFlags::psh_ack(),
            b"mid-stream data",
        );
        let ctx = r.process(&d).expect("ctx");
        assert!(ctx.appended);
        assert!(!ctx.established);
        assert_eq!(stream_vec(&r, &ctx), b"mid-stream data");
        let d2 = pkt(C, S, 4000, 80, 7777 + 15, TcpFlags::psh_ack(), b" more");
        let ctx = r.process(&d2).expect("ctx2");
        assert_eq!(stream_vec(&r, &ctx), b"mid-stream data more");
    }

    #[test]
    fn buffer_is_bounded() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        let mut seq = 101u32;
        for _ in 0..20 {
            let payload = vec![b'x'; 1000];
            let d = pkt(C, S, 4000, 80, seq, TcpFlags::psh_ack(), &payload);
            let ctx = r.process(&d).expect("ctx");
            assert!(ctx.stream_len <= MAX_DIR_BUFFER);
            assert_eq!(r.stream_of(&ctx.key, ctx.direction).len(), ctx.stream_len);
            seq = seq.wrapping_add(1000);
        }
    }

    #[test]
    fn window_keeps_the_tail() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        let mut seq = 101u32;
        // 3 * MAX bytes with a recognizable final chunk.
        let total = 3 * MAX_DIR_BUFFER;
        let chunk = 512;
        let mut sent = Vec::new();
        let mut last_ctx = None;
        for i in 0..(total / chunk) {
            let payload: Vec<u8> = (0..chunk).map(|j| ((i * chunk + j) % 251) as u8).collect();
            sent.extend_from_slice(&payload);
            let d = pkt(C, S, 4000, 80, seq, TcpFlags::psh_ack(), &payload);
            last_ctx = r.process(&d);
            seq = seq.wrapping_add(chunk as u32);
        }
        let ctx = last_ctx.expect("ctx");
        let window = r.stream_of(&ctx.key, ctx.direction);
        assert_eq!(window.len(), MAX_DIR_BUFFER);
        assert_eq!(
            window,
            &sent[sent.len() - MAX_DIR_BUFFER..],
            "window is the stream tail"
        );
    }

    #[test]
    fn non_tcp_packets_are_ignored() {
        let mut r = StreamReassembler::new();
        let udp = Packet::udp(C, S, 1, 2, b"dgram".to_vec());
        assert!(r.process(&udp).is_none());
        assert_eq!(r.stats().segments, 0);
    }

    #[test]
    fn flow_key_is_direction_independent() {
        let fwd = pkt(C, S, 4000, 80, 0, TcpFlags::ack(), b"");
        let rev = pkt(S, C, 80, 4000, 0, TcpFlags::ack(), b"");
        let k1 = FlowKey::of(&fwd, fwd.as_tcp().expect("t"));
        let k2 = FlowKey::of(&rev, rev.as_tcp().expect("t"));
        assert_eq!(k1, k2);
    }

    #[test]
    fn fin_close_tears_down_and_counts_separately() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        let _ = r.process(&pkt(C, S, 4000, 80, 101, TcpFlags::psh_ack(), b"req"));
        // FIN from client, FIN+ACK from server, final ACK from client.
        let _ = r.process(&pkt(C, S, 4000, 80, 104, TcpFlags::fin_ack(), b""));
        let _ = r.process(&pkt(S, C, 80, 4000, 501, TcpFlags::fin_ack(), b""));
        let key = FlowKey::of(
            &pkt(C, S, 4000, 80, 0, TcpFlags::ack(), b""),
            pkt(C, S, 4000, 80, 0, TcpFlags::ack(), b"")
                .as_tcp()
                .expect("t"),
        );
        assert!(r.is_tracked(&key), "tracked until the close completes");
        let ctx = r
            .process(&pkt(C, S, 4000, 80, 105, TcpFlags::ack(), b""))
            .expect("ack");
        assert!(ctx.torn_down);
        assert!(!r.is_tracked(&key));
        let stats = r.stats();
        assert_eq!(stats.fin_teardowns, 1);
        assert_eq!(stats.removals, 0);
        assert_eq!(stats.rst_teardowns, 0);
    }

    #[test]
    fn explicit_remove_counts_as_removal_not_fin() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        let key = FlowKey::of(
            &pkt(C, S, 4000, 80, 0, TcpFlags::ack(), b""),
            pkt(C, S, 4000, 80, 0, TcpFlags::ack(), b"")
                .as_tcp()
                .expect("t"),
        );
        r.remove(&key);
        assert!(!r.is_tracked(&key));
        assert_eq!(r.stats().removals, 1);
        assert_eq!(r.stats().fin_teardowns, 0, "stat split: not a FIN teardown");
        assert_eq!(r.order_len(), 0, "no stale order entry after remove()");
        // Removing again is a no-op.
        r.remove(&key);
        assert_eq!(r.stats().removals, 1);
    }

    #[test]
    fn removal_log_reports_teardowns() {
        let mut r = StreamReassembler::new();
        r.track_removals(true);
        handshake(&mut r);
        let key = FlowKey::of(
            &pkt(C, S, 4000, 80, 0, TcpFlags::ack(), b""),
            pkt(C, S, 4000, 80, 0, TcpFlags::ack(), b"")
                .as_tcp()
                .expect("t"),
        );
        let id = r.flow_id(&key).expect("tracked");
        let _ = r.process(&pkt(C, S, 4000, 80, 101, TcpFlags::rst(), b""));
        assert_eq!(r.take_removed(), vec![(key, id)]);
        assert!(r.take_removed().is_empty(), "log drained");
    }

    /// Leak regression (property): under random create/remove/RST churn the
    /// order bookkeeping tracks live flows exactly.
    #[test]
    fn order_stays_bounded_by_live_flows_under_churn() {
        use underradar_netsim::testprop::cases;
        cases(32, 0xC0FFEE, |g| {
            let mut r = StreamReassembler::new();
            for _ in 0..400 {
                let sport = 1000 + g.usize_in(0, 64) as u16;
                let action = g.usize_in(0, 10);
                let p = match action {
                    0 => pkt(C, S, sport, 80, g.u32(), TcpFlags::rst(), b""),
                    1..=2 => pkt(C, S, sport, 80, g.u32(), TcpFlags::syn(), b""),
                    _ => pkt(
                        C,
                        S,
                        sport,
                        80,
                        g.u32(),
                        TcpFlags::psh_ack(),
                        &g.bytes(0, 32),
                    ),
                };
                let _ = r.process(&p);
                if action == 3 {
                    let key = FlowKey::of(&p, p.as_tcp().expect("t"));
                    r.remove(&key);
                }
                assert_eq!(r.order_len(), r.flow_count(), "order == live flows");
                assert!(r.flow_count() <= 64);
            }
        });
    }

    /// Acceptance-scale churn: a million distinct flows (with interleaved
    /// RST teardowns) leave bookkeeping exactly equal to live flows, which
    /// the LRU caps at [`MAX_FLOWS`]. The seed's `Vec::remove(0)` eviction
    /// and its stale-key leak made this O(n²) and unbounded respectively.
    #[test]
    fn one_million_flow_churn_keeps_bookkeeping_bounded() {
        let mut r = StreamReassembler::new();
        // Full scale only under optimization (~3 s); debug builds run a
        // reduced churn that still crosses the eviction cap. CI runs the
        // release flavour explicitly (scripts/ci.sh).
        let total: u32 = if cfg!(debug_assertions) {
            150_000
        } else {
            1_000_000
        };
        for i in 0..total {
            let src = Ipv4Addr::from(0x0a00_0000 | (i >> 4));
            let sport = 40_000 + (i & 0xF) as u16;
            let syn = pkt(src, S, sport, 80, 100, TcpFlags::syn(), b"");
            r.process(&syn);
            if i % 7 == 0 {
                let rst = pkt(src, S, sport, 80, 101, TcpFlags::rst(), b"");
                r.process(&rst);
            }
            if i % 65_536 == 0 {
                assert_eq!(r.order_len(), r.flow_count(), "bookkeeping == live flows");
            }
        }
        assert_eq!(r.order_len(), r.flow_count());
        assert!(r.flow_count() <= MAX_FLOWS);
        assert!(
            r.slab_size() <= MAX_FLOWS,
            "slab bounded by the live high-water mark, not churn"
        );
        let stats = r.stats();
        assert_eq!(stats.flows_created, u64::from(total));
        assert_eq!(
            stats.flows_created,
            stats.rst_teardowns + stats.evicted + r.flow_count() as u64,
            "every created flow is live, evicted, or torn down"
        );
    }

    /// Throughput smoke: reassembling a 1 MB flow never clones per segment —
    /// total bytes copied stays ≤ 2× the payload (append + amortized window
    /// compaction), where the seed's per-segment `stream.clone()` would have
    /// copied ~8 KB × 1024 segments ≈ 8 MB into contexts alone.
    #[test]
    fn one_megabyte_flow_copies_at_most_twice_the_payload() {
        let mut r = StreamReassembler::new();
        handshake(&mut r);
        let total: usize = 1 << 20;
        let chunk = 1024;
        let mut seq = 101u32;
        for _ in 0..(total / chunk) {
            let d = pkt(C, S, 4000, 80, seq, TcpFlags::psh_ack(), &vec![b'x'; chunk]);
            let ctx = r.process(&d).expect("ctx");
            assert!(ctx.appended);
            seq = seq.wrapping_add(chunk as u32);
        }
        let stats = r.stats();
        assert_eq!(stats.bytes_appended, total as u64);
        assert!(
            stats.bytes_copied() <= 2 * total as u64,
            "copied {} bytes for a {} byte stream",
            stats.bytes_copied(),
            total
        );
    }
}
