#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # underradar-runner
//!
//! A durable run service wrapping the campaign engine
//! ([`underradar_campaign::engine`]): work-stealing scheduling, streaming
//! verdict rows, and a checksummed checkpoint journal with crash recovery
//! and exact resume.
//!
//! The engine gives determinism (byte-identical reports at any worker
//! count); this crate adds **durability** without giving that up. A
//! campaign run through [`service::run_service`]:
//!
//! - schedules trials over per-worker deques with steal-half rebalancing
//!   ([`underradar_campaign::steal`]), so a straggler cell never idles the
//!   other workers;
//! - streams each verdict row to a [`sink::RowSink`] (e.g. JSONL) the
//!   moment its trial completes, with telemetry folded incrementally
//!   through an order-independent [`underradar_telemetry::StreamMerger`],
//!   keeping memory bounded by in-flight work, not campaign size;
//! - appends every decision — completed trial or retry handoff — to a
//!   length-prefixed, CRC-checked [`journal::Journal`], fsync'd on a
//!   configurable cadence; a `kill -9` at any point costs at most the
//!   unsynced tail, and reopening the journal resumes from the exact work
//!   frontier (mid-retry, with backoff budgets intact);
//! - re-enqueues `Inconclusive` trials at a global retry tail so
//!   conclusive work finishes first.
//!
//! The contract, tested in this crate: the final report and merged
//! telemetry of a resumed run are **byte-identical** to an uninterrupted
//! run — which is itself byte-identical to `engine::run` — at any worker
//! count and any interruption point.
//!
//! ```
//! use underradar_campaign::{CampaignSpec, MethodKind, NamedPolicy};
//! use underradar_censor::CensorPolicy;
//! # use underradar_runner::{RunConfig, run_service, VecSink};
//!
//! let spec = CampaignSpec::new("doc", 7)
//!     .target("twitter.com")
//!     .method(MethodKind::Scan)
//!     .policy(NamedPolicy::new("control", CensorPolicy::new()))
//!     .run_secs(30);
//! let tel = underradar_telemetry::Telemetry::disabled();
//! let mut sink = VecSink::new();
//! let outcome = run_service(&spec, &RunConfig::new(2), &tel, &mut sink).unwrap();
//! assert_eq!(outcome.report.trial_count(), 1);
//! assert_eq!(sink.rows.len(), 1);
//! ```

pub mod codec;
pub mod journal;
pub mod service;
pub mod sink;

pub use journal::{Journal, JournalError, Replay};
pub use service::{run_service, ProgressConfig, RunConfig, RunProfile, ServiceOutcome};
pub use sink::{JsonlSink, NullSink, RowSink, VecSink};
