//! The checkpoint journal: an append-only, length-prefixed, checksummed
//! record log that makes a campaign run durable.
//!
//! ## Format
//!
//! ```text
//! header  := magic[8]="URCKPT01" version:u32 fingerprint:u64 trials:u64
//! record  := len:u32 crc32:u32 payload[len]
//! payload := tag:u8 body
//!   tag 1 (complete) := index:u64 trial_result registry_delta
//!   tag 2 (retry)    := index:u64 next_attempt:u32 accumulated_registry
//! ```
//!
//! All integers little-endian; `crc32` is IEEE CRC-32 over the payload.
//! A *complete* record carries everything the run derived from the trial:
//! its result row and its telemetry delta. A *retry* record checkpoints an
//! `Inconclusive` attempt — the attempt number to run next plus the
//! registry accumulated by the attempts already spent — so a resumed run
//! continues the trial mid-retry with its backoff budget and telemetry
//! intact instead of restarting it.
//!
//! ## Recovery
//!
//! [`Journal::open_or_create`] scans an existing file and stops at the
//! first structurally invalid record — truncated length/checksum/payload,
//! checksum mismatch, or undecodable payload — then **truncates** the file
//! there, so a `kill -9` mid-write (or a flipped byte in the tail) costs
//! only the records after the damage. Replay deduplicates: the first
//! *complete* record for an index wins (a trial is never double-counted),
//! a *complete* record supersedes any *retry* records for its index, and
//! among retry records the highest attempt wins.
//!
//! Durability is bounded by the fsync cadence ([`Journal::set_fsync_every`]):
//! records since the last sync may be lost on power failure, which a
//! resume repairs by re-running those trials — determinism makes the
//! re-run byte-identical to what was lost.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use underradar_campaign::TrialResult;
use underradar_telemetry::codec::{encode_registry, put_u32, put_u64, CodecError, Reader};
use underradar_telemetry::Registry;

use crate::codec::{encode_trial_result, read_trial_result};

/// Journal file magic (8 bytes, versioned by the trailing digits).
pub const MAGIC: [u8; 8] = *b"URCKPT01";
/// Format version written into (and required from) the header.
pub const VERSION: u32 = 1;
/// Header length in bytes: magic + version + fingerprint + trial count.
pub const HEADER_LEN: u64 = 8 + 4 + 8 + 8;
/// Upper bound on a single record payload (a registry delta for one
/// trial); anything larger is treated as corruption, not allocated.
const MAX_RECORD_LEN: u32 = 1 << 28;

const TAG_COMPLETE: u8 = 1;
const TAG_RETRY: u8 = 2;

/// Why a journal could not be opened against a spec.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file exists but does not start with a valid journal header.
    BadHeader,
    /// The header's format version is not [`VERSION`].
    WrongVersion(u32),
    /// The header was written by a different campaign spec (fingerprint
    /// or trial count mismatch) — resuming would mix incompatible trial
    /// streams.
    SpecMismatch {
        /// Fingerprint recorded in the journal header.
        found: u64,
        /// Fingerprint of the spec attempting to resume.
        expected: u64,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadHeader => write!(f, "not a checkpoint journal (bad header)"),
            JournalError::WrongVersion(v) => {
                write!(f, "unsupported journal version {v} (want {VERSION})")
            }
            JournalError::SpecMismatch { found, expected } => write!(
                f,
                "journal belongs to a different campaign \
                 (fingerprint {found:#018x}, spec is {expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// The work frontier recovered from a journal.
#[derive(Debug, Default)]
pub struct Replay {
    /// Completed trials: index → (result, telemetry delta). First
    /// complete record per index wins.
    pub completed: BTreeMap<u64, (TrialResult, Registry)>,
    /// In-flight retries for trials with no complete record:
    /// index → (next attempt to run, registry accumulated so far).
    /// Highest journaled attempt wins.
    pub retries: BTreeMap<u64, (u32, Registry)>,
    /// Bytes discarded by recovery truncation (0 = clean tail).
    pub truncated_bytes: u64,
    /// Structurally valid records replayed.
    pub records: u64,
}

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = build_crc_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// An open, append-position checkpoint journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
    fsync_every: u64,
    unsynced: u64,
}

impl Journal {
    /// Open `path`, recovering its valid prefix, or create it with a
    /// fresh header. Returns the journal positioned for appending plus
    /// the replayed frontier. `fingerprint`/`trials` identify the spec:
    /// an existing journal for a different spec is refused.
    pub fn open_or_create(
        path: &Path,
        fingerprint: u64,
        trials: u64,
    ) -> Result<(Journal, Replay), JournalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(&MAGIC);
            put_u32(&mut header, VERSION);
            put_u64(&mut header, fingerprint);
            put_u64(&mut header, trials);
            file.write_all(&header)?;
            file.sync_data()?;
            return Ok((
                Journal {
                    file,
                    fsync_every: 64,
                    unsynced: 0,
                },
                Replay::default(),
            ));
        }
        let mut bytes = Vec::with_capacity(len as usize);
        file.read_to_end(&mut bytes)?;
        let replay = Self::validate_and_replay(&bytes, fingerprint, trials)?;
        let valid_len = len - replay.truncated_bytes;
        if replay.truncated_bytes > 0 {
            file.set_len(valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid_len))?;
        Ok((
            Journal {
                file,
                fsync_every: 64,
                unsynced: 0,
            },
            replay,
        ))
    }

    /// Check the header and replay every structurally valid record;
    /// `truncated_bytes` reports the invalid tail, if any.
    fn validate_and_replay(
        bytes: &[u8],
        fingerprint: u64,
        trials: u64,
    ) -> Result<Replay, JournalError> {
        if bytes.len() < HEADER_LEN as usize || bytes[..8] != MAGIC {
            return Err(JournalError::BadHeader);
        }
        let mut r = Reader::new(&bytes[8..HEADER_LEN as usize]);
        let version = r.u32().map_err(|_| JournalError::BadHeader)?;
        if version != VERSION {
            return Err(JournalError::WrongVersion(version));
        }
        let found = r.u64().map_err(|_| JournalError::BadHeader)?;
        let found_trials = r.u64().map_err(|_| JournalError::BadHeader)?;
        if found != fingerprint || found_trials != trials {
            return Err(JournalError::SpecMismatch {
                found,
                expected: fingerprint,
            });
        }
        let mut replay = Replay::default();
        let mut pos = HEADER_LEN as usize;
        while pos < bytes.len() {
            let Some(consumed) = Self::replay_record(&bytes[pos..], &mut replay) else {
                break;
            };
            pos += consumed;
        }
        replay.truncated_bytes = (bytes.len() - pos) as u64;
        Ok(replay)
    }

    /// Replay one record from `bytes`, returning the bytes consumed, or
    /// `None` when the record is truncated, corrupt, or undecodable (the
    /// recovery stop condition).
    fn replay_record(bytes: &[u8], replay: &mut Replay) -> Option<usize> {
        if bytes.len() < 8 {
            return None;
        }
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        if len > MAX_RECORD_LEN {
            return None;
        }
        let expected_crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        let end = 8usize.checked_add(len as usize)?;
        if bytes.len() < end {
            return None;
        }
        let payload = &bytes[8..end];
        if crc32(payload) != expected_crc {
            return None;
        }
        Self::apply_payload(payload, replay).ok()?;
        replay.records += 1;
        Some(end)
    }

    fn apply_payload(payload: &[u8], replay: &mut Replay) -> Result<(), CodecError> {
        let mut r = Reader::new(payload);
        match r.u8()? {
            TAG_COMPLETE => {
                let index = r.u64()?;
                let result = read_trial_result(&mut r)?;
                let delta = decode_registry_rest(&mut r)?;
                // First complete record wins: never double-count a trial.
                replay.completed.entry(index).or_insert((result, delta));
                replay.retries.remove(&index);
            }
            TAG_RETRY => {
                let index = r.u64()?;
                let next_attempt = r.u32()?;
                let acc = decode_registry_rest(&mut r)?;
                if replay.completed.contains_key(&index) {
                    return Ok(());
                }
                let entry = replay.retries.entry(index).or_insert((0, Registry::new()));
                if next_attempt > entry.0 {
                    *entry = (next_attempt, acc);
                }
            }
            t => return Err(CodecError::BadTag(t)),
        }
        Ok(())
    }

    /// Set the fsync cadence: `sync_data` after every `n` appended
    /// records (clamped to ≥ 1; the default is 64). Lower is more durable
    /// and slower.
    pub fn set_fsync_every(&mut self, n: u64) {
        self.fsync_every = n.max(1);
    }

    /// Append a *complete* record for trial `index`.
    pub fn append_complete(
        &mut self,
        index: u64,
        result: &TrialResult,
        delta: &Registry,
    ) -> io::Result<()> {
        let mut payload = Vec::with_capacity(128);
        payload.push(TAG_COMPLETE);
        put_u64(&mut payload, index);
        encode_trial_result(&mut payload, result);
        payload.extend_from_slice(&encode_registry(delta));
        self.append(&payload)
    }

    /// Append a *retry* record: trial `index` will run `next_attempt`
    /// next, with `acc` the registry its finished attempts accumulated.
    pub fn append_retry(
        &mut self,
        index: u64,
        next_attempt: u32,
        acc: &Registry,
    ) -> io::Result<()> {
        let mut payload = Vec::with_capacity(64);
        payload.push(TAG_RETRY);
        put_u64(&mut payload, index);
        put_u32(&mut payload, next_attempt);
        payload.extend_from_slice(&encode_registry(acc));
        self.append(&payload)
    }

    fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(payload));
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.unsynced += 1;
        if self.unsynced >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Records appended since the last fsync (the journal lag a crash
    /// would cost right now).
    pub fn unsynced(&self) -> u64 {
        self.unsynced
    }

    /// Force written records to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

fn decode_registry_rest(r: &mut Reader<'_>) -> Result<Registry, CodecError> {
    underradar_telemetry::codec::read_registry(r).and_then(|reg| {
        if r.remaining() != 0 {
            Err(CodecError::TrailingBytes(r.remaining()))
        } else {
            Ok(reg)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use underradar_campaign::MethodKind;
    use underradar_core::verdict::Verdict;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("underradar-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn result(index: usize) -> TrialResult {
        TrialResult {
            index,
            method: MethodKind::Scan,
            policy: "control".into(),
            target: "a.com".into(),
            seed: index as u64 * 7 + 1,
            verdict: Verdict::Reachable,
            verdict_correct: true,
            evaded: true,
            alerts_on_client: 0,
            attributed: false,
            pursued: false,
            anonymity_set: None,
            retries: 0,
            evidence: vec![("open", "80".into())],
        }
    }

    fn delta(index: usize) -> Registry {
        let mut r = Registry::new();
        r.counters.insert("campaign.trials".into(), 1);
        r.gauges.insert("last".into(), index as i64);
        r
    }

    #[test]
    fn crc32_reference_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn write_then_reopen_replays_the_frontier() {
        let path = tmp("roundtrip");
        {
            let (mut j, replay) = Journal::open_or_create(&path, 42, 10).expect("create");
            assert_eq!(replay.records, 0);
            j.append_complete(0, &result(0), &delta(0)).expect("append");
            j.append_retry(1, 1, &delta(1)).expect("append");
            j.append_complete(2, &result(2), &delta(2)).expect("append");
            j.sync().expect("sync");
        }
        let (_, replay) = Journal::open_or_create(&path, 42, 10).expect("reopen");
        assert_eq!(replay.records, 3);
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(
            replay.completed.keys().copied().collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(replay.retries.get(&1).map(|(a, _)| *a), Some(1));
        let (res, d) = &replay.completed[&0];
        assert_eq!(res.to_json_row(), result(0).to_json_row());
        assert_eq!(d, &delta(0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn spec_mismatch_is_refused() {
        let path = tmp("mismatch");
        drop(Journal::open_or_create(&path, 42, 10).expect("create"));
        match Journal::open_or_create(&path, 43, 10) {
            Err(JournalError::SpecMismatch { found, expected }) => {
                assert_eq!((found, expected), (42, 43));
            }
            other => panic!("expected SpecMismatch, got {other:?}"),
        }
        assert!(matches!(
            Journal::open_or_create(&path, 42, 11),
            Err(JournalError::SpecMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_tail_record_recovers_to_last_valid_frontier() {
        let path = tmp("truncated");
        {
            let (mut j, _) = Journal::open_or_create(&path, 7, 4).expect("create");
            j.append_complete(0, &result(0), &delta(0)).expect("append");
            j.append_complete(1, &result(1), &delta(1)).expect("append");
            j.sync().expect("sync");
        }
        // Chop bytes off the tail: a mid-record kill.
        let full = std::fs::read(&path).expect("read");
        std::fs::write(&path, &full[..full.len() - 5]).expect("chop");
        let (mut j, replay) = Journal::open_or_create(&path, 7, 4).expect("recover");
        assert_eq!(
            replay.completed.keys().copied().collect::<Vec<_>>(),
            vec![0],
            "only the intact record survives"
        );
        assert!(replay.truncated_bytes > 0);
        // The file was truncated to the valid prefix and appending works.
        j.append_complete(1, &result(1), &delta(1)).expect("append");
        j.sync().expect("sync");
        let (_, replay) = Journal::open_or_create(&path, 7, 4).expect("reopen");
        assert_eq!(replay.completed.len(), 2);
        assert_eq!(replay.truncated_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flipped_checksum_byte_stops_replay_without_panic() {
        let path = tmp("flipped");
        {
            let (mut j, _) = Journal::open_or_create(&path, 7, 4).expect("create");
            j.append_complete(0, &result(0), &delta(0)).expect("append");
            j.append_complete(1, &result(1), &delta(1)).expect("append");
            j.sync().expect("sync");
        }
        let full = std::fs::read(&path).expect("read");
        // Flip a byte inside the *second* record's payload.
        let mut bad = full.clone();
        let pos = bad.len() - 3;
        bad[pos] ^= 0xFF;
        std::fs::write(&path, &bad).expect("write");
        let (_, replay) = Journal::open_or_create(&path, 7, 4).expect("recover");
        assert_eq!(
            replay.completed.keys().copied().collect::<Vec<_>>(),
            vec![0]
        );
        assert!(replay.truncated_bytes > 0, "damaged tail discarded");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_and_conflicting_records_deduplicate() {
        let path = tmp("dedup");
        {
            let (mut j, _) = Journal::open_or_create(&path, 7, 4).expect("create");
            j.append_retry(3, 1, &delta(1)).expect("append");
            j.append_retry(3, 2, &delta(2)).expect("append");
            j.append_complete(3, &result(3), &delta(3)).expect("append");
            // A duplicate complete record must not double-count.
            j.append_complete(3, &result(3), &delta(3)).expect("append");
            j.sync().expect("sync");
        }
        let (_, replay) = Journal::open_or_create(&path, 7, 4).expect("reopen");
        assert_eq!(replay.completed.len(), 1);
        assert!(replay.retries.is_empty(), "complete supersedes retries");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_file_is_not_a_journal() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a journal").expect("write");
        assert!(matches!(
            Journal::open_or_create(&path, 7, 4),
            Err(JournalError::BadHeader)
        ));
        let _ = std::fs::remove_file(&path);
    }
}
