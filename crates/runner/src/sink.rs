//! Streaming row output: verdict rows emitted the moment a trial
//! completes, instead of an end-of-run report dump.
//!
//! A [`RowSink`] receives each [`TrialResult`] in **completion order** —
//! under work stealing that order varies with the worker count and
//! scheduling, so the live row stream is an observability surface, not a
//! determinism surface. Rows are self-describing (each carries its trial
//! `index`), so consumers needing canonical order sort or key by index;
//! the byte-identity guarantees live in the final report and merged
//! telemetry, which the service builds order-independently.

use std::io::{self, Write};

use underradar_campaign::TrialResult;

/// A consumer of completed trial rows.
pub trait RowSink {
    /// Accept one completed trial. Called once per trial, in completion
    /// order.
    fn row(&mut self, result: &TrialResult) -> io::Result<()>;

    /// Flush any buffered rows to the underlying medium.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards every row (service mode without `--jsonl`).
pub struct NullSink;

impl RowSink for NullSink {
    fn row(&mut self, _result: &TrialResult) -> io::Result<()> {
        Ok(())
    }
}

/// Writes each row as one JSON line (the `TrialResult::to_json_row`
/// object) to any [`Write`] — a file, stdout, or a pipe.
pub struct JsonlSink<W: Write> {
    out: W,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing JSON lines to `out`.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out }
    }

    /// Unwrap the inner writer (flushing is the caller's business).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> RowSink for JsonlSink<W> {
    fn row(&mut self, result: &TrialResult) -> io::Result<()> {
        self.out.write_all(result.to_json_row().as_bytes())?;
        self.out.write_all(b"\n")
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Collects rows in memory (tests and small interactive runs).
#[derive(Default)]
pub struct VecSink {
    /// Rendered JSON rows in completion order.
    pub rows: Vec<String>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }
}

impl RowSink for VecSink {
    fn row(&mut self, result: &TrialResult) -> io::Result<()> {
        self.rows.push(result.to_json_row());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use underradar_campaign::MethodKind;
    use underradar_core::verdict::Verdict;

    fn result() -> TrialResult {
        TrialResult {
            index: 3,
            method: MethodKind::Scan,
            policy: "control".into(),
            target: "a.com".into(),
            seed: 9,
            verdict: Verdict::Reachable,
            verdict_correct: true,
            evaded: true,
            alerts_on_client: 0,
            attributed: false,
            pursued: false,
            anonymity_set: None,
            retries: 0,
            evidence: Vec::new(),
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_row() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.row(&result()).expect("writes");
        sink.row(&result()).expect("writes");
        sink.flush().expect("flushes");
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"index\":3,\"method\":\"scan\""));
    }

    #[test]
    fn vec_sink_collects_and_null_sink_discards() {
        let mut v = VecSink::new();
        v.row(&result()).expect("collects");
        assert_eq!(v.rows.len(), 1);
        assert_eq!(v.rows[0], result().to_json_row());
        NullSink.row(&result()).expect("discards");
    }
}
