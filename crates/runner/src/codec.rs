//! Binary serialization of [`TrialResult`] for the checkpoint journal.
//!
//! Builds on the primitive writers/reader of
//! [`underradar_telemetry::codec`]; the journal wraps these bytes in a
//! length-prefixed, checksummed record, so this codec only needs exact
//! round-tripping (`decode == original`, field for field) and clean
//! failures on garbage that survives the checksum.

use underradar_campaign::{MethodKind, TrialResult};
use underradar_core::verdict::{Mechanism, Verdict};
use underradar_telemetry::codec::{intern_static, put_str, put_u32, put_u64, CodecError, Reader};

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn read_bool(r: &mut Reader<'_>) -> Result<bool, CodecError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(CodecError::BadTag(t)),
    }
}

fn mechanism_tag(m: Mechanism) -> u8 {
    match m {
        Mechanism::RstInjection => 0,
        Mechanism::DnsPoison => 1,
        Mechanism::Blackhole => 2,
        Mechanism::PortBlocked => 3,
        Mechanism::UrlBlocked => 4,
    }
}

fn mechanism_from(tag: u8) -> Result<Mechanism, CodecError> {
    Ok(match tag {
        0 => Mechanism::RstInjection,
        1 => Mechanism::DnsPoison,
        2 => Mechanism::Blackhole,
        3 => Mechanism::PortBlocked,
        4 => Mechanism::UrlBlocked,
        t => return Err(CodecError::BadTag(t)),
    })
}

fn method_from(label: &str) -> Result<MethodKind, CodecError> {
    MethodKind::ALL
        .into_iter()
        .find(|m| m.label() == label)
        .ok_or(CodecError::BadUtf8)
}

/// Append one trial result to `out`.
pub fn encode_trial_result(out: &mut Vec<u8>, t: &TrialResult) {
    put_u64(out, t.index as u64);
    put_str(out, t.method.label());
    put_str(out, &t.policy);
    put_str(out, &t.target);
    put_u64(out, t.seed);
    match &t.verdict {
        Verdict::Censored(m) => {
            out.push(0);
            out.push(mechanism_tag(*m));
        }
        Verdict::Reachable => out.push(1),
        Verdict::Inconclusive(why) => {
            out.push(2);
            put_str(out, why);
        }
    }
    put_bool(out, t.verdict_correct);
    put_bool(out, t.evaded);
    put_u64(out, t.alerts_on_client as u64);
    put_bool(out, t.attributed);
    put_bool(out, t.pursued);
    match t.anonymity_set {
        None => out.push(0),
        Some(n) => {
            out.push(1);
            put_u64(out, n as u64);
        }
    }
    put_u32(out, t.retries);
    put_u32(out, t.evidence.len() as u32);
    for (k, v) in &t.evidence {
        put_str(out, k);
        put_str(out, v);
    }
}

/// Decode one trial result from the reader's current position. Evidence
/// keys are restored through the shared `&'static str` intern pool.
pub fn read_trial_result(r: &mut Reader<'_>) -> Result<TrialResult, CodecError> {
    let index = r.u64()? as usize;
    let method = method_from(&r.str()?)?;
    let policy = r.str()?;
    let target = r.str()?;
    let seed = r.u64()?;
    let verdict = match r.u8()? {
        0 => Verdict::Censored(mechanism_from(r.u8()?)?),
        1 => Verdict::Reachable,
        2 => Verdict::Inconclusive(r.str()?),
        t => return Err(CodecError::BadTag(t)),
    };
    let verdict_correct = read_bool(r)?;
    let evaded = read_bool(r)?;
    let alerts_on_client = r.u64()? as usize;
    let attributed = read_bool(r)?;
    let pursued = read_bool(r)?;
    let anonymity_set = match r.u8()? {
        0 => None,
        1 => Some(r.u64()? as usize),
        t => return Err(CodecError::BadTag(t)),
    };
    let retries = r.u32()?;
    let mut evidence = Vec::new();
    for _ in 0..r.u32()? {
        let k = intern_static(&r.str()?);
        evidence.push((k, r.str()?));
    }
    Ok(TrialResult {
        index,
        method,
        policy,
        target,
        seed,
        verdict,
        verdict_correct,
        evaded,
        alerts_on_client,
        attributed,
        pursued,
        anonymity_set,
        retries,
        evidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(verdict: Verdict) -> TrialResult {
        TrialResult {
            index: 511,
            method: MethodKind::StatelessDns,
            policy: "keyword-rst".into(),
            target: "site-007.example.net".into(),
            seed: u64::MAX - 3,
            verdict,
            verdict_correct: false,
            evaded: true,
            alerts_on_client: 12,
            attributed: true,
            pursued: false,
            anonymity_set: Some(31),
            retries: 2,
            evidence: vec![("cover", "4".into()), ("why", "spoofed \"set\"".into())],
        }
    }

    #[test]
    fn round_trip_covers_every_verdict_shape() {
        for verdict in [
            Verdict::Reachable,
            Verdict::Censored(Mechanism::DnsPoison),
            Verdict::Censored(Mechanism::UrlBlocked),
            Verdict::Inconclusive("lost 3 of 4 samples".into()),
        ] {
            let t = sample(verdict);
            let mut bytes = Vec::new();
            encode_trial_result(&mut bytes, &t);
            let mut r = Reader::new(&bytes);
            let back = read_trial_result(&mut r).expect("decodes");
            assert_eq!(r.remaining(), 0);
            assert_eq!(back.to_json_row(), t.to_json_row());
            assert_eq!(back.evidence, t.evidence);
            assert_eq!(back.method, t.method);
            assert_eq!(back.verdict, t.verdict);
        }
    }

    #[test]
    fn truncations_fail_cleanly() {
        let mut bytes = Vec::new();
        encode_trial_result(&mut bytes, &sample(Verdict::Reachable));
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(read_trial_result(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn every_method_label_round_trips() {
        for m in MethodKind::ALL {
            assert_eq!(method_from(m.label()).expect("known"), m);
        }
        assert!(method_from("no-such-method").is_err());
    }
}
