//! The durable run service: work-stealing workers, a completion-order
//! committer, and an optional checkpoint journal — composed so the final
//! report and merged telemetry are **byte-identical** to
//! `campaign::engine::run` at any worker count, interrupted or not.
//!
//! ## Architecture
//!
//! ```text
//!  workers (scope threads)            committer (calling thread)
//!  ┌─────────────────────┐  Msg  ┌──────────────────────────────┐
//!  │ pop own deque       │ ────▶ │ journal.append_{complete,     │
//!  │  └ steal half       │ chan  │                retry}         │
//!  │   └ retry tail      │       │ sink.row (completion order)   │
//!  │    └ exit           │       │ StreamReport / StreamMerger   │
//!  └─────────────────────┘       └──────────────────────────────┘
//! ```
//!
//! Workers drain their own deque front-first, steal half of the richest
//! victim's deque when empty, then service the global **retry tail**:
//! trials whose attempt came back `Inconclusive` are not retried inline
//! (that would pin a straggler to one worker) but re-enqueued at the tail
//! with their accumulated registry and next attempt number, so conclusive
//! work finishes first and backoff budgets survive both stealing and
//! resume. A worker exits only after deques *and* retry tail are empty at
//! its own check — and every retry enqueue precedes the enqueuer's next
//! check, so no retry is ever stranded.
//!
//! The committer runs on the calling thread (so a [`RowSink`] need not be
//! `Send`): it journals each decision, streams the verdict row, and folds
//! the result into a [`StreamReport`] and the telemetry delta into a
//! [`StreamMerger`] keyed by trial index — both order-independent, which
//! is where completion-order scheduling and index-order determinism meet.
//!
//! ## Resume
//!
//! With a checkpoint path, completed trials replayed from the journal are
//! absorbed directly (their journaled rows are **not** re-emitted to the
//! sink — they streamed before the interruption), journaled retries seed
//! the retry tail, and only the remaining frontier is scheduled. Memory
//! stays bounded by the in-flight channel, never by campaign size.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Mutex;

use underradar_campaign::engine::{self, AttemptOutcome, PolicyPrep, ScopeConfig};
use underradar_campaign::{CampaignSpec, StreamReport, Trial, TrialResult};
use underradar_telemetry::{Registry, StreamMerger, Telemetry};

use crate::journal::{Journal, JournalError, Replay};
use crate::sink::RowSink;

/// Tuning for one service run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker threads (1 = sequential; still exercises the full
    /// journal/stream path).
    pub workers: usize,
    /// Checkpoint journal path; `None` runs without durability.
    pub checkpoint: Option<PathBuf>,
    /// Journal fsync cadence in records (see [`Journal::set_fsync_every`]).
    pub fsync_every: u64,
    /// Steal-batch size in trials (0 = automatic).
    pub chunk: usize,
}

impl RunConfig {
    /// A config with `workers` threads and no checkpointing.
    pub fn new(workers: usize) -> RunConfig {
        RunConfig {
            workers,
            checkpoint: None,
            fsync_every: 64,
            chunk: 0,
        }
    }

    /// Enable the checkpoint journal at `path`.
    pub fn checkpoint(mut self, path: PathBuf) -> RunConfig {
        self.checkpoint = Some(path);
        self
    }

    /// Set the journal fsync cadence in records.
    pub fn fsync_every(mut self, n: u64) -> RunConfig {
        self.fsync_every = n;
        self
    }
}

/// What a service run did, beyond its report.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// The campaign report, built incrementally (renders byte-identically
    /// to the batch engine's report).
    pub report: StreamReport,
    /// Trials completed by *this* process.
    pub executed: usize,
    /// Trials restored from the journal instead of re-run.
    pub restored: usize,
    /// Journaled retries whose accumulated state seeded the retry tail.
    pub resumed_retries: usize,
    /// Bytes of damaged journal tail discarded during recovery.
    pub journal_truncated: u64,
}

/// A trial waiting on the retry tail: its next attempt and the registry
/// its finished attempts accumulated.
struct RetryTask {
    index: usize,
    attempt: u32,
    acc: Registry,
}

/// What a worker tells the committer.
enum Msg {
    /// Trial `index` reached a final verdict; `acc` is its complete
    /// telemetry delta (all attempts).
    Done {
        index: usize,
        result: Box<TrialResult>,
        acc: Box<Registry>,
    },
    /// Trial `index` will run `next_attempt` later; `acc` snapshots the
    /// registry accumulated so far, for the journal.
    Retry {
        index: usize,
        next_attempt: u32,
        acc: Box<Registry>,
    },
}

/// Run `spec` as a durable service: schedule with work stealing, stream
/// rows into `sink` as trials complete, journal to `cfg.checkpoint`, and
/// merge telemetry into `tel`. Resumes automatically when the journal
/// already holds progress for this spec.
pub fn run_service(
    spec: &CampaignSpec,
    cfg: &RunConfig,
    tel: &Telemetry,
    sink: &mut dyn RowSink,
) -> Result<ServiceOutcome, JournalError> {
    let trials = spec.expand();
    let (mut journal, replay) = match &cfg.checkpoint {
        Some(path) => {
            let (mut j, replay) =
                Journal::open_or_create(path, spec.fingerprint(), trials.len() as u64)?;
            j.set_fsync_every(cfg.fsync_every);
            (Some(j), replay)
        }
        None => (None, Replay::default()),
    };

    let mut report = StreamReport::new(&spec.name);
    let mut merger = StreamMerger::new();
    for (index, (result, delta)) in &replay.completed {
        report.absorb(result);
        merger.absorb(*index, delta);
    }

    // The remaining frontier: every trial with no complete record. Trials
    // with a journaled retry resume mid-attempt via the retry tail; the
    // rest start from attempt 0.
    let mut remaining: Vec<usize> = Vec::new();
    let mut seeded: VecDeque<RetryTask> = VecDeque::new();
    for trial in &trials {
        let index = trial.index;
        if replay.completed.contains_key(&(index as u64)) {
            continue;
        }
        if let Some((attempt, acc)) = replay.retries.get(&(index as u64)) {
            seeded.push_back(RetryTask {
                index,
                attempt: *attempt,
                acc: acc.clone(),
            });
        } else {
            remaining.push(index);
        }
    }
    let expected = remaining.len() + seeded.len();
    let restored = replay.completed.len();
    let resumed_retries = seeded.len();

    if expected > 0 {
        let preps = engine::prepare(spec);
        let scope_cfg = ScopeConfig::of(tel);
        let workers = cfg.workers.clamp(1, expected);
        let deques = underradar_campaign::steal::Deques::split(remaining.len(), workers, cfg.chunk);
        let retry_tail = Mutex::new(seeded);
        let (tx, rx) = mpsc::sync_channel::<Msg>(workers * 4);

        std::thread::scope(|scope| -> Result<(), JournalError> {
            for w in 0..workers {
                let tx = tx.clone();
                let deques = &deques;
                let retry_tail = &retry_tail;
                let remaining = &remaining;
                let trials = &trials;
                let preps = &preps;
                scope.spawn(move || {
                    worker_loop(
                        w, spec, trials, preps, scope_cfg, deques, remaining, retry_tail, &tx,
                    );
                });
            }
            drop(tx);
            // Committer: the calling thread absorbs completions until
            // every remaining trial has a final verdict.
            let mut done = 0usize;
            while done < expected {
                let msg = rx.recv().expect("workers ended with trials outstanding");
                match msg {
                    Msg::Done { index, result, acc } => {
                        if let Some(j) = journal.as_mut() {
                            j.append_complete(index as u64, &result, &acc)?;
                        }
                        sink.row(&result)?;
                        report.absorb(&result);
                        merger.absorb(index as u64, &acc);
                        done += 1;
                    }
                    Msg::Retry {
                        index,
                        next_attempt,
                        acc,
                    } => {
                        if let Some(j) = journal.as_mut() {
                            j.append_retry(index as u64, next_attempt, &acc)?;
                        }
                    }
                }
            }
            Ok(())
        })?;
    }

    if let Some(j) = journal.as_mut() {
        j.sync()?;
    }
    sink.flush()?;
    tel.merge_registry(&merger.finish());
    Ok(ServiceOutcome {
        report,
        executed: expected,
        restored,
        resumed_retries,
        journal_truncated: replay.truncated_bytes,
    })
}

/// One worker: drain own deque, steal, then service the retry tail. Each
/// unit of work is a *single attempt*; inconclusive attempts re-enqueue
/// at the tail rather than looping inline.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    w: usize,
    spec: &CampaignSpec,
    trials: &[Trial],
    preps: &[PolicyPrep<'_>],
    scope_cfg: ScopeConfig,
    deques: &underradar_campaign::steal::Deques,
    remaining: &[usize],
    retry_tail: &Mutex<VecDeque<RetryTask>>,
    tx: &mpsc::SyncSender<Msg>,
) {
    loop {
        if let Some(chunk) = deques.pop(w).or_else(|| deques.steal(w)) {
            for &index in &remaining[chunk.start..chunk.end] {
                attempt_once(
                    spec,
                    trials,
                    preps,
                    scope_cfg,
                    retry_tail,
                    tx,
                    index,
                    0,
                    Registry::new(),
                );
            }
            continue;
        }
        let task = retry_tail.lock().expect("retry tail poisoned").pop_front();
        match task {
            Some(t) => attempt_once(
                spec, trials, preps, scope_cfg, retry_tail, tx, t.index, t.attempt, t.acc,
            ),
            // Deques and retry tail both empty at this check: any retry
            // enqueued concurrently is followed by its enqueuer's own
            // check, so exiting here strands nothing.
            None => return,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn attempt_once(
    spec: &CampaignSpec,
    trials: &[Trial],
    preps: &[PolicyPrep<'_>],
    scope_cfg: ScopeConfig,
    retry_tail: &Mutex<VecDeque<RetryTask>>,
    tx: &mpsc::SyncSender<Msg>,
    index: usize,
    attempt: u32,
    mut acc: Registry,
) {
    let trial = &trials[index];
    let prep = &preps[trial.policy_idx];
    match engine::run_trial_attempt(spec, prep, trial, attempt, &mut acc, scope_cfg) {
        AttemptOutcome::Done(result) => {
            let _ = tx.send(Msg::Done {
                index,
                result,
                acc: Box::new(acc),
            });
        }
        AttemptOutcome::Retry { next_attempt } => {
            let _ = tx.send(Msg::Retry {
                index,
                next_attempt,
                acc: Box::new(acc.clone()),
            });
            retry_tail
                .lock()
                .expect("retry tail poisoned")
                .push_back(RetryTask {
                    index,
                    attempt: next_attempt,
                    acc,
                });
        }
    }
}
