//! The durable run service: work-stealing workers, a completion-order
//! committer, and an optional checkpoint journal — composed so the final
//! report and merged telemetry are **byte-identical** to
//! `campaign::engine::run` at any worker count, interrupted or not.
//!
//! ## Architecture
//!
//! ```text
//!  workers (scope threads)            committer (calling thread)
//!  ┌─────────────────────┐  Msg  ┌──────────────────────────────┐
//!  │ pop own deque       │ ────▶ │ journal.append_{complete,     │
//!  │  └ steal half       │ chan  │                retry}         │
//!  │   └ retry tail      │       │ sink.row (completion order)   │
//!  │    └ exit           │       │ StreamReport / StreamMerger   │
//!  └─────────────────────┘       └──────────────────────────────┘
//! ```
//!
//! Workers drain their own deque front-first, steal half of the richest
//! victim's deque when empty, then service the global **retry tail**:
//! trials whose attempt came back `Inconclusive` are not retried inline
//! (that would pin a straggler to one worker) but re-enqueued at the tail
//! with their accumulated registry and next attempt number, so conclusive
//! work finishes first and backoff budgets survive both stealing and
//! resume. A worker exits only after deques *and* retry tail are empty at
//! its own check — and every retry enqueue precedes the enqueuer's next
//! check, so no retry is ever stranded.
//!
//! The committer runs on the calling thread (so a [`RowSink`] need not be
//! `Send`): it journals each decision, streams the verdict row, and folds
//! the result into a [`StreamReport`] and the telemetry delta into a
//! [`StreamMerger`] keyed by trial index — both order-independent, which
//! is where completion-order scheduling and index-order determinism meet.
//!
//! ## Resume
//!
//! With a checkpoint path, completed trials replayed from the journal are
//! absorbed directly (their journaled rows are **not** re-emitted to the
//! sink — they streamed before the interruption), journaled retries seed
//! the retry tail, and only the remaining frontier is scheduled. Memory
//! stays bounded by the in-flight channel, never by campaign size.

use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use underradar_campaign::engine::{self, AttemptOutcome, PolicyPrep, ScopeConfig};
use underradar_campaign::{CampaignSpec, StreamReport, Trial, TrialResult};
use underradar_telemetry::{Registry, StreamMerger, Telemetry};

use crate::journal::{Journal, JournalError, Replay};
use crate::sink::RowSink;

/// Cadence of live progress snapshots: a snapshot is emitted when either
/// threshold is reached since the previous one, whichever comes first.
#[derive(Debug, Clone, Copy)]
pub struct ProgressConfig {
    /// Committed trials between snapshots.
    pub every_trials: u64,
    /// Wall milliseconds between snapshots (also the committer's poll
    /// interval while workers are busy).
    pub every_ms: u64,
}

impl Default for ProgressConfig {
    fn default() -> Self {
        ProgressConfig {
            every_trials: 1000,
            every_ms: 500,
        }
    }
}

/// Tuning for one service run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker threads (1 = sequential; still exercises the full
    /// journal/stream path).
    pub workers: usize,
    /// Checkpoint journal path; `None` runs without durability.
    pub checkpoint: Option<PathBuf>,
    /// Journal fsync cadence in records (see [`Journal::set_fsync_every`]).
    pub fsync_every: u64,
    /// Steal-batch size in trials (0 = automatic).
    pub chunk: usize,
    /// Stream interval snapshots as JSONL on **stderr** (stdout bytes are
    /// untouched, so row/report determinism survives). `None` = silent.
    pub progress: Option<ProgressConfig>,
}

impl RunConfig {
    /// A config with `workers` threads and no checkpointing.
    pub fn new(workers: usize) -> RunConfig {
        RunConfig {
            workers,
            checkpoint: None,
            fsync_every: 64,
            chunk: 0,
            progress: None,
        }
    }

    /// Enable the checkpoint journal at `path`.
    pub fn checkpoint(mut self, path: PathBuf) -> RunConfig {
        self.checkpoint = Some(path);
        self
    }

    /// Set the journal fsync cadence in records.
    pub fn fsync_every(mut self, n: u64) -> RunConfig {
        self.fsync_every = n;
        self
    }

    /// Enable progress snapshots with cadence `progress`.
    pub fn progress(mut self, progress: ProgressConfig) -> RunConfig {
        self.progress = Some(progress);
        self
    }
}

/// Wall-clock accounting for one service run. Every field is measured
/// host time, so none of it may feed deterministic output paths — it is
/// surfaced only through `--profile-json` and `--progress`.
#[derive(Debug, Clone, Default)]
pub struct RunProfile {
    /// Wall milliseconds for the whole run (prepare + execute + commit).
    pub wall_ms: u64,
    /// Wall milliseconds spent building policy preps.
    pub prepare_ms: u64,
    /// Per-worker busy nanoseconds (time inside trial attempts).
    pub worker_busy_ns: Vec<u64>,
    /// Per-worker attempt counts.
    pub worker_attempts: Vec<u64>,
    /// Successful steal-half operations across all workers.
    pub steals: u64,
    /// Retry handoffs the committer observed.
    pub retries_seen: u64,
    /// Progress snapshots emitted (0 when progress is disabled).
    pub snapshots: u64,
}

/// What a service run did, beyond its report.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// The campaign report, built incrementally (renders byte-identically
    /// to the batch engine's report).
    pub report: StreamReport,
    /// Trials completed by *this* process.
    pub executed: usize,
    /// Trials restored from the journal instead of re-run.
    pub restored: usize,
    /// Journaled retries whose accumulated state seeded the retry tail.
    pub resumed_retries: usize,
    /// Bytes of damaged journal tail discarded during recovery.
    pub journal_truncated: u64,
    /// Wall-clock profile of this run (never feeds deterministic output).
    pub profile: RunProfile,
}

/// A trial waiting on the retry tail: its next attempt and the registry
/// its finished attempts accumulated.
struct RetryTask {
    index: usize,
    attempt: u32,
    acc: Registry,
}

/// Shared worker accounting, updated with relaxed atomics on the hot path
/// (a fetch_add per attempt — negligible against a simulated trial).
struct WorkerStats {
    busy_ns: Vec<AtomicU64>,
    attempts: Vec<AtomicU64>,
    steals: AtomicU64,
}

impl WorkerStats {
    fn new(workers: usize) -> WorkerStats {
        WorkerStats {
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            attempts: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            steals: AtomicU64::new(0),
        }
    }
}

/// The committer's progress bookkeeping: when to emit, what changed.
struct ProgressState {
    cfg: ProgressConfig,
    start: Instant,
    last_emit: Instant,
    last_done: u64,
    snapshots: u64,
}

impl ProgressState {
    fn new(cfg: ProgressConfig, start: Instant) -> ProgressState {
        ProgressState {
            cfg,
            start,
            last_emit: start,
            last_done: 0,
            snapshots: 0,
        }
    }

    fn due(&self, done: u64) -> bool {
        done.saturating_sub(self.last_done) >= self.cfg.every_trials.max(1)
            || self.last_emit.elapsed() >= Duration::from_millis(self.cfg.every_ms)
    }

    /// Emit one snapshot line to stderr and mirror it into `tel` as
    /// `runner.progress.*` metrics. Wall-clock values are nondeterministic
    /// by nature, which is why they only exist when progress is enabled —
    /// default runs keep registries byte-identical across hosts.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        tel: &Telemetry,
        stats: &WorkerStats,
        done: u64,
        total: u64,
        restored: u64,
        retries: u64,
        journal_lag: u64,
    ) {
        let elapsed_ms = (self.start.elapsed().as_millis() as u64).max(1);
        let committed = done.saturating_sub(restored);
        let rows_per_sec = committed.saturating_mul(1000) / elapsed_ms;
        let eta_ms = total
            .saturating_sub(done)
            .saturating_mul(elapsed_ms)
            .checked_div(committed)
            .unwrap_or(0);
        let elapsed_ns = (self.start.elapsed().as_nanos() as u64).max(1);
        let busy: Vec<String> = stats
            .busy_ns
            .iter()
            .map(|b| {
                (b.load(Ordering::Relaxed).saturating_mul(1000) / elapsed_ns)
                    .min(1000)
                    .to_string()
            })
            .collect();
        let steals = stats.steals.load(Ordering::Relaxed);
        let line = format!(
            "{{\"done\":{done},\"elapsed_ms\":{elapsed_ms},\"eta_ms\":{eta_ms},\
             \"journal_lag\":{journal_lag},\"restored\":{restored},\"retries\":{retries},\
             \"rows_per_sec\":{rows_per_sec},\"steals\":{steals},\"total\":{total},\
             \"worker_busy_permille\":[{}]}}",
            busy.join(",")
        );
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{line}");
        if tel.is_enabled() {
            tel.set_gauge("runner.progress.done", done as i64);
            tel.set_gauge("runner.progress.total", total as i64);
            tel.set_gauge("runner.progress.journal_lag", journal_lag as i64);
            tel.counter("runner.progress.snapshots").incr();
            tel.observe("runner.progress.rows_per_sec", rows_per_sec);
            tel.observe("runner.progress.eta_ms", eta_ms);
        }
        self.last_emit = Instant::now();
        self.last_done = done;
        self.snapshots += 1;
    }
}

/// What a worker tells the committer.
enum Msg {
    /// Trial `index` reached a final verdict; `acc` is its complete
    /// telemetry delta (all attempts).
    Done {
        index: usize,
        result: Box<TrialResult>,
        acc: Box<Registry>,
    },
    /// Trial `index` will run `next_attempt` later; `acc` snapshots the
    /// registry accumulated so far, for the journal.
    Retry {
        index: usize,
        next_attempt: u32,
        acc: Box<Registry>,
    },
}

/// Run `spec` as a durable service: schedule with work stealing, stream
/// rows into `sink` as trials complete, journal to `cfg.checkpoint`, and
/// merge telemetry into `tel`. Resumes automatically when the journal
/// already holds progress for this spec.
pub fn run_service(
    spec: &CampaignSpec,
    cfg: &RunConfig,
    tel: &Telemetry,
    sink: &mut dyn RowSink,
) -> Result<ServiceOutcome, JournalError> {
    let run_start = Instant::now();
    let trials = spec.expand();
    let (mut journal, replay) = match &cfg.checkpoint {
        Some(path) => {
            let (mut j, replay) =
                Journal::open_or_create(path, spec.fingerprint(), trials.len() as u64)?;
            j.set_fsync_every(cfg.fsync_every);
            (Some(j), replay)
        }
        None => (None, Replay::default()),
    };

    let mut report = StreamReport::new(&spec.name);
    let mut merger = StreamMerger::new();
    for (index, (result, delta)) in &replay.completed {
        report.absorb(result);
        merger.absorb(*index, delta);
    }

    // The remaining frontier: every trial with no complete record. Trials
    // with a journaled retry resume mid-attempt via the retry tail; the
    // rest start from attempt 0.
    let mut remaining: Vec<usize> = Vec::new();
    let mut seeded: VecDeque<RetryTask> = VecDeque::new();
    for trial in &trials {
        let index = trial.index;
        if replay.completed.contains_key(&(index as u64)) {
            continue;
        }
        if let Some((attempt, acc)) = replay.retries.get(&(index as u64)) {
            seeded.push_back(RetryTask {
                index,
                attempt: *attempt,
                acc: acc.clone(),
            });
        } else {
            remaining.push(index);
        }
    }
    let expected = remaining.len() + seeded.len();
    let restored = replay.completed.len();
    let resumed_retries = seeded.len();

    let mut progress = cfg.progress.map(|p| ProgressState::new(p, run_start));
    let mut retries_seen = 0u64;
    let mut stats = WorkerStats::new(cfg.workers.clamp(1, expected.max(1)));
    let mut prepare_ms = 0u64;

    if expected > 0 {
        let prep_start = Instant::now();
        let preps = engine::prepare(spec);
        prepare_ms = prep_start.elapsed().as_millis() as u64;
        let scope_cfg = ScopeConfig::of(tel).with_trace_capacity(spec.trace_capacity);
        let workers = cfg.workers.clamp(1, expected);
        let deques = underradar_campaign::steal::Deques::split(remaining.len(), workers, cfg.chunk);
        let retry_tail = Mutex::new(seeded);
        let (tx, rx) = mpsc::sync_channel::<Msg>(workers * 4);

        std::thread::scope(|scope| -> Result<(), JournalError> {
            for w in 0..workers {
                let tx = tx.clone();
                let deques = &deques;
                let retry_tail = &retry_tail;
                let remaining = &remaining;
                let trials = &trials;
                let preps = &preps;
                let stats = &stats;
                scope.spawn(move || {
                    worker_loop(
                        w, spec, trials, preps, scope_cfg, deques, remaining, retry_tail, &tx,
                        stats,
                    );
                });
            }
            drop(tx);
            // Committer: the calling thread absorbs completions until
            // every remaining trial has a final verdict. With progress
            // enabled it polls on the snapshot cadence so a long-running
            // trial can't silence the stream.
            let mut done = 0usize;
            while done < expected {
                let msg = match &progress {
                    Some(p) => {
                        match rx.recv_timeout(Duration::from_millis(p.cfg.every_ms.max(1))) {
                            Ok(m) => Some(m),
                            Err(mpsc::RecvTimeoutError::Timeout) => None,
                            Err(mpsc::RecvTimeoutError::Disconnected) => {
                                panic!("workers ended with trials outstanding")
                            }
                        }
                    }
                    None => Some(rx.recv().expect("workers ended with trials outstanding")),
                };
                match msg {
                    Some(Msg::Done { index, result, acc }) => {
                        if let Some(j) = journal.as_mut() {
                            j.append_complete(index as u64, &result, &acc)?;
                        }
                        sink.row(&result)?;
                        report.absorb(&result);
                        merger.absorb(index as u64, &acc);
                        done += 1;
                    }
                    Some(Msg::Retry {
                        index,
                        next_attempt,
                        acc,
                    }) => {
                        if let Some(j) = journal.as_mut() {
                            j.append_retry(index as u64, next_attempt, &acc)?;
                        }
                        retries_seen += 1;
                    }
                    None => {}
                }
                let total_done = (restored + done) as u64;
                if let Some(p) = progress.as_mut() {
                    if p.due(total_done) {
                        let lag = journal.as_ref().map(|j| j.unsynced()).unwrap_or(0);
                        p.emit(
                            tel,
                            &stats,
                            total_done,
                            trials.len() as u64,
                            restored as u64,
                            retries_seen,
                            lag,
                        );
                    }
                }
            }
            Ok(())
        })?;
    }

    if let Some(j) = journal.as_mut() {
        j.sync()?;
    }
    sink.flush()?;
    tel.merge_registry(&merger.finish());
    if let Some(p) = progress.as_mut() {
        // Always close the stream with a final snapshot: done == total,
        // journal fully synced.
        p.emit(
            tel,
            &stats,
            (restored + expected) as u64,
            trials.len() as u64,
            restored as u64,
            retries_seen,
            0,
        );
    }
    let profile = RunProfile {
        wall_ms: run_start.elapsed().as_millis() as u64,
        prepare_ms,
        worker_busy_ns: stats.busy_ns.iter_mut().map(|b| *b.get_mut()).collect(),
        worker_attempts: stats.attempts.iter_mut().map(|a| *a.get_mut()).collect(),
        steals: *stats.steals.get_mut(),
        retries_seen,
        snapshots: progress.as_ref().map(|p| p.snapshots).unwrap_or(0),
    };
    Ok(ServiceOutcome {
        report,
        executed: expected,
        restored,
        resumed_retries,
        journal_truncated: replay.truncated_bytes,
        profile,
    })
}

/// One worker: drain own deque, steal, then service the retry tail. Each
/// unit of work is a *single attempt*; inconclusive attempts re-enqueue
/// at the tail rather than looping inline.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    w: usize,
    spec: &CampaignSpec,
    trials: &[Trial],
    preps: &[PolicyPrep<'_>],
    scope_cfg: ScopeConfig,
    deques: &underradar_campaign::steal::Deques,
    remaining: &[usize],
    retry_tail: &Mutex<VecDeque<RetryTask>>,
    tx: &mpsc::SyncSender<Msg>,
    stats: &WorkerStats,
) {
    loop {
        let popped = deques.pop(w).or_else(|| {
            let stolen = deques.steal(w);
            if stolen.is_some() {
                stats.steals.fetch_add(1, Ordering::Relaxed);
            }
            stolen
        });
        if let Some(chunk) = popped {
            for &index in &remaining[chunk.start..chunk.end] {
                let t0 = Instant::now();
                attempt_once(
                    spec,
                    trials,
                    preps,
                    scope_cfg,
                    retry_tail,
                    tx,
                    index,
                    0,
                    Registry::new(),
                );
                stats.busy_ns[w].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                stats.attempts[w].fetch_add(1, Ordering::Relaxed);
            }
            continue;
        }
        let task = retry_tail.lock().expect("retry tail poisoned").pop_front();
        match task {
            Some(t) => {
                let t0 = Instant::now();
                attempt_once(
                    spec, trials, preps, scope_cfg, retry_tail, tx, t.index, t.attempt, t.acc,
                );
                stats.busy_ns[w].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                stats.attempts[w].fetch_add(1, Ordering::Relaxed);
            }
            // Deques and retry tail both empty at this check: any retry
            // enqueued concurrently is followed by its enqueuer's own
            // check, so exiting here strands nothing.
            None => return,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn attempt_once(
    spec: &CampaignSpec,
    trials: &[Trial],
    preps: &[PolicyPrep<'_>],
    scope_cfg: ScopeConfig,
    retry_tail: &Mutex<VecDeque<RetryTask>>,
    tx: &mpsc::SyncSender<Msg>,
    index: usize,
    attempt: u32,
    mut acc: Registry,
) {
    let trial = &trials[index];
    let prep = &preps[trial.policy_idx];
    match engine::run_trial_attempt(spec, prep, trial, attempt, &mut acc, scope_cfg) {
        AttemptOutcome::Done(result) => {
            let _ = tx.send(Msg::Done {
                index,
                result,
                acc: Box::new(acc),
            });
        }
        AttemptOutcome::Retry { next_attempt } => {
            let _ = tx.send(Msg::Retry {
                index,
                next_attempt,
                acc: Box::new(acc.clone()),
            });
            retry_tail
                .lock()
                .expect("retry tail poisoned")
                .push_back(RetryTask {
                    index,
                    attempt: next_attempt,
                    acc,
                });
        }
    }
}
