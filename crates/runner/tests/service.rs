//! End-to-end determinism and durability tests for the run service.
//!
//! The contract under test: service output (final report text, cell
//! stats, merged telemetry JSON, trace JSONL) is byte-identical to the
//! batch engine's, at any worker count, with or without checkpointing,
//! and across a resume at **every** checkpoint boundary.

use std::path::PathBuf;

use underradar_campaign::{engine, CampaignSpec, MethodKind, NamedPolicy, RetryPolicy};
use underradar_censor::CensorPolicy;
use underradar_runner::{run_service, JournalError, ProgressConfig, RunConfig, VecSink};
use underradar_telemetry::Telemetry;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("underradar-service-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// A small matrix mixing flat and routed methods across two policies.
fn spec() -> CampaignSpec {
    CampaignSpec::new("service-e2e", 2015)
        .targets(["twitter.com", "bbc.com"])
        .methods([MethodKind::Scan, MethodKind::Overt, MethodKind::Hops])
        .policy(NamedPolicy::new("control", CensorPolicy::new()))
        .policy(NamedPolicy::new(
            "dns-blocking",
            CensorPolicy::new().block_keyword("twitter"),
        ))
        .trials_per_cell(2)
        .run_secs(30)
}

/// A lossy matrix that actually exercises the retry tail: heavy client
/// link loss drives `Inconclusive` verdicts into the backoff path.
fn lossy_spec() -> CampaignSpec {
    CampaignSpec::new("service-lossy", 6)
        .targets(["twitter.com"])
        .method(MethodKind::Spam)
        .policy(NamedPolicy::new("control", CensorPolicy::new()))
        .trials_per_cell(6)
        .retry(RetryPolicy {
            max_retries: 2,
            backoff_secs: 30,
        })
        .client_link_loss(0.4)
        .warmup(false)
        .run_secs(40)
}

/// Everything the determinism contract covers, as comparable strings.
fn fingerprint_run(spec: &CampaignSpec, cfg: &RunConfig) -> (String, String, String, Vec<String>) {
    let tel = Telemetry::with_trace(4096);
    let mut sink = VecSink::new();
    let outcome = run_service(spec, cfg, &tel, &mut sink).expect("service run");
    let snap = tel.snapshot();
    let mut rows = sink.rows;
    rows.sort();
    (
        outcome.report.render_text(),
        snap.to_json(),
        snap.trace_jsonl(),
        rows,
    )
}

#[test]
fn service_matches_the_batch_engine_byte_for_byte() {
    let spec = spec();
    let tel = Telemetry::with_trace(4096);
    let batch = engine::run(&spec, 2, &tel);
    let batch_snap = tel.snapshot();

    let (report, tel_json, trace, rows) = fingerprint_run(&spec, &RunConfig::new(3));
    assert_eq!(report, batch.render_text());
    assert_eq!(tel_json, batch_snap.to_json());
    assert_eq!(trace, batch_snap.trace_jsonl());
    // Sorted rows are exactly the envelope's trial rows.
    let mut batch_rows: Vec<String> = batch.trials.iter().map(|t| t.to_json_row()).collect();
    batch_rows.sort();
    assert_eq!(rows, batch_rows);
}

#[test]
fn one_and_many_workers_agree_with_and_without_checkpointing() {
    let spec = spec();
    let baseline = fingerprint_run(&spec, &RunConfig::new(1));
    for workers in [2, 8] {
        assert_eq!(
            fingerprint_run(&spec, &RunConfig::new(workers)),
            baseline,
            "{workers} workers"
        );
    }
    let path = tmp("workers");
    assert_eq!(
        fingerprint_run(&spec, &RunConfig::new(4).checkpoint(path.clone())),
        baseline,
        "checkpointed run"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn retries_survive_the_tail_queue_and_match_the_engine() {
    let spec = lossy_spec();
    let tel = Telemetry::enabled();
    let batch = engine::run(&spec, 1, &tel);
    let retried: u64 = batch.trials.iter().map(|t| u64::from(t.retries)).sum();
    assert!(retried > 0, "lossy spec must exercise retries");

    let tel2 = Telemetry::enabled();
    let mut sink = VecSink::new();
    let outcome = run_service(&spec, &RunConfig::new(4), &tel2, &mut sink).expect("service run");
    assert_eq!(outcome.report.render_text(), batch.render_text());
    assert_eq!(tel2.snapshot().to_json(), tel.snapshot().to_json());
}

/// Interrupt a journaled run after every record boundary and resume;
/// assert each resumed run's report, telemetry, and trace are
/// byte-identical to the uninterrupted baseline. Returns the boundary
/// count so callers can assert coverage.
fn assert_resume_at_every_boundary(name: &str, spec: &CampaignSpec) -> usize {
    let baseline = fingerprint_run(spec, &RunConfig::new(1));
    let trials = spec.trial_count();

    // Run once to completion with fsync after every record, then replay
    // prefixes of the finished journal as kill points.
    let path = tmp(name);
    let tel = Telemetry::with_trace(4096);
    let mut sink = VecSink::new();
    let cfg = RunConfig::new(2).checkpoint(path.clone()).fsync_every(1);
    run_service(spec, &cfg, &tel, &mut sink).expect("full run");
    let full = std::fs::read(&path).expect("journal bytes");

    // Every record boundary in the journal is a legal kill point. Walk
    // the framing to enumerate them.
    let mut boundaries = vec![underradar_runner::journal::HEADER_LEN as usize];
    let mut pos = underradar_runner::journal::HEADER_LEN as usize;
    while pos + 8 <= full.len() {
        let len =
            u32::from_le_bytes([full[pos], full[pos + 1], full[pos + 2], full[pos + 3]]) as usize;
        pos += 8 + len;
        boundaries.push(pos);
    }
    assert_eq!(*boundaries.last().expect("nonempty"), full.len());
    assert!(boundaries.len() > trials, "journal holds every completion");

    for (i, &cut) in boundaries.iter().enumerate() {
        std::fs::write(&path, &full[..cut]).expect("truncate to boundary");
        let tel = Telemetry::with_trace(4096);
        let mut sink = VecSink::new();
        let outcome = run_service(spec, &cfg, &tel, &mut sink).expect("resumed run");
        assert_eq!(outcome.restored + outcome.executed, trials, "boundary {i}");
        let snap = tel.snapshot();
        assert_eq!(outcome.report.render_text(), baseline.0, "boundary {i}");
        assert_eq!(snap.to_json(), baseline.1, "boundary {i}");
        assert_eq!(snap.trace_jsonl(), baseline.2, "boundary {i}");
    }
    let _ = std::fs::remove_file(&path);
    boundaries.len()
}

/// The resume property test (satellite 4): every checkpoint boundary of a
/// small campaign is a safe kill point.
#[test]
fn resume_at_every_checkpoint_boundary_is_byte_identical() {
    let spec = CampaignSpec::new("service-resume", 11)
        .targets(["twitter.com"])
        .methods([MethodKind::Scan, MethodKind::StatelessSyn])
        .policy(NamedPolicy::new("control", CensorPolicy::new()))
        .trials_per_cell(3)
        .run_secs(20);
    assert_resume_at_every_boundary("boundaries", &spec);
}

/// The same property over a campaign with retry records in the journal:
/// killing between a retry handoff and its completion must resume the
/// trial mid-attempt with its backoff budget and accumulated telemetry
/// intact, not restart it from attempt 0.
#[test]
fn resume_mid_retry_preserves_backoff_budgets() {
    let spec = lossy_spec();
    let trials = spec.trial_count();
    let boundaries = assert_resume_at_every_boundary("midretry", &spec);
    // completions + header + at least one retry handoff record.
    assert!(
        boundaries > trials + 1,
        "journal must contain retry records ({boundaries} boundaries, {trials} trials)"
    );
}

/// Mid-record kills (satellite 3, end to end): cut the journal at
/// arbitrary *non*-boundary offsets — recovery truncates to the last
/// valid frontier, never panics, never double-counts a trial.
#[test]
fn mid_record_kill_recovers_without_double_counting() {
    let spec = CampaignSpec::new("service-kill", 23)
        .targets(["twitter.com"])
        .method(MethodKind::Scan)
        .policy(NamedPolicy::new("control", CensorPolicy::new()))
        .trials_per_cell(4)
        .run_secs(20);
    let baseline = fingerprint_run(&spec, &RunConfig::new(1));
    let trials = spec.trial_count();

    let path = tmp("midrecord");
    let cfg = RunConfig::new(2).checkpoint(path.clone()).fsync_every(1);
    let tel = Telemetry::with_trace(4096);
    run_service(&spec, &cfg, &tel, &mut VecSink::new()).expect("full run");
    let full = std::fs::read(&path).expect("journal bytes");

    let header = underradar_runner::journal::HEADER_LEN as usize;
    let step = ((full.len() - header) / 13).max(1);
    for cut in (header..full.len()).step_by(step) {
        std::fs::write(&path, &full[..cut]).expect("mid-record cut");
        let tel = Telemetry::with_trace(4096);
        let outcome = run_service(&spec, &cfg, &tel, &mut VecSink::new()).expect("recovered run");
        assert_eq!(outcome.restored + outcome.executed, trials, "cut {cut}");
        assert_eq!(
            outcome.report.trial_count(),
            trials,
            "cut {cut}: no loss, no double-count"
        );
        assert_eq!(outcome.report.render_text(), baseline.0, "cut {cut}");
        assert_eq!(tel.snapshot().to_json(), baseline.1, "cut {cut}");
    }
    let _ = std::fs::remove_file(&path);
}

/// Progress snapshots ride stderr and `runner.progress.*` metrics only:
/// the report, the rows, and every other registry entry are byte-identical
/// to a silent run.
#[test]
fn progress_snapshots_leave_rows_report_and_registry_unchanged() {
    let spec = spec();
    let baseline = fingerprint_run(&spec, &RunConfig::new(2));

    let tel = Telemetry::with_trace(4096);
    let mut sink = VecSink::new();
    let cfg = RunConfig::new(2).progress(ProgressConfig {
        every_trials: 1,
        every_ms: 10_000,
    });
    let outcome = run_service(&spec, &cfg, &tel, &mut sink).expect("progress run");
    assert_eq!(outcome.report.render_text(), baseline.0);
    let mut rows = sink.rows;
    rows.sort();
    assert_eq!(rows, baseline.3);

    // At least the final snapshot always fires, and it reaches the
    // registry as runner.progress.* entries.
    assert!(outcome.profile.snapshots >= 1);
    let mut snap = tel.snapshot();
    assert!(snap.counter("runner.progress.snapshots") >= 1);
    assert_eq!(
        snap.gauge("runner.progress.done"),
        spec.trial_count() as i64
    );
    // Strip the progress namespace: everything else matches the silent run.
    snap.counters
        .retain(|k, _| !k.starts_with("runner.progress."));
    snap.gauges
        .retain(|k, _| !k.starts_with("runner.progress."));
    snap.histograms
        .retain(|k, _| !k.starts_with("runner.progress."));
    assert_eq!(snap.to_json(), baseline.1);
    assert_eq!(snap.trace_jsonl(), baseline.2);
}

/// The run profile accounts for every attempt and every worker.
#[test]
fn service_outcome_carries_a_populated_profile() {
    let spec = spec();
    let tel = Telemetry::disabled();
    let mut sink = VecSink::new();
    let outcome = run_service(&spec, &RunConfig::new(3), &tel, &mut sink).expect("service run");
    let p = &outcome.profile;
    assert_eq!(p.worker_busy_ns.len(), 3);
    assert_eq!(p.worker_attempts.len(), 3);
    let attempts: u64 = p.worker_attempts.iter().sum();
    assert!(
        attempts >= outcome.executed as u64,
        "attempts {attempts} cover every executed trial"
    );
    assert!(p.worker_busy_ns.iter().sum::<u64>() > 0);
    assert!(p.wall_ms >= p.prepare_ms);
    assert_eq!(p.snapshots, 0, "no progress requested");
}

#[test]
fn resuming_a_finished_run_executes_nothing() {
    let spec = spec();
    let path = tmp("finished");
    let cfg = RunConfig::new(2).checkpoint(path.clone());
    let tel = Telemetry::with_trace(4096);
    run_service(&spec, &cfg, &tel, &mut VecSink::new()).expect("full run");

    let tel2 = Telemetry::with_trace(4096);
    let mut sink = VecSink::new();
    let outcome = run_service(&spec, &cfg, &tel2, &mut sink).expect("no-op resume");
    assert_eq!(outcome.executed, 0);
    assert_eq!(outcome.restored, spec.trial_count());
    assert!(sink.rows.is_empty(), "restored rows are not re-emitted");
    assert_eq!(tel2.snapshot().to_json(), tel.snapshot().to_json());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_journal_from_a_different_spec_is_refused() {
    let path = tmp("wrongspec");
    let cfg = RunConfig::new(1).checkpoint(path.clone());
    let tel = Telemetry::disabled();
    run_service(&spec(), &cfg, &tel, &mut VecSink::new()).expect("first spec");
    let other = spec().run_secs(31);
    match run_service(&other, &cfg, &tel, &mut VecSink::new()) {
        Err(JournalError::SpecMismatch { .. }) => {}
        other => panic!("expected SpecMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}
