//! The reference testbed (paper Figure 1, generalized).
//!
//! ```text
//!                      censor (tap)   surveillance/MVR (tap)
//!                            \          /
//!   client ---+               \        /
//!   cover-1 --+--- sw1 ======= inline censor ======= sw2 --- web servers
//!   cover-N --+    |                                  |  --- MX servers
//!   resolver ------+                                  |  --- collector
//!                                                     |  --- measurement server
//! ```
//!
//! * `sw1` is the client-side switch; the **off-path censor** and the
//!   **surveillance system** both observe it through tap ports (the paper
//!   ran two Snort instances on the Open vSwitch node).
//! * The **inline censor** models blackholing mechanisms an off-path
//!   device cannot implement; with an empty policy it is a wire.
//! * Target sites each get a web server and a mail exchanger; the
//!   resolver's zone knows them all. The **collector** stands in for an
//!   OONI-style report server (what the overt baseline talks to), and the
//!   **measurement server** is the §4.1 controlled endpoint.

use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use underradar_censor::{CensorAction, CensorPolicy, InlineCensor, TapCensor};
use underradar_ids::rule::Rule;
use underradar_ids::stream::ReassemblyConfig;
use underradar_netsim::addr::Cidr;
use underradar_netsim::host::{Host, HostTask};
use underradar_netsim::link::LinkConfig;
use underradar_netsim::node::{IfaceId, NodeId};
use underradar_netsim::sim::Simulator;
use underradar_netsim::switch::Switch;
use underradar_netsim::time::{SimDuration, SimTime};
use underradar_netsim::topology::TopologyBuilder;
use underradar_protocols::dns::{DnsName, DnsServer, Record, ZoneBuilder};
use underradar_protocols::email::EmailMessage;
use underradar_protocols::http::HttpServer;
use underradar_protocols::smtp::SmtpServerService;
use underradar_surveil::system::{
    default_surveillance_rules, SurveillanceConfig, SurveillanceNode,
};

/// A measurable target site.
#[derive(Debug, Clone)]
pub struct TargetSite {
    /// The site's domain.
    pub domain: DnsName,
    /// Web server address (port 80 open).
    pub web_ip: Ipv4Addr,
    /// Mail exchanger host name.
    pub mx_name: DnsName,
    /// Mail exchanger address (port 25 open).
    pub mx_ip: Ipv4Addr,
}

impl TargetSite {
    /// Build the `i`-th target for `domain`.
    pub fn numbered(domain: &str, i: u8) -> TargetSite {
        let domain = DnsName::parse(domain).expect("valid domain literal");
        let mx_name = domain.prepend("mx1").expect("mx label");
        TargetSite {
            domain,
            web_ip: Ipv4Addr::new(93, 184, 0, 10 + i),
            mx_name,
            mx_ip: Ipv4Addr::new(93, 184, 1, 10 + i),
        }
    }
}

/// Testbed construction parameters.
#[derive(Clone)]
pub struct TestbedConfig {
    /// RNG seed (everything downstream is deterministic in it).
    pub seed: u64,
    /// The censorship policy (drives both censors).
    pub policy: CensorPolicy,
    /// Target sites (defaults: twitter.com, youtube.com blocked-ish;
    /// bbc.com, example.org as controls — blocking is decided by the
    /// policy, not the list).
    pub targets: Vec<TargetSite>,
    /// Number of cover-client hosts on the access network.
    pub cover_hosts: usize,
    /// Surveillance ablation: run signatures before MVR discard.
    pub surveillance_alert_first: bool,
    /// Censor ablation: disable RST-teardown in the censor's reassembler.
    pub censor_rst_teardown: bool,
    /// Record every packet on every link.
    pub capture: bool,
    /// Packet-loss probability on the client's access link (failure
    /// injection; measurements must degrade gracefully, not lie).
    pub client_link_loss: f64,
    /// Reorder probability on the client's access link: selected packets
    /// are displaced by up to 2 ms and may arrive after later packets.
    pub client_link_reorder: f64,
    /// Duplication probability on the client's access link.
    pub client_link_duplicate: f64,
    /// Single-byte corruption probability on the client's access link.
    pub client_link_corrupt: f64,
    /// Reassembly limits shared by every monitor (both censors and the
    /// surveillance engine): flow-table capacity and per-direction
    /// buffering caps. Population-scale experiments sweep these to bound
    /// per-flow monitor memory.
    pub monitor_reassembly: ReassemblyConfig,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            seed: 1,
            policy: CensorPolicy::new(),
            targets: vec![
                TargetSite::numbered("twitter.com", 0),
                TargetSite::numbered("youtube.com", 1),
                TargetSite::numbered("bbc.com", 10),
                TargetSite::numbered("example.org", 11),
            ],
            cover_hosts: 4,
            surveillance_alert_first: false,
            censor_rst_teardown: true,
            capture: false,
            client_link_loss: 0.0,
            client_link_reorder: 0.0,
            client_link_duplicate: 0.0,
            client_link_corrupt: 0.0,
            monitor_reassembly: ReassemblyConfig::default(),
        }
    }
}

const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
const RESOLVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 2, 53);
const COLLECTOR_IP: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 99);
const MSERVER_IP: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 200);

/// The expensive, seed-independent parts of a [`TestbedConfig`]: the
/// resolver zone and the parsed surveillance ruleset (string-formatting
/// and parsing the Snort-style rules dominates testbed construction).
///
/// A campaign prepares one template per censor policy and instantiates a
/// fresh testbed per trial seed from it, instead of re-deriving the same
/// zone and ruleset for every trial. The template holds no simulator
/// state, so it is `Send + Sync` and shards can share it by reference.
pub struct TestbedTemplate {
    config: TestbedConfig,
    zone: Vec<Record>,
    rules: Vec<Rule>,
}

impl TestbedTemplate {
    /// Derive the policy-dependent parts once.
    pub fn prepare(config: TestbedConfig) -> TestbedTemplate {
        let mut zone = ZoneBuilder::new();
        for t in &config.targets {
            zone = zone
                .a(&t.domain, t.web_ip)
                .mx(&t.domain, 10, &t.mx_name)
                .a(&t.mx_name, t.mx_ip);
        }
        let rules = default_surveillance_rules(
            Testbed::home_net(),
            &config.policy.dns_blocked,
            &config.policy.keywords,
            Some(COLLECTOR_IP),
        );
        TestbedTemplate {
            config,
            zone: zone.build(),
            rules,
        }
    }

    /// The configuration the template was prepared from.
    pub fn config(&self) -> &TestbedConfig {
        &self.config
    }

    /// Assemble a testbed from the prepared parts, with `seed` replacing
    /// the config's seed (each trial gets its own).
    pub fn instantiate(&self, seed: u64) -> Testbed {
        let config = &self.config;
        let client_ip = CLIENT_IP;
        let resolver_ip = RESOLVER_IP;
        let collector_ip = COLLECTOR_IP;
        let mserver_ip = MSERVER_IP;

        let mut topo = TopologyBuilder::new(seed);
        if config.capture {
            topo.enable_capture();
        }

        // --- client side ---
        let client = topo.add_host(Host::new("client", client_ip));
        let mut cover = Vec::new();
        let mut cover_ips = Vec::new();
        for i in 0..config.cover_hosts {
            let ip = Ipv4Addr::new(10, 0, 1, 10 + i as u8);
            cover.push(topo.add_host(Host::new(&format!("cover{i}"), ip)));
            cover_ips.push(ip);
        }

        // Resolver serving the pre-built zone.
        let mut resolver_host = Host::new("resolver", resolver_ip);
        resolver_host.add_udp_service(53, Box::new(DnsServer::new(self.zone.clone())));
        let resolver = topo.add_host(resolver_host);

        // --- monitors ---
        let mut tap_censor =
            TapCensor::with_reassembly("censor", config.policy.clone(), config.monitor_reassembly);
        tap_censor.set_rst_teardown(config.censor_rst_teardown);
        let censor = topo.add_node(Box::new(tap_censor));

        let mut surv_config = SurveillanceConfig::with_rules(self.rules.clone());
        surv_config.alert_first = config.surveillance_alert_first;
        surv_config.reassembly = config.monitor_reassembly;
        let surveillance = topo.add_node(Box::new(SurveillanceNode::new("mvr", surv_config)));

        // --- switches and inline censor ---
        let sw1 = topo.add_switch(Switch::new("sw1"));
        let sw2 = topo.add_switch(Switch::new("sw2"));
        let inline_censor = topo.add_node(Box::new(InlineCensor::with_reassembly(
            "inline",
            config.policy.clone(),
            config.monitor_reassembly,
        )));

        topo.attach_host(
            client,
            client_ip,
            sw1,
            LinkConfig::default()
                .with_loss(config.client_link_loss)
                .with_reorder(config.client_link_reorder, SimDuration::from_millis(2))
                .with_duplicate(config.client_link_duplicate)
                .with_corrupt(config.client_link_corrupt),
        )
        .expect("client attach");
        for (node, ip) in cover.iter().zip(cover_ips.iter()) {
            topo.attach_host(*node, *ip, sw1, LinkConfig::default())
                .expect("cover attach");
        }
        topo.attach_host(resolver, resolver_ip, sw1, LinkConfig::default())
            .expect("resolver attach");
        // Taps observe the client-side switch; ideal links so injected
        // packets win races against real responses.
        topo.attach_tap(censor, sw1, LinkConfig::ideal())
            .expect("censor tap");
        topo.attach_tap(surveillance, sw1, LinkConfig::ideal())
            .expect("mvr tap");

        // --- world side ---
        let mut inboxes = HashMap::new();
        for t in &config.targets {
            let mut web = Host::new(&format!("web-{}", t.domain), t.web_ip);
            web.add_tcp_listener(80, {
                let domain = t.domain.to_string();
                move || {
                    Box::new(HttpServer::catch_all(&format!(
                        "<html><head><title>{domain}</title></head><body>content of {domain}</body></html>"
                    )))
                }
            });
            let web_id = topo.add_host(web);
            topo.attach_host(web_id, t.web_ip, sw2, LinkConfig::default())
                .expect("web attach");

            let sink: Rc<RefCell<Vec<EmailMessage>>> = Rc::new(RefCell::new(Vec::new()));
            inboxes.insert(t.domain.to_string(), sink.clone());
            let mut mx = Host::new(&format!("mx-{}", t.domain), t.mx_ip);
            mx.add_tcp_listener(25, move || {
                Box::new(SmtpServerService::with_sink(sink.clone()))
            });
            let mx_id = topo.add_host(mx);
            topo.attach_host(mx_id, t.mx_ip, sw2, LinkConfig::default())
                .expect("mx attach");
        }
        let mut collector_host = Host::new("collector", collector_ip);
        collector_host.add_tcp_listener(443, || {
            Box::new(HttpServer::catch_all("{\"status\":\"ok\"}"))
        });
        let collector = topo.add_host(collector_host);
        topo.attach_host(collector, collector_ip, sw2, LinkConfig::default())
            .expect("collector attach");

        let mserver = topo.add_host(Host::new("mserver", mserver_ip));
        topo.attach_host(mserver, mserver_ip, sw2, LinkConfig::default())
            .expect("mserver attach");

        // --- trunk through the inline censor ---
        // sw1 <-> inline(0); inline(1) <-> sw2.
        let p1 = {
            // Allocate a port on sw1 by wiring manually through the builder's
            // trunk helper twice (switch-to-node wiring).
            let sim = topo.sim_mut();
            // ports already allocated on sw1: client + covers + resolver + 2 taps
            let used = 1 + config.cover_hosts + 1 + 2;
            let port = IfaceId(used);
            sim.wire(sw1, port, inline_censor, IfaceId(0), LinkConfig::default())
                .expect("sw1-inline");
            port
        };
        let p2 = {
            let sim = topo.sim_mut();
            let used = config.targets.len() * 2 + 2; // webs + mxes + collector + mserver
            let port = IfaceId(used);
            sim.wire(sw2, port, inline_censor, IfaceId(1), LinkConfig::default())
                .expect("sw2-inline");
            port
        };
        // Routes: world-bound prefixes leave sw1 via the inline censor; the
        // home prefix returns via sw2's inline port.
        topo.route(sw1, Cidr::new(Ipv4Addr::new(93, 184, 0, 0), 16), p1);
        topo.route(sw1, Cidr::new(Ipv4Addr::new(198, 51, 100, 0), 24), p1);
        topo.route(sw2, Testbed::home_net(), p2);

        let sim = topo.finish();
        Testbed {
            sim,
            client,
            cover,
            resolver,
            censor,
            inline_censor,
            surveillance,
            targets: config.targets.clone(),
            inboxes,
            client_ip,
            cover_ips,
            resolver_ip,
            collector_ip,
            mserver,
            mserver_ip,
        }
    }
}

/// The assembled testbed.
pub struct Testbed {
    /// The simulator (run it, then inspect).
    pub sim: Simulator,
    /// The measurement client host.
    pub client: NodeId,
    /// Cover hosts on the same access network.
    pub cover: Vec<NodeId>,
    /// The resolver host.
    pub resolver: NodeId,
    /// The off-path censor node.
    pub censor: NodeId,
    /// The inline censor node.
    pub inline_censor: NodeId,
    /// The surveillance node.
    pub surveillance: NodeId,
    /// Target sites.
    pub targets: Vec<TargetSite>,
    /// Per-target inboxes of mail delivered to the MX.
    pub inboxes: HashMap<String, Rc<RefCell<Vec<EmailMessage>>>>,
    /// The measurement client's address.
    pub client_ip: Ipv4Addr,
    /// Cover host addresses.
    pub cover_ips: Vec<Ipv4Addr>,
    /// The resolver's address.
    pub resolver_ip: Ipv4Addr,
    /// OONI-style collector address.
    pub collector_ip: Ipv4Addr,
    /// The measurer-controlled server (for stateful mimicry).
    pub mserver: NodeId,
    /// Its address.
    pub mserver_ip: Ipv4Addr,
}

impl Testbed {
    /// The access-network prefix clients live in.
    pub fn home_net() -> Cidr {
        Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 8)
    }

    /// Assemble the testbed. One-shot path; campaigns that build many
    /// testbeds for the same policy should [`TestbedTemplate::prepare`]
    /// once and [`TestbedTemplate::instantiate`] per seed instead.
    pub fn build(config: TestbedConfig) -> Testbed {
        let seed = config.seed;
        TestbedTemplate::prepare(config).instantiate(seed)
    }

    fn spawn_on(&mut self, node: NodeId, at: SimTime, task: Box<dyn HostTask>) -> usize {
        // External scheduling works whether or not the simulation has
        // started, so tasks can be staged between run calls.
        let token = self.sim.alloc_timer_token();
        let host = self.sim.node_mut::<Host>(node).expect("node is a host");
        let idx = host.add_task(task);
        host.bind_task_start(idx, token);
        self.sim
            .schedule_timer(node, at, token)
            .expect("node exists");
        idx
    }

    /// Spawn a task on the measurement client at `at` (works before and
    /// between runs).
    pub fn spawn_on_client(&mut self, at: SimTime, task: Box<dyn HostTask>) -> usize {
        self.spawn_on(self.client, at, task)
    }

    /// Spawn a task on the measurer-controlled server.
    pub fn spawn_on_mserver(&mut self, at: SimTime, task: Box<dyn HostTask>) -> usize {
        self.spawn_on(self.mserver, at, task)
    }

    /// Run the simulation for `secs` simulated seconds.
    pub fn run_secs(&mut self, secs: u64) {
        self.sim
            .run_for(SimDuration::from_secs(secs))
            .expect("simulation within event budget");
    }

    /// A typed view of a client task after the run.
    pub fn client_task<T: HostTask>(&self, idx: usize) -> Option<&T> {
        self.sim.node_ref::<Host>(self.client)?.task_ref::<T>(idx)
    }

    /// A typed view of an mserver task after the run.
    pub fn mserver_task<T: HostTask>(&self, idx: usize) -> Option<&T> {
        self.sim.node_ref::<Host>(self.mserver)?.task_ref::<T>(idx)
    }

    /// Ground truth: the off-path censor's logged actions.
    pub fn censor_actions(&self) -> Vec<CensorAction> {
        let mut actions = self
            .sim
            .node_ref::<TapCensor>(self.censor)
            .map(|c| c.actions().to_vec())
            .unwrap_or_default();
        if let Some(inline) = self.sim.node_ref::<InlineCensor>(self.inline_censor) {
            actions.extend(inline.actions().to_vec());
        }
        actions
    }

    /// Whether any censor acted during the run.
    pub fn censor_acted(&self) -> bool {
        !self.censor_actions().is_empty()
    }

    /// The surveillance system, for evasion/attribution queries.
    pub fn surveillance(&self) -> &underradar_surveil::SurveillanceSystem {
        self.sim
            .node_ref::<SurveillanceNode>(self.surveillance)
            .expect("surveillance node exists")
            .system()
    }

    /// Attach a telemetry handle to the simulator so the scheduler's live
    /// counters (events, link transmits/drops, queue depths) record into
    /// it as the simulation runs. When the handle carries a flight-recorder
    /// trace, the tracer is also pushed into every decision stage — link
    /// scheduler, censors, and the surveillance pipeline — so one trace
    /// holds the full causal chain.
    pub fn set_telemetry(&mut self, tel: underradar_netsim::telemetry::Telemetry) {
        let tracer = tel.tracer();
        self.sim.set_telemetry(tel);
        if tracer.is_live() {
            if let Some(tap) = self.sim.node_mut::<TapCensor>(self.censor) {
                tap.set_tracer(tracer.clone());
            }
            if let Some(inline) = self.sim.node_mut::<InlineCensor>(self.inline_censor) {
                inline.set_tracer(tracer.clone());
            }
            if let Some(surv) = self.sim.node_mut::<SurveillanceNode>(self.surveillance) {
                surv.set_tracer(tracer);
            }
        }
    }

    /// Mirror the whole testbed's state into `tel`: scheduler totals plus
    /// the tap censor, inline censor, and surveillance pipeline exports.
    /// Counters and gauges are idempotent; censor-action events append,
    /// so call once per run.
    pub fn export_telemetry(&self, tel: &underradar_netsim::telemetry::Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        self.sim.export_telemetry(tel);
        if let Some(tap) = self.sim.node_ref::<TapCensor>(self.censor) {
            tap.export_telemetry(tel);
        }
        if let Some(inline) = self.sim.node_ref::<InlineCensor>(self.inline_censor) {
            inline.export_telemetry(tel);
        }
        if let Some(surv) = self.sim.node_ref::<SurveillanceNode>(self.surveillance) {
            surv.system().export_telemetry(tel);
        }
    }

    /// A target by domain string.
    pub fn target(&self, domain: &str) -> Option<&TargetSite> {
        self.targets.iter().find(|t| t.domain.to_string() == domain)
    }

    /// Mail delivered to a target's MX during the run.
    pub fn inbox(&self, domain: &str) -> Vec<EmailMessage> {
        self.inboxes
            .get(domain)
            .map(|rc| rc.borrow().clone())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use underradar_netsim::{ConnId, HostApi, TcpEvent};

    #[test]
    fn default_testbed_builds_and_routes_web_traffic() {
        struct Get {
            target: Ipv4Addr,
            status: Option<u16>,
            buf: Vec<u8>,
        }
        impl HostTask for Get {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                api.tcp_connect(self.target, 80);
            }
            fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, ev: TcpEvent) {
                match ev {
                    TcpEvent::Connected => {
                        api.tcp_send(conn, b"GET / HTTP/1.0\r\nHost: bbc.com\r\n\r\n")
                    }
                    TcpEvent::Data(d) => {
                        self.buf.extend_from_slice(&d);
                        if let Ok(r) = underradar_protocols::http::HttpResponse::parse(&self.buf) {
                            self.status = Some(r.status);
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut tb = Testbed::build(TestbedConfig::default());
        let bbc = tb.target("bbc.com").expect("bbc target").web_ip;
        tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(Get {
                target: bbc,
                status: None,
                buf: vec![],
            }),
        );
        tb.run_secs(10);
        let task = tb.client_task::<Get>(0).expect("task");
        assert_eq!(
            task.status,
            Some(200),
            "client can browse an uncensored site end-to-end"
        );
        assert!(!tb.censor_acted());
    }

    #[test]
    fn dns_resolution_works_through_the_testbed() {
        use underradar_protocols::dns::{DnsMessage, QType};
        struct Lookup {
            resolver: Ipv4Addr,
            answers: Vec<Ipv4Addr>,
        }
        impl HostTask for Lookup {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                let port = api.udp_bind(0).expect("bind");
                let q = DnsMessage::query(9, DnsName::parse("bbc.com").expect("n"), QType::A);
                api.udp_send(port, self.resolver, 53, q.encode());
            }
            fn on_udp(
                &mut self,
                _api: &mut HostApi<'_, '_>,
                _l: u16,
                _s: Ipv4Addr,
                _p: u16,
                payload: &[u8],
            ) {
                if let Ok(m) = DnsMessage::decode(payload) {
                    self.answers = m.a_records();
                }
            }
        }
        let mut tb = Testbed::build(TestbedConfig::default());
        let resolver = tb.resolver_ip;
        let expect = tb.target("bbc.com").expect("t").web_ip;
        tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(Lookup {
                resolver,
                answers: vec![],
            }),
        );
        tb.run_secs(5);
        assert_eq!(
            tb.client_task::<Lookup>(0).expect("t").answers,
            vec![expect]
        );
    }

    #[test]
    fn censored_keyword_triggers_censor_in_testbed() {
        struct Get {
            target: Ipv4Addr,
            reset: bool,
        }
        impl HostTask for Get {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                api.tcp_connect(self.target, 80);
            }
            fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, ev: TcpEvent) {
                match ev {
                    TcpEvent::Connected => {
                        api.tcp_send(conn, b"GET /falun HTTP/1.0\r\nHost: x\r\n\r\n")
                    }
                    TcpEvent::Reset => self.reset = true,
                    _ => {}
                }
            }
        }
        let config = TestbedConfig {
            policy: CensorPolicy::new().block_keyword("falun"),
            ..TestbedConfig::default()
        };
        let mut tb = Testbed::build(config);
        let web = tb.target("bbc.com").expect("t").web_ip;
        tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(Get {
                target: web,
                reset: false,
            }),
        );
        tb.run_secs(10);
        assert!(tb.client_task::<Get>(0).expect("t").reset);
        assert!(tb.censor_acted());
    }

    #[test]
    fn surveillance_observes_client_traffic() {
        struct Syn {
            target: Ipv4Addr,
        }
        impl HostTask for Syn {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                api.tcp_connect(self.target, 80);
            }
        }
        let mut tb = Testbed::build(TestbedConfig::default());
        let web = tb.target("example.org").expect("t").web_ip;
        tb.spawn_on_client(SimTime::ZERO, Box::new(Syn { target: web }));
        tb.run_secs(5);
        assert!(tb.surveillance().stats().observed > 0);
    }

    #[test]
    fn telemetry_covers_scheduler_censor_and_surveillance() {
        use underradar_netsim::telemetry::Telemetry;
        struct Get {
            target: Ipv4Addr,
        }
        impl HostTask for Get {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                api.tcp_connect(self.target, 80);
            }
            fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, ev: TcpEvent) {
                if let TcpEvent::Connected = ev {
                    api.tcp_send(conn, b"GET /falun HTTP/1.0\r\nHost: x\r\n\r\n");
                }
            }
        }
        let config = TestbedConfig {
            policy: CensorPolicy::new().block_keyword("falun"),
            ..TestbedConfig::default()
        };
        let mut tb = Testbed::build(config);
        let tel = Telemetry::enabled();
        tb.set_telemetry(tel.clone());
        let web = tb.target("bbc.com").expect("t").web_ip;
        tb.spawn_on_client(SimTime::ZERO, Box::new(Get { target: web }));
        tb.run_secs(10);
        tb.export_telemetry(&tel);
        let snap = tel.snapshot();
        assert!(snap.counter("netsim.events_processed") > 0);
        assert!(snap.counter("netsim.link.transmits") > 0);
        assert!(snap.counter("censor.tap.rst_injections") > 0);
        assert!(snap.counter("surveil.observed") > 0);
        assert!(
            snap.events.iter().any(|e| e.kind == "censor.tap.action"),
            "censor actions surface as structured events"
        );
        // Re-export only appends more events; counters stay identical.
        let before = snap.counters.clone();
        tb.export_telemetry(&tel);
        assert_eq!(tel.snapshot().counters, before);
    }

    #[test]
    fn monitor_reassembly_knob_reaches_every_monitor() {
        use underradar_ids::stream::ReassemblyConfig;
        use underradar_netsim::telemetry::Telemetry;
        struct Get {
            target: Ipv4Addr,
        }
        impl HostTask for Get {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                api.tcp_connect(self.target, 80);
            }
            fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, ev: TcpEvent) {
                if let TcpEvent::Connected = ev {
                    api.tcp_send(conn, b"GET / HTTP/1.0\r\nHost: x\r\n\r\n");
                }
            }
        }
        let config = TestbedConfig {
            monitor_reassembly: ReassemblyConfig {
                max_flows: 1,
                ..ReassemblyConfig::default()
            },
            ..TestbedConfig::default()
        };
        let mut tb = Testbed::build(config);
        let webs: Vec<Ipv4Addr> = ["bbc.com", "example.org", "twitter.com"]
            .iter()
            .map(|d| tb.target(d).expect("target").web_ip)
            .collect();
        for (i, web) in webs.into_iter().enumerate() {
            tb.spawn_on_client(
                SimTime::ZERO + SimDuration::from_secs(i as u64),
                Box::new(Get { target: web }),
            );
        }
        tb.run_secs(10);
        let tel = Telemetry::enabled();
        tb.export_telemetry(&tel);
        let snap = tel.snapshot();
        // Three concurrent-ish web flows through a capacity-1 table must
        // evict in each monitor's reassembler.
        for counter in [
            "censor.tap.flows.evicted",
            "censor.inline.flows.evicted",
            "ids.engine.flows.evicted",
        ] {
            assert!(snap.counter(counter) > 0, "{counter} saw no evictions");
        }
    }

    #[test]
    fn template_is_shareable_and_matches_direct_build() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TestbedTemplate>();

        let config = || TestbedConfig {
            policy: CensorPolicy::new().block_keyword("falun"),
            seed: 77,
            ..TestbedConfig::default()
        };
        let template = TestbedTemplate::prepare(config());
        let run = |mut tb: Testbed| {
            struct Get {
                target: Ipv4Addr,
                reset: bool,
            }
            impl HostTask for Get {
                fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                    api.tcp_connect(self.target, 80);
                }
                fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, ev: TcpEvent) {
                    match ev {
                        TcpEvent::Connected => {
                            api.tcp_send(conn, b"GET /falun HTTP/1.0\r\nHost: x\r\n\r\n")
                        }
                        TcpEvent::Reset => self.reset = true,
                        _ => {}
                    }
                }
            }
            let web = tb.target("bbc.com").expect("t").web_ip;
            tb.spawn_on_client(
                SimTime::ZERO,
                Box::new(Get {
                    target: web,
                    reset: false,
                }),
            );
            tb.run_secs(10);
            (
                tb.client_task::<Get>(0).expect("t").reset,
                tb.censor_actions().len(),
                tb.surveillance().stats().observed,
            )
        };
        assert_eq!(
            run(template.instantiate(77)),
            run(Testbed::build(config())),
            "template path reproduces the direct-build path exactly"
        );
    }

    #[test]
    fn smtp_delivery_reaches_inbox() {
        use underradar_protocols::smtp::SmtpClientMachine;
        struct Send {
            mx: Ipv4Addr,
            machine: SmtpClientMachine,
        }
        impl HostTask for Send {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                api.tcp_connect(self.mx, 25);
            }
            fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, ev: TcpEvent) {
                if let TcpEvent::Data(d) = ev {
                    let out = self.machine.on_data(&d);
                    if !out.is_empty() {
                        api.tcp_send(conn, &out);
                    }
                    if self.machine.is_done() {
                        api.tcp_close(conn);
                    }
                }
            }
        }
        let mut tb = Testbed::build(TestbedConfig::default());
        let mx = tb.target("twitter.com").expect("t").mx_ip;
        let msg = EmailMessage::new("a@b.c", "user@twitter.com", "hello", "body");
        tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(Send {
                mx,
                machine: SmtpClientMachine::new("probe", msg),
            }),
        );
        tb.run_secs(10);
        let inbox = tb.inbox("twitter.com");
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].subject, "hello");
    }
}
