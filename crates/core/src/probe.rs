//! The unified probe API.
//!
//! Every measurement method used to expose ad-hoc inherent methods
//! (`verdict()`, `is_finished()`, per-struct accessors), which forced each
//! experiment harness to hand-wire every technique separately. [`Probe`]
//! is now the public entry point for reading a measurement's outcome: one
//! trait object surface an engine — the campaign runner, the experiment
//! harnesses, user code — can drive all seven techniques through.
//!
//! A probe still *runs* as a [`underradar_netsim::host::HostTask`] inside
//! the simulator; once the simulation completes, retrieve the task (e.g.
//! via [`crate::testbed::Testbed::client_task`]) and read its conclusion
//! through this trait:
//!
//! * [`Probe::label`] — stable method name for tables and telemetry keys;
//! * [`Probe::is_finished`] — did the measurement run to completion, or
//!   was the simulation horizon too short?
//! * [`Probe::verdict`] — the censorship conclusion;
//! * [`Probe::evidence`] — deterministic key/value pairs describing what
//!   was observed (sample tallies, DNS answers, hop counts), for reports
//!   and structured output.
//!
//! Implemented by [`crate::methods::scan::SynScanProbe`],
//! [`crate::methods::spam::SpamProbe`], [`crate::methods::ddos::DdosProbe`],
//! [`crate::methods::overt::OvertProbe`], [`crate::methods::hops::HopProbe`],
//! [`crate::methods::stateless::StatelessDnsMimicry`],
//! [`crate::methods::stateless::StatelessSynMimicry`],
//! [`crate::methods::stateful::StatefulMimicry`] (the blind client half)
//! and [`crate::methods::stateful::MimicServer`] (where the stateful
//! verdict is actually read).

use crate::verdict::Verdict;

/// Deterministic evidence pairs: stable key, rendered value. Keys are
/// fixed per method; values are integers/booleans rendered to strings, so
/// the same run always yields byte-identical evidence.
pub type Evidence = Vec<(&'static str, String)>;

/// The common post-run surface of every measurement method.
pub trait Probe {
    /// Short, stable method label (`"scan"`, `"spam"`, ...) used in
    /// report tables and telemetry key prefixes.
    fn label(&self) -> &'static str;

    /// Whether the probe considers its measurement complete. A `false`
    /// after a run means the simulation horizon was too short — engines
    /// treat the verdict as retryable.
    fn is_finished(&self) -> bool;

    /// The measurement's conclusion.
    fn verdict(&self) -> Verdict;

    /// What the probe observed, as deterministic key/value pairs.
    fn evidence(&self) -> Evidence;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::ddos::DdosProbe;
    use crate::methods::hops::HopProbe;
    use crate::methods::overt::OvertProbe;
    use crate::methods::scan::SynScanProbe;
    use crate::methods::spam::SpamProbe;
    use crate::methods::stateful::{MimicServer, StatefulMimicry};
    use crate::methods::stateless::{StatelessDnsMimicry, StatelessSynMimicry};
    use std::net::Ipv4Addr;
    use underradar_protocols::dns::{DnsName, QType};

    fn ip() -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, 1)
    }

    /// Every method is reachable through one `&dyn Probe` surface; fresh
    /// (never-run) probes all read unfinished with an inconclusive or
    /// pending verdict, and evidence keys are non-empty and stable.
    #[test]
    fn all_methods_drive_through_one_trait_object() {
        let d = DnsName::parse("example.org").expect("name");
        let probes: Vec<Box<dyn Probe>> = vec![
            Box::new(SynScanProbe::new(ip(), vec![80], vec![80])),
            Box::new(SpamProbe::new(&d, ip(), 0)),
            Box::new(DdosProbe::new(ip(), "example.org", "/", 3)),
            Box::new(OvertProbe::new(&d, ip(), ip(), "/")),
            Box::new(HopProbe::new(ip(), 80, 4)),
            Box::new(StatelessDnsMimicry::new(&d, QType::A, ip(), vec![])),
            Box::new(StatelessSynMimicry::new(ip(), 80, vec![])),
            Box::new(StatefulMimicry::new(ip(), ip(), 443, 1, b"x")),
        ];
        let labels: Vec<&str> = probes.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            vec![
                "scan",
                "spam",
                "ddos",
                "overt",
                "hops",
                "stateless-dns",
                "stateless-syn",
                "stateful",
            ]
        );
        for p in &probes {
            assert!(
                !p.is_finished(),
                "{}: fresh probe must not be finished",
                p.label()
            );
            assert!(
                !p.evidence().is_empty(),
                "{}: evidence keys exist",
                p.label()
            );
        }
    }

    #[test]
    fn mimic_server_reads_the_stateful_verdict() {
        let server = MimicServer::new(443, 7, None);
        let p: &dyn Probe = &server;
        assert_eq!(p.label(), "stateful");
        // A fresh server saw no SYN: from the server's post-run point of
        // view that is the blackhole conclusion.
        assert!(p.verdict().is_censored());
        assert!(p.is_finished());
    }
}
