//! The top TCP ports walked by the scanning method (§3.1 Method #1: "an
//! nmap SYN scan to the most commonly open 1,000 TCP ports").
//!
//! The first entries follow nmap's well-known frequency ordering; the tail
//! is filled deterministically from the registered-port space so
//! `top_ports(1000)` yields exactly 1000 distinct ports, most-likely-open
//! first.

/// The head of nmap's services frequency ordering.
const TOP_PORTS_HEAD: &[u16] = &[
    80, 23, 443, 21, 22, 25, 3389, 110, 445, 139, 143, 53, 135, 3306, 8080, 1723, 111, 995, 993,
    5900, 1025, 587, 8888, 199, 1720, 465, 548, 113, 81, 6001, 10000, 514, 5060, 179, 1026, 2000,
    8443, 8000, 32768, 554, 26, 1433, 49152, 2001, 515, 8008, 49154, 1027, 5666, 646, 5000, 5631,
    631, 49153, 8081, 2049, 88, 79, 5800, 106, 2121, 1110, 49155, 6000, 513, 990, 5357, 427, 49156,
    543, 544, 5101, 144, 7, 389, 8009, 3128, 444, 9999, 5009, 7070, 5190, 3000, 5432, 1900, 3986,
    13, 1029, 9, 5051, 6646, 49157, 1028, 873, 1755, 2717, 4899, 9100, 119, 37,
];

/// The `n` most-commonly-open TCP ports, most common first. Values of `n`
/// beyond 1000 are clamped to 1000.
pub fn top_ports(n: usize) -> Vec<u16> {
    let n = n.min(1000);
    let mut out: Vec<u16> = TOP_PORTS_HEAD.iter().copied().take(n).collect();
    // Fill deterministically from low registered ports, skipping ones
    // already present.
    let mut candidate: u16 = 1;
    while out.len() < n {
        if !out.contains(&candidate) {
            out.push(candidate);
        }
        candidate = candidate.wrapping_add(1);
        if candidate == 0 {
            break;
        }
    }
    out
}

/// Rank of a port in the ordering (0 = most common), if in the top 1000.
pub fn port_rank(port: u16) -> Option<usize> {
    top_ports(1000).iter().position(|&p| p == port)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_order_matches_nmap_intuition() {
        let ports = top_ports(10);
        assert_eq!(ports[0], 80);
        assert_eq!(ports[1], 23);
        assert_eq!(ports[2], 443);
        assert!(ports.contains(&22));
        assert!(ports.contains(&25));
    }

    #[test]
    fn thousand_distinct_ports() {
        let ports = top_ports(1000);
        assert_eq!(ports.len(), 1000);
        let mut sorted = ports.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 1000, "all distinct");
    }

    #[test]
    fn clamping_and_small_n() {
        assert_eq!(top_ports(0).len(), 0);
        assert_eq!(top_ports(1), vec![80]);
        assert_eq!(top_ports(5000).len(), 1000);
    }

    #[test]
    fn ranks() {
        assert_eq!(port_rank(80), Some(0));
        assert_eq!(port_rank(443), Some(2));
        assert!(port_rank(25).expect("25 ranked") < 10);
        // A port certain to be outside any top-1000 list.
        assert!(port_rank(61999).is_none());
    }
}
