//! The measurement techniques.
//!
//! Every method is a [`underradar_netsim::HostTask`] that runs on the
//! measurement client (plus, for stateful mimicry, a cooperating task on
//! the measurer-controlled server). Methods expose their collected
//! evidence and a [`crate::verdict::Verdict`] after the simulation runs.

pub mod ddos;
pub mod hops;
pub mod overt;
pub mod scan;
pub mod spam;
pub mod stateful;
pub mod stateless;

pub use ddos::DdosProbe;
pub use hops::HopProbe;
pub use overt::OvertProbe;
pub use scan::SynScanProbe;
pub use spam::SpamProbe;
pub use stateful::{MimicServer, StatefulMimicry};
pub use stateless::{StatelessDnsMimicry, StatelessSynMimicry};
