//! Stateful mimicry with TTL-limited replies (§4.1, Figure 3b).
//!
//! For stateful protocols, cover traffic is only possible toward servers
//! the measurer controls. The client spoofs a whole TCP conversation from
//! a neighbor address Y:
//!
//! 1. `<SRC=Y, SYN>` — spoofed by the measurement client;
//! 2. `<DST=Y, SYN/ACK>` — the controlled server replies toward Y with a
//!    **TTL-limited** packet that "dies in the network" after passing the
//!    surveillance system but before reaching Y;
//! 3. `<SRC=Y, ACK>` — the client, knowing the server's agreed ISN, ACKs
//!    blindly; data (carrying the measured keyword) follows the same way.
//!
//! The TTL limit solves the *replay problem*: if the SYN/ACK reached the
//! real Y, Y's kernel would answer RST, killing the server's connection
//! state and making the censor's reassembler stop looking at the flow.
//!
//! Censorship is read from the server side (which the measurer controls):
//! an injected RST arriving at the server after the keyword segment means
//! the flow was censored; clean delivery means reachable.

use std::net::Ipv4Addr;

use underradar_netsim::host::{HostApi, HostTask, RawVerdict};
use underradar_netsim::packet::Packet;
use underradar_netsim::time::SimDuration;
use underradar_netsim::wire::tcp::TcpFlags;

use crate::probe::{Evidence, Probe};
use crate::verdict::{Mechanism, Verdict};

/// Events the measurer-controlled server records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerEvent {
    /// A SYN arrived from (addr, port).
    Syn(Ipv4Addr, u16),
    /// The blind ACK completed the spoofed handshake.
    Established,
    /// Payload bytes arrived.
    Data(Vec<u8>),
    /// A RST arrived (either injected by a censor, or the replay problem:
    /// the spoofed client answered a reply it should never have seen).
    Rst,
}

/// The measurer-controlled endpoint (runs on a host outside the censored
/// network, e.g. "hosted on AWS" per §4.1).
pub struct MimicServer {
    /// Port the server answers on.
    pub port: u16,
    /// Pre-agreed initial sequence number (lets the client ACK blindly).
    pub agreed_iss: u32,
    /// TTL stamped on replies; `None` sends normal TTL (the replay-problem
    /// configuration).
    pub reply_ttl: Option<u8>,
    /// Everything observed, in order.
    pub events: Vec<ServerEvent>,
    /// Reassembled payload received from the spoofed flow.
    pub received: Vec<u8>,
    rst_seen: bool,
    expected_seq: Option<u32>,
}

impl MimicServer {
    /// A server on `port` with the agreed ISN.
    pub fn new(port: u16, agreed_iss: u32, reply_ttl: Option<u8>) -> MimicServer {
        MimicServer {
            port,
            agreed_iss,
            reply_ttl,
            events: Vec::new(),
            received: Vec::new(),
            rst_seen: false,
            expected_seq: None,
        }
    }

    /// Whether the flow was reset.
    pub fn was_reset(&self) -> bool {
        self.rst_seen
    }

    /// Whether any SYN arrived at all.
    pub fn saw_syn(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, ServerEvent::Syn(..)))
    }

    fn reply(
        &self,
        api: &mut HostApi<'_, '_>,
        dst: Ipv4Addr,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
    ) {
        let mut pkt = Packet::tcp(api.ip(), dst, self.port, dst_port, seq, ack, flags, vec![]);
        if let Some(ttl) = self.reply_ttl {
            pkt = pkt.with_ttl(ttl);
        }
        api.raw_send(pkt);
    }
}

impl Probe for MimicServer {
    fn label(&self) -> &'static str {
        "stateful"
    }

    /// The server half is where the stateful verdict is read; it is
    /// "finished" whenever its observations are conclusive (even a silent
    /// run concludes blackhole — no SYN arrived at all).
    fn is_finished(&self) -> bool {
        !matches!(self.verdict(), Verdict::Inconclusive(_))
    }

    /// The measurement verdict, read from the server's point of view.
    fn verdict(&self) -> Verdict {
        if !self.saw_syn() {
            return Verdict::Censored(Mechanism::Blackhole);
        }
        if self.rst_seen {
            return Verdict::Censored(Mechanism::RstInjection);
        }
        if !self.received.is_empty() {
            return Verdict::Reachable;
        }
        Verdict::Inconclusive("handshake only; no data arrived".to_string())
    }

    fn evidence(&self) -> Evidence {
        vec![
            ("saw_syn", self.saw_syn().to_string()),
            ("was_reset", self.was_reset().to_string()),
            ("received_bytes", self.received.len().to_string()),
            ("events", self.events.len().to_string()),
            (
                "reply_ttl",
                self.reply_ttl.map_or("-".to_string(), |t| t.to_string()),
            ),
        ]
    }
}

impl HostTask for MimicServer {
    fn on_start(&mut self, _api: &mut HostApi<'_, '_>) {}

    fn on_raw(&mut self, api: &mut HostApi<'_, '_>, packet: &Packet) -> RawVerdict {
        if packet.dst != api.ip() {
            return RawVerdict::Continue;
        }
        let Some(seg) = packet.as_tcp() else {
            return RawVerdict::Continue;
        };
        if seg.dst_port != self.port {
            return RawVerdict::Continue;
        }
        if seg.flags.has_rst() {
            self.rst_seen = true;
            self.events.push(ServerEvent::Rst);
            return RawVerdict::Consume;
        }
        if seg.flags.has_syn() && !seg.flags.has_ack() {
            self.events.push(ServerEvent::Syn(packet.src, seg.src_port));
            self.expected_seq = Some(seg.seq.wrapping_add(1));
            self.reply(
                api,
                packet.src,
                seg.src_port,
                self.agreed_iss,
                seg.seq.wrapping_add(1),
                TcpFlags::syn_ack(),
            );
            return RawVerdict::Consume;
        }
        if seg.flags.has_ack() && seg.payload.is_empty() {
            if seg.ack == self.agreed_iss.wrapping_add(1)
                && !self.events.contains(&ServerEvent::Established)
            {
                self.events.push(ServerEvent::Established);
            }
            return RawVerdict::Consume;
        }
        if !seg.payload.is_empty() {
            if Some(seg.seq) == self.expected_seq {
                self.expected_seq = Some(seg.seq.wrapping_add(seg.payload.len() as u32));
                self.received.extend_from_slice(&seg.payload);
            }
            self.events.push(ServerEvent::Data(seg.payload.clone()));
            self.reply(
                api,
                packet.src,
                seg.src_port,
                self.agreed_iss.wrapping_add(1),
                seg.seq.wrapping_add(seg.payload.len() as u32),
                TcpFlags::ack(),
            );
            return RawVerdict::Consume;
        }
        RawVerdict::Consume
    }
}

/// The client half: blindly drives the spoofed conversation.
pub struct StatefulMimicry {
    /// The address the conversation is spoofed from (a same-AS neighbor).
    pub spoof_src: Ipv4Addr,
    /// Source port used in the spoofed flow.
    pub spoof_sport: u16,
    /// The controlled server.
    pub server: Ipv4Addr,
    /// The server's port.
    pub server_port: u16,
    /// Pre-agreed server ISN.
    pub agreed_iss: u32,
    /// Our own ISN.
    pub client_iss: u32,
    /// The payload whose censorship is being measured.
    pub payload: Vec<u8>,
    /// Split the payload into two segments (exercises the censor's
    /// reassembler).
    pub split_payload: bool,
    step_gap: SimDuration,
    step: u32,
}

impl StatefulMimicry {
    /// Build the client half.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        spoof_src: Ipv4Addr,
        server: Ipv4Addr,
        server_port: u16,
        agreed_iss: u32,
        payload: &[u8],
    ) -> StatefulMimicry {
        StatefulMimicry {
            spoof_src,
            spoof_sport: 42777,
            server,
            server_port,
            agreed_iss,
            client_iss: 0x1357_9bdf,
            payload: payload.to_vec(),
            split_payload: false,
            step_gap: SimDuration::from_millis(50),
            step: 0,
        }
    }

    /// Adjust the gap between spoofed conversation steps (builder style).
    pub fn with_pace(mut self, pace: SimDuration) -> StatefulMimicry {
        self.step_gap = pace;
        self
    }

    /// Split the payload across two segments (builder style).
    pub fn with_split_payload(mut self) -> StatefulMimicry {
        self.split_payload = true;
        self
    }

    fn spoofed(&self, seq: u32, ack: u32, flags: TcpFlags, payload: Vec<u8>) -> Packet {
        Packet::tcp(
            self.spoof_src,
            self.server,
            self.spoof_sport,
            self.server_port,
            seq,
            ack,
            flags,
            payload,
        )
    }
}

impl Probe for StatefulMimicry {
    fn label(&self) -> &'static str {
        "stateful"
    }

    /// Whether every spoofed conversation step has been sent.
    fn is_finished(&self) -> bool {
        self.step >= if self.split_payload { 3 } else { 2 }
    }

    /// The client half drives the conversation blind — replies go to the
    /// spoofed neighbor, never here. The verdict is always read from the
    /// [`MimicServer`] half.
    fn verdict(&self) -> Verdict {
        Verdict::Inconclusive("blind spoofed client; read the MimicServer verdict".to_string())
    }

    fn evidence(&self) -> Evidence {
        vec![
            ("steps_sent", self.step.to_string()),
            ("payload_bytes", self.payload.len().to_string()),
            ("split_payload", self.split_payload.to_string()),
        ]
    }
}

impl HostTask for StatefulMimicry {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        api.raw_send(self.spoofed(self.client_iss, 0, TcpFlags::syn(), vec![]));
        api.set_timer(self.step_gap, 1);
    }

    fn on_timer(&mut self, api: &mut HostApi<'_, '_>, _token: u64) {
        self.step += 1;
        let data_seq = self.client_iss.wrapping_add(1);
        let srv_ack = self.agreed_iss.wrapping_add(1);
        match self.step {
            1 => {
                // Blind ACK completes the spoofed handshake.
                api.raw_send(self.spoofed(data_seq, srv_ack, TcpFlags::ack(), vec![]));
                api.set_timer(self.step_gap, 2);
            }
            2 => {
                if self.split_payload && self.payload.len() >= 2 {
                    let mid = self.payload.len() / 2;
                    let first = self.payload[..mid].to_vec();
                    api.raw_send(self.spoofed(data_seq, srv_ack, TcpFlags::psh_ack(), first));
                    api.set_timer(self.step_gap, 3);
                } else {
                    api.raw_send(self.spoofed(
                        data_seq,
                        srv_ack,
                        TcpFlags::psh_ack(),
                        self.payload.clone(),
                    ));
                }
            }
            3 => {
                let mid = self.payload.len() / 2;
                let rest = self.payload[mid..].to_vec();
                let seq = data_seq.wrapping_add(mid as u32);
                api.raw_send(self.spoofed(seq, srv_ack, TcpFlags::psh_ack(), rest));
            }
            _ => {}
        }
    }
}

/// A routed topology for the TTL sweep (Fig 3b / experiment E7):
///
/// ```text
/// client, Y (cover) - sw1 - R1 - R2(censor+mvr taps) - R3 - sw2 - mserver
/// ```
///
/// Replies from `mserver` toward Y cross three TTL-decrementing routers;
/// a reply TTL of exactly 3 passes the taps at R2 and dies at R1.
pub struct RoutedMimicryNet {
    /// The simulator.
    pub sim: underradar_netsim::Simulator,
    /// The measurement client node.
    pub client: underradar_netsim::NodeId,
    /// The spoofed neighbor node.
    pub cover: underradar_netsim::NodeId,
    /// The off-path censor (tapped at R2).
    pub censor: underradar_netsim::NodeId,
    /// The surveillance system (tapped at R2).
    pub surveillance: underradar_netsim::NodeId,
    /// The controlled server node.
    pub mserver: underradar_netsim::NodeId,
    /// Client address.
    pub client_ip: Ipv4Addr,
    /// Neighbor address used as spoof source.
    pub cover_ip: Ipv4Addr,
    /// Server address.
    pub mserver_ip: Ipv4Addr,
}

impl RoutedMimicryNet {
    /// Number of router hops a server reply must survive to reach the
    /// taps at R2 (inclusive).
    pub const HOPS_TO_TAP: u8 = 2;
    /// Number of router hops from the server to the cover client.
    pub const HOPS_TO_COVER: u8 = 3;

    /// Build the routed network, deriving the surveillance ruleset from
    /// the policy.
    pub fn build(seed: u64, policy: underradar_censor::CensorPolicy) -> RoutedMimicryNet {
        use underradar_netsim::addr::Cidr;
        use underradar_surveil::system::default_surveillance_rules;

        let home = Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 8);
        let rules = default_surveillance_rules(home, &policy.dns_blocked, &policy.keywords, None);
        Self::build_with_rules(seed, policy, rules)
    }

    /// Build the routed network with a pre-parsed surveillance ruleset
    /// (lets campaigns cache the ruleset per policy across trials).
    pub fn build_with_rules(
        seed: u64,
        policy: underradar_censor::CensorPolicy,
        rules: Vec<underradar_ids::rule::Rule>,
    ) -> RoutedMimicryNet {
        use underradar_censor::TapCensor;
        use underradar_netsim::addr::Cidr;
        use underradar_netsim::host::Host;
        use underradar_netsim::link::LinkConfig;
        use underradar_netsim::switch::Switch;
        use underradar_netsim::topology::TopologyBuilder;
        use underradar_surveil::system::{SurveillanceConfig, SurveillanceNode};

        let client_ip = Ipv4Addr::new(10, 0, 1, 2);
        let cover_ip = Ipv4Addr::new(10, 0, 1, 77);
        let mserver_ip = Ipv4Addr::new(198, 51, 100, 200);
        let home = Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 8);
        let world = Cidr::new(Ipv4Addr::new(198, 51, 100, 0), 24);

        let mut topo = TopologyBuilder::new(seed);
        topo.enable_capture();
        let client = topo.add_host(Host::new("client", client_ip));
        let cover = topo.add_host(Host::new("neighbor-y", cover_ip));
        let mut mserver_host = Host::new("mserver", mserver_ip);
        // The mimic server task consumes everything addressed to its port;
        // anything else would draw kernel RSTs that confuse the traces.
        mserver_host.set_respond_rst(false);
        let mserver = topo.add_host(mserver_host);

        let censor = topo.add_node(Box::new(TapCensor::new("censor", policy.clone())));
        let surveillance = topo.add_node(Box::new(SurveillanceNode::new(
            "mvr",
            SurveillanceConfig::with_rules(rules),
        )));

        let sw1 = topo.add_switch(Switch::new("sw1"));
        let r1 = topo.add_switch(Switch::router("r1", Ipv4Addr::new(192, 0, 2, 1)));
        let r2 = topo.add_switch(Switch::router("r2", Ipv4Addr::new(192, 0, 2, 2)));
        let r3 = topo.add_switch(Switch::router("r3", Ipv4Addr::new(192, 0, 2, 3)));
        let sw2 = topo.add_switch(Switch::new("sw2"));

        topo.attach_host(client, client_ip, sw1, LinkConfig::default())
            .expect("client");
        topo.attach_host(cover, cover_ip, sw1, LinkConfig::default())
            .expect("cover");
        topo.attach_host(mserver, mserver_ip, sw2, LinkConfig::default())
            .expect("mserver");
        topo.attach_tap(censor, r2, LinkConfig::ideal())
            .expect("censor tap");
        topo.attach_tap(surveillance, r2, LinkConfig::ideal())
            .expect("mvr tap");

        let (s1_up, r1_down) = topo.trunk(sw1, r1, LinkConfig::default()).expect("sw1-r1");
        let (r1_up, r2_down) = topo.trunk(r1, r2, LinkConfig::default()).expect("r1-r2");
        let (r2_up, r3_down) = topo.trunk(r2, r3, LinkConfig::default()).expect("r2-r3");
        let (r3_up, s2_down) = topo.trunk(r3, sw2, LinkConfig::default()).expect("r3-sw2");

        topo.route(sw1, world, s1_up);
        topo.route(r1, world, r1_up);
        topo.route(r1, home, r1_down);
        topo.route(r2, world, r2_up);
        topo.route(r2, home, r2_down);
        topo.route(r3, world, r3_up);
        topo.route(r3, home, r3_down);
        topo.route(sw2, home, s2_down);

        RoutedMimicryNet {
            sim: topo.finish(),
            client,
            cover,
            censor,
            surveillance,
            mserver,
            client_ip,
            cover_ip,
            mserver_ip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use underradar_censor::{CensorPolicy, TapCensor};
    use underradar_netsim::host::Host;
    use underradar_netsim::{SimDuration, SimTime};

    const PORT: u16 = 7443;
    const ISS: u32 = 0xaa55_aa55;

    fn run(
        policy: CensorPolicy,
        reply_ttl: Option<u8>,
        payload: &[u8],
        split: bool,
    ) -> RoutedMimicryNet {
        let mut net = RoutedMimicryNet::build(3, policy);
        let server = MimicServer::new(PORT, ISS, reply_ttl);
        net.sim
            .node_mut::<Host>(net.mserver)
            .expect("mserver")
            .spawn_task_at(SimTime::ZERO, Box::new(server));
        let mut client = StatefulMimicry::new(net.cover_ip, net.mserver_ip, PORT, ISS, payload);
        if split {
            client = client.with_split_payload();
        }
        net.sim
            .node_mut::<Host>(net.client)
            .expect("client")
            .spawn_task_at(SimTime::ZERO, Box::new(client));
        net.sim.run_for(SimDuration::from_secs(10)).expect("run");
        net
    }

    fn server_of(net: &RoutedMimicryNet) -> &MimicServer {
        net.sim
            .node_ref::<Host>(net.mserver)
            .expect("mserver")
            .task_ref::<MimicServer>(0)
            .expect("server task")
    }

    #[test]
    fn ttl_limited_flow_completes_without_replay() {
        let net = run(
            CensorPolicy::new(),
            Some(RoutedMimicryNet::HOPS_TO_COVER), // dies after the taps, before Y
            b"GET /innocuous HTTP/1.0\r\n\r\n",
            false,
        );
        let server = server_of(&net);
        assert!(server.saw_syn());
        assert!(
            !server.was_reset(),
            "Y never saw the SYN/ACK, so no RST: {:?}",
            server.events
        );
        assert_eq!(server.received, b"GET /innocuous HTTP/1.0\r\n\r\n");
        assert_eq!(server.verdict(), Verdict::Reachable);
        // And the cover host truly received nothing.
        let cover = net.sim.node_ref::<Host>(net.cover).expect("cover");
        assert_eq!(cover.counters().tcp_in, 0);
        assert_eq!(cover.counters().rst_sent, 0);
    }

    #[test]
    fn unlimited_ttl_triggers_the_replay_problem() {
        let net = run(CensorPolicy::new(), None, b"GET /x HTTP/1.0\r\n\r\n", false);
        let server = server_of(&net);
        assert!(
            server.was_reset(),
            "Y's kernel RST killed the flow: {:?}",
            server.events
        );
        let cover = net.sim.node_ref::<Host>(net.cover).expect("cover");
        assert!(
            cover.counters().rst_sent >= 1,
            "the neighbor answered the stray SYN/ACK"
        );
    }

    #[test]
    fn keyword_censorship_detected_from_server_side() {
        let policy = CensorPolicy::new().block_keyword("falun");
        let net = run(
            policy,
            Some(RoutedMimicryNet::HOPS_TO_COVER),
            b"GET /falun HTTP/1.0\r\n\r\n",
            false,
        );
        let server = server_of(&net);
        assert!(
            server.was_reset(),
            "censor injected RST at the flow: {:?}",
            server.events
        );
        assert_eq!(server.verdict(), Verdict::Censored(Mechanism::RstInjection));
        let censor = net.sim.node_ref::<TapCensor>(net.censor).expect("censor");
        assert_eq!(censor.stats().rst_injections, 1);
        // Ground truth: the censor attributes the action to the *spoofed*
        // neighbor, not the measurement client.
        assert_eq!(censor.actions()[0].client, net.cover_ip);
    }

    #[test]
    fn split_keyword_still_censored_thanks_to_reassembly() {
        let policy = CensorPolicy::new().block_keyword("falun");
        let net = run(
            policy,
            Some(RoutedMimicryNet::HOPS_TO_COVER),
            b"GET /falun HTTP/1.0\r\n\r\n",
            true,
        );
        let server = server_of(&net);
        assert!(server.was_reset(), "{:?}", server.events);
    }

    #[test]
    fn uncensored_keyword_flow_reads_reachable() {
        let policy = CensorPolicy::new().block_keyword("falun");
        let net = run(
            policy,
            Some(RoutedMimicryNet::HOPS_TO_COVER),
            b"GET /weather HTTP/1.0\r\n\r\n",
            false,
        );
        let server = server_of(&net);
        assert_eq!(server.verdict(), Verdict::Reachable);
        let censor = net.sim.node_ref::<TapCensor>(net.censor).expect("censor");
        assert_eq!(censor.stats().rst_injections, 0);
    }

    #[test]
    fn too_small_ttl_never_reaches_the_taps() {
        // Reply TTL below the tap distance: the monitors never see the
        // SYN/ACK, so a censor cannot even observe the flow's reverse path.
        let net = run(
            CensorPolicy::new(),
            Some(1),
            b"GET /x HTTP/1.0\r\n\r\n",
            false,
        );
        let cap = net.sim.capture().expect("capture");
        let synacks_at_tap = cap
            .records()
            .iter()
            .filter(|r| {
                r.to_node == net.censor
                    && r.packet
                        .as_tcp()
                        .map(|t| t.flags.has_syn() && t.flags.has_ack())
                        .unwrap_or(false)
            })
            .count();
        assert_eq!(synacks_at_tap, 0, "SYN/ACK died before the tap");
        // The flow still "works" from the server's blind perspective.
        let server = server_of(&net);
        assert!(!server.received.is_empty());
    }

    #[test]
    fn surveillance_attributes_the_neighbor_not_the_client() {
        let policy = CensorPolicy::new().block_keyword("falun");
        let net = run(
            policy,
            Some(RoutedMimicryNet::HOPS_TO_COVER),
            b"GET /falun HTTP/1.0\r\n\r\n",
            false,
        );
        use underradar_surveil::system::SurveillanceNode;
        let surv = net
            .sim
            .node_ref::<SurveillanceNode>(net.surveillance)
            .expect("surveillance")
            .system();
        assert_eq!(
            surv.alerts_for(net.client_ip),
            0,
            "nothing points at the client"
        );
        // The keyword rule fired — on the spoofed source.
        assert!(surv.alerts_for(net.cover_ip) > 0);
    }
}
