//! Method #3 — (part of) a DDoS attack (§3.1).
//!
//! "DDoS attacks consume a small amount of resources from a large number
//! of hosts ... Repeated requests are also advantageous because we can
//! treat each request as a measurement sample and better determine how
//! content is being censored."
//!
//! The probe issues a burst of HTTP GETs to the target — enough volume
//! that the MVR's rate classifier files the source under DDoS and discards
//! it — and each request's fate (200 / RST / timeout) is one measurement
//! sample. Aggregating samples separates transient loss from systematic
//! interference.

use std::net::Ipv4Addr;

use underradar_netsim::host::{ConnId, HostApi, HostTask};
use underradar_netsim::stack::tcp::TcpEvent;
use underradar_netsim::time::SimDuration;
use underradar_protocols::http::{HttpRequest, HttpResponse};

use crate::probe::{Evidence, Probe};
use crate::verdict::{Mechanism, Verdict};

const TIMER_NEXT_SAMPLE: u64 = 1;

/// The fate of one request sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleOutcome {
    /// Got an HTTP response with this status.
    Status(u16),
    /// Connection reset.
    Reset,
    /// Connection refused.
    Refused,
    /// Timed out.
    TimedOut,
}

/// Sample counts by outcome class (named replacement for the old
/// `(ok, reset, refused, timeout)` tuple).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DdosTally {
    /// The server answered with any HTTP status (not network censorship).
    pub ok: usize,
    /// Connection reset.
    pub reset: usize,
    /// Connection refused.
    pub refused: usize,
    /// Timed out.
    pub timed_out: usize,
}

impl DdosTally {
    /// Total samples counted.
    pub fn total(&self) -> usize {
        self.ok + self.reset + self.refused + self.timed_out
    }
}

/// An HTTP-flood measurement of one target.
pub struct DdosProbe {
    target: Ipv4Addr,
    host_header: String,
    path: String,
    samples_wanted: usize,
    pace: SimDuration,
    current: Option<ConnId>,
    buf: Vec<u8>,
    /// Outcome of each sample, in order.
    pub samples: Vec<SampleOutcome>,
    /// Extra attempts granted to samples that time out.
    retries: u32,
    retries_used: u32,
}

impl DdosProbe {
    /// Fire `samples` GETs for `path` at `target`.
    pub fn new(target: Ipv4Addr, host_header: &str, path: &str, samples: usize) -> DdosProbe {
        DdosProbe {
            target,
            host_header: host_header.to_string(),
            path: path.to_string(),
            samples_wanted: samples,
            pace: SimDuration::from_millis(50),
            current: None,
            buf: Vec::new(),
            samples: Vec::new(),
            retries: 0,
            retries_used: 0,
        }
    }

    /// Adjust request pacing (builder style).
    pub fn with_pace(mut self, pace: SimDuration) -> DdosProbe {
        self.pace = pace;
        self
    }

    /// Extra attempts for samples that time out (builder style; like the
    /// scan method's retry rounds, this keeps random loss from reading as
    /// censorship). Default 0: every outcome is recorded as observed.
    pub fn with_retries(mut self, retries: u32) -> DdosProbe {
        self.retries = retries;
        self
    }

    /// Sample counts by outcome class.
    pub fn tally(&self) -> DdosTally {
        let mut t = DdosTally::default();
        for s in &self.samples {
            match s {
                // Any HTTP status means the server answered; an error page
                // is not network censorship.
                SampleOutcome::Status(_) => t.ok += 1,
                SampleOutcome::Reset => t.reset += 1,
                SampleOutcome::Refused => t.refused += 1,
                SampleOutcome::TimedOut => t.timed_out += 1,
            }
        }
        t
    }

    fn fire(&mut self, api: &mut HostApi<'_, '_>) {
        if Probe::is_finished(self) {
            return;
        }
        self.buf.clear();
        self.current = Some(api.tcp_connect(self.target, 80));
    }

    fn record(&mut self, api: &mut HostApi<'_, '_>, outcome: SampleOutcome) {
        self.current = None;
        if outcome == SampleOutcome::TimedOut && self.retries_used < self.retries {
            // Re-attempt instead of recording: a lone timeout is more
            // likely loss than censorship.
            self.retries_used += 1;
            api.set_timer(self.pace, TIMER_NEXT_SAMPLE);
            return;
        }
        self.samples.push(outcome);
        if !Probe::is_finished(self) {
            api.set_timer(self.pace, TIMER_NEXT_SAMPLE);
        }
    }
}

impl Probe for DdosProbe {
    fn label(&self) -> &'static str {
        "ddos"
    }

    /// Whether all samples completed.
    fn is_finished(&self) -> bool {
        self.samples.len() >= self.samples_wanted
    }

    /// Aggregate verdict over the samples: systematic interference must
    /// dominate the sample set, not appear once.
    fn verdict(&self) -> Verdict {
        if self.samples.is_empty() {
            return Verdict::Inconclusive("no samples completed".to_string());
        }
        let n = self.samples.len() as f64;
        let t = self.tally();
        if t.ok as f64 / n >= 0.8 {
            return Verdict::Reachable;
        }
        if t.reset as f64 / n >= 0.5 {
            return Verdict::Censored(Mechanism::RstInjection);
        }
        if t.timed_out as f64 / n >= 0.5 {
            return Verdict::Censored(Mechanism::Blackhole);
        }
        if t.refused as f64 / n >= 0.5 {
            return Verdict::Censored(Mechanism::PortBlocked);
        }
        Verdict::Inconclusive(format!(
            "mixed outcomes: {} ok / {} reset / {} refused / {} timeout",
            t.ok, t.reset, t.refused, t.timed_out
        ))
    }

    fn evidence(&self) -> Evidence {
        let t = self.tally();
        vec![
            ("samples", self.samples.len().to_string()),
            ("ok", t.ok.to_string()),
            ("reset", t.reset.to_string()),
            ("refused", t.refused.to_string()),
            ("timed_out", t.timed_out.to_string()),
            ("retries_used", self.retries_used.to_string()),
        ]
    }
}

impl HostTask for DdosProbe {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        self.fire(api);
    }

    fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, event: TcpEvent) {
        if Some(conn) != self.current {
            return;
        }
        match event {
            TcpEvent::Connected => {
                let req = HttpRequest::get(&self.host_header, &self.path)
                    .with_header("User-Agent", "Mozilla/5.0");
                api.tcp_send(conn, &req.to_wire());
            }
            TcpEvent::Data(d) => {
                self.buf.extend_from_slice(&d);
                if let Ok(resp) = HttpResponse::parse(&self.buf) {
                    api.tcp_abort(conn); // floods don't linger
                    self.record(api, SampleOutcome::Status(resp.status));
                }
            }
            TcpEvent::Reset => self.record(api, SampleOutcome::Reset),
            TcpEvent::Refused => self.record(api, SampleOutcome::Refused),
            TcpEvent::TimedOut => self.record(api, SampleOutcome::TimedOut),
            _ => {}
        }
    }

    fn on_timer(&mut self, api: &mut HostApi<'_, '_>, token: u64) {
        if token == TIMER_NEXT_SAMPLE {
            self.fire(api);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::risk::RiskReport;
    use crate::testbed::{Testbed, TestbedConfig};
    use underradar_censor::CensorPolicy;
    use underradar_netsim::addr::Cidr;
    use underradar_netsim::time::SimTime;

    fn run_ddos(policy: CensorPolicy, path: &str, samples: usize) -> (Testbed, usize) {
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            ..TestbedConfig::default()
        });
        let target = tb.target("youtube.com").expect("t").web_ip;
        let probe = DdosProbe::new(target, "youtube.com", path, samples);
        let idx = tb.spawn_on_client(SimTime::ZERO, Box::new(probe));
        tb.run_secs(120);
        (tb, idx)
    }

    #[test]
    fn clean_target_all_samples_ok() {
        let (tb, idx) = run_ddos(CensorPolicy::new(), "/watch", 20);
        let probe = tb.client_task::<DdosProbe>(idx).expect("probe");
        assert!(probe.is_finished());
        assert_eq!(
            probe.tally(),
            DdosTally {
                ok: 20,
                reset: 0,
                refused: 0,
                timed_out: 0
            }
        );
        assert_eq!(probe.tally().total(), 20);
        assert_eq!(probe.verdict(), Verdict::Reachable);
    }

    #[test]
    fn keyword_censored_path_resets_every_sample() {
        let policy = CensorPolicy::new().block_keyword("falun");
        let (tb, idx) = run_ddos(policy, "/falun-gong", 10);
        let probe = tb.client_task::<DdosProbe>(idx).expect("probe");
        assert!(probe.tally().reset >= 5, "resets: {:?}", probe.samples);
        assert_eq!(probe.verdict(), Verdict::Censored(Mechanism::RstInjection));
    }

    #[test]
    fn blackholed_target_times_out_consistently() {
        let target = crate::testbed::TargetSite::numbered("youtube.com", 1).web_ip;
        let policy = CensorPolicy::new().block_ip(Cidr::host(target));
        let (tb, idx) = run_ddos(policy, "/", 5);
        let probe = tb.client_task::<DdosProbe>(idx).expect("probe");
        assert_eq!(probe.verdict(), Verdict::Censored(Mechanism::Blackhole));
    }

    #[test]
    fn flood_evades_surveillance_once_classified_ddos() {
        // A large burst: the rate classifier files the source as a DDoS
        // participant, and the class is discarded.
        let (tb, idx) = run_ddos(CensorPolicy::new(), "/watch", 60);
        let probe = tb.client_task::<DdosProbe>(idx).expect("probe");
        let report = RiskReport::evaluate(&tb, &probe.verdict());
        assert!(report.evades(), "{}", report.summary());
        let mvr = tb.surveillance().mvr();
        let ddos_class = mvr
            .volumes()
            .iter()
            .find(|(c, _)| *c == underradar_surveil::TrafficClass::DdosSource)
            .map(|(_, v)| v.packets)
            .unwrap_or(0);
        assert!(ddos_class > 0, "some packets were classified as DDoS");
    }

    #[test]
    fn per_sample_records_kept() {
        let (tb, idx) = run_ddos(CensorPolicy::new(), "/watch", 7);
        let probe = tb.client_task::<DdosProbe>(idx).expect("probe");
        assert_eq!(probe.samples.len(), 7);
        assert!(probe
            .samples
            .iter()
            .all(|s| matches!(s, SampleOutcome::Status(200))));
    }

    #[test]
    fn verdict_logic_on_synthetic_tallies() {
        let mut p = DdosProbe::new(Ipv4Addr::new(1, 2, 3, 4), "h", "/", 10);
        assert!(matches!(p.verdict(), Verdict::Inconclusive(_)));
        p.samples = vec![SampleOutcome::Reset; 6]
            .into_iter()
            .chain(vec![SampleOutcome::Status(200); 4])
            .collect();
        assert_eq!(p.verdict(), Verdict::Censored(Mechanism::RstInjection));
        p.samples = vec![SampleOutcome::TimedOut; 3]
            .into_iter()
            .chain(vec![SampleOutcome::Reset; 3])
            .chain(vec![SampleOutcome::Status(200); 4])
            .collect();
        assert!(
            matches!(p.verdict(), Verdict::Inconclusive(_)),
            "no signal dominates"
        );
    }
}
