//! Method #2 — spam (§3.1).
//!
//! "We send spam to (and, hence, perform MX lookups for) censored domains
//! as a stealthy way to measure DNS and IP censorship. To perform a
//! measurement, we perform an MX lookup for a domain's mail server, then
//! look up the mail server's A record. ... If the mail server lookup
//! succeeds, we initiate an SMTP connection with the IP address and send a
//! spam message."
//!
//! Detection signals:
//! * the GFC answers **MX queries with bogus A records** (validated by the
//!   paper against twitter.com/youtube.com) — an MX question answered with
//!   only A data is flagged as injection;
//! * conflicting responses to the same query betray a race with the real
//!   resolver;
//! * SMTP connect failures distinguish IP/port blocking.

use std::net::Ipv4Addr;

use underradar_netsim::host::{ConnId, HostApi, HostTask};
use underradar_netsim::stack::tcp::TcpEvent;
use underradar_netsim::time::SimDuration;
use underradar_protocols::dns::{DnsMessage, DnsName, QType, Rcode, RecordData};
use underradar_protocols::smtp::SmtpClientMachine;
use underradar_spam::measurement_spam;

use crate::probe::{Evidence, Probe};
use crate::verdict::{Mechanism, Verdict};

const TIMER_DNS_TIMEOUT: u64 = 1;

const MX_QUERY_ID: u16 = 0x00aa;
const A_QUERY_ID: u16 = 0x00ab;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    MxLookup,
    ALookup,
    Smtp,
    Done,
}

/// One DNS observation (kept for post-run analysis).
#[derive(Debug, Clone)]
pub struct DnsObservation {
    /// Which query it answered (MX or A id).
    pub query_id: u16,
    /// A records in the response.
    pub a_records: Vec<Ipv4Addr>,
    /// MX exchanges in the response.
    pub mx_records: Vec<DnsName>,
    /// Whether the response carried A data for an MX question.
    pub a_for_mx: bool,
}

/// A spam-cloaked measurement of one domain.
pub struct SpamProbe {
    domain: DnsName,
    resolver: Ipv4Addr,
    /// Message variation index (campaigns vary their templates).
    msg_index: u64,
    phase: Phase,
    dns_port: Option<u16>,
    /// Everything DNS sent back.
    pub observations: Vec<DnsObservation>,
    exchange: Option<DnsName>,
    mx_ip: Option<Ipv4Addr>,
    conn: Option<ConnId>,
    machine: Option<SmtpClientMachine>,
    /// Whether the spam message was accepted by the MX.
    pub delivered: bool,
    got_reset: bool,
    timed_out: bool,
    refused: bool,
    nxdomain: bool,
    dns_timeout: bool,
}

impl SpamProbe {
    /// Probe `domain` through `resolver`; `msg_index` varies the template.
    pub fn new(domain: &DnsName, resolver: Ipv4Addr, msg_index: u64) -> SpamProbe {
        SpamProbe {
            domain: domain.clone(),
            resolver,
            msg_index,
            phase: Phase::MxLookup,
            dns_port: None,
            observations: Vec::new(),
            exchange: None,
            mx_ip: None,
            conn: None,
            machine: None,
            delivered: false,
            got_reset: false,
            timed_out: false,
            refused: false,
            nxdomain: false,
            dns_timeout: false,
        }
    }

    fn observe(&mut self, resp: &DnsMessage) -> DnsObservation {
        let a_records = resp.a_records();
        let mx_records: Vec<DnsName> = resp
            .answers
            .iter()
            .filter_map(|r| match &r.data {
                RecordData::Mx { exchange, .. } => Some(exchange.clone()),
                _ => None,
            })
            .collect();
        DnsObservation {
            query_id: resp.id,
            a_for_mx: resp.id == MX_QUERY_ID && mx_records.is_empty() && !a_records.is_empty(),
            a_records,
            mx_records,
        }
    }
}

impl Probe for SpamProbe {
    fn label(&self) -> &'static str {
        "spam"
    }

    /// Finished once any terminal signal arrived: delivery, an SMTP
    /// failure, an injection tell, or a DNS dead end.
    fn is_finished(&self) -> bool {
        self.delivered
            || self.got_reset
            || self.timed_out
            || self.refused
            || self.nxdomain
            || self.dns_timeout
            || self.observations.iter().any(|o| o.a_for_mx)
    }

    /// The measurement's conclusion.
    fn verdict(&self) -> Verdict {
        // Injection tells, in order of strength.
        if self.observations.iter().any(|o| o.a_for_mx) {
            return Verdict::Censored(Mechanism::DnsPoison);
        }
        // NXDOMAIN racing a real answer for the same query: forged denial.
        if self.nxdomain && !self.observations.is_empty() {
            return Verdict::Censored(Mechanism::DnsPoison);
        }
        let conflicting = self
            .observations
            .iter()
            .filter(|o| o.query_id == A_QUERY_ID)
            .map(|o| &o.a_records)
            .collect::<Vec<_>>();
        if conflicting.len() > 1 && conflicting.windows(2).any(|w| w[0] != w[1]) {
            return Verdict::Censored(Mechanism::DnsPoison);
        }
        if self.delivered {
            return Verdict::Reachable;
        }
        if self.got_reset {
            return Verdict::Censored(Mechanism::RstInjection);
        }
        if self.timed_out {
            return Verdict::Censored(Mechanism::Blackhole);
        }
        if self.refused {
            return Verdict::Censored(Mechanism::PortBlocked);
        }
        if self.nxdomain || self.dns_timeout {
            return Verdict::Inconclusive(
                "mail server lookup failed (possible blackholed mail, §3.1 confounder)".to_string(),
            );
        }
        Verdict::Inconclusive("measurement incomplete".to_string())
    }

    fn evidence(&self) -> Evidence {
        vec![
            ("dns_observations", self.observations.len().to_string()),
            (
                "a_for_mx",
                self.observations.iter().any(|o| o.a_for_mx).to_string(),
            ),
            ("delivered", self.delivered.to_string()),
            ("got_reset", self.got_reset.to_string()),
            ("timed_out", self.timed_out.to_string()),
            ("refused", self.refused.to_string()),
            ("nxdomain", self.nxdomain.to_string()),
            ("dns_timeout", self.dns_timeout.to_string()),
        ]
    }
}

impl HostTask for SpamProbe {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        let port = api.udp_bind(0).unwrap_or(5353);
        self.dns_port = Some(port);
        let q = DnsMessage::query(MX_QUERY_ID, self.domain.clone(), QType::Mx);
        api.udp_send(port, self.resolver, 53, q.encode());
        api.set_timer(SimDuration::from_secs(3), TIMER_DNS_TIMEOUT);
    }

    fn on_udp(
        &mut self,
        api: &mut HostApi<'_, '_>,
        local_port: u16,
        _src: Ipv4Addr,
        _src_port: u16,
        payload: &[u8],
    ) {
        if Some(local_port) != self.dns_port {
            return;
        }
        let Ok(resp) = DnsMessage::decode(payload) else {
            return;
        };
        if !resp.is_response {
            return;
        }
        if resp.rcode == Rcode::NxDomain {
            self.nxdomain = true;
            return;
        }
        let obs = self.observe(&resp);
        let advance = obs.clone();
        self.observations.push(obs);

        match self.phase {
            Phase::MxLookup if resp.id == MX_QUERY_ID => {
                if let Some(exchange) = advance.mx_records.first() {
                    self.exchange = Some(exchange.clone());
                    self.phase = Phase::ALookup;
                    let q = DnsMessage::query(A_QUERY_ID, exchange.clone(), QType::A);
                    let port = self.dns_port.unwrap_or(5353);
                    api.udp_send(port, self.resolver, 53, q.encode());
                }
                // An A-only answer to the MX question is recorded as
                // injection evidence; we do not chase the bogus address.
            }
            Phase::ALookup if resp.id == A_QUERY_ID => {
                if let Some(&ip) = advance.a_records.first() {
                    self.mx_ip = Some(ip);
                    self.phase = Phase::Smtp;
                    let msg = measurement_spam(self.msg_index, &self.domain.to_string());
                    self.machine = Some(SmtpClientMachine::new("probe.client", msg));
                    self.conn = Some(api.tcp_connect(ip, 25));
                }
            }
            _ => {}
        }
    }

    fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, event: TcpEvent) {
        if Some(conn) != self.conn {
            return;
        }
        match event {
            TcpEvent::Data(d) => {
                if let Some(machine) = &mut self.machine {
                    let out = machine.on_data(&d);
                    if !out.is_empty() {
                        api.tcp_send(conn, &out);
                    }
                    if machine.is_done() {
                        self.delivered = true;
                        self.phase = Phase::Done;
                        api.tcp_close(conn);
                    }
                }
            }
            TcpEvent::Reset => self.got_reset = true,
            TcpEvent::TimedOut => self.timed_out = true,
            TcpEvent::Refused => self.refused = true,
            _ => {}
        }
    }

    fn on_timer(&mut self, _api: &mut HostApi<'_, '_>, token: u64) {
        if token == TIMER_DNS_TIMEOUT && self.phase == Phase::MxLookup {
            self.dns_timeout = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::risk::RiskReport;
    use crate::testbed::{Testbed, TestbedConfig};
    use underradar_censor::CensorPolicy;
    use underradar_netsim::addr::Cidr;
    use underradar_netsim::time::SimTime;

    fn run_spam(policy: CensorPolicy, domain: &str) -> (Testbed, usize) {
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            ..TestbedConfig::default()
        });
        let d = DnsName::parse(domain).expect("domain");
        let idx = tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(SpamProbe::new(&d, tb.resolver_ip, 0)),
        );
        tb.run_secs(30);
        (tb, idx)
    }

    #[test]
    fn clean_path_delivers_spam_and_reads_reachable() {
        let (tb, idx) = run_spam(CensorPolicy::new(), "twitter.com");
        let probe = tb.client_task::<SpamProbe>(idx).expect("probe");
        assert!(probe.delivered);
        assert_eq!(probe.verdict(), Verdict::Reachable);
        // The spam really landed at the MX.
        let inbox = tb.inbox("twitter.com");
        assert_eq!(inbox.len(), 1);
        assert!(
            underradar_spam::is_spam(&inbox[0]),
            "payload is filter-classified spam"
        );
    }

    #[test]
    fn gfc_dns_injection_detected_via_a_for_mx() {
        // The paper's §3.2.3 validation: bad A responses for MX queries.
        let policy = CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n"));
        let (tb, idx) = run_spam(policy, "twitter.com");
        let probe = tb.client_task::<SpamProbe>(idx).expect("probe");
        assert_eq!(probe.verdict(), Verdict::Censored(Mechanism::DnsPoison));
        assert!(
            probe.observations.iter().any(|o| o.a_for_mx),
            "A-for-MX tell observed"
        );
        assert!(!probe.delivered);
    }

    #[test]
    fn nxdomain_style_censor_detected_via_racing_denial() {
        // ISP-style DNS censorship forges NXDOMAIN; the real resolver's
        // answer still arrives behind it, and the conflict is the tell.
        let policy = CensorPolicy::new()
            .block_domain(&DnsName::parse("twitter.com").expect("n"))
            .with_dns_nxdomain();
        let (tb, idx) = run_spam(policy, "twitter.com");
        let probe = tb.client_task::<SpamProbe>(idx).expect("probe");
        assert_eq!(probe.verdict(), Verdict::Censored(Mechanism::DnsPoison));
    }

    #[test]
    fn blackholed_mx_detected() {
        let mx = crate::testbed::TargetSite::numbered("twitter.com", 0).mx_ip;
        let policy = CensorPolicy::new().block_ip(Cidr::host(mx));
        let (tb, idx) = run_spam(policy, "twitter.com");
        let probe = tb.client_task::<SpamProbe>(idx).expect("probe");
        assert_eq!(probe.verdict(), Verdict::Censored(Mechanism::Blackhole));
    }

    #[test]
    fn smtp_port_blocking_detected() {
        let any = Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 0);
        let policy = CensorPolicy::new().block_port(any, 25);
        let (tb, idx) = run_spam(policy, "twitter.com");
        let probe = tb.client_task::<SpamProbe>(idx).expect("probe");
        // SYNs to port 25 silently dropped -> timeout -> blackhole verdict.
        assert_eq!(probe.verdict(), Verdict::Censored(Mechanism::Blackhole));
    }

    #[test]
    fn spam_probe_verdicts_are_accurate_against_ground_truth() {
        for (policy, domain, expect_censored) in [
            (CensorPolicy::new(), "youtube.com", false),
            (
                CensorPolicy::new().block_domain(&DnsName::parse("youtube.com").expect("n")),
                "youtube.com",
                true,
            ),
        ] {
            let (tb, idx) = run_spam(policy, domain);
            let probe = tb.client_task::<SpamProbe>(idx).expect("probe");
            let report = RiskReport::evaluate(&tb, &probe.verdict());
            assert!(report.verdict_correct, "{domain}: {}", report.summary());
            assert_eq!(probe.verdict().is_censored(), expect_censored);
        }
    }

    #[test]
    fn campaign_style_probing_evades_surveillance() {
        // §3.1's cover argument: "if spammers send traffic to every domain
        // in the .com zone, then they are bound to send traffic to censored
        // domains; and in these cases, the MVR will discard the traffic."
        // Warm up by spamming enough benign domains that the classifier
        // labels the source a spammer, THEN probe the censored one: its
        // lookups and SMTP traffic are discarded before signatures run.
        let policy = CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n"));
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            ..TestbedConfig::default()
        });
        let resolver = tb.resolver_ip;
        for (i, warmup) in ["bbc.com", "example.org", "youtube.com"].iter().enumerate() {
            let d = DnsName::parse(warmup).expect("domain");
            tb.spawn_on_client(
                SimTime::ZERO + SimDuration::from_secs(i as u64),
                Box::new(SpamProbe::new(&d, resolver, i as u64)),
            );
        }
        let measured = DnsName::parse("twitter.com").expect("domain");
        let idx = tb.spawn_on_client(
            SimTime::ZERO + SimDuration::from_secs(10),
            Box::new(SpamProbe::new(&measured, resolver, 99)),
        );
        tb.run_secs(40);
        let probe = tb.client_task::<SpamProbe>(idx).expect("probe");
        assert_eq!(
            probe.verdict(),
            Verdict::Censored(Mechanism::DnsPoison),
            "accuracy kept"
        );
        let report = RiskReport::evaluate(&tb, &probe.verdict());
        assert!(report.evades(), "campaign cover: {}", report.summary());
        assert!(!report.attributed);
        assert!(!report.pursued);
    }

    #[test]
    fn lone_probe_without_campaign_cover_is_attributed() {
        // The contrast case: a single spam probe's MX+A lookups for the
        // censored domain trip the lookup rule twice — without the
        // campaign's cover the client is attributable. (This is the §6
        // point that technique details matter for safety.)
        let policy = CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n"));
        let (tb, idx) = run_spam(policy, "twitter.com");
        let probe = tb.client_task::<SpamProbe>(idx).expect("probe");
        let report = RiskReport::evaluate(&tb, &probe.verdict());
        assert!(!report.evades());
        assert!(report.attributed, "{}", report.summary());
    }
}
