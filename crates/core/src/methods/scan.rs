//! Method #1 — scanning traffic (§3.1).
//!
//! "We can stealthily measure TCP/IP censorship by sending scanning and
//! exploit traffic to potentially censored services ... we start an nmap
//! SYN scan to the most commonly open 1,000 TCP ports ... We conclude that
//! censorship occurs if either (1) the sender does not receive a SYN/ACK;
//! or (2) the sender receives a RST."
//!
//! Implementation: raw SYNs paced across the port list; replies observed
//! through the raw hook. A SYN/ACK marks the port open (the host stack's
//! kernel-style RST then tears the half-open connection down, exactly as
//! nmap relies on); a RST marks it closed; silence marks it filtered.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use underradar_netsim::host::{HostApi, HostTask, RawVerdict};
use underradar_netsim::packet::Packet;
use underradar_netsim::time::SimDuration;
use underradar_netsim::wire::tcp::TcpFlags;

use crate::probe::{Evidence, Probe};
use crate::verdict::{Mechanism, Verdict};

const TIMER_NEXT_PROBE: u64 = 1;
const TIMER_GRACE: u64 = 2;

/// What the scan observed for one port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortState {
    /// SYN/ACK received.
    Open,
    /// RST received.
    Closed,
    /// No answer (dropped somewhere).
    Filtered,
}

/// A SYN scan of one target.
pub struct SynScanProbe {
    target: Ipv4Addr,
    ports: Vec<u16>,
    /// Ports that must be open for the service to function (e.g. 80 for a
    /// web site); censorship is inferred from their state.
    expected_open: Vec<u16>,
    pace: SimDuration,
    next_index: usize,
    base_sport: u16,
    /// Observed state per port (absent = still filtered/unanswered).
    pub results: HashMap<u16, PortState>,
    finished: bool,
    /// Extra rounds re-probing unanswered ports.
    retries: u32,
    round: u32,
}

impl SynScanProbe {
    /// Scan `target` over `ports`, expecting `expected_open` to answer.
    pub fn new(target: Ipv4Addr, ports: Vec<u16>, expected_open: Vec<u16>) -> SynScanProbe {
        SynScanProbe {
            target,
            ports,
            expected_open,
            pace: SimDuration::from_millis(20),
            next_index: 0,
            base_sport: 40000,
            results: HashMap::new(),
            finished: false,
            retries: 1,
            round: 0,
        }
    }

    /// Adjust probe pacing (builder style).
    pub fn with_pace(mut self, pace: SimDuration) -> SynScanProbe {
        self.pace = pace;
        self
    }

    /// Extra probe rounds for unanswered ports (builder style; nmap
    /// retries probes too — this is what keeps random loss from reading as
    /// censorship). Default 1.
    pub fn with_retries(mut self, retries: u32) -> SynScanProbe {
        self.retries = retries;
        self
    }

    /// Final state of one port (filtered if never answered).
    pub fn port_state(&self, port: u16) -> PortState {
        self.results
            .get(&port)
            .copied()
            .unwrap_or(PortState::Filtered)
    }

    fn send_next(&mut self, api: &mut HostApi<'_, '_>) {
        // Skip ports already answered in an earlier round.
        while self.next_index < self.ports.len()
            && self.round > 0
            && self.results.contains_key(&self.ports[self.next_index])
        {
            self.next_index += 1;
        }
        if self.next_index >= self.ports.len() {
            api.set_timer(SimDuration::from_secs(2), TIMER_GRACE);
            return;
        }
        let port = self.ports[self.next_index];
        let sport = self.base_sport.wrapping_add(self.next_index as u16);
        self.next_index += 1;
        let iss = api.rng().next_u32();
        let syn = Packet::tcp(
            api.ip(),
            self.target,
            sport,
            port,
            iss,
            0,
            TcpFlags::syn(),
            vec![],
        );
        api.raw_send(syn);
        api.set_timer(self.pace, TIMER_NEXT_PROBE);
    }

    fn sport_to_port(&self, sport: u16) -> Option<u16> {
        let idx = sport.wrapping_sub(self.base_sport) as usize;
        self.ports.get(idx).copied()
    }
}

impl Probe for SynScanProbe {
    fn label(&self) -> &'static str {
        "scan"
    }

    /// Whether the scan has sent all probes and the grace period elapsed.
    fn is_finished(&self) -> bool {
        self.finished
    }

    /// The measurement's conclusion, per §3.1's rule: an expected-open port
    /// that is closed or filtered means censorship.
    fn verdict(&self) -> Verdict {
        if !self.finished {
            return Verdict::Inconclusive("scan still in progress".to_string());
        }
        if self.expected_open.is_empty() {
            return Verdict::Inconclusive("no expected-open ports configured".to_string());
        }
        let mut any_open = false;
        let mut any_filtered = false;
        let mut any_closed = false;
        for &p in &self.expected_open {
            match self.port_state(p) {
                PortState::Open => any_open = true,
                PortState::Filtered => any_filtered = true,
                PortState::Closed => any_closed = true,
            }
        }
        if any_open && !any_filtered && !any_closed {
            Verdict::Reachable
        } else if any_filtered && !any_open {
            // Everything expected is silent: packets are being dropped.
            Verdict::Censored(Mechanism::Blackhole)
        } else if any_closed && !any_open {
            // RST where a service must exist: injected or forced closed.
            Verdict::Censored(Mechanism::RstInjection)
        } else {
            // Some expected ports open, others blocked: port-level blocking.
            Verdict::Censored(Mechanism::PortBlocked)
        }
    }

    fn evidence(&self) -> Evidence {
        let (mut open, mut closed, mut filtered) = (0usize, 0usize, 0usize);
        for &p in &self.ports {
            match self.port_state(p) {
                PortState::Open => open += 1,
                PortState::Closed => closed += 1,
                PortState::Filtered => filtered += 1,
            }
        }
        vec![
            ("ports_probed", self.ports.len().to_string()),
            ("open", open.to_string()),
            ("closed", closed.to_string()),
            ("filtered", filtered.to_string()),
        ]
    }
}

impl HostTask for SynScanProbe {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        self.send_next(api);
    }

    fn on_raw(&mut self, _api: &mut HostApi<'_, '_>, packet: &Packet) -> RawVerdict {
        if packet.src != self.target {
            return RawVerdict::Continue;
        }
        let Some(seg) = packet.as_tcp() else {
            return RawVerdict::Continue;
        };
        let Some(port) = self.sport_to_port(seg.dst_port) else {
            return RawVerdict::Continue;
        };
        if seg.src_port != port {
            return RawVerdict::Continue;
        }
        if seg.flags.has_syn() && seg.flags.has_ack() {
            self.results.insert(port, PortState::Open);
            // Let the stack see it so the kernel-style RST completes the
            // half-open scan.
            return RawVerdict::Continue;
        }
        if seg.flags.has_rst() {
            self.results.entry(port).or_insert(PortState::Closed);
            return RawVerdict::Consume;
        }
        RawVerdict::Continue
    }

    fn on_timer(&mut self, api: &mut HostApi<'_, '_>, token: u64) {
        match token {
            TIMER_NEXT_PROBE => self.send_next(api),
            TIMER_GRACE => {
                let unanswered = self.ports.iter().any(|p| !self.results.contains_key(p));
                if self.round < self.retries && unanswered {
                    // nmap-style retry round over the silent ports.
                    self.round += 1;
                    self.next_index = 0;
                    self.send_next(api);
                } else {
                    self.finished = true;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::top_ports;
    use crate::risk::RiskReport;
    use crate::testbed::{Testbed, TestbedConfig};
    use underradar_censor::CensorPolicy;
    use underradar_netsim::addr::Cidr;
    use underradar_netsim::time::SimTime;

    fn run_scan(policy: CensorPolicy, ports: Vec<u16>) -> (Testbed, usize) {
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            ..TestbedConfig::default()
        });
        let target = tb.target("twitter.com").expect("t").web_ip;
        let probe = SynScanProbe::new(target, ports, vec![80]);
        let idx = tb.spawn_on_client(SimTime::ZERO, Box::new(probe));
        tb.run_secs(30);
        (tb, idx)
    }

    #[test]
    fn open_port_detected_on_uncensored_target() {
        let (tb, idx) = run_scan(CensorPolicy::new(), vec![80, 443, 22]);
        let scan = tb.client_task::<SynScanProbe>(idx).expect("scan");
        assert!(scan.is_finished());
        assert_eq!(scan.port_state(80), PortState::Open);
        assert_eq!(
            scan.port_state(443),
            PortState::Closed,
            "no listener: host RSTs"
        );
        assert_eq!(scan.port_state(22), PortState::Closed);
        assert_eq!(scan.verdict(), Verdict::Reachable);
    }

    #[test]
    fn blackholed_target_shows_filtered_ports() {
        let target = crate::testbed::TargetSite::numbered("twitter.com", 0).web_ip;
        let policy = CensorPolicy::new().block_ip(Cidr::host(target));
        let (tb, idx) = run_scan(policy, vec![80, 443]);
        let scan = tb.client_task::<SynScanProbe>(idx).expect("scan");
        assert_eq!(scan.port_state(80), PortState::Filtered);
        assert_eq!(scan.verdict(), Verdict::Censored(Mechanism::Blackhole));
    }

    #[test]
    fn port_blocking_detected() {
        let any = Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 0);
        let policy = CensorPolicy::new().block_port(any, 80);
        let (tb, idx) = run_scan(policy, vec![80, 443]);
        let scan = tb.client_task::<SynScanProbe>(idx).expect("scan");
        assert_eq!(scan.port_state(80), PortState::Filtered);
        assert_eq!(scan.verdict(), Verdict::Censored(Mechanism::Blackhole));
    }

    #[test]
    fn scan_evades_surveillance_via_mvr_discard() {
        // Walk enough ports that the classifier labels us a scanner; the
        // MVR then discards the probe traffic before signatures run.
        let ports = top_ports(60);
        let (tb, idx) = run_scan(CensorPolicy::new(), ports);
        let scan = tb.client_task::<SynScanProbe>(idx).expect("scan");
        let report = RiskReport::evaluate(&tb, &scan.verdict());
        assert!(
            report.evades(),
            "scan traffic must not alert: {}",
            report.summary()
        );
        assert!(!report.attributed);
        // And the MVR really did discard scan-class packets.
        let discarded = tb.surveillance().stats().discarded;
        assert!(discarded > 20, "MVR discarded {} packets", discarded);
    }

    #[test]
    fn scan_accuracy_under_censorship_with_evasion() {
        // The paper's two criteria at once: detect blocking AND evade.
        let target = crate::testbed::TargetSite::numbered("twitter.com", 0).web_ip;
        let policy = CensorPolicy::new().block_ip(Cidr::host(target));
        let (tb, idx) = run_scan(policy, top_ports(60));
        let scan = tb.client_task::<SynScanProbe>(idx).expect("scan");
        let verdict = scan.verdict();
        assert!(verdict.is_censored(), "{verdict}");
        let report = RiskReport::evaluate(&tb, &verdict);
        assert!(report.verdict_correct);
        assert!(report.evades());
    }

    #[test]
    fn pacing_is_configurable() {
        let probe = SynScanProbe::new(Ipv4Addr::new(1, 2, 3, 4), vec![80], vec![80])
            .with_pace(SimDuration::from_millis(5));
        assert_eq!(probe.pace, SimDuration::from_millis(5));
        assert_eq!(
            probe.verdict(),
            Verdict::Inconclusive("scan still in progress".to_string())
        );
    }
}
