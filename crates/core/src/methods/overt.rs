//! The overt baseline: an OONI-style direct measurement.
//!
//! This is the state of the art the paper wants to improve on (§1): resolve
//! the target, fetch it, and report the result to a collector. Every step
//! is visible to a user-focused surveillance system — the DNS query names
//! the censored domain, the HTTP request carries it, and the collector
//! upload pins the measurement on the client.

use std::net::Ipv4Addr;

use underradar_netsim::host::{ConnId, HostApi, HostTask};
use underradar_netsim::stack::tcp::TcpEvent;
use underradar_netsim::time::SimDuration;
use underradar_protocols::dns::{DnsMessage, DnsName, QType, Rcode};
use underradar_protocols::http::{HttpRequest, HttpResponse};

use crate::probe::{Evidence, Probe};
use crate::verdict::{Mechanism, Verdict};

const TIMER_DNS_TIMEOUT: u64 = 1;
const TIMER_DONE: u64 = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Resolving,
    Fetching,
    Reporting,
    Done,
}

/// An overt (direct) measurement of one target.
pub struct OvertProbe {
    domain: DnsName,
    resolver: Ipv4Addr,
    collector: Ipv4Addr,
    /// Path to request (include a censored keyword to test keyword
    /// censorship overtly).
    path: String,
    phase: Phase,
    dns_port: Option<u16>,
    /// All DNS responses observed for our query (injection shows up as
    /// conflicting answers).
    pub dns_answers: Vec<Vec<Ipv4Addr>>,
    resolved: Option<Ipv4Addr>,
    http_conn: Option<ConnId>,
    http_buf: Vec<u8>,
    /// HTTP status if a response arrived.
    pub http_status: Option<u16>,
    got_reset: bool,
    timed_out: bool,
    nxdomain: bool,
    /// Whether the report reached the collector.
    pub reported: bool,
    report_conn: Option<ConnId>,
}

impl OvertProbe {
    /// Probe `domain` through `resolver`, reporting to `collector`.
    pub fn new(domain: &DnsName, resolver: Ipv4Addr, collector: Ipv4Addr, path: &str) -> Self {
        OvertProbe {
            domain: domain.clone(),
            resolver,
            collector,
            path: path.to_string(),
            phase: Phase::Resolving,
            dns_port: None,
            dns_answers: Vec::new(),
            resolved: None,
            http_conn: None,
            http_buf: Vec::new(),
            http_status: None,
            got_reset: false,
            timed_out: false,
            nxdomain: false,
            reported: false,
            report_conn: None,
        }
    }

    fn start_fetch(&mut self, api: &mut HostApi<'_, '_>, ip: Ipv4Addr) {
        self.phase = Phase::Fetching;
        self.resolved = Some(ip);
        self.http_conn = Some(api.tcp_connect(ip, 80));
    }

    fn start_report(&mut self, api: &mut HostApi<'_, '_>) {
        self.phase = Phase::Reporting;
        self.report_conn = Some(api.tcp_connect(self.collector, 443));
    }
}

impl Probe for OvertProbe {
    fn label(&self) -> &'static str {
        "overt"
    }

    /// Finished once the collector upload completed (every overt run ends
    /// with a report, whatever the outcome).
    fn is_finished(&self) -> bool {
        self.phase == Phase::Done
    }

    /// The measurement's conclusion.
    fn verdict(&self) -> Verdict {
        // Conflicting DNS answers = injection (first response raced in).
        if self.dns_answers.len() > 1 && self.dns_answers.windows(2).any(|w| w[0] != w[1]) {
            return Verdict::Censored(Mechanism::DnsPoison);
        }
        if self.nxdomain {
            if !self.dns_answers.is_empty() {
                // NXDOMAIN raced a real answer: someone forged the denial.
                return Verdict::Censored(Mechanism::DnsPoison);
            }
            return Verdict::Inconclusive("NXDOMAIN (cannot distinguish censorship)".to_string());
        }
        if self.got_reset {
            return Verdict::Censored(Mechanism::RstInjection);
        }
        if self.http_status.is_some() {
            return Verdict::Reachable;
        }
        if self.timed_out {
            return Verdict::Censored(Mechanism::Blackhole);
        }
        Verdict::Inconclusive("no response collected".to_string())
    }

    fn evidence(&self) -> Evidence {
        vec![
            ("dns_answers", self.dns_answers.len().to_string()),
            (
                "http_status",
                self.http_status.map_or("-".to_string(), |s| s.to_string()),
            ),
            ("nxdomain", self.nxdomain.to_string()),
            ("got_reset", self.got_reset.to_string()),
            ("timed_out", self.timed_out.to_string()),
            ("reported", self.reported.to_string()),
        ]
    }
}

impl HostTask for OvertProbe {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        let port = api.udp_bind(0).unwrap_or(5353);
        self.dns_port = Some(port);
        let query = DnsMessage::query(0x0a11, self.domain.clone(), QType::A);
        api.udp_send(port, self.resolver, 53, query.encode());
        api.set_timer(SimDuration::from_secs(3), TIMER_DNS_TIMEOUT);
    }

    fn on_udp(
        &mut self,
        api: &mut HostApi<'_, '_>,
        local_port: u16,
        _src: Ipv4Addr,
        _src_port: u16,
        payload: &[u8],
    ) {
        if Some(local_port) != self.dns_port {
            return;
        }
        let Ok(resp) = DnsMessage::decode(payload) else {
            return;
        };
        if resp.id != 0x0a11 || !resp.is_response {
            return;
        }
        if resp.rcode == Rcode::NxDomain {
            self.nxdomain = true;
            return;
        }
        let answers = resp.a_records();
        self.dns_answers.push(answers.clone());
        if self.phase == Phase::Resolving {
            if let Some(&ip) = answers.first() {
                self.start_fetch(api, ip);
            }
        }
    }

    fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, event: TcpEvent) {
        if Some(conn) == self.http_conn {
            match event {
                TcpEvent::Connected => {
                    let req = HttpRequest::get(&self.domain.to_string(), &self.path);
                    api.tcp_send(conn, &req.to_wire());
                }
                TcpEvent::Data(d) => {
                    self.http_buf.extend_from_slice(&d);
                    if let Ok(resp) = HttpResponse::parse(&self.http_buf) {
                        self.http_status = Some(resp.status);
                        api.tcp_close(conn);
                        self.start_report(api);
                    }
                }
                TcpEvent::Reset => {
                    self.got_reset = true;
                    self.start_report(api);
                }
                TcpEvent::TimedOut | TcpEvent::Refused => {
                    self.timed_out = true;
                    self.start_report(api);
                }
                _ => {}
            }
        } else if Some(conn) == self.report_conn {
            match event {
                TcpEvent::Connected => {
                    let body = format!(
                        "POST /report HTTP/1.0\r\nHost: collector\r\n\r\n{{\"target\":\"{}\",\"verdict\":\"{}\"}}",
                        self.domain,
                        self.verdict()
                    );
                    api.tcp_send(conn, body.as_bytes());
                }
                TcpEvent::Data(_) => {
                    self.reported = true;
                    api.tcp_close(conn);
                    self.phase = Phase::Done;
                }
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, api: &mut HostApi<'_, '_>, token: u64) {
        match token {
            TIMER_DNS_TIMEOUT if self.phase == Phase::Resolving => {
                // DNS never answered: treat as timeout and still report.
                self.timed_out = true;
                self.start_report(api);
            }
            TIMER_DONE => {}
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{Testbed, TestbedConfig};
    use underradar_censor::CensorPolicy;
    use underradar_netsim::addr::Cidr;
    use underradar_netsim::time::SimTime;

    fn probe_in(policy: CensorPolicy, domain: &str, path: &str) -> (Testbed, usize) {
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            ..TestbedConfig::default()
        });
        let d = DnsName::parse(domain).expect("domain");
        let probe = OvertProbe::new(&d, tb.resolver_ip, tb.collector_ip, path);
        let idx = tb.spawn_on_client(SimTime::ZERO, Box::new(probe));
        tb.run_secs(20);
        (tb, idx)
    }

    #[test]
    fn uncensored_target_reachable_and_reported() {
        let (tb, idx) = probe_in(CensorPolicy::new(), "bbc.com", "/news");
        let probe = tb.client_task::<OvertProbe>(idx).expect("probe");
        assert_eq!(probe.verdict(), Verdict::Reachable);
        assert_eq!(probe.http_status, Some(200));
        assert!(probe.reported, "result uploaded to the collector");
    }

    #[test]
    fn dns_injection_detected_via_conflicting_answers() {
        let policy = CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n"));
        let (tb, idx) = probe_in(policy, "twitter.com", "/");
        let probe = tb.client_task::<OvertProbe>(idx).expect("probe");
        assert_eq!(probe.verdict(), Verdict::Censored(Mechanism::DnsPoison));
        assert!(
            probe.dns_answers.len() >= 2,
            "injected + real answers observed"
        );
    }

    #[test]
    fn keyword_censorship_detected_as_rst() {
        let policy = CensorPolicy::new().block_keyword("falun");
        let (tb, idx) = probe_in(policy, "bbc.com", "/falun");
        let probe = tb.client_task::<OvertProbe>(idx).expect("probe");
        assert_eq!(probe.verdict(), Verdict::Censored(Mechanism::RstInjection));
    }

    #[test]
    fn blackholed_ip_detected_as_timeout() {
        let web = TargetedWeb::bbc();
        let policy = CensorPolicy::new().block_ip(Cidr::host(web));
        let (tb, idx) = probe_in(policy, "bbc.com", "/");
        let probe = tb.client_task::<OvertProbe>(idx).expect("probe");
        assert_eq!(probe.verdict(), Verdict::Censored(Mechanism::Blackhole));
    }

    /// Helper to keep target addressing in one place for tests.
    struct TargetedWeb;
    impl TargetedWeb {
        fn bbc() -> Ipv4Addr {
            crate::testbed::TargetSite::numbered("bbc.com", 10).web_ip
        }
    }

    #[test]
    fn overt_probe_is_caught_by_surveillance() {
        // The headline risk: the overt baseline alerts the surveillance
        // system and attributes the client.
        let policy = CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n"));
        let (tb, _idx) = probe_in(policy, "twitter.com", "/");
        let report = crate::risk::RiskReport::evaluate(
            &tb,
            &tb.client_task::<OvertProbe>(0).expect("p").verdict(),
        );
        assert!(!report.evades(), "overt measurement must not evade");
        assert!(
            report.alerts_on_client >= 2,
            "DNS lookup + collector contact"
        );
        assert!(report.attributed);
        assert_eq!(
            report.anonymity_set,
            Some(1),
            "exactly one suspect: the client"
        );
    }
}
