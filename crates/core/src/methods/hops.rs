//! Hop discovery for TTL calibration (§4.1).
//!
//! "Scanning the network from the server could yield the number of hops
//! between the network boundary and each host, thus making it possible to
//! set reply TTLs so they are dropped after they pass through the
//! surveillance system but before they reach the client."
//!
//! [`HopProbe`] is a traceroute-style prober: TCP SYNs with increasing TTL
//! toward a target. Routers answer expiring probes with ICMP Time
//! Exceeded (identifying each hop); the first TTL whose probe draws a TCP
//! response from the target itself (RST from a closed port or SYN/ACK
//! from an open one) is the hop distance. `reply TTL = hops − 1` is then
//! the largest TTL guaranteed to die before the target.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use underradar_netsim::host::{HostApi, HostTask, RawVerdict};
use underradar_netsim::packet::Packet;
use underradar_netsim::time::SimDuration;
use underradar_netsim::wire::icmp::{IcmpKind, IcmpRepr};
use underradar_netsim::wire::tcp::TcpFlags;

use crate::probe::{Evidence, Probe};
use crate::verdict::Verdict;

const TIMER_NEXT: u64 = 1;
const TIMER_DONE: u64 = 2;
const BASE_SPORT: u16 = 46000;

/// What a probe at one TTL observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopReply {
    /// ICMP Time Exceeded from this router address.
    Router(Ipv4Addr),
    /// A TCP answer from the target itself (it was reached).
    Target,
    /// Nothing came back.
    Silent,
}

/// A traceroute-style hop prober.
pub struct HopProbe {
    target: Ipv4Addr,
    port: u16,
    max_ttl: u8,
    next_ttl: u8,
    pace: SimDuration,
    /// Replies per probed TTL.
    pub replies: BTreeMap<u8, HopReply>,
    finished: bool,
}

impl HopProbe {
    /// Probe toward `(target, port)` with TTLs `1..=max_ttl`.
    pub fn new(target: Ipv4Addr, port: u16, max_ttl: u8) -> HopProbe {
        HopProbe {
            target,
            port,
            max_ttl: max_ttl.max(1),
            next_ttl: 1,
            pace: SimDuration::from_millis(100),
            replies: BTreeMap::new(),
            finished: false,
        }
    }

    /// Adjust probe pacing (builder style).
    pub fn with_pace(mut self, pace: SimDuration) -> HopProbe {
        self.pace = pace;
        self
    }

    /// Hop distance to the target: the smallest TTL whose probe reached it.
    pub fn hops_to_target(&self) -> Option<u8> {
        self.replies
            .iter()
            .find(|(_, r)| **r == HopReply::Target)
            .map(|(ttl, _)| *ttl)
    }

    /// The calibrated reply TTL for stateful mimicry: one less than the
    /// hop distance, so replies die at the last router before the target.
    pub fn calibrated_reply_ttl(&self) -> Option<u8> {
        self.hops_to_target()
            .map(|h| h.saturating_sub(1))
            .filter(|&t| t > 0)
    }

    /// The router addresses discovered, in hop order.
    pub fn path(&self) -> Vec<(u8, Ipv4Addr)> {
        self.replies
            .iter()
            .filter_map(|(ttl, r)| match r {
                HopReply::Router(ip) => Some((*ttl, *ip)),
                _ => None,
            })
            .collect()
    }

    fn send_probe(&mut self, api: &mut HostApi<'_, '_>) {
        if self.next_ttl > self.max_ttl {
            api.set_timer(SimDuration::from_secs(1), TIMER_DONE);
            return;
        }
        let ttl = self.next_ttl;
        self.next_ttl += 1;
        let iss = api.rng().next_u32();
        let probe = Packet::tcp(
            api.ip(),
            self.target,
            BASE_SPORT + u16::from(ttl),
            self.port,
            iss,
            0,
            TcpFlags::syn(),
            vec![],
        )
        .with_ttl(ttl);
        api.raw_send(probe);
        api.set_timer(self.pace, TIMER_NEXT);
    }

    fn ttl_of_sport(sport: u16) -> Option<u8> {
        let delta = sport.wrapping_sub(BASE_SPORT);
        (1..=255).contains(&delta).then_some(delta as u8)
    }
}

impl Probe for HopProbe {
    fn label(&self) -> &'static str {
        "hops"
    }

    /// Whether the sweep completed (all TTLs probed, grace elapsed).
    fn is_finished(&self) -> bool {
        self.finished
    }

    /// Hop discovery is calibration, not a censorship measurement: a
    /// completed sweep that reached the target reads reachable; a silent
    /// target within `max_ttl` cannot be distinguished from a short sweep.
    fn verdict(&self) -> Verdict {
        if !self.finished {
            return Verdict::Inconclusive("hop sweep in progress".to_string());
        }
        if self.hops_to_target().is_some() {
            Verdict::Reachable
        } else {
            Verdict::Inconclusive("target silent within max TTL".to_string())
        }
    }

    fn evidence(&self) -> Evidence {
        vec![
            ("max_ttl", self.max_ttl.to_string()),
            ("routers", self.path().len().to_string()),
            (
                "hops_to_target",
                self.hops_to_target()
                    .map_or("-".to_string(), |h| h.to_string()),
            ),
            (
                "calibrated_reply_ttl",
                self.calibrated_reply_ttl()
                    .map_or("-".to_string(), |t| t.to_string()),
            ),
        ]
    }
}

impl HostTask for HopProbe {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        self.send_probe(api);
    }

    fn on_raw(&mut self, api: &mut HostApi<'_, '_>, packet: &Packet) -> RawVerdict {
        // ICMP Time Exceeded quoting one of our probes.
        if let Some(icmp) = packet.as_icmp() {
            if icmp.kind == IcmpKind::TimeExceeded {
                if let Some((qsrc, qdst)) = IcmpRepr::quoted_addresses(&icmp.payload) {
                    if qsrc == api.ip() && qdst == self.target {
                        // The quoted TCP header holds our sport (bytes 20..22).
                        if let Some(sport_bytes) = icmp.payload.get(20..22) {
                            let sport = u16::from_be_bytes([sport_bytes[0], sport_bytes[1]]);
                            if let Some(ttl) = Self::ttl_of_sport(sport) {
                                self.replies
                                    .entry(ttl)
                                    .or_insert(HopReply::Router(packet.src));
                                return RawVerdict::Consume;
                            }
                        }
                    }
                }
            }
            return RawVerdict::Continue;
        }
        // TCP answer from the target (RST for closed ports, SYN/ACK for
        // open ones): the probe got through.
        if packet.src == self.target {
            if let Some(seg) = packet.as_tcp() {
                if seg.src_port == self.port {
                    if let Some(ttl) = Self::ttl_of_sport(seg.dst_port) {
                        self.replies.entry(ttl).or_insert(HopReply::Target);
                        // Swallow RSTs; let SYN/ACKs fall through so the
                        // stack tears the half-open connection down.
                        if seg.flags.has_rst() {
                            return RawVerdict::Consume;
                        }
                    }
                }
            }
        }
        RawVerdict::Continue
    }

    fn on_timer(&mut self, api: &mut HostApi<'_, '_>, token: u64) {
        match token {
            TIMER_NEXT => self.send_probe(api),
            TIMER_DONE => {
                for ttl in 1..=self.max_ttl {
                    self.replies.entry(ttl).or_insert(HopReply::Silent);
                }
                self.finished = true;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::stateful::RoutedMimicryNet;
    use underradar_censor::CensorPolicy;
    use underradar_netsim::host::Host;
    use underradar_netsim::time::SimTime;

    /// Run a hop probe from the measurement server toward the cover
    /// client in the routed Fig-3b topology (the paper's direction: the
    /// *server* scans toward the network).
    fn probe_from_server(max_ttl: u8) -> RoutedMimicryNet {
        let mut net = RoutedMimicryNet::build(91, CensorPolicy::new());
        let probe = HopProbe::new(net.cover_ip, 33434, max_ttl);
        net.sim
            .node_mut::<Host>(net.mserver)
            .expect("mserver")
            .spawn_task_at(SimTime::ZERO, Box::new(probe));
        net.sim.run_for(SimDuration::from_secs(10)).expect("run");
        net
    }

    fn probe_of(net: &RoutedMimicryNet) -> &HopProbe {
        net.sim
            .node_ref::<Host>(net.mserver)
            .expect("mserver")
            .task_ref::<HopProbe>(0)
            .expect("probe")
    }

    #[test]
    fn discovers_router_path_and_target_distance() {
        let net = probe_from_server(6);
        let probe = probe_of(&net);
        assert!(probe.is_finished());
        // Routers R3, R2, R1 (from the server side) at TTLs 1, 2, 3.
        let path = probe.path();
        assert_eq!(path.len(), 3, "{path:?}");
        assert_eq!(path[0], (1, std::net::Ipv4Addr::new(192, 0, 2, 3)));
        assert_eq!(path[1], (2, std::net::Ipv4Addr::new(192, 0, 2, 2)));
        assert_eq!(path[2], (3, std::net::Ipv4Addr::new(192, 0, 2, 1)));
        // The cover host is 4 hops out (answers the TTL-4 probe with RST).
        assert_eq!(probe.hops_to_target(), Some(4));
    }

    #[test]
    fn calibrated_ttl_matches_the_figure_3b_sweet_spot() {
        let net = probe_from_server(6);
        let probe = probe_of(&net);
        assert_eq!(
            probe.calibrated_reply_ttl(),
            Some(RoutedMimicryNet::HOPS_TO_COVER),
            "discovery agrees with the topology constant"
        );
    }

    #[test]
    fn sweep_too_short_reports_silent_tail() {
        let net = probe_from_server(2);
        let probe = probe_of(&net);
        assert_eq!(probe.hops_to_target(), None);
        assert_eq!(probe.calibrated_reply_ttl(), None);
        assert_eq!(probe.path().len(), 2);
    }

    #[test]
    fn sport_ttl_mapping_roundtrip() {
        for ttl in 1u8..=32 {
            let sport = BASE_SPORT + u16::from(ttl);
            assert_eq!(HopProbe::ttl_of_sport(sport), Some(ttl));
        }
        assert_eq!(HopProbe::ttl_of_sport(BASE_SPORT), None);
        assert_eq!(HopProbe::ttl_of_sport(100), None);
    }
}
