//! Stateless mimicry with IP spoofing (§4.1, Figure 3a).
//!
//! "To collect measurements, we conduct measurements directly from our
//! measurement client while spoofing measurements from other users."
//!
//! Two stateless probes:
//!
//! * [`StatelessDnsMimicry`] — the Fig 3a picture: one *real* DNS query
//!   from the client buried among spoofed copies from cover addresses in
//!   the same AS. All queries look identical to a monitor; responses to
//!   spoofed sources go to the cover hosts (who silently drop them).
//! * [`StatelessSynMimicry`] — IP reachability: spoofed SYNs plus one real
//!   SYN; "if packets are dropped, the SYN/ACK will never arrive,
//!   otherwise, a RST provides cover traffic" (the host stack answers the
//!   unexpected SYN/ACK with a RST, and so do the spoofed neighbors).

use std::net::Ipv4Addr;

use underradar_netsim::host::{HostApi, HostTask, RawVerdict};
use underradar_netsim::packet::Packet;
use underradar_netsim::time::SimDuration;
use underradar_netsim::wire::tcp::TcpFlags;
use underradar_protocols::dns::{DnsMessage, DnsName, QType, Rcode};

use crate::probe::{Evidence, Probe};
use crate::verdict::{Mechanism, Verdict};

const TIMER_DEADLINE: u64 = 1;

/// Spoofed-cover DNS measurement of one name.
pub struct StatelessDnsMimicry {
    domain: DnsName,
    qtype: QType,
    resolver: Ipv4Addr,
    /// Addresses to spoof queries from (picked with
    /// [`underradar_spoof::cover_sources`]).
    cover: Vec<Ipv4Addr>,
    dns_port: Option<u16>,
    /// Responses to *our* real query.
    pub answers: Vec<Vec<Ipv4Addr>>,
    /// Whether any response answered an MX question with A-only data.
    pub a_for_mx: bool,
    nxdomain: bool,
    deadline_passed: bool,
}

impl StatelessDnsMimicry {
    /// Probe `domain` through `resolver`, spoofing from `cover`.
    pub fn new(
        domain: &DnsName,
        qtype: QType,
        resolver: Ipv4Addr,
        cover: Vec<Ipv4Addr>,
    ) -> StatelessDnsMimicry {
        StatelessDnsMimicry {
            domain: domain.clone(),
            qtype,
            resolver,
            cover,
            dns_port: None,
            answers: Vec::new(),
            a_for_mx: false,
            nxdomain: false,
            deadline_passed: false,
        }
    }
}

impl Probe for StatelessDnsMimicry {
    fn label(&self) -> &'static str {
        "stateless-dns"
    }

    /// Finished once any terminal signal arrived: an answer, a denial, or
    /// the response deadline.
    fn is_finished(&self) -> bool {
        self.deadline_passed || self.a_for_mx || self.nxdomain || !self.answers.is_empty()
    }

    /// The measurement's conclusion.
    fn verdict(&self) -> Verdict {
        if self.a_for_mx {
            return Verdict::Censored(Mechanism::DnsPoison);
        }
        if self.answers.len() > 1 && self.answers.windows(2).any(|w| w[0] != w[1]) {
            return Verdict::Censored(Mechanism::DnsPoison);
        }
        if self.nxdomain && !self.answers.is_empty() {
            // Forged denial racing the real answer.
            return Verdict::Censored(Mechanism::DnsPoison);
        }
        if !self.answers.is_empty() {
            return Verdict::Reachable;
        }
        if self.nxdomain {
            return Verdict::Inconclusive("NXDOMAIN".to_string());
        }
        if self.deadline_passed {
            return Verdict::Censored(Mechanism::Blackhole);
        }
        Verdict::Inconclusive("awaiting responses".to_string())
    }

    fn evidence(&self) -> Evidence {
        vec![
            ("cover_sources", self.cover.len().to_string()),
            ("answers", self.answers.len().to_string()),
            ("a_for_mx", self.a_for_mx.to_string()),
            ("nxdomain", self.nxdomain.to_string()),
            ("deadline_passed", self.deadline_passed.to_string()),
        ]
    }
}

impl HostTask for StatelessDnsMimicry {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        let port = api.udp_bind(0).unwrap_or(5353);
        self.dns_port = Some(port);
        // Interleave: spoofed queries surround the real one so ordering
        // carries no signal.
        let half = self.cover.len() / 2;
        for (i, &src) in self.cover.iter().enumerate() {
            let q = DnsMessage::query(0x5000 + i as u16, self.domain.clone(), self.qtype);
            let pkt = Packet::udp(src, self.resolver, port, 53, q.encode());
            api.raw_send(pkt);
            if i + 1 == half {
                let q = DnsMessage::query(0x4242, self.domain.clone(), self.qtype);
                api.udp_send(port, self.resolver, 53, q.encode());
            }
        }
        if self.cover.len() < 2 {
            let q = DnsMessage::query(0x4242, self.domain.clone(), self.qtype);
            api.udp_send(port, self.resolver, 53, q.encode());
        }
        api.set_timer(SimDuration::from_secs(3), TIMER_DEADLINE);
    }

    fn on_udp(
        &mut self,
        _api: &mut HostApi<'_, '_>,
        local_port: u16,
        _src: Ipv4Addr,
        _src_port: u16,
        payload: &[u8],
    ) {
        if Some(local_port) != self.dns_port {
            return;
        }
        let Ok(resp) = DnsMessage::decode(payload) else {
            return;
        };
        if resp.id != 0x4242 || !resp.is_response {
            return;
        }
        if resp.rcode == Rcode::NxDomain {
            self.nxdomain = true;
            return;
        }
        let has_mx = !resp.mx_records().is_empty();
        let a = resp.a_records();
        if self.qtype == QType::Mx && !has_mx && !a.is_empty() {
            self.a_for_mx = true;
        }
        self.answers.push(a);
    }

    fn on_timer(&mut self, _api: &mut HostApi<'_, '_>, token: u64) {
        if token == TIMER_DEADLINE {
            self.deadline_passed = true;
        }
    }
}

/// Spoofed-cover SYN reachability measurement of one (address, port).
pub struct StatelessSynMimicry {
    target: Ipv4Addr,
    port: u16,
    cover: Vec<Ipv4Addr>,
    own_sport: u16,
    /// Whether our real SYN was answered with SYN/ACK.
    pub syn_ack: bool,
    /// Whether our real SYN was answered with RST (closed port).
    pub rst: bool,
    deadline_passed: bool,
}

impl StatelessSynMimicry {
    /// Probe `(target, port)` with spoofed company from `cover`.
    pub fn new(target: Ipv4Addr, port: u16, cover: Vec<Ipv4Addr>) -> StatelessSynMimicry {
        StatelessSynMimicry {
            target,
            port,
            cover,
            own_sport: 41000,
            syn_ack: false,
            rst: false,
            deadline_passed: false,
        }
    }
}

impl Probe for StatelessSynMimicry {
    fn label(&self) -> &'static str {
        "stateless-syn"
    }

    /// Finished once the real SYN drew any answer or the deadline passed.
    fn is_finished(&self) -> bool {
        self.deadline_passed || self.syn_ack || self.rst
    }

    /// The measurement's conclusion.
    fn verdict(&self) -> Verdict {
        if self.syn_ack {
            Verdict::Reachable
        } else if self.rst {
            Verdict::Censored(Mechanism::RstInjection)
        } else if self.deadline_passed {
            Verdict::Censored(Mechanism::Blackhole)
        } else {
            Verdict::Inconclusive("awaiting replies".to_string())
        }
    }

    fn evidence(&self) -> Evidence {
        vec![
            ("cover_sources", self.cover.len().to_string()),
            ("syn_ack", self.syn_ack.to_string()),
            ("rst", self.rst.to_string()),
            ("deadline_passed", self.deadline_passed.to_string()),
        ]
    }
}

impl HostTask for StatelessSynMimicry {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        let iss = api.rng().next_u32();
        for (i, &src) in self.cover.iter().enumerate() {
            let syn = Packet::tcp(
                src,
                self.target,
                41001 + i as u16,
                self.port,
                iss.wrapping_add(i as u32),
                0,
                TcpFlags::syn(),
                vec![],
            );
            api.raw_send(syn);
        }
        let own = Packet::tcp(
            api.ip(),
            self.target,
            self.own_sport,
            self.port,
            iss,
            0,
            TcpFlags::syn(),
            vec![],
        );
        api.raw_send(own);
        api.set_timer(SimDuration::from_secs(3), TIMER_DEADLINE);
    }

    fn on_raw(&mut self, _api: &mut HostApi<'_, '_>, packet: &Packet) -> RawVerdict {
        if packet.src != self.target {
            return RawVerdict::Continue;
        }
        let Some(seg) = packet.as_tcp() else {
            return RawVerdict::Continue;
        };
        if seg.dst_port != self.own_sport || seg.src_port != self.port {
            return RawVerdict::Continue;
        }
        if seg.flags.has_syn() && seg.flags.has_ack() {
            self.syn_ack = true;
            // Let the stack RST it: "a RST provides cover traffic".
            return RawVerdict::Continue;
        }
        if seg.flags.has_rst() {
            self.rst = true;
            return RawVerdict::Consume;
        }
        RawVerdict::Continue
    }

    fn on_timer(&mut self, _api: &mut HostApi<'_, '_>, token: u64) {
        if token == TIMER_DEADLINE {
            self.deadline_passed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::risk::RiskReport;
    use crate::testbed::{Testbed, TestbedConfig};
    use underradar_censor::CensorPolicy;
    use underradar_netsim::addr::Cidr;
    use underradar_netsim::time::SimTime;

    fn dns_mimicry(policy: CensorPolicy, domain: &str, qtype: QType) -> (Testbed, usize) {
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            ..TestbedConfig::default()
        });
        let cover = tb.cover_ips.clone();
        let d = DnsName::parse(domain).expect("domain");
        let probe = StatelessDnsMimicry::new(&d, qtype, tb.resolver_ip, cover);
        let idx = tb.spawn_on_client(SimTime::ZERO, Box::new(probe));
        tb.run_secs(10);
        (tb, idx)
    }

    #[test]
    fn clean_lookup_reachable() {
        let (tb, idx) = dns_mimicry(CensorPolicy::new(), "bbc.com", QType::A);
        let probe = tb.client_task::<StatelessDnsMimicry>(idx).expect("probe");
        assert_eq!(probe.verdict(), Verdict::Reachable);
    }

    #[test]
    fn poisoned_lookup_detected_under_cover() {
        let policy = CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n"));
        let (tb, idx) = dns_mimicry(policy, "twitter.com", QType::A);
        let probe = tb.client_task::<StatelessDnsMimicry>(idx).expect("probe");
        assert_eq!(probe.verdict(), Verdict::Censored(Mechanism::DnsPoison));
    }

    #[test]
    fn cover_inflates_anonymity_set() {
        // The point of Fig 3a: the surveillance system's censored-lookup
        // rule fires for every spoofed source too, so the client hides in
        // a crowd.
        let policy = CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n"));
        let (tb, idx) = dns_mimicry(policy, "twitter.com", QType::A);
        let probe = tb.client_task::<StatelessDnsMimicry>(idx).expect("probe");
        let report = RiskReport::evaluate(&tb, &probe.verdict());
        let cover_count = tb.cover_ips.len();
        assert_eq!(
            report.anonymity_set,
            Some(cover_count + 1),
            "client + all cover sources alerted equally: {}",
            report.summary()
        );
        assert!(report.verdict_correct);
    }

    #[test]
    fn cover_hosts_silently_drop_responses() {
        let (tb, _idx) = dns_mimicry(CensorPolicy::new(), "bbc.com", QType::A);
        // No cover host crashed or answered; their hosts simply dropped
        // the unexpected DNS responses (no sockets bound).
        for &node in &tb.cover {
            let host = tb
                .sim
                .node_ref::<underradar_netsim::Host>(node)
                .expect("cover host");
            assert_eq!(host.counters().rst_sent, 0, "UDP needs no RST");
        }
    }

    fn syn_mimicry(policy: CensorPolicy, port: u16) -> (Testbed, usize) {
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            ..TestbedConfig::default()
        });
        let target = tb.target("twitter.com").expect("t").web_ip;
        let cover = tb.cover_ips.clone();
        let probe = StatelessSynMimicry::new(target, port, cover);
        let idx = tb.spawn_on_client(SimTime::ZERO, Box::new(probe));
        tb.run_secs(10);
        (tb, idx)
    }

    #[test]
    fn syn_reachability_open_port() {
        let (tb, idx) = syn_mimicry(CensorPolicy::new(), 80);
        let probe = tb.client_task::<StatelessSynMimicry>(idx).expect("probe");
        assert!(probe.syn_ack);
        assert_eq!(probe.verdict(), Verdict::Reachable);
    }

    #[test]
    fn syn_reachability_blackholed() {
        let target = crate::testbed::TargetSite::numbered("twitter.com", 0).web_ip;
        let policy = CensorPolicy::new().block_ip(Cidr::host(target));
        let (tb, idx) = syn_mimicry(policy, 80);
        let probe = tb.client_task::<StatelessSynMimicry>(idx).expect("probe");
        assert_eq!(probe.verdict(), Verdict::Censored(Mechanism::Blackhole));
    }

    #[test]
    fn spoofed_neighbors_rst_their_syn_acks() {
        // Fig 3a's cover behaviour: cover hosts receive SYN/ACKs for SYNs
        // they never sent and answer with RSTs — indistinguishable from
        // the client's own kernel behaviour.
        let (tb, _idx) = syn_mimicry(CensorPolicy::new(), 80);
        let rst_count: u64 = tb
            .cover
            .iter()
            .map(|&n| {
                tb.sim
                    .node_ref::<underradar_netsim::Host>(n)
                    .expect("cover host")
                    .counters()
                    .rst_sent
            })
            .sum();
        assert_eq!(
            rst_count,
            tb.cover_ips.len() as u64,
            "every cover host RSTed"
        );
    }
}
