//! Measurement verdicts.

use std::fmt;

/// The censorship mechanism a measurement inferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Connection killed by an injected TCP RST (GFC keyword censorship).
    RstInjection,
    /// DNS answer forged (bad A record, possibly for an MX question).
    DnsPoison,
    /// Packets silently dropped (IP blackhole): SYNs time out.
    Blackhole,
    /// A specific port is blocked while others work.
    PortBlocked,
    /// An HTTP request for a blocked URL was killed.
    UrlBlocked,
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mechanism::RstInjection => "rst-injection",
            Mechanism::DnsPoison => "dns-poison",
            Mechanism::Blackhole => "blackhole",
            Mechanism::PortBlocked => "port-blocked",
            Mechanism::UrlBlocked => "url-blocked",
        };
        f.write_str(s)
    }
}

/// What a measurement concluded about a target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Censorship detected, with the inferred mechanism.
    Censored(Mechanism),
    /// The target was reachable; no interference observed.
    Reachable,
    /// The measurement could not decide (confounders, timeouts without a
    /// baseline, lost samples).
    Inconclusive(String),
}

impl Verdict {
    /// Whether this verdict claims censorship.
    pub fn is_censored(&self) -> bool {
        matches!(self, Verdict::Censored(_))
    }

    /// Whether this verdict claims reachability.
    pub fn is_reachable(&self) -> bool {
        matches!(self, Verdict::Reachable)
    }

    /// The mechanism, if censored.
    pub fn mechanism(&self) -> Option<Mechanism> {
        match self {
            Verdict::Censored(m) => Some(*m),
            _ => None,
        }
    }

    /// Accuracy scoring: does the verdict match the ground truth
    /// "the censor acted / did not act"?
    pub fn correct_against(&self, censored_in_truth: bool) -> bool {
        match self {
            Verdict::Censored(_) => censored_in_truth,
            Verdict::Reachable => !censored_in_truth,
            Verdict::Inconclusive(_) => false,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Censored(m) => write!(f, "CENSORED ({m})"),
            Verdict::Reachable => write!(f, "reachable"),
            Verdict::Inconclusive(why) => write!(f, "inconclusive: {why}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        let c = Verdict::Censored(Mechanism::RstInjection);
        assert!(c.is_censored());
        assert!(!c.is_reachable());
        assert_eq!(c.mechanism(), Some(Mechanism::RstInjection));
        let r = Verdict::Reachable;
        assert!(r.is_reachable());
        assert_eq!(r.mechanism(), None);
        let i = Verdict::Inconclusive("lost".into());
        assert!(!i.is_censored() && !i.is_reachable());
    }

    #[test]
    fn accuracy_scoring() {
        assert!(Verdict::Censored(Mechanism::Blackhole).correct_against(true));
        assert!(!Verdict::Censored(Mechanism::Blackhole).correct_against(false));
        assert!(Verdict::Reachable.correct_against(false));
        assert!(!Verdict::Reachable.correct_against(true));
        assert!(!Verdict::Inconclusive("x".into()).correct_against(true));
        assert!(!Verdict::Inconclusive("x".into()).correct_against(false));
    }

    #[test]
    fn display() {
        assert_eq!(
            Verdict::Censored(Mechanism::DnsPoison).to_string(),
            "CENSORED (dns-poison)"
        );
        assert_eq!(Verdict::Reachable.to_string(), "reachable");
        assert!(Verdict::Inconclusive("few samples".into())
            .to_string()
            .contains("few samples"));
    }
}
