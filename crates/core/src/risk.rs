//! Risk evaluation: the safety half of every experiment.
//!
//! §3.2's success criterion: a measurement succeeds if it "can detect
//! blocking ... without triggering the MVR to log its traffic". The
//! [`RiskReport`] captures that plus the user-focused escalation chain of
//! §2.1 (alert → attribution → pursuit) and §4's anonymity-set framing.

use std::net::Ipv4Addr;

use crate::testbed::Testbed;
use crate::verdict::Verdict;

/// The outcome of one measurement run, on both axes the paper evaluates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RiskReport {
    /// Ground truth: the censor acted during the run.
    pub censor_triggered: bool,
    /// Accuracy: the verdict matches ground truth.
    pub verdict_correct: bool,
    /// Alerts the surveillance system attributed to the client's address.
    pub alerts_on_client: usize,
    /// The client appears in the analyst's triage queue.
    pub attributed: bool,
    /// The client falls within analyst pursuit capacity.
    pub pursued: bool,
    /// Distinct in-home sources the surveillance system would have to
    /// suspect (None when nothing was alerted on). Overt measurement
    /// yields `Some(1)`; cover traffic inflates this.
    pub anonymity_set: Option<usize>,
}

impl RiskReport {
    /// Evaluate a verdict against the testbed's ground truth and
    /// surveillance state.
    pub fn evaluate(tb: &Testbed, verdict: &Verdict) -> RiskReport {
        let censor_triggered = tb.censor_acted();
        let surveillance = tb.surveillance();
        let alerts_on_client = surveillance.alerts_for(tb.client_ip);
        let home = Testbed::home_net();
        let alert_sources: Vec<Ipv4Addr> = surveillance
            .engine()
            .log()
            .all()
            .iter()
            .map(|a| a.src)
            .filter(|s| home.contains(*s))
            .collect();
        let anonymity_set = if alert_sources.is_empty() {
            None
        } else {
            Some(underradar_spoof::anonymity_set(&alert_sources, 32))
        };
        RiskReport {
            censor_triggered,
            verdict_correct: verdict.correct_against(censor_triggered),
            alerts_on_client,
            attributed: surveillance.is_attributed(tb.client_ip),
            pursued: surveillance.is_pursued(tb.client_ip),
            anonymity_set,
        }
    }

    /// The paper's evasion criterion: nothing alerted on the client.
    pub fn evades(&self) -> bool {
        self.alerts_on_client == 0
    }

    /// One-line summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "censor={} correct={} evades={} alerts={} attributed={} pursued={} anonset={}",
            self.censor_triggered,
            self.verdict_correct,
            self.evades(),
            self.alerts_on_client,
            self.attributed,
            self.pursued,
            self.anonymity_set
                .map_or("-".to_string(), |n| n.to_string()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::TestbedConfig;
    use crate::verdict::Mechanism;

    #[test]
    fn quiet_run_evades_trivially() {
        let tb = Testbed::build(TestbedConfig::default());
        let report = RiskReport::evaluate(&tb, &Verdict::Reachable);
        assert!(!report.censor_triggered);
        assert!(report.verdict_correct);
        assert!(report.evades());
        assert!(!report.attributed);
        assert_eq!(report.anonymity_set, None);
        assert!(report.summary().contains("evades=true"));
    }

    #[test]
    fn wrong_verdict_scored_incorrect() {
        let tb = Testbed::build(TestbedConfig::default());
        let report = RiskReport::evaluate(&tb, &Verdict::Censored(Mechanism::Blackhole));
        assert!(
            !report.verdict_correct,
            "claimed censorship where none happened"
        );
    }
}
