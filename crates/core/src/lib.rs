#![warn(missing_docs)]
// Library paths must surface failures as typed errors or documented
// invariant expects — never bare unwraps (test code is exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # underradar-core
//!
//! The paper's contribution: censorship-measurement techniques designed to
//! be hard for a surveillance system to distinguish from innocuous (or
//! already-discarded) traffic, evaluated against reference censorship and
//! surveillance systems in a controlled testbed.
//!
//! ## Measurement methods ([`methods`])
//!
//! | Method | Paper section | Measures | Cover story |
//! |---|---|---|---|
//! | [`methods::overt::OvertProbe`] | baseline (OONI-style) | DNS + HTTP | none — this is what surveillance catches |
//! | [`methods::scan::SynScanProbe`] | §3.1 Method #1 | TCP/IP reachability per port | botnet scanning |
//! | [`methods::spam::SpamProbe`] | §3.1 Method #2 | DNS (MX/A) + IP/SMTP | spam campaign |
//! | [`methods::ddos::DdosProbe`] | §3.1 Method #3 | DNS + IP + HTTP, many samples | one source of a DDoS |
//! | [`methods::stateless::StatelessDnsMimicry`] | §4.1 Fig 3a | DNS / SYN reachability to any destination | every host in the AS |
//! | [`methods::stateful::StatefulMimicry`] | §4.1 Fig 3b | full TCP (keyword censorship) to controlled servers | spoofed flows with TTL-limited replies |
//!
//! ## Supporting pieces
//!
//! * [`probe`] — the unified [`probe::Probe`] trait every method implements:
//!   `label` / `is_finished` / `verdict` / `evidence`, so engines drive all
//!   techniques through one trait-object surface.
//! * [`testbed`] — the Figure-1 reference environment: client, switch with
//!   censor and MVR taps, target services (web/MX/DNS), all on the
//!   deterministic simulator.
//! * [`verdict`] — what a measurement concludes (censored / reachable /
//!   inconclusive, with mechanism).
//! * [`risk`] — the safety side: did the surveillance system log, attribute
//!   or pursue the measurement client, and how large is its anonymity set?
//! * [`ports`] — the top-1000 TCP port list the scan method walks.

pub mod methods;
pub mod ports;
pub mod probe;
pub mod risk;
pub mod testbed;
pub mod verdict;

pub use probe::{Evidence, Probe};
pub use risk::RiskReport;
pub use testbed::{TargetSite, Testbed, TestbedConfig, TestbedTemplate};
pub use verdict::{Mechanism, Verdict};
