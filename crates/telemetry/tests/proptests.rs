//! Property tests for the histogram, driven by the in-tree seeded
//! property harness `netsim::testprop` (a dev-only dependency — the
//! library itself is dependency-free).

use underradar_netsim::testprop;
use underradar_telemetry::{Histogram, BUCKET_COUNT};

fn arbitrary_value(g: &mut testprop::Gen) -> u64 {
    // Mix small values (dense low buckets) with full-range ones.
    if g.bool() {
        u64::from(g.u16())
    } else {
        g.u64()
    }
}

fn arbitrary_hist(g: &mut testprop::Gen, max_obs: usize) -> Histogram {
    let n = g.usize_in(0, max_obs);
    let mut h = Histogram::new();
    for _ in 0..n {
        h.observe(arbitrary_value(g));
    }
    h
}

#[test]
fn merge_is_associative_and_commutative() {
    testprop::cases(200, 0x1e1e_0001, |g| {
        let a = arbitrary_hist(g, 40);
        let b = arbitrary_hist(g, 40);
        let c = arbitrary_hist(g, 40);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
    });
}

#[test]
fn bucket_index_is_monotone_and_bounds_are_consistent() {
    testprop::cases(500, 0x1e1e_0002, |g| {
        let v = arbitrary_value(g);
        let w = arbitrary_value(g);
        let (lo, hi) = (v.min(w), v.max(w));
        assert!(
            Histogram::bucket_index(lo) <= Histogram::bucket_index(hi),
            "bucket index must be monotone: {lo} -> {hi}"
        );
        let i = Histogram::bucket_index(v);
        assert!(i < BUCKET_COUNT);
        let (b_lo, b_hi) = Histogram::bucket_bounds(i);
        assert!(b_lo <= v && v <= b_hi, "v={v} outside bucket {i}");
    });
}

#[test]
fn count_is_conserved_under_sharded_merge() {
    testprop::cases(100, 0x1e1e_0003, |g| {
        // One logical stream of observations, split across 1..8 shards in
        // round-robin order, then merged — totals and every bucket must
        // equal the unsharded histogram.
        let n = g.usize_in(0, 200);
        let values: Vec<u64> = (0..n).map(|_| arbitrary_value(g)).collect();
        let shards = g.usize_in(1, 8);

        let mut whole = Histogram::new();
        for &v in &values {
            whole.observe(v);
        }

        let mut parts = vec![Histogram::new(); shards];
        for (i, &v) in values.iter().enumerate() {
            parts[i % shards].observe(v);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }

        assert_eq!(merged, whole, "sharded merge must conserve all buckets");
        assert_eq!(merged.count() as usize, n);
        let bucket_total: u64 = merged.buckets().iter().sum();
        assert_eq!(bucket_total, merged.count(), "buckets must sum to count");
    });
}
