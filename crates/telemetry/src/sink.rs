//! Event sinks: where rendered JSON event lines go as they happen.
//!
//! Every event is always retained in the registry snapshot regardless of
//! sink; sinks exist for live streaming. [`NoopSink`] reports itself
//! inactive so the emit path can skip rendering entirely — the perf bench
//! asserts that cost is negligible.

use std::cell::RefCell;
use std::rc::Rc;

/// A consumer of rendered JSON event lines.
pub trait EventSink {
    /// Whether the sink wants lines at all. Inactive sinks let the emitter
    /// skip JSON rendering.
    fn active(&self) -> bool {
        true
    }

    /// Consume one rendered JSON event line (no trailing newline).
    fn emit(&mut self, line: &str);
}

/// Discards everything; `active()` is false so emitters skip rendering.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn active(&self) -> bool {
        false
    }

    fn emit(&mut self, _line: &str) {}
}

/// Collects lines in memory behind a shared handle, so the caller can hand
/// one clone to [`crate::Telemetry::with_sink`] and keep another to read.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    lines: Rc<RefCell<Vec<String>>>,
}

impl MemorySink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The lines captured so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.borrow().clone()
    }

    /// Number of lines captured so far.
    pub fn len(&self) -> usize {
        self.lines.borrow().len()
    }

    /// Whether no lines have been captured.
    pub fn is_empty(&self) -> bool {
        self.lines.borrow().is_empty()
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, line: &str) {
        self.lines.borrow_mut().push(line.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_inactive() {
        assert!(!NoopSink.active());
    }

    #[test]
    fn memory_sink_shares_lines_across_clones() {
        let sink = MemorySink::new();
        let mut writer = sink.clone();
        writer.emit("{\"a\":1}");
        writer.emit("{\"b\":2}");
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.lines()[1], "{\"b\":2}");
        assert!(sink.active());
    }
}
