//! The registry snapshot: an owned, mergeable, serializable view of every
//! metric, span and event a [`crate::Telemetry`] handle recorded.

use std::collections::BTreeMap;

use crate::hist::Histogram;
use crate::json;
use crate::trace::TraceRecord;

/// A structured event captured at a simulated-time instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Simulated time of the event in nanoseconds.
    pub t_ns: u64,
    /// Event kind, e.g. `censor.rst_injected`.
    pub kind: String,
    /// Ordered key/value payload.
    pub fields: Vec<(String, FieldValue)>,
}

/// An event field value (integers and strings only — deterministic output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// String.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A completed scoped span keyed to simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, e.g. `experiment.e09_mvr`.
    pub name: String,
    /// Simulated start in nanoseconds.
    pub start_ns: u64,
    /// Simulated end in nanoseconds.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds (saturating).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// An owned snapshot of a telemetry registry.
///
/// Snapshots merge deterministically: counters add, gauges take the merged
/// snapshot's value (last write wins, in merge order), histograms add
/// bucket-wise, spans and events append and then re-sort by
/// (sim-time, name) so the result is independent of merge call order, and
/// flight-recorder trace records append in merge order (the campaign
/// engine merges per-trial registries in trial-index order, which keeps
/// trial segments contiguous and shard-invariant).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges by name.
    pub gauges: BTreeMap<String, i64>,
    /// Log-bucketed histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Completed spans, sorted by (start time, name) after merges.
    pub spans: Vec<SpanRecord>,
    /// Structured events, sorted by (time, kind) after merges.
    pub events: Vec<Event>,
    /// Flight-recorder decision records in recording/merge order.
    /// Deliberately excluded from [`Registry::to_json`] so non-trace
    /// output stays byte-identical whether or not tracing ran; render
    /// with [`Registry::trace_jsonl`].
    pub trace: Vec<TraceRecord>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Fold `other` into `self` (see type docs for per-kind semantics).
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
        self.spans.extend(other.spans.iter().cloned());
        self.spans
            .sort_by(|a, b| (a.start_ns, &a.name).cmp(&(b.start_ns, &b.name)));
        self.events.extend(other.events.iter().cloned());
        self.events
            .sort_by(|a, b| (a.t_ns, &a.kind).cmp(&(b.t_ns, &b.kind)));
        self.trace.extend(other.trace.iter().cloned());
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.events.is_empty()
            && self.trace.is_empty()
    }

    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Deterministic single-line JSON: keys in `BTreeMap` order, integer
    /// values only, non-zero histogram buckets as `[low_bound, count]`
    /// pairs. Byte-identical for equal registries on every platform.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        json::push_key(&mut out, "counters");
        out.push('{');
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, name);
            out.push_str(&v.to_string());
        }
        out.push('}');
        out.push(',');
        json::push_key(&mut out, "gauges");
        out.push('{');
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, name);
            out.push_str(&v.to_string());
        }
        out.push('}');
        out.push(',');
        json::push_key(&mut out, "histograms");
        out.push('{');
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, name);
            out.push('{');
            json::push_key(&mut out, "count");
            out.push_str(&h.count().to_string());
            out.push(',');
            json::push_key(&mut out, "sum");
            out.push_str(&h.sum().to_string());
            out.push(',');
            json::push_key(&mut out, "min");
            out.push_str(&h.min().to_string());
            out.push(',');
            json::push_key(&mut out, "max");
            out.push_str(&h.max().to_string());
            out.push(',');
            json::push_key(&mut out, "p50");
            out.push_str(&h.quantile(50).to_string());
            out.push(',');
            json::push_key(&mut out, "p90");
            out.push_str(&h.quantile(90).to_string());
            out.push(',');
            json::push_key(&mut out, "p99");
            out.push_str(&h.quantile(99).to_string());
            out.push(',');
            json::push_key(&mut out, "buckets");
            out.push('[');
            let mut first = true;
            for (bi, &n) in h.buckets().iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let (lo, _) = Histogram::bucket_bounds(bi);
                out.push('[');
                out.push_str(&lo.to_string());
                out.push(',');
                out.push_str(&n.to_string());
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push('}');
        out.push(',');
        json::push_key(&mut out, "spans");
        out.push('[');
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json::push_key(&mut out, "name");
            json::push_str_value(&mut out, &s.name);
            out.push(',');
            json::push_key(&mut out, "start_ns");
            out.push_str(&s.start_ns.to_string());
            out.push(',');
            json::push_key(&mut out, "end_ns");
            out.push_str(&s.end_ns.to_string());
            out.push('}');
        }
        out.push(']');
        out.push(',');
        json::push_key(&mut out, "events");
        out.push('[');
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event_json(e));
        }
        out.push_str("]}");
        out
    }

    /// The flight-recorder trace as JSON lines, one sorted-key object per
    /// decision record, in recording/merge order.
    pub fn trace_jsonl(&self) -> String {
        crate::trace::to_jsonl(&self.trace)
    }

    /// The events as JSON lines, one event per line (the structured stream
    /// a sink receives live).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&event_json(e));
            out.push('\n');
        }
        out
    }

    /// Human-readable text summary: one metric per line, sorted by name.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter {name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge   {name} = {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "hist    {name}: count={} sum={} min={} max={} mean={} p50={} p90={} p99={}\n",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean(),
                h.quantile(50),
                h.quantile(90),
                h.quantile(99),
            ));
        }
        for s in &self.spans {
            out.push_str(&format!(
                "span    {}: [{} ns .. {} ns] ({} ns)\n",
                s.name,
                s.start_ns,
                s.end_ns,
                s.duration_ns()
            ));
        }
        if !self.events.is_empty() {
            out.push_str(&format!("events  {} recorded\n", self.events.len()));
        }
        if !self.trace.is_empty() {
            out.push_str(&format!("trace   {} records\n", self.trace.len()));
        }
        out
    }
}

/// Serialize one event as a deterministic JSON object.
pub fn event_json(e: &Event) -> String {
    let mut out = String::with_capacity(64);
    out.push('{');
    json::push_key(&mut out, "t_ns");
    out.push_str(&e.t_ns.to_string());
    out.push(',');
    json::push_key(&mut out, "kind");
    json::push_str_value(&mut out, &e.kind);
    for (k, v) in &e.fields {
        out.push(',');
        json::push_key(&mut out, k);
        match v {
            FieldValue::U64(n) => out.push_str(&n.to_string()),
            FieldValue::I64(n) => out.push_str(&n.to_string()),
            FieldValue::Str(s) => json::push_str_value(&mut out, s),
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.counters.insert("b.count".into(), 2);
        r.counters.insert("a.count".into(), 1);
        r.gauges.insert("depth".into(), -3);
        let mut h = Histogram::new();
        h.observe(0);
        h.observe(5);
        r.histograms.insert("sizes".into(), h);
        r.spans.push(SpanRecord {
            name: "run".into(),
            start_ns: 10,
            end_ns: 30,
        });
        r.events.push(Event {
            t_ns: 7,
            kind: "rst".into(),
            fields: vec![("flow".into(), FieldValue::Str("a\"b".into()))],
        });
        r
    }

    #[test]
    fn json_is_sorted_and_escaped() {
        let j = sample().to_json();
        assert!(j.find("\"a.count\":1").unwrap() < j.find("\"b.count\":2").unwrap());
        assert!(j.contains("\"gauges\":{\"depth\":-3}"));
        assert!(j.contains("\"buckets\":[[0,1],[4,1]]"));
        // Quantiles render between max and buckets, from the fixed buckets:
        // {0, 5} → p50 is the zero bucket, p90/p99 the [4,7] bucket clamped
        // to the observed max.
        assert!(
            j.contains("\"p50\":0,\"p90\":5,\"p99\":5,\"buckets\""),
            "{j}"
        );
        assert!(j.contains("\"flow\":\"a\\\"b\""));
        assert!(j.contains("\"spans\":[{\"name\":\"run\",\"start_ns\":10,\"end_ns\":30}]"));
    }

    #[test]
    fn merge_semantics() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter("a.count"), 2, "counters add");
        assert_eq!(a.gauge("depth"), -3, "gauges overwrite");
        assert_eq!(a.histogram("sizes").unwrap().count(), 4);
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.events.len(), 2);
    }

    #[test]
    fn equal_registries_serialize_identically() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn merge_order_of_spans_and_events_is_canonical() {
        // Two registries with interleaved sim-times: whichever is merged
        // first, the result sorts to the same (time, name) order.
        let mk = |name: &str, t: u64| {
            let mut r = Registry::new();
            r.spans.push(SpanRecord {
                name: name.into(),
                start_ns: t,
                end_ns: t + 1,
            });
            r.events.push(Event {
                t_ns: t,
                kind: name.into(),
                fields: vec![],
            });
            r
        };
        let a = mk("alpha", 20);
        let b = mk("beta", 10);
        let mut ab = Registry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Registry::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json(), "merge order must not matter");
        assert_eq!(ab.spans[0].name, "beta", "sorted by (start_ns, name)");
        assert_eq!(ab.events[0].kind, "beta", "sorted by (t_ns, kind)");
    }

    #[test]
    fn trace_records_merge_in_order_and_stay_out_of_json() {
        use crate::trace::TraceRecord;
        let mut a = Registry::new();
        a.trace.push(TraceRecord {
            t_ns: 1,
            seq: 0,
            stage: "mvr",
            kind: "retain",
            flow: None,
            fields: vec![],
        });
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.trace.len(), 2);
        assert!(!a.to_json().contains("retain"), "trace excluded from JSON");
        assert_eq!(a.trace_jsonl().lines().count(), 2);
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let r = sample();
        let l = r.to_jsonl();
        assert_eq!(l.lines().count(), 1);
        assert!(l.starts_with("{\"t_ns\":7,\"kind\":\"rst\""));
    }

    #[test]
    fn render_text_lists_everything() {
        let t = sample().render_text();
        assert!(t.contains("counter a.count = 1"));
        assert!(t.contains("gauge   depth = -3"));
        assert!(t.contains("hist    sizes: count=2"));
        assert!(t.contains("p50=0 p90=5 p99=5"), "{t}");
        assert!(t.contains("span    run:"));
        assert!(t.contains("events  1 recorded"));
    }
}
