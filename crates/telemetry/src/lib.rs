//! Deterministic observability for the measurement pipeline.
//!
//! The paper's safety argument is quantitative — what the MVR retains, what
//! each store tier holds, what the analyst queue costs — so every subsystem
//! records into a shared, deterministic metric registry instead of ad-hoc
//! stat structs. Three design rules:
//!
//! 1. **Zero overhead when disabled.** A [`Telemetry`] handle is either
//!    live or a null handle; pre-resolved [`Counter`]/[`Gauge`]/
//!    [`HistogramHandle`]s cost one null check per operation when disabled.
//!    The perf bench asserts the bound.
//! 2. **Deterministic output.** Metrics are integers, histogram buckets
//!    have fixed boundaries, snapshots serialize in sorted key order, and
//!    spans/events are keyed to *simulated* time (nanoseconds, as produced
//!    by the netsim clock) — so the same seed yields byte-identical JSON,
//!    sequential or sharded.
//! 3. **No dependencies.** The simulator depends on this crate, not the
//!    other way round; timestamps cross the API as raw `u64` nanoseconds.
//!
//! ```
//! use underradar_telemetry::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! let pkts = tel.counter("netsim.events");
//! pkts.add(3);
//! tel.observe("ids.segment_bytes", 1460);
//! tel.record_span("experiment.demo", 0, 2_000_000_000);
//! let snap = tel.snapshot();
//! assert_eq!(snap.counter("netsim.events"), 3);
//! assert!(snap.to_json().starts_with("{\"counters\""));
//!
//! let off = Telemetry::disabled();
//! off.counter("netsim.events").add(1); // a null check, nothing else
//! assert!(off.snapshot().is_empty());
//! ```
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod codec;
pub mod hist;
pub mod json;
pub mod registry;
pub mod sink;
pub mod stream;
pub mod trace;

pub use hist::{Histogram, BUCKET_COUNT};
pub use registry::{Event, FieldValue, Registry, SpanRecord};
pub use sink::{EventSink, MemorySink, NoopSink};
pub use stream::StreamMerger;
pub use trace::{
    TraceBuf, TraceFlow, TraceRecord, Tracer, DEFAULT_TRACE_CAPACITY, TRACE_CAPACITY_ENV, TRACE_ENV,
};

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Environment variable that turns telemetry on for [`Telemetry::from_env`].
pub const TELEMETRY_ENV: &str = "UNDERRADAR_TELEMETRY";

struct Inner {
    counters: BTreeMap<String, Rc<Cell<u64>>>,
    gauges: BTreeMap<String, Rc<Cell<i64>>>,
    histograms: BTreeMap<String, Rc<RefCell<Histogram>>>,
    spans: Vec<SpanRecord>,
    events: Vec<Event>,
    sink: Box<dyn EventSink>,
    trace: Option<Rc<RefCell<TraceBuf>>>,
}

/// A cheaply-cloneable recording handle. Either live (shared registry) or
/// disabled (all operations are a null check).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// The null handle: every operation is a no-op after one null check.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A live handle with a fresh registry and a [`NoopSink`] (events are
    /// retained in the registry; no live streaming).
    pub fn enabled() -> Self {
        Telemetry::with_sink(Box::new(NoopSink))
    }

    /// A live handle streaming rendered event lines to `sink`.
    pub fn with_sink(sink: Box<dyn EventSink>) -> Self {
        Telemetry {
            inner: Some(Rc::new(RefCell::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
                spans: Vec::new(),
                events: Vec::new(),
                sink,
                trace: None,
            }))),
        }
    }

    /// A live handle with the flight recorder attached: decision records
    /// go into a per-handle ring of `capacity` records (oldest evicted
    /// deterministically, counted in `telemetry.trace.dropped`).
    pub fn with_trace(capacity: usize) -> Self {
        let tel = Telemetry::enabled();
        if let Some(inner) = &tel.inner {
            inner.borrow_mut().trace = Some(Rc::new(RefCell::new(TraceBuf::new(capacity))));
        }
        tel
    }

    /// Enabled iff the `UNDERRADAR_TELEMETRY` environment variable is set
    /// to a non-empty value other than `0`; disabled otherwise. CI runs
    /// the suite both ways. Setting `UNDERRADAR_TRACE` likewise attaches
    /// the flight recorder (and implies telemetry); its ring capacity is
    /// `UNDERRADAR_TRACE_CAPACITY` records when that parses as a positive
    /// integer, [`DEFAULT_TRACE_CAPACITY`] otherwise.
    pub fn from_env() -> Self {
        let env_on = |name: &str| {
            std::env::var_os(name)
                .map(|v| !v.is_empty() && v != *"0")
                .unwrap_or(false)
        };
        if env_on(TRACE_ENV) {
            let capacity = trace::capacity_from_env(std::env::var(TRACE_CAPACITY_ENV).ok())
                .unwrap_or(DEFAULT_TRACE_CAPACITY);
            Telemetry::with_trace(capacity)
        } else if env_on(TELEMETRY_ENV) {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The flight recorder's ring capacity, when tracing is attached.
    pub fn trace_capacity(&self) -> Option<usize> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.borrow().trace.as_ref().map(|b| b.borrow().capacity()))
    }

    /// Resolve the flight-recorder handle. Disabled (one branch per
    /// decision site) unless this handle was built with
    /// [`Telemetry::with_trace`]; hot paths resolve once and reuse it.
    pub fn tracer(&self) -> Tracer {
        Tracer(
            self.inner
                .as_ref()
                .and_then(|inner| inner.borrow().trace.clone()),
        )
    }

    /// Resolve (creating on first use) a counter handle. Handles for the
    /// same name share one cell; resolution is a map lookup, so hot paths
    /// should resolve once and reuse the handle.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            Rc::clone(
                inner
                    .borrow_mut()
                    .counters
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Resolve (creating on first use) a gauge handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            Rc::clone(
                inner
                    .borrow_mut()
                    .gauges
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Resolve (creating on first use) a histogram handle.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        HistogramHandle(self.inner.as_ref().map(|inner| {
            Rc::clone(
                inner
                    .borrow_mut()
                    .histograms
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Add `n` to counter `name` (resolves by name; use [`Counter`] handles
    /// on hot paths).
    pub fn count(&self, name: &str, n: u64) {
        if self.inner.is_some() {
            self.counter(name).add(n);
        }
    }

    /// Set counter `name` to an absolute total (idempotent export-style
    /// mirroring of an existing stat struct).
    pub fn set_counter(&self, name: &str, total: u64) {
        if self.inner.is_some() {
            self.counter(name).set(total);
        }
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: i64) {
        if self.inner.is_some() {
            self.gauge(name).set(value);
        }
    }

    /// Observe `value` into histogram `name` (resolves by name).
    pub fn observe(&self, name: &str, value: u64) {
        if self.inner.is_some() {
            self.histogram(name).observe(value);
        }
    }

    /// Record a structured event at simulated time `t_ns`. Retained in the
    /// registry; also rendered and streamed if the sink is active.
    pub fn event(&self, t_ns: u64, kind: &str, fields: &[(&str, FieldValue)]) {
        let Some(inner) = &self.inner else { return };
        let event = Event {
            t_ns,
            kind: kind.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        let mut inner = inner.borrow_mut();
        if inner.sink.active() {
            let line = registry::event_json(&event);
            inner.sink.emit(&line);
        }
        inner.events.push(event);
    }

    /// Record a completed span over simulated time and observe its
    /// duration into the `span.<name>.ns` histogram.
    pub fn record_span(&self, name: &str, start_ns: u64, end_ns: u64) {
        let Some(inner) = &self.inner else { return };
        let record = SpanRecord {
            name: name.to_string(),
            start_ns,
            end_ns,
        };
        let duration = record.duration_ns();
        inner.borrow_mut().spans.push(record);
        self.observe(&format!("span.{name}.ns"), duration);
    }

    /// Open a scoped span starting at simulated time `start_ns`; finish it
    /// with [`Span::end`].
    pub fn span(&self, name: &str, start_ns: u64) -> Span {
        Span {
            tel: self.clone(),
            name: name.to_string(),
            start_ns,
        }
    }

    /// A fresh sub-registry, enabled iff this handle is enabled. Scopes
    /// isolate absolute-total exports (`set_counter`-style mirroring) from
    /// one another: record each scenario, shard, or trial into its own
    /// scope and fold finished scopes back with [`Telemetry::absorb`] so
    /// totals accumulate instead of overwriting.
    pub fn scope(&self) -> Telemetry {
        match self.trace_capacity() {
            Some(capacity) => Telemetry::with_trace(capacity),
            None if self.is_enabled() => Telemetry::enabled(),
            None => Telemetry::disabled(),
        }
    }

    /// Fold a finished scope's totals into this handle (counters add,
    /// gauges overwrite, histograms bucket-add, spans/events append).
    /// Absorbing in a fixed order keeps merged registries deterministic
    /// regardless of which worker produced each scope.
    pub fn absorb(&self, sub: &Telemetry) {
        if self.is_enabled() {
            self.merge_registry(&sub.snapshot());
        }
    }

    /// Fold an already-snapshotted registry into this live handle
    /// (deterministic sub-shard merging, e.g. an experiment's internal
    /// `run_sharded` sweep). Spans and events are re-sorted by
    /// (sim-time, name) after the append, so the merged order never
    /// depends on absorb call order; trace records append in merge order
    /// (trial grouping is the point) without the live ring bound.
    pub fn merge_registry(&self, other: &Registry) {
        let Some(inner) = &self.inner else { return };
        for (name, v) in &other.counters {
            self.counter(name).add(*v);
        }
        for (name, v) in &other.gauges {
            self.gauge(name).set(*v);
        }
        for (name, h) in &other.histograms {
            if let HistogramHandle(Some(cell)) = self.histogram(name) {
                cell.borrow_mut().merge(h);
            }
        }
        let mut inner = inner.borrow_mut();
        inner.spans.extend(other.spans.iter().cloned());
        inner
            .spans
            .sort_by(|a, b| (a.start_ns, &a.name).cmp(&(b.start_ns, &b.name)));
        inner.events.extend(other.events.iter().cloned());
        inner
            .events
            .sort_by(|a, b| (a.t_ns, &a.kind).cmp(&(b.t_ns, &b.kind)));
        if !other.trace.is_empty() {
            if let Some(buf) = &inner.trace {
                buf.borrow_mut().extend_unbounded(&other.trace);
            }
        }
    }

    /// An owned snapshot of everything recorded so far. When the flight
    /// recorder is attached, the snapshot carries its records and mirrors
    /// the eviction count into the `telemetry.trace.dropped` counter.
    pub fn snapshot(&self) -> Registry {
        let Some(inner) = &self.inner else {
            return Registry::new();
        };
        let inner = inner.borrow();
        let mut counters: BTreeMap<String, u64> = inner
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let trace = match &inner.trace {
            Some(buf) => {
                let buf = buf.borrow();
                *counters
                    .entry("telemetry.trace.dropped".to_string())
                    .or_insert(0) += buf.dropped();
                buf.records().cloned().collect()
            }
            None => Vec::new(),
        };
        Registry {
            counters,
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.borrow().clone()))
                .collect(),
            spans: inner.spans.clone(),
            events: inner.events.clone(),
            trace,
        }
    }
}

/// Pre-resolved counter handle; disabled handles cost one null check per op.
#[derive(Clone, Default)]
pub struct Counter(Option<Rc<Cell<u64>>>);

impl Counter {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Counter(None)
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.set(cell.get().wrapping_add(n));
        }
    }

    /// Add 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Overwrite with an absolute total (export-style mirroring).
    #[inline]
    pub fn set(&self, total: u64) {
        if let Some(cell) = &self.0 {
            cell.set(total);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map(|c| c.get()).unwrap_or(0)
    }

    /// Whether this handle records.
    #[inline]
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }
}

/// Pre-resolved gauge handle.
#[derive(Clone, Default)]
pub struct Gauge(Option<Rc<Cell<i64>>>);

impl Gauge {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Gauge(None)
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: i64) {
        if let Some(cell) = &self.0 {
            cell.set(value);
        }
    }

    /// Adjust the gauge by `delta`.
    #[inline]
    pub fn adjust(&self, delta: i64) {
        if let Some(cell) = &self.0 {
            cell.set(cell.get().wrapping_add(delta));
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map(|c| c.get()).unwrap_or(0)
    }
}

/// Pre-resolved histogram handle.
#[derive(Clone, Default)]
pub struct HistogramHandle(Option<Rc<RefCell<Histogram>>>);

impl HistogramHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        HistogramHandle(None)
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.borrow_mut().observe(value);
        }
    }
}

/// An open span; call [`Span::end`] with the simulated end time to record.
#[derive(Debug)]
pub struct Span {
    tel: Telemetry,
    name: String,
    start_ns: u64,
}

impl Span {
    /// Close the span at simulated time `end_ns`.
    pub fn end(self, end_ns: u64) {
        self.tel.record_span(&self.name, self.start_ns, end_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.counter("c").incr();
        tel.set_gauge("g", 7);
        tel.observe("h", 3);
        tel.event(1, "e", &[("k", 1u64.into())]);
        tel.record_span("s", 0, 10);
        assert!(tel.snapshot().is_empty());
    }

    #[test]
    fn handles_share_cells_by_name() {
        let tel = Telemetry::enabled();
        let a = tel.counter("x");
        let b = tel.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert_eq!(tel.snapshot().counter("x"), 5);
    }

    #[test]
    fn clone_shares_registry() {
        let tel = Telemetry::enabled();
        let clone = tel.clone();
        clone.count("shared", 4);
        assert_eq!(tel.snapshot().counter("shared"), 4);
    }

    #[test]
    fn span_records_and_feeds_histogram() {
        let tel = Telemetry::enabled();
        let span = tel.span("phase", 100);
        span.end(350);
        let snap = tel.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].duration_ns(), 250);
        assert_eq!(snap.histogram("span.phase.ns").unwrap().sum(), 250);
    }

    #[test]
    fn events_stream_to_active_sink() {
        let sink = MemorySink::new();
        let tel = Telemetry::with_sink(Box::new(sink.clone()));
        tel.event(42, "censor.rst", &[("port", 80u64.into())]);
        assert_eq!(
            sink.lines(),
            vec!["{\"t_ns\":42,\"kind\":\"censor.rst\",\"port\":80}"]
        );
        assert_eq!(tel.snapshot().events.len(), 1);
    }

    #[test]
    fn noop_sink_still_retains_events() {
        let tel = Telemetry::enabled();
        tel.event(1, "k", &[]);
        assert_eq!(tel.snapshot().to_jsonl(), "{\"t_ns\":1,\"kind\":\"k\"}\n");
    }

    #[test]
    fn merge_registry_folds_everything() {
        let src = Telemetry::enabled();
        src.count("c", 2);
        src.set_gauge("g", -1);
        src.observe("h", 9);
        src.record_span("s", 0, 5);
        let snap = src.snapshot();

        let dst = Telemetry::enabled();
        dst.count("c", 1);
        dst.merge_registry(&snap);
        let merged = dst.snapshot();
        assert_eq!(merged.counter("c"), 3);
        assert_eq!(merged.gauge("g"), -1);
        assert_eq!(merged.histogram("h").unwrap().count(), 1);
        assert_eq!(merged.spans.len(), 1);
    }

    #[test]
    fn scope_and_absorb_accumulate_absolute_totals() {
        let parent = Telemetry::enabled();
        for _ in 0..3 {
            let sub = parent.scope();
            assert!(sub.is_enabled());
            sub.set_counter("x.total", 5); // absolute total per scope
            parent.absorb(&sub);
        }
        assert_eq!(parent.snapshot().counter("x.total"), 15);
    }

    #[test]
    fn disabled_parent_yields_disabled_scope() {
        let parent = Telemetry::disabled();
        let sub = parent.scope();
        assert!(!sub.is_enabled());
        parent.absorb(&sub); // no-op, must not panic
        assert!(parent.snapshot().is_empty());
    }

    #[test]
    fn configured_trace_capacity_pins_eviction_counting() {
        // A 2-record ring keeps the newest records, evicts the oldest
        // deterministically, and mirrors the eviction count into the
        // `telemetry.trace.dropped` counter at snapshot time.
        let tel = Telemetry::with_trace(2);
        assert_eq!(tel.trace_capacity(), Some(2));
        let tracer = tel.tracer();
        for t in 1..=5u64 {
            tracer.record(TraceRecord {
                t_ns: t,
                seq: 0,
                stage: "link",
                kind: "drop",
                flow: None,
                fields: vec![],
            });
        }
        let snap = tel.snapshot();
        assert_eq!(snap.counter("telemetry.trace.dropped"), 3);
        let times: Vec<u64> = snap.trace.iter().map(|r| r.t_ns).collect();
        assert_eq!(times, vec![4, 5], "newest records survive");
        // The default-capacity handle reports the documented default.
        assert_eq!(
            Telemetry::with_trace(DEFAULT_TRACE_CAPACITY).trace_capacity(),
            Some(DEFAULT_TRACE_CAPACITY)
        );
    }

    #[test]
    fn set_counter_is_idempotent() {
        let tel = Telemetry::enabled();
        tel.set_counter("total", 10);
        tel.set_counter("total", 10);
        assert_eq!(tel.snapshot().counter("total"), 10);
    }
}
