//! Compact binary serialization of [`Registry`] deltas for the checkpoint
//! journal (and anything else that persists telemetry between processes).
//!
//! The JSON renderings are lossy — `to_json` drops the trace, trace JSONL
//! drops everything else — and neither round-trips. This codec is exact:
//! `decode_registry(&encode_registry(r)) == r` for every registry,
//! including flight-recorder records, so a resumed run replays journaled
//! deltas into precisely the registries the interrupted run produced.
//!
//! Format: little-endian fixed-width integers, length-prefixed UTF-8
//! strings, one section per registry field in declaration order. No
//! self-description — the journal wrapping these bytes carries version and
//! checksum; the codec only needs to fail cleanly ([`CodecError`], never a
//! panic) on truncated or corrupt payloads that slip through.
//!
//! Decoded [`TraceRecord`]s need `&'static str` stage/kind/field keys; the
//! decoder leaks each **unique** string once into a process-wide intern
//! pool ([`intern_static`]). Stage and kind names form a small closed set,
//! so the leak is bounded and idempotent across any number of decodes.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};

use crate::hist::{Histogram, BUCKET_COUNT};
use crate::registry::{Event, FieldValue, Registry, SpanRecord};
use crate::trace::{TraceFlow, TraceRecord};

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the structure it promised.
    Truncated,
    /// An enum tag byte had no defined meaning.
    BadTag(u8),
    /// A string section held invalid UTF-8.
    BadUtf8,
    /// A bucket index exceeded [`BUCKET_COUNT`].
    BadBucket(u8),
    /// Bytes remained after the registry was fully decoded.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string"),
            CodecError::BadBucket(i) => write!(f, "histogram bucket index {i} out of range"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after registry"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Intern a string into the process-wide `&'static str` pool, leaking it
/// on first sight. Used by the decoder to restore [`TraceRecord`]'s
/// static stage/kind/key strings; idempotent, so repeated decodes of the
/// same journal never grow the pool.
pub fn intern_static(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut pool = pool.lock().expect("intern pool poisoned");
    if let Some(&hit) = pool.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(leaked);
    leaked
}

// ---- primitive writers ----

/// Append a `u32` (little-endian).
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` (little-endian).
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` (little-endian two's complement).
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked sequential reader over a decode payload.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.u64()? as i64)
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }
}

// ---- field values ----

fn put_field_value(out: &mut Vec<u8>, v: &FieldValue) {
    match v {
        FieldValue::U64(n) => {
            out.push(0);
            put_u64(out, *n);
        }
        FieldValue::I64(n) => {
            out.push(1);
            put_i64(out, *n);
        }
        FieldValue::Str(s) => {
            out.push(2);
            put_str(out, s);
        }
    }
}

fn read_field_value(r: &mut Reader<'_>) -> Result<FieldValue, CodecError> {
    match r.u8()? {
        0 => Ok(FieldValue::U64(r.u64()?)),
        1 => Ok(FieldValue::I64(r.i64()?)),
        2 => Ok(FieldValue::Str(r.str()?)),
        t => Err(CodecError::BadTag(t)),
    }
}

// ---- registry ----

/// Serialize a registry exactly (all six sections, trace included).
pub fn encode_registry(reg: &Registry) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    put_u32(&mut out, reg.counters.len() as u32);
    for (name, v) in &reg.counters {
        put_str(&mut out, name);
        put_u64(&mut out, *v);
    }
    put_u32(&mut out, reg.gauges.len() as u32);
    for (name, v) in &reg.gauges {
        put_str(&mut out, name);
        put_i64(&mut out, *v);
    }
    put_u32(&mut out, reg.histograms.len() as u32);
    for (name, h) in &reg.histograms {
        put_str(&mut out, name);
        put_u64(&mut out, h.count());
        put_u64(&mut out, h.sum());
        put_u64(&mut out, h.min());
        put_u64(&mut out, h.max());
        let nonzero: Vec<(usize, u64)> = h
            .buckets()
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(i, &n)| (i, n))
            .collect();
        put_u32(&mut out, nonzero.len() as u32);
        for (i, n) in nonzero {
            out.push(i as u8);
            put_u64(&mut out, n);
        }
    }
    put_u32(&mut out, reg.spans.len() as u32);
    for s in &reg.spans {
        put_str(&mut out, &s.name);
        put_u64(&mut out, s.start_ns);
        put_u64(&mut out, s.end_ns);
    }
    put_u32(&mut out, reg.events.len() as u32);
    for e in &reg.events {
        put_u64(&mut out, e.t_ns);
        put_str(&mut out, &e.kind);
        put_u32(&mut out, e.fields.len() as u32);
        for (k, v) in &e.fields {
            put_str(&mut out, k);
            put_field_value(&mut out, v);
        }
    }
    put_u32(&mut out, reg.trace.len() as u32);
    for t in &reg.trace {
        put_u64(&mut out, t.t_ns);
        put_u64(&mut out, t.seq);
        put_str(&mut out, t.stage);
        put_str(&mut out, t.kind);
        match &t.flow {
            None => out.push(0),
            Some(flow) => {
                out.push(1);
                out.extend_from_slice(&flow.src.octets());
                out.extend_from_slice(&flow.src_port.to_le_bytes());
                out.extend_from_slice(&flow.dst.octets());
                out.extend_from_slice(&flow.dst_port.to_le_bytes());
            }
        }
        put_u32(&mut out, t.fields.len() as u32);
        for (k, v) in &t.fields {
            put_str(&mut out, k);
            put_field_value(&mut out, v);
        }
    }
    out
}

/// Decode a registry previously produced by [`encode_registry`]. The
/// payload must contain exactly one registry; trailing bytes are an error
/// (a journal record's length prefix delimits the payload).
pub fn decode_registry(bytes: &[u8]) -> Result<Registry, CodecError> {
    let mut r = Reader::new(bytes);
    let reg = read_registry(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(reg)
}

/// Decode a registry from the reader's current position (for callers
/// embedding a registry inside a larger record).
pub fn read_registry(r: &mut Reader<'_>) -> Result<Registry, CodecError> {
    let mut counters = BTreeMap::new();
    for _ in 0..r.u32()? {
        let name = r.str()?;
        counters.insert(name, r.u64()?);
    }
    let mut gauges = BTreeMap::new();
    for _ in 0..r.u32()? {
        let name = r.str()?;
        gauges.insert(name, r.i64()?);
    }
    let mut histograms = BTreeMap::new();
    for _ in 0..r.u32()? {
        let name = r.str()?;
        let count = r.u64()?;
        let sum = r.u64()?;
        let min = r.u64()?;
        let max = r.u64()?;
        let mut buckets = [0u64; BUCKET_COUNT];
        for _ in 0..r.u32()? {
            let idx = r.u8()?;
            if idx as usize >= BUCKET_COUNT {
                return Err(CodecError::BadBucket(idx));
            }
            buckets[idx as usize] = r.u64()?;
        }
        histograms.insert(name, Histogram::from_parts(count, sum, min, max, buckets));
    }
    let mut spans = Vec::new();
    for _ in 0..r.u32()? {
        let name = r.str()?;
        let start_ns = r.u64()?;
        let end_ns = r.u64()?;
        spans.push(SpanRecord {
            name,
            start_ns,
            end_ns,
        });
    }
    let mut events = Vec::new();
    for _ in 0..r.u32()? {
        let t_ns = r.u64()?;
        let kind = r.str()?;
        let mut fields = Vec::new();
        for _ in 0..r.u32()? {
            let k = r.str()?;
            fields.push((k, read_field_value(r)?));
        }
        events.push(Event { t_ns, kind, fields });
    }
    let mut trace = Vec::new();
    for _ in 0..r.u32()? {
        let t_ns = r.u64()?;
        let seq = r.u64()?;
        let stage = intern_static(&r.str()?);
        let kind = intern_static(&r.str()?);
        let flow = match r.u8()? {
            0 => None,
            1 => {
                let src = std::net::Ipv4Addr::new(r.u8()?, r.u8()?, r.u8()?, r.u8()?);
                let src_port = r.u16()?;
                let dst = std::net::Ipv4Addr::new(r.u8()?, r.u8()?, r.u8()?, r.u8()?);
                let dst_port = r.u16()?;
                Some(TraceFlow {
                    src,
                    src_port,
                    dst,
                    dst_port,
                })
            }
            t => return Err(CodecError::BadTag(t)),
        };
        let mut fields = Vec::new();
        for _ in 0..r.u32()? {
            let k = intern_static(&r.str()?);
            fields.push((k, read_field_value(r)?));
        }
        trace.push(TraceRecord {
            t_ns,
            seq,
            stage,
            kind,
            flow,
            fields,
        });
    }
    Ok(Registry {
        counters,
        gauges,
        histograms,
        spans,
        events,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_registry() -> Registry {
        let mut reg = Registry::new();
        reg.counters.insert("a.count".into(), 7);
        reg.counters.insert("b.count".into(), u64::MAX);
        reg.gauges.insert("depth".into(), -42);
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 1 << 40, u64::MAX] {
            h.observe(v);
        }
        reg.histograms.insert("sizes".into(), h);
        reg.histograms.insert("empty".into(), Histogram::new());
        reg.spans.push(SpanRecord {
            name: "trial".into(),
            start_ns: 10,
            end_ns: 30,
        });
        reg.events.push(Event {
            t_ns: 9,
            kind: "rst".into(),
            fields: vec![
                ("n".into(), FieldValue::U64(3)),
                ("d".into(), FieldValue::I64(-1)),
                ("who".into(), FieldValue::Str("a\"b\nc".into())),
            ],
        });
        reg.trace.push(TraceRecord {
            t_ns: 5,
            seq: 2,
            stage: "censor",
            kind: "rst_pair",
            flow: Some(TraceFlow {
                src: std::net::Ipv4Addr::new(10, 0, 1, 2),
                src_port: 4000,
                dst: std::net::Ipv4Addr::new(93, 184, 0, 10),
                dst_port: 80,
            }),
            fields: vec![("rule", FieldValue::U64(12))],
        });
        reg.trace.push(TraceRecord {
            t_ns: 6,
            seq: 0,
            stage: "campaign",
            kind: "verdict",
            flow: None,
            fields: vec![("verdict", FieldValue::Str("Blocked".into()))],
        });
        reg
    }

    #[test]
    fn round_trip_is_exact() {
        let reg = full_registry();
        let bytes = encode_registry(&reg);
        let back = decode_registry(&bytes).expect("decodes");
        assert_eq!(back, reg);
        assert_eq!(back.to_json(), reg.to_json());
        assert_eq!(back.trace_jsonl(), reg.trace_jsonl());
    }

    #[test]
    fn empty_registry_round_trips() {
        let bytes = encode_registry(&Registry::new());
        assert_eq!(decode_registry(&bytes).expect("decodes"), Registry::new());
    }

    #[test]
    fn every_truncation_point_fails_cleanly() {
        let bytes = encode_registry(&full_registry());
        for cut in 0..bytes.len() {
            match decode_registry(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!(
                    "decode of {cut}/{} bytes unexpectedly succeeded",
                    bytes.len()
                ),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_registry(&full_registry());
        bytes.push(0);
        assert_eq!(decode_registry(&bytes), Err(CodecError::TrailingBytes(1)),);
    }

    #[test]
    fn bad_tags_are_rejected_not_panicked() {
        let mut reg = Registry::new();
        reg.events.push(Event {
            t_ns: 1,
            kind: "k".into(),
            fields: vec![("f".into(), FieldValue::U64(1))],
        });
        let bytes = encode_registry(&reg);
        // Corrupt the field-value tag byte: the payload ends with
        // tag(1) + u64(8) + empty trace count(4).
        let mut bad = bytes.clone();
        let tag_pos = bad.len() - 13;
        assert_eq!(bad[tag_pos], 0, "tag byte located");
        bad[tag_pos] = 9;
        assert_eq!(decode_registry(&bad), Err(CodecError::BadTag(9)));
    }

    #[test]
    fn interning_is_idempotent_and_pointer_stable() {
        let a = intern_static("codec-test-stage");
        let b = intern_static("codec-test-stage");
        assert!(std::ptr::eq(a, b), "same leak reused");
        // Decoding the same trace twice yields pointer-equal stage strs.
        let reg = full_registry();
        let bytes = encode_registry(&reg);
        let d1 = decode_registry(&bytes).expect("decodes");
        let d2 = decode_registry(&bytes).expect("decodes");
        assert!(std::ptr::eq(d1.trace[0].stage, d2.trace[0].stage));
    }
}
