//! Log-bucketed histogram with **fixed** bucket boundaries.
//!
//! Bucket boundaries never depend on the observed data, so two histograms
//! produced by different shards of the same workload merge by element-wise
//! bucket addition and render byte-identically regardless of worker count
//! or observation order. Bucket `i` holds values whose bit length is `i`:
//! bucket 0 is exactly `{0}`, bucket `i ≥ 1` is `[2^(i-1), 2^i)`, and the
//! last bucket (index 64) is `[2^63, u64::MAX]`.

/// Number of buckets: one for zero plus one per possible bit length (1–64).
pub const BUCKET_COUNT: usize = 65;

/// A fixed-boundary log2 histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKET_COUNT],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKET_COUNT],
        }
    }

    /// The bucket index a value falls into (its bit length).
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive `(low, high)` bounds of bucket `i`.
    ///
    /// Defined for `i < BUCKET_COUNT`; callers index with in-range values.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Fold another histogram into this one (element-wise bucket addition;
    /// associative and commutative, so shard merge order does not matter).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean of the observations (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKET_COUNT] {
        &self.buckets
    }

    /// Deterministic quantile estimate from the fixed log buckets: the
    /// upper bound of the bucket containing the `pct`-th percentile rank
    /// (`rank = ceil(count * pct / 100)`), clamped into `[min, max]` so
    /// estimates never leave the observed range. Exact when every
    /// observation in the quantile bucket equals its bound; otherwise an
    /// upper estimate within one power of two. 0 when empty.
    pub fn quantile(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count.saturating_mul(pct)).div_ceil(100).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                let (_, hi) = Self::bucket_bounds(i);
                return hi.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Reconstruct a histogram from serialized parts (the journal codec's
    /// decode path). `min` is as reported by [`Histogram::min`] — 0 for an
    /// empty histogram — and is restored to the internal sentinel when
    /// `count == 0`, so decode(encode(h)) == h for every histogram.
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: [u64; BUCKET_COUNT],
    ) -> Histogram {
        Histogram {
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
            buckets,
        }
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let i = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn observe_tracks_extremes_and_count() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        for v in [5u64, 0, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1005);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 335);
    }

    #[test]
    fn merge_equals_combined_observation() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..100u64 {
            whole.observe(v * v);
            if v % 2 == 0 {
                a.observe(v * v);
            } else {
                b.observe(v * v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn quantiles_are_deterministic_and_clamped() {
        let empty = Histogram::new();
        assert_eq!(empty.quantile(50), 0);
        let mut one = Histogram::new();
        one.observe(37);
        for pct in [0u64, 50, 90, 99, 100] {
            assert_eq!(one.quantile(pct), 37, "single-value clamp at p{pct}");
        }
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        // rank 50 lands in bucket [32,63]; clamped upper bound ≤ max.
        assert_eq!(h.quantile(50), 63);
        assert_eq!(h.quantile(99), 100, "top bucket clamps to max");
        assert!(h.quantile(50) <= h.quantile(90));
        assert!(h.quantile(90) <= h.quantile(99));
    }

    #[test]
    fn quantile_equals_merged_quantile() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..1000u64 {
            whole.observe(v * 3);
            if v % 2 == 0 {
                a.observe(v * 3);
            } else {
                b.observe(v * 3);
            }
        }
        a.merge(&b);
        for pct in [50u64, 90, 99] {
            assert_eq!(a.quantile(pct), whole.quantile(pct), "p{pct}");
        }
    }

    #[test]
    fn bounds_partition_the_domain() {
        // Every bucket's high bound is one less than the next low bound.
        for i in 0..BUCKET_COUNT - 1 {
            let (_, hi) = Histogram::bucket_bounds(i);
            let (lo_next, _) = Histogram::bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo_next, "bucket {i}");
        }
        assert_eq!(Histogram::bucket_bounds(BUCKET_COUNT - 1).1, u64::MAX);
    }
}
