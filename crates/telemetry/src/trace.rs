//! The flight recorder: a bounded, deterministic per-trial trace of every
//! pipeline decision, so a verdict is explainable after the fact.
//!
//! Counters say *how many* alerts fired; the trace says *why this trial*
//! flipped. Every stage appends typed [`TraceRecord`]s through a cheap
//! [`Tracer`] handle (one null check when tracing is off, the same
//! discipline as [`crate::Counter`]):
//!
//! * `netsim` link impairment draws that fired (drop / reorder / corrupt /
//!   duplicate), carrying the transmit sequence id that correlates with
//!   the pcap capture index;
//! * `ids::stream` reassembly decisions (hold, drop, overlap trim,
//!   duplicate discard, eviction) with the byte range involved;
//! * `ids::engine` rule matches with the rule id and stream byte offset;
//! * `censor` tap and inline actions (RST pairs, DNS injection, IP/port
//!   drops, URL blocks);
//! * `surveil` MVR retain/discard with the classifying traffic class;
//! * `campaign` trial markers, retry/backoff decisions and final verdicts.
//!
//! Records live in a per-trial ring buffer ([`TraceBuf`]): when the
//! capacity is reached the oldest record is evicted deterministically and
//! counted, surfacing as the `telemetry.trace.dropped` counter. Merging
//! per-trial registries in trial order (the campaign engine's discipline)
//! keeps the merged trace byte-identical across shard counts.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::net::Ipv4Addr;
use std::rc::Rc;

use crate::json;
use crate::registry::FieldValue;

/// Environment variable that turns tracing on for
/// [`crate::Telemetry::from_env`] (implies telemetry).
pub const TRACE_ENV: &str = "UNDERRADAR_TRACE";

/// Default per-trial ring capacity (records).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Environment variable overriding the flight-recorder ring capacity
/// (records) wherever the default would apply — [`crate::Telemetry::from_env`]
/// and the `bench::cli` front end. Does not itself enable tracing.
pub const TRACE_CAPACITY_ENV: &str = "UNDERRADAR_TRACE_CAPACITY";

/// Parse a ring capacity from an env-var value: a positive integer, or
/// `None` for unset/empty/unparseable values (callers fall back to
/// [`DEFAULT_TRACE_CAPACITY`]).
pub fn capacity_from_env(value: Option<String>) -> Option<usize> {
    value
        .as_deref()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&c| c > 0)
}

/// The flow a record belongs to (client-to-server orientation of the
/// packet that triggered the decision).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFlow {
    /// Source address.
    pub src: Ipv4Addr,
    /// Source port (0 when the packet has none).
    pub src_port: u16,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Destination port (0 when the packet has none).
    pub dst_port: u16,
}

impl TraceFlow {
    /// Render as `src:sport->dst:dport`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}->{}:{}",
            self.src, self.src_port, self.dst, self.dst_port
        )
    }
}

/// One typed decision record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulated time of the decision in nanoseconds.
    pub t_ns: u64,
    /// Packet transmit sequence id (0 = not tied to a transmitted
    /// packet). For link-stage records this equals the scheduler's
    /// running transmit counter, which also indexes the pcap capture.
    pub seq: u64,
    /// Pipeline stage: `link`, `stream`, `engine`, `censor`, `mvr`,
    /// `campaign`.
    pub stage: &'static str,
    /// Decision kind within the stage, e.g. `ooo_dropped`, `rst_pair`.
    pub kind: &'static str,
    /// The flow the decision concerns, when there is one.
    pub flow: Option<TraceFlow>,
    /// Additional typed payload, in recording order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceRecord {
    /// Serialize as one JSON object with keys in sorted order
    /// (deterministic; byte-identical across shard counts when the
    /// records are).
    pub fn to_json(&self) -> String {
        let mut pairs: Vec<(&str, String)> = Vec::with_capacity(5 + self.fields.len());
        pairs.push(("kind", json_str(self.kind)));
        pairs.push(("seq", self.seq.to_string()));
        pairs.push(("stage", json_str(self.stage)));
        pairs.push(("t_ns", self.t_ns.to_string()));
        if let Some(flow) = &self.flow {
            pairs.push(("flow", json_str(&flow.render())));
        }
        for (k, v) in &self.fields {
            let rendered = match v {
                FieldValue::U64(n) => n.to_string(),
                FieldValue::I64(n) => n.to_string(),
                FieldValue::Str(s) => json_str(s),
            };
            pairs.push((k, rendered));
        }
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        let mut out = String::with_capacity(96);
        out.push('{');
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, k);
            out.push_str(v);
        }
        out.push('}');
        out
    }

    /// Render one human-readable line (`t=…ns [stage] kind flow=… k=v`).
    pub fn render(&self) -> String {
        let mut out = format!("t={}ns [{}] {}", self.t_ns, self.stage, self.kind);
        if self.seq != 0 {
            out.push_str(&format!(" seq#{}", self.seq));
        }
        if let Some(flow) = &self.flow {
            out.push_str(&format!(" flow={}", flow.render()));
        }
        for (k, v) in &self.fields {
            match v {
                FieldValue::U64(n) => out.push_str(&format!(" {k}={n}")),
                FieldValue::I64(n) => out.push_str(&format!(" {k}={n}")),
                FieldValue::Str(s) => out.push_str(&format!(" {k}={s}")),
            }
        }
        out
    }

    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// A string field by key (None when absent or non-string).
    pub fn field_str(&self, key: &str) -> Option<&str> {
        match self.field(key) {
            Some(FieldValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// An unsigned field by key (None when absent or non-integer).
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key) {
            Some(FieldValue::U64(n)) => Some(*n),
            Some(FieldValue::I64(n)) => u64::try_from(*n).ok(),
            _ => None,
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    json::push_str_value(&mut out, s);
    out
}

/// The per-trial ring buffer behind a live [`Tracer`].
#[derive(Debug)]
pub struct TraceBuf {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuf {
    /// A ring holding at most `capacity` records (clamped to ≥ 1).
    pub fn new(capacity: usize) -> TraceBuf {
        TraceBuf {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Append a record, evicting the oldest when full.
    pub fn push(&mut self, record: TraceRecord) {
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// Append merged records without the ring bound (the bound disciplines
    /// live per-trial recording; post-hoc archive merges keep everything).
    pub fn extend_unbounded<'a>(&mut self, records: impl IntoIterator<Item = &'a TraceRecord>) {
        self.records.extend(records.into_iter().cloned());
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Pre-resolved recording handle; a disabled tracer costs one null check
/// per decision site (same discipline as [`crate::Counter`]).
#[derive(Clone, Default)]
pub struct Tracer(pub(crate) Option<Rc<RefCell<TraceBuf>>>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("live", &self.is_live())
            .finish()
    }
}

impl Tracer {
    /// A handle that records nothing.
    pub fn disabled() -> Tracer {
        Tracer(None)
    }

    /// A standalone live tracer over a fresh ring (for direct use outside
    /// a [`crate::Telemetry`] handle, e.g. replay harnesses).
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer(Some(Rc::new(RefCell::new(TraceBuf::new(capacity)))))
    }

    /// Whether records are kept. Decision sites gate any string building
    /// or field assembly behind this so the disabled path is one branch.
    #[inline]
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Append a record (no-op when disabled).
    #[inline]
    pub fn record(&self, record: TraceRecord) {
        if let Some(buf) = &self.0 {
            buf.borrow_mut().push(record);
        }
    }

    /// Snapshot the held records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        match &self.0 {
            Some(buf) => buf.borrow().records().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Records evicted so far (0 when disabled).
    pub fn dropped(&self) -> u64 {
        self.0.as_ref().map(|b| b.borrow().dropped()).unwrap_or(0)
    }
}

/// Render records as JSON lines (one sorted-key object per line).
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96);
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// The first divergence between two record sequences.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDivergence {
    /// Index of the first record that differs.
    pub index: usize,
    /// The left sequence's record at `index` (None when exhausted).
    pub left: Option<TraceRecord>,
    /// The right sequence's record at `index` (None when exhausted).
    pub right: Option<TraceRecord>,
}

/// Align two traces record-by-record and return the first divergent
/// decision, or None when they are identical.
pub fn diff(left: &[TraceRecord], right: &[TraceRecord]) -> Option<TraceDivergence> {
    for i in 0..left.len().max(right.len()) {
        if left.get(i) != right.get(i) {
            return Some(TraceDivergence {
                index: i,
                left: left.get(i).cloned(),
                right: right.get(i).cloned(),
            });
        }
    }
    None
}

/// Render a divergence (or its absence) as human-readable lines.
pub fn render_diff(d: Option<&TraceDivergence>) -> String {
    match d {
        None => "traces identical\n".to_string(),
        Some(d) => {
            let mut out = format!("first divergent decision at record #{}:\n", d.index);
            match &d.left {
                Some(r) => out.push_str(&format!("  a: {}\n", r.render())),
                None => out.push_str("  a: (no record — trace ended)\n"),
            }
            match &d.right {
                Some(r) => out.push_str(&format!("  b: {}\n", r.render())),
                None => out.push_str("  b: (no record — trace ended)\n"),
            }
            out
        }
    }
}

/// Split a merged campaign trace into per-trial segments at
/// `campaign`/`trial_start` markers. Records before the first marker (if
/// any) form no segment of their own; each returned slice starts at its
/// marker.
pub fn split_trials(records: &[TraceRecord]) -> Vec<&[TraceRecord]> {
    let mut starts: Vec<usize> = records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.stage == "campaign" && r.kind == "trial_start")
        .map(|(i, _)| i)
        .collect();
    if starts.is_empty() {
        if records.is_empty() {
            return Vec::new();
        }
        return vec![records];
    }
    starts.push(records.len());
    starts.windows(2).map(|w| &records[w[0]..w[1]]).collect()
}

/// One trial's reconstructed causal chain.
#[derive(Debug, Clone)]
pub struct TrialChain {
    /// One-line summary: trial identity, verdict, step count, and the
    /// proximate cause.
    pub header: String,
    /// The final verdict string (None when the trial recorded none).
    pub verdict: Option<String>,
    /// Rendered salient decisions, in decision order.
    pub steps: Vec<String>,
}

/// Maximum steps rendered per chain before eliding.
const MAX_CHAIN_STEPS: usize = 16;

/// Reconstruct a causal chain per trial from a (merged) trace. Trials are
/// delimited by `campaign`/`trial_start` markers; a trace without markers
/// yields one chain. The header names the proximate cause: the last
/// censor action if any, else the last engine rule match, else the last
/// MVR decision.
pub fn explain(records: &[TraceRecord]) -> Vec<TrialChain> {
    split_trials(records)
        .into_iter()
        .map(explain_segment)
        .collect()
}

fn explain_segment(segment: &[TraceRecord]) -> TrialChain {
    let marker = segment
        .first()
        .filter(|r| r.stage == "campaign" && r.kind == "trial_start");
    let verdict_rec = segment
        .iter()
        .rev()
        .find(|r| r.stage == "campaign" && r.kind == "verdict");
    let verdict = verdict_rec
        .and_then(|r| r.field_str("verdict"))
        .map(str::to_string);
    let steps: Vec<&TraceRecord> = segment
        .iter()
        .filter(|r| !(r.stage == "campaign" && matches!(r.kind, "trial_start" | "verdict")))
        .collect();
    let cause = steps
        .iter()
        .rev()
        .find(|r| r.stage == "censor")
        .or_else(|| steps.iter().rev().find(|r| r.stage == "engine"))
        .or_else(|| steps.iter().rev().find(|r| r.stage == "mvr"))
        .or_else(|| steps.last());

    let mut header = String::new();
    match marker {
        Some(m) => {
            header.push_str(&format!("trial={}", m.field_u64("trial").unwrap_or(0)));
            for key in ["method", "policy", "target"] {
                if let Some(v) = m.field_str(key) {
                    header.push_str(&format!(" {key}={v}"));
                }
            }
        }
        None => header.push_str("trace"),
    }
    header.push_str(&format!(
        " verdict={}",
        verdict.as_deref().unwrap_or("(none)")
    ));
    header.push_str(&format!(" steps={}", steps.len()));
    match cause {
        Some(c) => header.push_str(&format!(" because={}.{}@t={}ns", c.stage, c.kind, c.t_ns)),
        None => header.push_str(" because=no-recorded-decisions"),
    }

    let mut rendered: Vec<String> = steps
        .iter()
        .take(MAX_CHAIN_STEPS)
        .map(|r| r.render())
        .collect();
    if steps.len() > MAX_CHAIN_STEPS {
        rendered.push(format!("… (+{} more)", steps.len() - MAX_CHAIN_STEPS));
    }
    TrialChain {
        header,
        verdict,
        steps: rendered,
    }
}

/// Render chains as text: one header line per trial, steps indented.
pub fn render_chains(chains: &[TrialChain]) -> String {
    let mut out = String::new();
    for chain in chains {
        out.push_str(&chain.header);
        out.push('\n');
        for step in &chain.steps {
            out.push_str("  ");
            out.push_str(step);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, stage: &'static str, kind: &'static str) -> TraceRecord {
        TraceRecord {
            t_ns: t,
            seq: 0,
            stage,
            kind,
            flow: None,
            fields: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut buf = TraceBuf::new(2);
        buf.push(rec(1, "link", "drop"));
        buf.push(rec(2, "link", "drop"));
        buf.push(rec(3, "link", "drop"));
        assert_eq!(buf.dropped(), 1);
        let times: Vec<u64> = buf.records().map(|r| r.t_ns).collect();
        assert_eq!(times, vec![2, 3]);
    }

    #[test]
    fn capacity_env_parses_positive_integers_only() {
        assert_eq!(capacity_from_env(None), None);
        assert_eq!(capacity_from_env(Some(String::new())), None);
        assert_eq!(capacity_from_env(Some("0".into())), None);
        assert_eq!(capacity_from_env(Some("abc".into())), None);
        assert_eq!(capacity_from_env(Some("128".into())), Some(128));
        assert_eq!(capacity_from_env(Some(" 64 ".into())), Some(64));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_live());
        t.record(rec(1, "link", "drop"));
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn json_keys_are_sorted() {
        let mut r = rec(7, "stream", "ooo_held");
        r.seq = 3;
        r.flow = Some(TraceFlow {
            src: Ipv4Addr::new(10, 0, 1, 2),
            src_port: 4000,
            dst: Ipv4Addr::new(93, 184, 0, 10),
            dst_port: 80,
        });
        r.fields.push(("bytes", 5u64.into()));
        let j = r.to_json();
        assert_eq!(
            j,
            "{\"bytes\":5,\"flow\":\"10.0.1.2:4000->93.184.0.10:80\",\
             \"kind\":\"ooo_held\",\"seq\":3,\"stage\":\"stream\",\"t_ns\":7}"
        );
    }

    #[test]
    fn diff_finds_first_divergence() {
        let a = vec![rec(1, "link", "drop"), rec(2, "stream", "ooo_held")];
        let b = vec![rec(1, "link", "drop"), rec(2, "stream", "ooo_dropped")];
        let d = diff(&a, &b).expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.left.as_ref().map(|r| r.kind), Some("ooo_held"));
        assert_eq!(d.right.as_ref().map(|r| r.kind), Some("ooo_dropped"));
        assert!(diff(&a, &a).is_none());
        let shorter = diff(&a[..1], &a).expect("length divergence");
        assert_eq!(shorter.index, 1);
        assert!(shorter.left.is_none());
    }

    #[test]
    fn explain_groups_by_trial_marker() {
        let mut records = Vec::new();
        let mut marker = rec(0, "campaign", "trial_start");
        marker.fields.push(("trial", 0u64.into()));
        marker.fields.push(("method", "overt".into()));
        records.push(marker);
        records.push(rec(5, "mvr", "retain"));
        records.push(rec(9, "censor", "rst_pair"));
        let mut verdict = rec(10, "campaign", "verdict");
        verdict.fields.push(("verdict", "Blocked".into()));
        records.push(verdict);
        let mut marker2 = rec(20, "campaign", "trial_start");
        marker2.fields.push(("trial", 1u64.into()));
        records.push(marker2);
        records.push(rec(25, "mvr", "discard"));

        let chains = explain(&records);
        assert_eq!(chains.len(), 2);
        assert!(chains[0].header.contains("trial=0"));
        assert!(chains[0].header.contains("verdict=Blocked"));
        assert!(chains[0].header.contains("because=censor.rst_pair@t=9ns"));
        assert_eq!(chains[0].steps.len(), 2);
        assert!(chains[1].header.contains("verdict=(none)"));
        assert!(chains[1].header.contains("because=mvr.discard"));
    }

    #[test]
    fn jsonl_is_one_line_per_record() {
        let records = vec![rec(1, "link", "drop"), rec(2, "mvr", "retain")];
        let out = to_jsonl(&records);
        assert_eq!(out.lines().count(), 2);
        assert!(out.starts_with("{\"kind\":\"drop\""));
    }
}
