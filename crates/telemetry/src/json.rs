//! Minimal deterministic JSON emission.
//!
//! The workspace is dependency-free, so this module hand-rolls the small
//! subset of JSON the telemetry layer needs: objects with string keys,
//! string values, integer values, and arrays thereof. All registry values
//! are integers (no floats), so output is byte-identical across platforms.

/// Escape `s` for use inside a JSON string literal (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Append the escaped form of `s` to `out` (without quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Append `"s"` (quoted, escaped) to `out`.
pub fn push_str_value(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

/// Append `"key":` to `out`.
pub fn push_key(out: &mut String, key: &str) {
    push_str_value(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn key_and_value_forms() {
        let mut s = String::new();
        push_key(&mut s, "k");
        push_str_value(&mut s, "v");
        assert_eq!(s, "\"k\":\"v\"");
    }
}
