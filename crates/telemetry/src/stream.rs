//! Order-independent incremental registry merging for streaming runs.
//!
//! [`Registry::merge`] is order-sensitive in two places: gauges take the
//! value of the *last* merged snapshot, and flight-recorder trace records
//! append in merge order. The campaign engine hides that by merging
//! per-trial registries in trial-index order after all trials finish — an
//! end-of-run barrier a streaming run service cannot afford, because under
//! work stealing trials complete in arbitrary order and a 1M-trial run
//! cannot buffer 1M registries to sort them.
//!
//! [`StreamMerger`] absorbs per-trial deltas in **completion order** while
//! producing the exact registry the sequential index-order discipline
//! would: commutative pieces (counters, histograms) fold immediately into
//! bounded maps; order-sensitive pieces are tagged with their source
//! index — gauges keep the highest-index writer (what "last merge wins"
//! means under index order), spans and events sort by their canonical key
//! with the source index as tie-break (what repeated stable re-sorting
//! produces), and trace records flatten in source-index order at
//! [`StreamMerger::finish`].

use std::collections::BTreeMap;

use crate::hist::Histogram;
use crate::registry::{Event, Registry, SpanRecord};
use crate::trace::TraceRecord;

/// Absorbs per-source [`Registry`] deltas in any order and finishes into
/// the registry that merging those deltas in ascending source order would
/// produce (see module docs for the per-kind argument).
///
/// Each source index must be absorbed at most once.
#[derive(Debug, Default)]
pub struct StreamMerger {
    counters: BTreeMap<String, u64>,
    /// Gauge name → (highest source index that wrote it, its value).
    gauges: BTreeMap<String, (u64, i64)>,
    histograms: BTreeMap<String, Histogram>,
    spans: Vec<(u64, SpanRecord)>,
    events: Vec<(u64, Event)>,
    trace: BTreeMap<u64, Vec<TraceRecord>>,
    absorbed: usize,
}

impl StreamMerger {
    /// An empty merger.
    pub fn new() -> StreamMerger {
        StreamMerger::default()
    }

    /// Fold the delta recorded by source `src` (a trial index) into the
    /// running merge. Call order does not matter; the result depends only
    /// on the set of `(src, delta)` pairs absorbed.
    pub fn absorb(&mut self, src: u64, delta: &Registry) {
        self.absorbed += 1;
        for (name, v) in &delta.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &delta.gauges {
            let entry = self.gauges.entry(name.clone()).or_insert((src, *v));
            if src >= entry.0 {
                *entry = (src, *v);
            }
        }
        for (name, h) in &delta.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
        self.spans
            .extend(delta.spans.iter().map(|s| (src, s.clone())));
        self.events
            .extend(delta.events.iter().map(|e| (src, e.clone())));
        if !delta.trace.is_empty() {
            self.trace
                .entry(src)
                .or_default()
                .extend(delta.trace.iter().cloned());
        }
    }

    /// Deltas absorbed so far.
    pub fn absorbed(&self) -> usize {
        self.absorbed
    }

    /// Resolve the order-sensitive pieces and return the merged registry —
    /// byte-identical (via `to_json`/`trace_jsonl`) to folding the same
    /// deltas into an empty [`Registry`] in ascending source order.
    pub fn finish(self) -> Registry {
        let mut spans = self.spans;
        spans.sort_by(|(sa, a), (sb, b)| (a.start_ns, &a.name, sa).cmp(&(b.start_ns, &b.name, sb)));
        let mut events = self.events;
        events.sort_by(|(sa, a), (sb, b)| (a.t_ns, &a.kind, sa).cmp(&(b.t_ns, &b.kind, sb)));
        Registry {
            counters: self.counters,
            gauges: self
                .gauges
                .into_iter()
                .map(|(name, (_, v))| (name, v))
                .collect(),
            histograms: self.histograms,
            spans: spans.into_iter().map(|(_, s)| s).collect(),
            events: events.into_iter().map(|(_, e)| e).collect(),
            trace: self.trace.into_values().flatten().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FieldValue;

    /// A per-trial delta with deliberate cross-trial collisions: same
    /// counter names, same gauge names, colliding span/event timestamps.
    fn delta(i: u64) -> Registry {
        let mut r = Registry::new();
        r.counters.insert("campaign.trials".into(), 1);
        r.counters.insert(format!("mod{}.hits", i % 3), i + 1);
        r.gauges.insert("queue.depth".into(), i as i64 - 2);
        if i.is_multiple_of(2) {
            r.gauges.insert("even.only".into(), i as i64);
        }
        let mut h = Histogram::new();
        h.observe(i);
        h.observe(i * 17);
        r.histograms.insert("latency".into(), h);
        r.spans.push(SpanRecord {
            name: "trial".into(),
            start_ns: (i % 4) * 100, // collide start times across trials
            end_ns: (i % 4) * 100 + i,
        });
        r.events.push(Event {
            t_ns: (i % 2) * 50, // collide event times across trials
            kind: "verdict".into(),
            fields: vec![("trial".into(), FieldValue::U64(i))],
        });
        r.trace.push(TraceRecord {
            t_ns: i,
            seq: i,
            stage: "campaign",
            kind: "trial_start",
            flow: None,
            fields: vec![("trial", FieldValue::U64(i))],
        });
        r
    }

    fn sequential(n: u64) -> Registry {
        let mut merged = Registry::new();
        for i in 0..n {
            merged.merge(&delta(i));
        }
        merged
    }

    #[test]
    fn completion_order_absorb_equals_index_order_merge() {
        let n = 12u64;
        // A scrambled completion order a work-stealing run could produce.
        let mut order: Vec<u64> = (0..n).collect();
        order.reverse();
        order.swap(0, 7);
        order.swap(3, 11);
        let mut merger = StreamMerger::new();
        for &i in &order {
            merger.absorb(i, &delta(i));
        }
        assert_eq!(merger.absorbed(), n as usize);
        let streamed = merger.finish();
        let reference = sequential(n);
        assert_eq!(streamed, reference, "structural equality");
        assert_eq!(streamed.to_json(), reference.to_json());
        assert_eq!(streamed.trace_jsonl(), reference.trace_jsonl());
    }

    #[test]
    fn gauges_take_the_highest_source_writer() {
        let mut merger = StreamMerger::new();
        merger.absorb(5, &delta(5));
        merger.absorb(2, &delta(2));
        merger.absorb(9, &delta(9));
        let r = merger.finish();
        assert_eq!(r.gauge("queue.depth"), 9 - 2);
        // `even.only` was last written (in index order) by source 2.
        assert_eq!(r.gauge("even.only"), 2);
    }

    #[test]
    fn empty_merger_finishes_empty() {
        let r = StreamMerger::new().finish();
        assert!(r.is_empty());
    }
}
