#![warn(missing_docs)]
// Library paths must surface failures as typed errors or documented
// invariant expects — never bare unwraps (test code is exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # underradar-censor
//!
//! Censorship-system models, built on the Snort-like engine in
//! `underradar-ids` exactly as §3.2.1 of the paper describes ("we created
//! Snort rules to mimic known censorship mechanisms").
//!
//! The crate provides the blocking mechanisms the paper measures:
//!
//! * **Keyword RST injection** ([`tap::TapCensor`]) — the Great Firewall's
//!   signature move: an off-path observer that injects RSTs at both
//!   endpoints when a blocked keyword crosses the wire (Clayton et al.,
//!   cited as \[10\] in the paper).
//! * **DNS injection** ([`dns::DnsInjector`], wired into the tap censor) —
//!   forged A answers for blocked names, for **both A and MX queries**
//!   (the paper validated exactly this against twitter.com and youtube.com
//!   from a vantage point in China, §3.2.3).
//! * **IP/port blackholing and HTTP URL filtering**
//!   ([`inline::InlineCensor`]) — an in-path filtering element that drops
//!   traffic to blocked addresses/ports and kills requests for blocked
//!   URLs.
//!
//! All mechanisms are configured through one [`policy::CensorPolicy`],
//! which also compiles to the equivalent Snort-dialect ruleset — the
//! "transaction-focused" censor the measurement techniques must trigger.

pub mod dns;
pub mod inline;
pub mod policy;
pub mod tap;

pub use dns::DnsInjector;
pub use inline::InlineCensor;
pub use policy::{CensorAction, CensorActionKind, CensorPolicy};
pub use tap::TapCensor;
