//! DNS injection.
//!
//! The GFC observes DNS queries and injects forged responses that race the
//! legitimate answer. Two properties from the literature (and validated by
//! the paper, §3.2.3) are modeled precisely:
//!
//! 1. Injection triggers on the *query name*, for **A and MX queries
//!    alike** — and the forged answer always carries an **A record**, even
//!    when the question was MX. This mismatch is the fingerprint the
//!    paper's spam measurement detects.
//! 2. The injected response arrives before the real one (the injector is
//!    topologically closer), so the client's resolver accepts the forgery.

use std::net::Ipv4Addr;

use underradar_netsim::packet::Packet;
use underradar_protocols::dns::{DnsMessage, DnsName, QType, Rcode, Record, RecordData};

use crate::policy::CensorPolicy;

/// The DNS-injection component of a censor.
#[derive(Debug)]
pub struct DnsInjector {
    poison_ip: Ipv4Addr,
    nxdomain: bool,
    /// Number of forged responses injected.
    pub injections: u64,
}

impl DnsInjector {
    /// Build from the policy's poison address and forgery style.
    pub fn new(policy: &CensorPolicy) -> DnsInjector {
        DnsInjector {
            poison_ip: policy.dns_poison_ip,
            nxdomain: policy.dns_nxdomain,
            injections: 0,
        }
    }

    /// Inspect an observed packet. If it is a DNS query (UDP/53) for a
    /// blocked name with qtype A or MX, forge the injected response packet
    /// (addressed from the queried server back to the client).
    ///
    /// Returns the forged packet and the (name, qtype) that triggered it.
    pub fn inspect(
        &mut self,
        policy: &CensorPolicy,
        pkt: &Packet,
    ) -> Option<(Packet, DnsName, QType)> {
        let udp = pkt.as_udp()?;
        if udp.dst_port != 53 {
            return None;
        }
        let query = DnsMessage::decode(&udp.payload).ok()?;
        if query.is_response {
            return None;
        }
        let q = query.question()?;
        if !matches!(q.qtype, QType::A | QType::Mx) {
            return None;
        }
        if !policy.is_domain_blocked(&q.name) {
            return None;
        }
        // Forge: correct id, the question echoed, and either a bogus A
        // record (GFC style — regardless of whether the question was A or
        // MX) or a bare NXDOMAIN (ISP-filter style).
        let forged = if self.nxdomain {
            DnsMessage::response_to(&query, Rcode::NxDomain)
        } else {
            let mut resp = DnsMessage::response_to(&query, Rcode::NoError);
            resp.answers = vec![Record {
                name: q.name.clone(),
                ttl: 300,
                data: RecordData::A(self.poison_ip),
            }];
            resp
        };
        let reply = Packet::udp(pkt.dst, pkt.src, 53, udp.src_port, forged.encode());
        self.injections += 1;
        Some((reply, q.name.clone(), q.qtype))
    }
}

/// Heuristics for *detecting* injection from the measurement side: an MX
/// question answered with only A records is the GFC's tell.
pub fn response_looks_injected(
    query_qtype: QType,
    response: &DnsMessage,
    poison_pool: &[Ipv4Addr],
) -> bool {
    if query_qtype == QType::Mx {
        let has_mx = response
            .answers
            .iter()
            .any(|r| matches!(r.data, RecordData::Mx { .. }));
        let has_a = !response.a_records().is_empty();
        if !has_mx && has_a {
            return true;
        }
    }
    response.a_records().iter().any(|a| poison_pool.contains(a))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).expect("name")
    }

    fn setup() -> (CensorPolicy, DnsInjector) {
        let policy = CensorPolicy::new()
            .block_domain(&name("twitter.com"))
            .block_domain(&name("youtube.com"));
        let injector = DnsInjector::new(&policy);
        (policy, injector)
    }

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(10, 0, 2, 53);

    fn query_packet(qname: &str, qtype: QType) -> Packet {
        let q = DnsMessage::query(0x4242, name(qname), qtype);
        Packet::udp(CLIENT, RESOLVER, 5555, 53, q.encode())
    }

    #[test]
    fn injects_for_blocked_a_query() {
        let (policy, mut inj) = setup();
        let pkt = query_packet("twitter.com", QType::A);
        let (reply, qname, qtype) = inj.inspect(&policy, &pkt).expect("injection");
        assert_eq!(qname, name("twitter.com"));
        assert_eq!(qtype, QType::A);
        assert_eq!(reply.src, RESOLVER, "forged from the queried server");
        assert_eq!(reply.dst, CLIENT);
        let msg = DnsMessage::decode(&reply.as_udp().expect("udp").payload).expect("dns");
        assert_eq!(msg.id, 0x4242, "transaction id copied");
        assert_eq!(msg.a_records(), vec![policy.dns_poison_ip]);
    }

    #[test]
    fn injects_bad_a_for_mx_query_the_papers_observation() {
        let (policy, mut inj) = setup();
        let pkt = query_packet("youtube.com", QType::Mx);
        let (reply, _, qtype) = inj.inspect(&policy, &pkt).expect("injection");
        assert_eq!(qtype, QType::Mx);
        let msg = DnsMessage::decode(&reply.as_udp().expect("udp").payload).expect("dns");
        assert!(msg.mx_records().is_empty(), "no MX in the forgery");
        assert_eq!(
            msg.a_records(),
            vec![policy.dns_poison_ip],
            "bad A injected for MX query"
        );
        // And the measurement-side detector flags it.
        assert!(response_looks_injected(QType::Mx, &msg, &[]));
        assert!(response_looks_injected(
            QType::Mx,
            &msg,
            &[policy.dns_poison_ip]
        ));
    }

    #[test]
    fn subdomains_of_blocked_zone_trigger() {
        let (policy, mut inj) = setup();
        let pkt = query_packet("api.twitter.com", QType::A);
        assert!(inj.inspect(&policy, &pkt).is_some());
        assert_eq!(inj.injections, 1);
    }

    #[test]
    fn unblocked_names_pass() {
        let (policy, mut inj) = setup();
        let pkt = query_packet("bbc.com", QType::A);
        assert!(inj.inspect(&policy, &pkt).is_none());
        assert_eq!(inj.injections, 0);
    }

    #[test]
    fn non_a_mx_queries_pass() {
        let (policy, mut inj) = setup();
        let pkt = query_packet("twitter.com", QType::Txt);
        assert!(inj.inspect(&policy, &pkt).is_none());
        let pkt = query_packet("twitter.com", QType::Ns);
        assert!(inj.inspect(&policy, &pkt).is_none());
    }

    #[test]
    fn responses_and_non_dns_traffic_pass() {
        let (policy, mut inj) = setup();
        // A response (even for a blocked name) is not re-injected.
        let q = DnsMessage::query(1, name("twitter.com"), QType::A);
        let mut resp = DnsMessage::response_to(&q, Rcode::NoError);
        resp.answers = vec![];
        let pkt = Packet::udp(RESOLVER, CLIENT, 53, 5555, resp.encode());
        assert!(inj.inspect(&policy, &pkt).is_none());
        // Non-53 UDP is ignored.
        let other = Packet::udp(CLIENT, RESOLVER, 5555, 5353, q.encode());
        assert!(inj.inspect(&policy, &other).is_none());
        // Garbage payload is ignored.
        let garbage = Packet::udp(CLIENT, RESOLVER, 5555, 53, vec![0xff; 7]);
        assert!(inj.inspect(&policy, &garbage).is_none());
    }

    #[test]
    fn nxdomain_mode_forges_denials() {
        let policy = CensorPolicy::new()
            .block_domain(&name("twitter.com"))
            .with_dns_nxdomain();
        let mut inj = DnsInjector::new(&policy);
        let pkt = query_packet("twitter.com", QType::A);
        let (reply, _, _) = inj.inspect(&policy, &pkt).expect("injection");
        let msg = DnsMessage::decode(&reply.as_udp().expect("udp").payload).expect("dns");
        assert_eq!(msg.rcode, underradar_protocols::dns::Rcode::NxDomain);
        assert!(msg.answers.is_empty());
        assert_eq!(msg.id, 0x4242);
    }

    #[test]
    fn legit_mx_response_not_flagged() {
        let q = DnsMessage::query(1, name("example.com"), QType::Mx);
        let mut resp = DnsMessage::response_to(&q, Rcode::NoError);
        resp.answers = vec![Record {
            name: name("example.com"),
            ttl: 300,
            data: RecordData::Mx {
                preference: 10,
                exchange: name("mail.example.com"),
            },
        }];
        assert!(!response_looks_injected(
            QType::Mx,
            &resp,
            &[Ipv4Addr::new(203, 0, 113, 113)]
        ));
    }
}
