//! Censorship policy: what is blocked and how.
//!
//! One policy object configures every censor deployment in the testbed.
//! It can also render itself as a Snort-dialect ruleset (the paper built
//! its reference censor from such rules), which the IDS engine compiles.

use std::fmt;
use std::net::Ipv4Addr;

use underradar_netsim::addr::Cidr;
use underradar_netsim::time::SimTime;
use underradar_protocols::dns::DnsName;

/// What kind of censorship event occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CensorActionKind {
    /// RST pair injected because a keyword matched.
    KeywordRst {
        /// The keyword that matched.
        keyword: String,
    },
    /// Forged DNS answer injected.
    DnsInjection {
        /// The blocked name queried.
        name: DnsName,
        /// The query type as a number (1 = A, 15 = MX).
        qtype: u16,
    },
    /// A packet to a blocked address was dropped (inline only).
    IpDrop {
        /// The blocked destination.
        dst: Ipv4Addr,
    },
    /// A packet to a blocked port was dropped (inline only).
    PortDrop {
        /// The blocked destination.
        dst: Ipv4Addr,
        /// The blocked port.
        port: u16,
    },
    /// An HTTP request for a blocked URL was killed (inline only).
    UrlBlock {
        /// The URL substring that matched.
        url_fragment: String,
    },
}

impl CensorActionKind {
    /// Stable machine-readable label, used as the telemetry metric suffix
    /// (`<prefix>.actions.<label>`).
    pub fn label(&self) -> &'static str {
        match self {
            CensorActionKind::KeywordRst { .. } => "keyword_rst",
            CensorActionKind::DnsInjection { .. } => "dns_injection",
            CensorActionKind::IpDrop { .. } => "ip_drop",
            CensorActionKind::PortDrop { .. } => "port_drop",
            CensorActionKind::UrlBlock { .. } => "url_block",
        }
    }
}

/// Export a logged action stream into `tel`: one counter per blocking
/// mechanism under `<prefix>.actions.<label>`, plus one structured event
/// per action keyed to its simulated time. The counters are idempotent;
/// the events append, so call this once per run.
pub fn export_actions(
    tel: &underradar_telemetry::Telemetry,
    prefix: &str,
    actions: &[CensorAction],
) {
    if !tel.is_enabled() {
        return;
    }
    let mut counts: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for a in actions {
        *counts.entry(a.kind.label()).or_insert(0) += 1;
    }
    for (label, n) in counts {
        tel.set_counter(&format!("{prefix}.actions.{label}"), n);
    }
    for a in actions {
        tel.event(
            a.time.as_nanos(),
            &format!("{prefix}.action"),
            &[
                ("kind", a.kind.label().into()),
                ("client", a.client.to_string().into()),
            ],
        );
    }
}

/// A logged censorship action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CensorAction {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: CensorActionKind,
    /// The client whose traffic triggered it. The censor records this only
    /// transiently (transaction-focused, §2.1) — the field exists so
    /// *experiments* can check ground truth, not because the censor
    /// attributes users.
    pub client: Ipv4Addr,
}

/// The complete blocking policy.
#[derive(Debug, Clone)]
pub struct CensorPolicy {
    /// Keywords whose appearance in TCP payload triggers RST injection.
    pub keywords: Vec<String>,
    /// Domains whose DNS queries (A and MX) receive forged answers.
    /// Matching is by zone: `twitter.com` also blocks `www.twitter.com`.
    pub dns_blocked: Vec<DnsName>,
    /// The bogus address injected in forged answers (the GFC injects
    /// addresses from a small stable pool; we model one).
    pub dns_poison_ip: Ipv4Addr,
    /// Forge NXDOMAIN answers instead of bogus A records — the style some
    /// ISP-level censors use instead of the GFC's poison addresses.
    pub dns_nxdomain: bool,
    /// Destination prefixes that are blackholed (inline deployments).
    pub ip_blocked: Vec<Cidr>,
    /// `(prefix, port)` pairs that are blackholed (inline deployments).
    pub port_blocked: Vec<(Cidr, u16)>,
    /// URL substrings whose HTTP requests are blocked (inline deployments).
    pub url_blocked: Vec<String>,
}

impl Default for CensorPolicy {
    fn default() -> Self {
        CensorPolicy {
            keywords: Vec::new(),
            dns_blocked: Vec::new(),
            dns_poison_ip: Ipv4Addr::new(203, 0, 113, 113),
            dns_nxdomain: false,
            ip_blocked: Vec::new(),
            port_blocked: Vec::new(),
            url_blocked: Vec::new(),
        }
    }
}

impl CensorPolicy {
    /// An empty policy (censors nothing).
    pub fn new() -> CensorPolicy {
        CensorPolicy::default()
    }

    /// Builder: add a blocked keyword.
    pub fn block_keyword(mut self, kw: &str) -> Self {
        self.keywords.push(kw.to_string());
        self
    }

    /// Builder: add a DNS-blocked zone.
    pub fn block_domain(mut self, name: &DnsName) -> Self {
        self.dns_blocked.push(name.clone());
        self
    }

    /// Builder: switch DNS censorship to forged NXDOMAIN answers.
    pub fn with_dns_nxdomain(mut self) -> Self {
        self.dns_nxdomain = true;
        self
    }

    /// Builder: blackhole a destination prefix.
    pub fn block_ip(mut self, prefix: Cidr) -> Self {
        self.ip_blocked.push(prefix);
        self
    }

    /// Builder: blackhole a (prefix, port) pair.
    pub fn block_port(mut self, prefix: Cidr, port: u16) -> Self {
        self.port_blocked.push((prefix, port));
        self
    }

    /// Builder: block URLs containing a substring.
    pub fn block_url(mut self, fragment: &str) -> Self {
        self.url_blocked.push(fragment.to_string());
        self
    }

    /// Whether a DNS name is blocked (zone match).
    pub fn is_domain_blocked(&self, name: &DnsName) -> bool {
        self.dns_blocked.iter().any(|z| name.is_subdomain_of(z))
    }

    /// Whether a destination address is blackholed.
    pub fn is_ip_blocked(&self, dst: Ipv4Addr) -> bool {
        self.ip_blocked.iter().any(|c| c.contains(dst))
    }

    /// Whether a (destination, port) is blackholed.
    pub fn is_port_blocked(&self, dst: Ipv4Addr, port: u16) -> bool {
        self.port_blocked
            .iter()
            .any(|(c, p)| *p == port && c.contains(dst))
    }

    /// The first keyword present in `payload`, if any (case-insensitive).
    pub fn matching_keyword(&self, payload: &[u8]) -> Option<&str> {
        self.keywords.iter().find_map(|kw| {
            crate::tap::contains_nocase(payload, kw.as_bytes()).then_some(kw.as_str())
        })
    }

    /// The first blocked URL fragment present in `payload`, if any.
    pub fn matching_url(&self, payload: &[u8]) -> Option<&str> {
        self.url_blocked.iter().find_map(|frag| {
            crate::tap::contains_nocase(payload, frag.as_bytes()).then_some(frag.as_str())
        })
    }

    /// Render the policy as the equivalent Snort-dialect ruleset (what the
    /// paper's reference censor was configured with). Keyword rules are
    /// stream rules so split keywords still match; DNS rules match the
    /// query name in wire form.
    pub fn to_snort_rules(&self) -> String {
        let mut out = String::from("# generated censor ruleset\n");
        let mut sid = 3_000_000u32;
        for kw in &self.keywords {
            sid += 1;
            out.push_str(&format!(
                "reject tcp any any -> any any (msg:\"censor keyword {kw}\"; flow:to_server; content:\"{kw}\"; nocase; sid:{sid};)\n"
            ));
        }
        for name in &self.dns_blocked {
            sid += 1;
            // Wire-format name: length-prefixed labels.
            let mut pattern = String::new();
            for label in name.labels() {
                pattern.push_str(&format!("|{:02x}|", label.len()));
                pattern.push_str(&String::from_utf8_lossy(label));
            }
            out.push_str(&format!(
                "reject udp any any -> any 53 (msg:\"censor dns {name}\"; content:\"{pattern}\"; nocase; sid:{sid};)\n"
            ));
        }
        for prefix in &self.ip_blocked {
            sid += 1;
            out.push_str(&format!(
                "drop ip any any -> {prefix} any (msg:\"censor blackhole {prefix}\"; sid:{sid};)\n"
            ));
        }
        for (prefix, port) in &self.port_blocked {
            sid += 1;
            out.push_str(&format!(
                "drop tcp any any -> {prefix} {port} (msg:\"censor port {prefix}:{port}\"; sid:{sid};)\n"
            ));
        }
        for frag in &self.url_blocked {
            sid += 1;
            out.push_str(&format!(
                "drop tcp any any -> any 80 (msg:\"censor url {frag}\"; content:\"{frag}\"; nocase; sid:{sid};)\n"
            ));
        }
        out
    }
}

impl fmt::Display for CensorPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "policy: {} keywords, {} domains, {} prefixes, {} ports, {} urls",
            self.keywords.len(),
            self.dns_blocked.len(),
            self.ip_blocked.len(),
            self.port_blocked.len(),
            self.url_blocked.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).expect("name")
    }

    fn policy() -> CensorPolicy {
        CensorPolicy::new()
            .block_keyword("falun")
            .block_domain(&name("twitter.com"))
            .block_ip(Cidr::slash24(Ipv4Addr::new(198, 51, 100, 0)))
            .block_port(Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 0), 443)
            .block_url("/banned-page")
    }

    #[test]
    fn domain_zone_matching() {
        let p = policy();
        assert!(p.is_domain_blocked(&name("twitter.com")));
        assert!(p.is_domain_blocked(&name("api.twitter.com")));
        assert!(!p.is_domain_blocked(&name("nottwitter.com")));
        assert!(!p.is_domain_blocked(&name("bbc.com")));
    }

    #[test]
    fn ip_and_port_matching() {
        let p = policy();
        assert!(p.is_ip_blocked(Ipv4Addr::new(198, 51, 100, 77)));
        assert!(!p.is_ip_blocked(Ipv4Addr::new(198, 51, 101, 77)));
        assert!(p.is_port_blocked(Ipv4Addr::new(8, 8, 8, 8), 443));
        assert!(!p.is_port_blocked(Ipv4Addr::new(8, 8, 8, 8), 80));
    }

    #[test]
    fn keyword_and_url_matching() {
        let p = policy();
        assert_eq!(p.matching_keyword(b"GET /FaLuN news"), Some("falun"));
        assert_eq!(p.matching_keyword(b"GET /ok"), None);
        assert_eq!(
            p.matching_url(b"GET /banned-page HTTP/1.0"),
            Some("/banned-page")
        );
        assert_eq!(p.matching_url(b"GET /fine HTTP/1.0"), None);
    }

    #[test]
    fn snort_rendering_parses_back() {
        use underradar_ids::parser::{parse_ruleset, VarTable};
        let text = policy().to_snort_rules();
        let rules = parse_ruleset(&text, &VarTable::new()).expect("generated rules parse");
        assert_eq!(rules.len(), 5);
        // The DNS rule carries the length-prefixed wire pattern.
        let dns_rule = rules
            .iter()
            .find(|r| r.msg.contains("dns"))
            .expect("dns rule");
        let pat = &dns_rule.contents[0].pattern;
        assert_eq!(pat[0], 7); // len("twitter")
        assert_eq!(&pat[1..8], b"twitter");
    }

    #[test]
    fn empty_policy_blocks_nothing() {
        let p = CensorPolicy::new();
        assert!(!p.is_domain_blocked(&name("anything.example")));
        assert!(!p.is_ip_blocked(Ipv4Addr::new(1, 2, 3, 4)));
        assert_eq!(p.matching_keyword(b"whatever"), None);
    }
}
