//! The in-path (inline) censor.
//!
//! Some blocking mechanisms cannot be done off-path: blackholing IPs and
//! ports, and reliably killing HTTP requests for blocked URLs. The inline
//! censor is a two-interface bump-in-the-wire: traffic entering interface 0
//! leaves interface 1 and vice versa, unless the policy says drop.
//!
//! For URL/keyword blocks it behaves like commercial filters: drop the
//! offending request *and* inject a RST back at the client so the browser
//! fails fast (rather than hanging until timeout).

use std::any::Any;

use underradar_ids::stream::{FlowId, ReassemblyConfig, StreamReassembler};
use underradar_netsim::node::{IfaceId, Node, NodeCtx};
use underradar_netsim::packet::Packet;
use underradar_netsim::telemetry::{TraceRecord, Tracer};
use underradar_netsim::wire::tcp::TcpFlags;

use crate::policy::{CensorAction, CensorActionKind, CensorPolicy};

/// Counters for the inline censor.
#[derive(Debug, Clone, Copy, Default)]
pub struct InlineCensorStats {
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped by IP blackholing.
    pub ip_drops: u64,
    /// Packets dropped by port blackholing.
    pub port_drops: u64,
    /// Requests killed by URL filtering.
    pub url_blocks: u64,
}

/// Per-flow "already blocked a URL" marker, dense by [`FlowId::index`].
/// Valid only while the generation matches the presented handle — a
/// recycled arena slot reads as unfired without any teardown bookkeeping,
/// so the inline censor needs no removal log at all.
#[derive(Debug, Clone, Copy, Default)]
struct UrlFired {
    gen: u32,
    fired: bool,
}

/// A two-port inline censor. Wire interface 0 toward the clients and
/// interface 1 toward the wider network.
pub struct InlineCensor {
    name: String,
    policy: CensorPolicy,
    reassembler: StreamReassembler,
    fired_urls: Vec<UrlFired>,
    actions: Vec<CensorAction>,
    stats: InlineCensorStats,
    tracer: Tracer,
}

impl InlineCensor {
    /// Build from a policy with default reassembly limits.
    pub fn new(name: &str, policy: CensorPolicy) -> InlineCensor {
        Self::with_reassembly(name, policy, ReassemblyConfig::default())
    }

    /// Build from a policy with explicit reassembly limits (flow-table
    /// capacity and per-direction buffering caps).
    pub fn with_reassembly(
        name: &str,
        policy: CensorPolicy,
        cfg: ReassemblyConfig,
    ) -> InlineCensor {
        InlineCensor {
            name: name.to_string(),
            policy,
            reassembler: StreamReassembler::with_config(cfg),
            fired_urls: Vec::new(),
            actions: Vec::new(),
            stats: InlineCensorStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    fn url_fired(&self, id: FlowId) -> bool {
        self.fired_urls
            .get(id.index())
            .is_some_and(|f| f.fired && f.gen == id.generation())
    }

    /// Attach a flight-recorder trace. Records one decision per drop or
    /// block (stage `censor`); the private reassembler records its own
    /// stream decisions.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.reassembler.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Logged actions (ground truth for experiments).
    pub fn actions(&self) -> &[CensorAction] {
        &self.actions
    }

    /// Counters.
    pub fn stats(&self) -> InlineCensorStats {
        self.stats
    }

    /// Mirror inline-censor totals into `tel` under `censor.inline.*`:
    /// forward/drop counters, per-mechanism action counts, and one
    /// structured event per logged action. Call once, at the end of a run
    /// (the events append).
    pub fn export_telemetry(&self, tel: &underradar_telemetry::Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        tel.set_counter("censor.inline.forwarded", self.stats.forwarded);
        tel.set_counter("censor.inline.ip_drops", self.stats.ip_drops);
        tel.set_counter("censor.inline.port_drops", self.stats.port_drops);
        tel.set_counter("censor.inline.url_blocks", self.stats.url_blocks);
        tel.set_gauge(
            "censor.inline.live_flows",
            self.reassembler.flow_count() as i64,
        );
        tel.set_counter(
            "censor.inline.flows.evicted",
            self.reassembler.stats().evicted,
        );
        crate::policy::export_actions(tel, "censor.inline", &self.actions);
    }

    fn other(iface: IfaceId) -> IfaceId {
        IfaceId(1 - iface.0.min(1))
    }
}

impl Node for InlineCensor {
    fn name(&self) -> &str {
        &self.name
    }

    // Forwarding draws no randomness, so same-instant deliveries can be
    // coalesced into one dispatch (order within the batch is preserved).
    fn wants_batch(&self) -> bool {
        true
    }

    fn receive(&mut self, ctx: &mut NodeCtx<'_>, iface: IfaceId, packet: Packet) {
        if self.tracer.is_live() {
            self.reassembler.set_now(ctx.now().as_nanos());
        }
        // IP blackhole.
        if self.policy.is_ip_blocked(packet.dst) {
            self.stats.ip_drops += 1;
            if self.tracer.is_live() {
                self.tracer.record(TraceRecord {
                    t_ns: ctx.now().as_nanos(),
                    seq: 0,
                    stage: "censor",
                    kind: "ip_drop",
                    flow: Some(packet.trace_flow()),
                    fields: vec![("dst", packet.dst.to_string().into())],
                });
            }
            self.actions.push(CensorAction {
                time: ctx.now(),
                kind: CensorActionKind::IpDrop { dst: packet.dst },
                client: packet.src,
            });
            return;
        }
        // Port blackhole.
        if let Some(port) = packet.dst_port() {
            if self.policy.is_port_blocked(packet.dst, port) {
                self.stats.port_drops += 1;
                if self.tracer.is_live() {
                    self.tracer.record(TraceRecord {
                        t_ns: ctx.now().as_nanos(),
                        seq: 0,
                        stage: "censor",
                        kind: "port_drop",
                        flow: Some(packet.trace_flow()),
                        fields: vec![("port", u64::from(port).into())],
                    });
                }
                self.actions.push(CensorAction {
                    time: ctx.now(),
                    kind: CensorActionKind::PortDrop {
                        dst: packet.dst,
                        port,
                    },
                    client: packet.src,
                });
                return;
            }
        }
        // URL filtering over the reassembled request stream. The URL list
        // is small and anchored scans are cheap, so the window is rescanned
        // on append (unlike keyword matching, which is incremental).
        if let Some(seg) = packet.as_tcp() {
            let seg = seg.clone();
            if let Some(flow_ctx) = self.reassembler.process(&packet) {
                let id = flow_ctx.id.filter(|_| flow_ctx.appended);
                if let Some(id) = id.filter(|&id| !self.url_fired(id)) {
                    let stream = self.reassembler.stream_of_id(id, flow_ctx.direction);
                    if let Some(frag) = self.policy.matching_url(stream) {
                        if id.index() >= self.fired_urls.len() {
                            self.fired_urls.resize(id.index() + 1, UrlFired::default());
                        }
                        self.fired_urls[id.index()] = UrlFired {
                            gen: id.generation(),
                            fired: true,
                        };
                        self.stats.url_blocks += 1;
                        if self.tracer.is_live() {
                            self.tracer.record(TraceRecord {
                                t_ns: ctx.now().as_nanos(),
                                seq: 0,
                                stage: "censor",
                                kind: "url_block",
                                flow: Some(packet.trace_flow()),
                                fields: vec![("url", frag.to_string().into())],
                            });
                        }
                        self.actions.push(CensorAction {
                            time: ctx.now(),
                            kind: CensorActionKind::UrlBlock {
                                url_fragment: frag.to_string(),
                            },
                            client: packet.src,
                        });
                        // Kill the client's connection; drop the request.
                        let rst = Packet::tcp(
                            packet.dst,
                            packet.src,
                            seg.dst_port,
                            seg.src_port,
                            seg.ack,
                            seg.seq.wrapping_add(seg.payload.len() as u32),
                            TcpFlags::rst_ack(),
                            Vec::new(),
                        );
                        ctx.send(iface, rst);
                        return;
                    }
                }
            }
        }
        self.stats.forwarded += 1;
        ctx.send(Self::other(iface), packet);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use underradar_netsim::addr::Cidr;
    use underradar_netsim::host::{Host, HOST_IFACE};
    use underradar_netsim::link::LinkConfig;
    use underradar_netsim::time::{SimDuration, SimTime};
    use underradar_netsim::{ConnId, HostApi, HostTask, NodeId, Simulator, TcpEvent};
    use underradar_protocols::http::HttpServer;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 2, 80);

    /// client -- inline censor -- server.
    fn testbed(policy: CensorPolicy) -> (Simulator, NodeId, NodeId, NodeId) {
        let mut sim = Simulator::new(31);
        let client = sim.add_node(Box::new(Host::new("client", CLIENT)));
        let mut server_host = Host::new("server", SERVER);
        server_host.add_tcp_listener(80, || Box::new(HttpServer::catch_all("<html>ok</html>")));
        server_host.add_tcp_listener(443, || Box::new(HttpServer::catch_all("<html>tls</html>")));
        let server = sim.add_node(Box::new(server_host));
        let censor = sim.add_node(Box::new(InlineCensor::new("censor", policy)));
        sim.wire(
            client,
            HOST_IFACE,
            censor,
            IfaceId(0),
            LinkConfig::default(),
        )
        .expect("wire c");
        sim.wire(
            server,
            HOST_IFACE,
            censor,
            IfaceId(1),
            LinkConfig::default(),
        )
        .expect("wire s");
        (sim, client, server, censor)
    }

    struct Probe {
        server: Ipv4Addr,
        port: u16,
        path: String,
        response: Vec<u8>,
        got_reset: bool,
        timed_out: bool,
    }

    impl Probe {
        fn new(server: Ipv4Addr, port: u16, path: &str) -> Probe {
            Probe {
                server,
                port,
                path: path.to_string(),
                response: Vec::new(),
                got_reset: false,
                timed_out: false,
            }
        }
    }

    impl HostTask for Probe {
        fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
            api.tcp_connect(self.server, self.port);
        }
        fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, ev: TcpEvent) {
            match ev {
                TcpEvent::Connected => {
                    let req = format!("GET {} HTTP/1.0\r\nHost: s\r\n\r\n", self.path);
                    api.tcp_send(conn, req.as_bytes());
                }
                TcpEvent::Data(d) => self.response.extend_from_slice(&d),
                TcpEvent::Reset => self.got_reset = true,
                TcpEvent::TimedOut => self.timed_out = true,
                _ => {}
            }
        }
    }

    fn run_probe(policy: CensorPolicy, port: u16, path: &str) -> (Probe, InlineCensorStats) {
        let (mut sim, client, _server, censor) = testbed(policy);
        sim.node_mut::<Host>(client)
            .expect("c")
            .spawn_task_at(SimTime::ZERO, Box::new(Probe::new(SERVER, port, path)));
        sim.run_for(SimDuration::from_secs(20)).expect("run");
        let host = sim.node_ref::<Host>(client).expect("c");
        let p = host.task_ref::<Probe>(0).expect("t");
        let stats = sim
            .node_ref::<InlineCensor>(censor)
            .expect("censor")
            .stats();
        (
            Probe {
                server: p.server,
                port: p.port,
                path: p.path.clone(),
                response: p.response.clone(),
                got_reset: p.got_reset,
                timed_out: p.timed_out,
            },
            stats,
        )
    }

    #[test]
    fn clean_traffic_passes() {
        let (probe, stats) = run_probe(CensorPolicy::new(), 80, "/fine");
        assert!(String::from_utf8_lossy(&probe.response).contains("200 OK"));
        assert!(stats.forwarded > 0);
        assert_eq!(stats.ip_drops + stats.port_drops + stats.url_blocks, 0);
    }

    #[test]
    fn blackholed_ip_causes_syn_timeout() {
        let policy = CensorPolicy::new().block_ip(Cidr::host(SERVER));
        let (probe, stats) = run_probe(policy, 80, "/x");
        assert!(probe.timed_out, "SYNs die in the blackhole");
        assert!(probe.response.is_empty());
        assert!(stats.ip_drops >= 1, "every retransmitted SYN dropped");
    }

    #[test]
    fn blocked_port_dropped_but_other_ports_pass() {
        let any = Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 0);
        let policy = CensorPolicy::new().block_port(any, 443);
        let (probe443, stats) = run_probe(policy.clone(), 443, "/x");
        assert!(probe443.timed_out);
        assert!(stats.port_drops >= 1);
        let (probe80, _) = run_probe(policy, 80, "/x");
        assert!(String::from_utf8_lossy(&probe80.response).contains("200 OK"));
    }

    #[test]
    fn blocked_url_reset_and_never_reaches_server() {
        let policy = CensorPolicy::new().block_url("/banned");
        let (mut sim, client, server, censor) = testbed(policy);
        sim.node_mut::<Host>(client).expect("c").spawn_task_at(
            SimTime::ZERO,
            Box::new(Probe::new(SERVER, 80, "/banned-page")),
        );
        sim.run_for(SimDuration::from_secs(20)).expect("run");
        let probe = sim
            .node_ref::<Host>(client)
            .expect("c")
            .task_ref::<Probe>(0)
            .expect("t");
        assert!(probe.got_reset, "client reset");
        assert!(probe.response.is_empty(), "no content returned");
        let stats = sim
            .node_ref::<InlineCensor>(censor)
            .expect("censor")
            .stats();
        assert_eq!(stats.url_blocks, 1);
        // The server host never served the request.
        let _ = server;
        let allowed = run_probe(CensorPolicy::new().block_url("/banned"), 80, "/allowed");
        assert!(String::from_utf8_lossy(&allowed.0.response).contains("200 OK"));
    }

    #[test]
    fn actions_record_ground_truth() {
        let policy = CensorPolicy::new().block_ip(Cidr::host(SERVER));
        let (mut sim, client, _server, censor) = testbed(policy);
        sim.node_mut::<Host>(client)
            .expect("c")
            .spawn_task_at(SimTime::ZERO, Box::new(Probe::new(SERVER, 80, "/x")));
        sim.run_for(SimDuration::from_secs(5)).expect("run");
        let actions = sim
            .node_ref::<InlineCensor>(censor)
            .expect("c")
            .actions()
            .to_vec();
        assert!(!actions.is_empty());
        assert!(actions.iter().all(|a| a.client == CLIENT));
        assert!(matches!(actions[0].kind, CensorActionKind::IpDrop { dst } if dst == SERVER));
    }
}
