//! The off-path (tap-attached) censor.
//!
//! This is the paper's reference censor (§3.2.1): a Snort-like observer on
//! a switch tap that *injects* packets rather than dropping them — RST
//! pairs for keyword hits (the Clayton et al. GFC behaviour) and forged
//! DNS answers for blocked names. Because it is off-path it cannot prevent
//! packets from flowing; it races the endpoints instead, which is exactly
//! the behaviour the measurement techniques detect.

use std::any::Any;

use underradar_ids::dfa::{PrefilterDfa, DFA_START};
use underradar_ids::stream::{Direction, FlowId, ReassemblyConfig, StreamReassembler};
use underradar_netsim::node::{IfaceId, Node, NodeCtx};
use underradar_netsim::packet::Packet;
use underradar_netsim::telemetry::{TraceRecord, Tracer};
use underradar_netsim::wire::tcp::TcpFlags;

use crate::dns::DnsInjector;
use crate::policy::{CensorAction, CensorActionKind, CensorPolicy};

/// Case-insensitive substring test (shared with policy matching).
pub fn contains_nocase(haystack: &[u8], needle: &[u8]) -> bool {
    underradar_ids::aho::find_sub(haystack, needle, true, 0).is_some()
}

/// Counters for the tap censor.
#[derive(Debug, Clone, Copy, Default)]
pub struct TapCensorStats {
    /// Packets observed from the tap.
    pub observed: u64,
    /// RST pairs injected.
    pub rst_injections: u64,
    /// DNS forgeries injected.
    pub dns_injections: u64,
}

/// Dense per-flow censor state, indexed by the reassembler's
/// [`FlowId::index`]. Meaningful only while `live` with a matching
/// generation; a recycled arena slot is reset in place on first touch.
#[derive(Debug)]
struct TapFlowState {
    gen: u32,
    live: bool,
    /// Persistent matcher cursor per direction.
    c2s: u32,
    s2c: u32,
    /// Keyword indexes already RST on this flow — one strike per flow.
    fired: Vec<usize>,
}

impl Default for TapFlowState {
    fn default() -> TapFlowState {
        TapFlowState {
            gen: 0,
            live: false,
            c2s: DFA_START,
            s2c: DFA_START,
            fired: Vec::new(),
        }
    }
}

/// An off-path censor node. Attach its interface 0 to a switch tap port.
pub struct TapCensor {
    name: String,
    policy: CensorPolicy,
    reassembler: StreamReassembler,
    injector: DnsInjector,
    /// One dense DFA over all policy keywords (case-insensitive — the
    /// DFA's case folding is exact here), matched incrementally against
    /// each flow direction.
    keywords: PrefilterDfa,
    /// Per-flow cursors and strike lists, dense by [`FlowId::index`].
    flow_states: Vec<TapFlowState>,
    /// Slots currently live (telemetry / leak introspection).
    live_states: usize,
    actions: Vec<CensorAction>,
    stats: TapCensorStats,
    tracer: Tracer,
}

impl TapCensor {
    /// Build from a policy with default reassembly limits.
    pub fn new(name: &str, policy: CensorPolicy) -> TapCensor {
        Self::with_reassembly(name, policy, ReassemblyConfig::default())
    }

    /// Build from a policy with explicit reassembly limits (flow-table
    /// capacity and per-direction buffering caps) — the monitor-resource
    /// knobs population-scale experiments sweep.
    pub fn with_reassembly(name: &str, policy: CensorPolicy, cfg: ReassemblyConfig) -> TapCensor {
        let injector = DnsInjector::new(&policy);
        let patterns: Vec<Vec<u8>> = policy
            .keywords
            .iter()
            .map(|kw| kw.as_bytes().to_vec())
            .collect();
        let mut reassembler = StreamReassembler::with_config(cfg);
        reassembler.track_removals(true);
        TapCensor {
            name: name.to_string(),
            policy,
            reassembler,
            injector,
            keywords: PrefilterDfa::new(&patterns),
            flow_states: Vec::new(),
            live_states: 0,
            actions: Vec::new(),
            stats: TapCensorStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// The state slot for `id`, creating or recycling it in place.
    fn ensure_state(&mut self, id: FlowId) -> &mut TapFlowState {
        let idx = id.index();
        if idx >= self.flow_states.len() {
            self.flow_states.resize_with(idx + 1, TapFlowState::default);
        }
        let st = &mut self.flow_states[idx];
        if !st.live || st.gen != id.generation() {
            if !st.live {
                self.live_states += 1;
            }
            st.gen = id.generation();
            st.live = true;
            st.c2s = DFA_START;
            st.s2c = DFA_START;
            st.fired.clear();
        }
        st
    }

    /// Attach a flight-recorder trace. The censor records one decision per
    /// injected action (stage `censor`), and its private reassembler records
    /// its own stream decisions, so a trace shows *why* the censor saw (or
    /// missed) a keyword.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.reassembler.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Disable RST-teardown in the censor's own reassembler (ablation: a
    /// censor that keeps tracking flows after RSTs).
    pub fn set_rst_teardown(&mut self, on: bool) {
        self.reassembler.rst_teardown = on;
    }

    /// Logged censorship actions (ground truth for experiments).
    pub fn actions(&self) -> &[CensorAction] {
        &self.actions
    }

    /// Counters.
    pub fn stats(&self) -> TapCensorStats {
        self.stats
    }

    /// The policy in force.
    pub fn policy(&self) -> &CensorPolicy {
        &self.policy
    }

    /// Mirror tap-censor totals into `tel` under `censor.tap.*`: packet
    /// and injection counters, live flow-tracking state, per-mechanism
    /// action counts, and one structured event per logged action. Call
    /// once, at the end of a run (the events append).
    pub fn export_telemetry(&self, tel: &underradar_telemetry::Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        tel.set_counter("censor.tap.observed", self.stats.observed);
        tel.set_counter("censor.tap.rst_injections", self.stats.rst_injections);
        tel.set_counter("censor.tap.dns_injections", self.stats.dns_injections);
        tel.set_gauge(
            "censor.tap.live_flows",
            self.reassembler.flow_count() as i64,
        );
        tel.set_gauge("censor.tap.cursors", self.live_states as i64);
        tel.set_counter("censor.tap.flows.evicted", self.reassembler.stats().evicted);
        crate::policy::export_actions(tel, "censor.tap", &self.actions);
    }

    fn keyword_hit(&mut self, ctx: &mut NodeCtx<'_>, iface: IfaceId, pkt: &Packet) {
        let Some(seg) = pkt.as_tcp() else { return };
        let Some(flow_ctx) = self.reassembler.process(pkt) else {
            return;
        };
        // Drop matcher state in lockstep with reassembler teardowns — this
        // is exactly the forgetting the paper's RST mimicry (§4.1) induces.
        for (_key, id) in self.reassembler.take_removed() {
            if let Some(st) = self.flow_states.get_mut(id.index()) {
                if st.live && st.gen == id.generation() {
                    st.live = false;
                    st.fired.clear();
                    self.live_states -= 1;
                }
            }
        }
        if !flow_ctx.appended {
            return;
        }
        let id = flow_ctx.id.expect("appended bytes imply a live flow");
        self.ensure_state(id);
        // Feed only the newly reassembled tail to this direction's
        // persistent cursor: keywords straddling segment boundaries still
        // complete, without rescanning the buffered stream per segment.
        // The tail — not the raw segment — is what the hold-back queue
        // actually appended (it may splice in held out-of-order segments
        // or drop an overlap-trimmed prefix).
        let view = self.reassembler.stream_of_id(id, flow_ctx.direction);
        let tail = &view[view.len() - flow_ctx.new_bytes.min(view.len())..];
        let st = &mut self.flow_states[id.index()];
        let cursor = match flow_ctx.direction {
            Direction::ToServer => &mut st.c2s,
            Direction::ToClient => &mut st.s2c,
        };
        let mut hits: Vec<usize> = Vec::new();
        self.keywords.feed(cursor, tail, |idx, _end| {
            if !hits.contains(&idx) {
                hits.push(idx);
            }
        });
        for idx in hits {
            let kw = &self.policy.keywords[idx];
            if st.fired.contains(&idx) {
                continue;
            }
            st.fired.push(idx);
            // Inject the GFC RST pair: one at each endpoint, sequenced off
            // the observed segment so both stacks accept them.
            let next_client_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
            let rst_to_server = Packet::tcp(
                pkt.src,
                pkt.dst,
                seg.src_port,
                seg.dst_port,
                next_client_seq,
                seg.ack,
                TcpFlags::rst_ack(),
                Vec::new(),
            );
            let rst_to_client = Packet::tcp(
                pkt.dst,
                pkt.src,
                seg.dst_port,
                seg.src_port,
                seg.ack,
                next_client_seq,
                TcpFlags::rst_ack(),
                Vec::new(),
            );
            ctx.send(iface, rst_to_server);
            ctx.send(iface, rst_to_client);
            self.stats.rst_injections += 1;
            if self.tracer.is_live() {
                self.tracer.record(TraceRecord {
                    t_ns: ctx.now().as_nanos(),
                    seq: 0,
                    stage: "censor",
                    kind: "rst_pair",
                    flow: Some(pkt.trace_flow()),
                    fields: vec![("keyword", kw.clone().into())],
                });
            }
            self.actions.push(CensorAction {
                time: ctx.now(),
                kind: CensorActionKind::KeywordRst {
                    keyword: kw.clone(),
                },
                client: pkt.src,
            });
        }
    }
}

impl Node for TapCensor {
    fn name(&self) -> &str {
        &self.name
    }

    // Inspection draws no randomness, so same-instant deliveries can be
    // coalesced into one dispatch.
    fn wants_batch(&self) -> bool {
        true
    }

    fn receive(&mut self, ctx: &mut NodeCtx<'_>, iface: IfaceId, packet: Packet) {
        self.stats.observed += 1;
        if self.tracer.is_live() {
            self.reassembler.set_now(ctx.now().as_nanos());
        }

        // DNS injection.
        if let Some((forged, qname, qtype)) = self.injector.inspect(&self.policy, &packet) {
            ctx.send(iface, forged);
            self.stats.dns_injections += 1;
            if self.tracer.is_live() {
                self.tracer.record(TraceRecord {
                    t_ns: ctx.now().as_nanos(),
                    seq: 0,
                    stage: "censor",
                    kind: "dns_injection",
                    flow: Some(packet.trace_flow()),
                    fields: vec![
                        ("name", qname.to_string().into()),
                        ("qtype", u64::from(qtype.number()).into()),
                    ],
                });
            }
            self.actions.push(CensorAction {
                time: ctx.now(),
                kind: CensorActionKind::DnsInjection {
                    name: qname,
                    qtype: qtype.number(),
                },
                client: packet.src,
            });
        }

        // Keyword RST injection (TCP only).
        if packet.as_tcp().is_some() {
            self.keyword_hit(ctx, iface, &packet);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use underradar_netsim::addr::Cidr;
    use underradar_netsim::host::Host;
    use underradar_netsim::link::LinkConfig;
    use underradar_netsim::switch::Switch;
    use underradar_netsim::time::{SimDuration, SimTime};
    use underradar_netsim::topology::TopologyBuilder;
    use underradar_netsim::{ConnId, HostApi, HostTask, NodeId, Simulator, TcpEvent};
    use underradar_protocols::dns::{DnsMessage, DnsName, QType};
    use underradar_protocols::http::HttpServer;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 2, 80);

    /// Figure-1 testbed: client -- switch -- server, censor on a tap.
    fn testbed(policy: CensorPolicy) -> (Simulator, NodeId, NodeId, NodeId) {
        let mut topo = TopologyBuilder::new(21);
        let client = topo.add_host(Host::new("client", CLIENT));
        let mut server_host = Host::new("server", SERVER);
        server_host.add_tcp_listener(80, || Box::new(HttpServer::catch_all("<html>page</html>")));
        let server = topo.add_host(server_host);
        let censor = topo.add_node(Box::new(TapCensor::new("censor", policy)));
        let sw = topo.add_switch(Switch::new("ovs"));
        topo.attach_host(client, CLIENT, sw, LinkConfig::default())
            .expect("client");
        topo.attach_host(server, SERVER, sw, LinkConfig::default())
            .expect("server");
        // The tap link is faster than the host links so injected packets
        // win the race, as in the real GFC deployment.
        topo.attach_tap(censor, sw, LinkConfig::ideal())
            .expect("tap");
        (topo.finish(), client, server, censor)
    }

    /// Client that sends an HTTP request containing a given path.
    struct HttpProbe {
        server: Ipv4Addr,
        path: String,
        got_reset: bool,
        response: Vec<u8>,
        conn: Option<ConnId>,
    }

    impl HttpProbe {
        fn new(server: Ipv4Addr, path: &str) -> Self {
            HttpProbe {
                server,
                path: path.to_string(),
                got_reset: false,
                response: Vec::new(),
                conn: None,
            }
        }
    }

    impl HostTask for HttpProbe {
        fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
            self.conn = Some(api.tcp_connect(self.server, 80));
        }
        fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, ev: TcpEvent) {
            match ev {
                TcpEvent::Connected => {
                    let req = format!("GET {} HTTP/1.0\r\nHost: site\r\n\r\n", self.path);
                    api.tcp_send(conn, req.as_bytes());
                }
                TcpEvent::Data(d) => self.response.extend_from_slice(&d),
                TcpEvent::Reset => self.got_reset = true,
                _ => {}
            }
        }
    }

    #[test]
    fn keyword_request_gets_rst_both_ways() {
        let policy = CensorPolicy::new().block_keyword("falun");
        let (mut sim, client, server, censor) = testbed(policy);
        sim.node_mut::<Host>(client).expect("client").spawn_task_at(
            SimTime::ZERO,
            Box::new(HttpProbe::new(SERVER, "/falun-news")),
        );
        sim.run_for(SimDuration::from_secs(10)).expect("run");
        let probe = sim
            .node_ref::<Host>(client)
            .expect("c")
            .task_ref::<HttpProbe>(0)
            .expect("t");
        assert!(probe.got_reset, "client connection reset by injected RST");
        let censor_node = sim.node_ref::<TapCensor>(censor).expect("censor");
        assert_eq!(censor_node.stats().rst_injections, 1);
        assert!(matches!(
            censor_node.actions()[0].kind,
            CensorActionKind::KeywordRst { .. }
        ));
        let _ = server;
    }

    #[test]
    fn innocuous_request_passes_untouched() {
        let policy = CensorPolicy::new().block_keyword("falun");
        let (mut sim, client, _server, censor) = testbed(policy);
        sim.node_mut::<Host>(client)
            .expect("client")
            .spawn_task_at(SimTime::ZERO, Box::new(HttpProbe::new(SERVER, "/weather")));
        sim.run_for(SimDuration::from_secs(10)).expect("run");
        let probe = sim
            .node_ref::<Host>(client)
            .expect("c")
            .task_ref::<HttpProbe>(0)
            .expect("t");
        assert!(!probe.got_reset);
        assert!(
            String::from_utf8_lossy(&probe.response).contains("200 OK"),
            "got: {}",
            String::from_utf8_lossy(&probe.response)
        );
        assert_eq!(
            sim.node_ref::<TapCensor>(censor)
                .expect("c")
                .stats()
                .rst_injections,
            0
        );
    }

    #[test]
    fn keyword_split_across_segments_still_caught() {
        // Force segmentation by sending the request in two writes.
        struct SplitProbe {
            server: Ipv4Addr,
            got_reset: bool,
        }
        impl HostTask for SplitProbe {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                api.tcp_connect(self.server, 80);
            }
            fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, ev: TcpEvent) {
                match ev {
                    TcpEvent::Connected => {
                        api.tcp_send(conn, b"GET /fal");
                        api.tcp_send(conn, b"un HTTP/1.0\r\nHost: s\r\n\r\n");
                    }
                    TcpEvent::Reset => self.got_reset = true,
                    _ => {}
                }
            }
        }
        let policy = CensorPolicy::new().block_keyword("falun");
        let (mut sim, client, _server, censor) = testbed(policy);
        sim.node_mut::<Host>(client).expect("client").spawn_task_at(
            SimTime::ZERO,
            Box::new(SplitProbe {
                server: SERVER,
                got_reset: false,
            }),
        );
        sim.run_for(SimDuration::from_secs(10)).expect("run");
        assert!(
            sim.node_ref::<Host>(client)
                .expect("c")
                .task_ref::<SplitProbe>(0)
                .expect("t")
                .got_reset,
            "reassembly caught the split keyword"
        );
        assert_eq!(
            sim.node_ref::<TapCensor>(censor)
                .expect("c")
                .stats()
                .rst_injections,
            1
        );
    }

    #[test]
    fn dns_query_for_blocked_name_poisoned() {
        struct DnsProbe {
            resolver: Ipv4Addr,
            qtype: QType,
            answers: Vec<Ipv4Addr>,
            responses: u32,
        }
        impl HostTask for DnsProbe {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                let port = api.udp_bind(0).expect("bind");
                let q = DnsMessage::query(7, DnsName::parse("twitter.com").expect("n"), self.qtype);
                api.udp_send(port, self.resolver, 53, q.encode());
            }
            fn on_udp(
                &mut self,
                _api: &mut HostApi<'_, '_>,
                _l: u16,
                _s: Ipv4Addr,
                _sp: u16,
                payload: &[u8],
            ) {
                if let Ok(resp) = DnsMessage::decode(payload) {
                    // First response wins (resolver behaviour).
                    if self.responses == 0 {
                        self.answers = resp.a_records();
                    }
                    self.responses += 1;
                }
            }
        }
        let policy = CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n"));
        let poison = policy.dns_poison_ip;
        let (mut sim, client, _server, censor) = testbed(policy);
        for (at, qtype) in [(0u64, QType::A), (1, QType::Mx)] {
            sim.node_mut::<Host>(client).expect("c").spawn_task_at(
                SimTime::ZERO + SimDuration::from_secs(at),
                Box::new(DnsProbe {
                    resolver: SERVER,
                    qtype,
                    answers: vec![],
                    responses: 0,
                }),
            );
        }
        sim.run_for(SimDuration::from_secs(10)).expect("run");
        let host = sim.node_ref::<Host>(client).expect("c");
        let a_probe = host.task_ref::<DnsProbe>(0).expect("t0");
        let mx_probe = host.task_ref::<DnsProbe>(1).expect("t1");
        assert_eq!(a_probe.answers, vec![poison], "A query poisoned");
        assert_eq!(
            mx_probe.answers,
            vec![poison],
            "MX query answered with bad A — the tell"
        );
        assert_eq!(
            sim.node_ref::<TapCensor>(censor)
                .expect("c")
                .stats()
                .dns_injections,
            2
        );
    }

    #[test]
    fn one_rst_per_flow_not_per_segment() {
        struct RepeatProbe {
            server: Ipv4Addr,
            resets: u32,
        }
        impl HostTask for RepeatProbe {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                api.tcp_connect(self.server, 80);
            }
            fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, ev: TcpEvent) {
                match ev {
                    TcpEvent::Connected => {
                        api.tcp_send(conn, b"falun one");
                        api.tcp_send(conn, b"falun two");
                        api.tcp_send(conn, b"falun three");
                    }
                    TcpEvent::Reset => self.resets += 1,
                    _ => {}
                }
            }
        }
        let policy = CensorPolicy::new().block_keyword("falun");
        let (mut sim, client, _server, censor) = testbed(policy);
        sim.node_mut::<Host>(client).expect("c").spawn_task_at(
            SimTime::ZERO,
            Box::new(RepeatProbe {
                server: SERVER,
                resets: 0,
            }),
        );
        sim.run_for(SimDuration::from_secs(10)).expect("run");
        let stats = sim.node_ref::<TapCensor>(censor).expect("c").stats();
        assert_eq!(stats.rst_injections, 1, "deduped per flow");
    }

    #[test]
    fn blocked_ip_is_not_dropped_by_offpath_censor() {
        // Off-path censors cannot blackhole; that needs the inline censor.
        let policy = CensorPolicy::new().block_ip(Cidr::host(SERVER));
        let (mut sim, client, _server, _censor) = testbed(policy);
        sim.node_mut::<Host>(client)
            .expect("c")
            .spawn_task_at(SimTime::ZERO, Box::new(HttpProbe::new(SERVER, "/x")));
        sim.run_for(SimDuration::from_secs(10)).expect("run");
        let probe = sim
            .node_ref::<Host>(client)
            .expect("c")
            .task_ref::<HttpProbe>(0)
            .expect("t");
        assert!(
            !probe.response.is_empty(),
            "off-path censor cannot drop packets"
        );
    }
}
