//! Retry semantics: a seeded lossy-link spam trial whose first attempt
//! is swallowed by packet loss (`Inconclusive`) converges on retry, and
//! the retry count lands in the campaign telemetry.

use underradar_campaign::{engine, CampaignSpec, MethodKind, NamedPolicy, RetryPolicy};
use underradar_censor::CensorPolicy;
use underradar_core::verdict::Verdict;
use underradar_telemetry::Telemetry;

/// Pinned empirically: at 35% client-link loss, master seed 6 loses the
/// first spam attempt's DNS exchange (Inconclusive) and the reseeded
/// retry completes with the correct `Reachable` verdict.
const PINNED_MASTER_SEED: u64 = 6;

fn lossy_spec(master_seed: u64) -> CampaignSpec {
    CampaignSpec::new("retry-probe", master_seed)
        .target("twitter.com")
        .method(MethodKind::Spam)
        .policy(NamedPolicy::new("control", CensorPolicy::new()))
        .client_link_loss(0.35)
        .warmup(false)
        .run_secs(40)
}

#[test]
fn first_attempt_inconclusive_retry_converges() {
    let tel = Telemetry::enabled();
    let report = engine::run(&lossy_spec(PINNED_MASTER_SEED), 1, &tel);
    let trial = &report.trials[0];

    assert_eq!(trial.retries, 1, "exactly one retry should be needed");
    assert!(
        !matches!(trial.verdict, Verdict::Inconclusive(_)),
        "retry must converge, got {}",
        trial.verdict
    );
    assert!(trial.verdict_correct, "converged verdict must be correct");
    assert_eq!(report.total_retries(), 1);
    assert_eq!(report.inconclusive_final(), 0);

    // The retry count is visible in the merged campaign telemetry.
    let snap = tel.snapshot();
    assert_eq!(snap.counters.get("campaign.retries"), Some(&1));
    assert_eq!(snap.counters.get("campaign.method.spam.retries"), Some(&1));
    assert_eq!(snap.counters.get("campaign.trials"), Some(&1));
}

#[test]
fn retry_budget_is_bounded() {
    // At 50% loss most seeds exhaust the budget: retries never exceed
    // the policy's max and the final verdict is reported as-is.
    let spec = lossy_spec(17)
        .client_link_loss(0.5)
        .retry(RetryPolicy::default());
    let report = engine::run(&spec, 1, &Telemetry::disabled());
    let trial = &report.trials[0];
    assert_eq!(trial.retries, RetryPolicy::default().max_retries);
    assert!(matches!(trial.verdict, Verdict::Inconclusive(_)));
    assert_eq!(report.inconclusive_final(), 1);
}
