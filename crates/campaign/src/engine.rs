//! The campaign engine: expands a [`CampaignSpec`] into trials, caches a
//! built [`TestbedTemplate`] (and routed ruleset) per policy, schedules
//! trials across worker threads with work stealing ([`crate::steal`]),
//! retries `Inconclusive` verdicts with backoff in *simulated* time, and
//! merges per-trial telemetry registries back into the caller's handle in
//! trial-index order.
//!
//! The retry loop is split at attempt boundaries ([`run_trial_attempt`])
//! so a durable run service (`underradar-runner`) can journal a retry
//! decision — with the registry accumulated so far — and resume the trial
//! at the exact attempt it was about to run.

use std::collections::{BTreeMap, BTreeSet};

use underradar_censor::{CensorAction, CensorActionKind, TapCensor};
use underradar_core::methods::ddos::DdosProbe;
use underradar_core::methods::hops::HopProbe;
use underradar_core::methods::overt::OvertProbe;
use underradar_core::methods::scan::SynScanProbe;
use underradar_core::methods::spam::SpamProbe;
use underradar_core::methods::stateful::{MimicServer, RoutedMimicryNet, StatefulMimicry};
use underradar_core::methods::stateless::{StatelessDnsMimicry, StatelessSynMimicry};
use underradar_core::ports::top_ports;
use underradar_core::probe::Probe;
use underradar_core::risk::RiskReport;
use underradar_core::testbed::{TargetSite, Testbed, TestbedConfig, TestbedTemplate};
use underradar_core::verdict::Verdict;
use underradar_ids::rule::Rule;
use underradar_netsim::host::Host;
use underradar_netsim::time::{SimDuration, SimTime};
use underradar_protocols::dns::QType;
use underradar_surveil::exposure::{ExposureEventKind, ExposureLedger};
use underradar_surveil::system::{
    default_surveillance_rules, SurveillanceNode, SurveillanceSystem,
};
use underradar_telemetry::{FieldValue, Registry, Telemetry, TraceRecord};

use crate::report::{CampaignReport, TrialResult};
use crate::seed;
use crate::spec::{CampaignSpec, MethodKind, NamedPolicy, Trial};
use crate::steal;

/// UDP port hop probes aim at (classic traceroute base port).
const HOP_PORT: u16 = 33434;
/// TTL budget for hop sweeps in the routed topology (path is 3–4 hops).
const HOP_MAX_TTL: u8 = 6;
/// Server port for stateful mimicry flows.
const MIMIC_PORT: u16 = 7443;
/// Ports scanned per SYN-scan trial (top-N, port 80 expected open).
const SCAN_PORTS: usize = 60;
/// Request samples per DDoS-style trial.
const DDOS_SAMPLES: usize = 20;

/// Everything shareable across a policy column's trials: the testbed
/// template (zone + parsed IDS rules built once) and the routed-topology
/// ruleset. All fields are `Send + Sync`, so worker threads borrow one
/// prep instead of re-parsing rules per trial.
pub struct PolicyPrep<'a> {
    named: &'a NamedPolicy,
    template: TestbedTemplate,
    routed_rules: Vec<Rule>,
}

/// Build one [`PolicyPrep`] per policy column, in spec order. The vector
/// is indexed by [`Trial::policy_idx`]; external drivers (the runner
/// service) call this once and borrow the preps across worker threads.
pub fn prepare(spec: &CampaignSpec) -> Vec<PolicyPrep<'_>> {
    let targets: Vec<TargetSite> = spec
        .targets
        .iter()
        .enumerate()
        .map(|(i, domain)| TargetSite::numbered(domain, i as u8))
        .collect();
    spec.policies
        .iter()
        .map(|named| {
            let template = TestbedTemplate::prepare(TestbedConfig {
                seed: 0,
                policy: named.policy.clone(),
                targets: targets.clone(),
                cover_hosts: spec.cover_hosts,
                surveillance_alert_first: false,
                censor_rst_teardown: true,
                capture: false,
                client_link_loss: spec.client_link_loss,
                client_link_reorder: spec.client_link_reorder,
                client_link_duplicate: spec.client_link_duplicate,
                client_link_corrupt: spec.client_link_corrupt,
                monitor_reassembly: spec.monitor_reassembly,
            });
            let routed_rules = default_surveillance_rules(
                Testbed::home_net(),
                &named.policy.dns_blocked,
                &named.policy.keywords,
                None,
            );
            PolicyPrep {
                named,
                template,
                routed_rules,
            }
        })
        .collect()
}

/// What kind of telemetry scope each worker should build. `Telemetry` is
/// an `Rc` handle and cannot cross threads, so workers rebuild per-trial
/// scopes from this `Copy` snapshot of the caller's handle.
#[derive(Clone, Copy)]
pub struct ScopeConfig {
    enabled: bool,
    trace: Option<usize>,
}

impl ScopeConfig {
    /// Snapshot the caller's telemetry handle into a `Send + Copy` config.
    pub fn of(tel: &Telemetry) -> ScopeConfig {
        ScopeConfig {
            enabled: tel.is_enabled(),
            trace: tel.trace_capacity(),
        }
    }

    /// Override the flight-recorder ring capacity when tracing is active.
    /// A `None` or a non-tracing config is unchanged — the capacity knob
    /// tunes the ring, it never turns tracing on.
    pub fn with_trace_capacity(mut self, capacity: Option<usize>) -> ScopeConfig {
        if let (Some(_), Some(c)) = (self.trace, capacity) {
            self.trace = Some(c);
        }
        self
    }

    /// Build a fresh per-trial scope matching the snapshotted handle.
    pub fn scope(self) -> Telemetry {
        match self.trace {
            Some(capacity) => Telemetry::with_trace(capacity),
            None if self.enabled => Telemetry::enabled(),
            None => Telemetry::disabled(),
        }
    }

    /// Whether per-trial scopes carry a flight-recorder trace ring.
    pub fn tracing(self) -> bool {
        self.trace.is_some()
    }
}

/// Run the campaign across `workers` threads (1 = sequential baseline)
/// and merge all per-trial telemetry into `tel` in trial-index order.
/// Output is byte-identical for any worker count.
pub fn run(spec: &CampaignSpec, workers: usize, tel: &Telemetry) -> CampaignReport {
    let preps = prepare(spec);
    let trials = spec.expand();
    let cfg = ScopeConfig::of(tel).with_trace_capacity(spec.trace_capacity);
    let outcomes = steal::run_chunked(trials.len(), workers, |i| {
        let trial = &trials[i];
        run_trial(spec, &preps[trial.policy_idx], trial, cfg)
    });
    for (_, registry) in &outcomes {
        tel.merge_registry(registry);
    }
    CampaignReport {
        name: spec.name.clone(),
        trials: outcomes.into_iter().map(|(result, _)| result).collect(),
    }
}

/// What one attempt of a trial decided: a final result, or a retry with
/// the attempt number to run next.
pub enum AttemptOutcome {
    /// The verdict is final (conclusive, or the retry budget is spent).
    Done(Box<TrialResult>),
    /// The verdict was `Inconclusive` with budget remaining; re-run with
    /// `next_attempt`. The accumulated registry passed to
    /// [`run_trial_attempt`] already holds this attempt's telemetry and
    /// must travel with the trial (the runner journals it so resumed runs
    /// keep byte-identical merged telemetry).
    Retry {
        /// Attempt number for the next call to [`run_trial_attempt`].
        next_attempt: u32,
    },
}

/// One trial with retries: re-instantiate the world from a derived seed
/// whenever the verdict is `Inconclusive`, granting `backoff_secs` extra
/// simulated seconds per attempt, up to `max_retries`.
pub fn run_trial(
    spec: &CampaignSpec,
    prep: &PolicyPrep<'_>,
    trial: &Trial,
    cfg: ScopeConfig,
) -> (TrialResult, Registry) {
    let mut acc = Registry::new();
    let mut attempt = 0u32;
    loop {
        match run_trial_attempt(spec, prep, trial, attempt, &mut acc, cfg) {
            AttemptOutcome::Done(result) => return (*result, acc),
            AttemptOutcome::Retry { next_attempt } => attempt = next_attempt,
        }
    }
}

/// Run exactly one attempt of a trial, accumulating its telemetry (and
/// trace markers) into `acc`. Attempt 0 pushes the trial-start marker;
/// callers resuming a journaled retry pass the journaled `acc` and the
/// journaled attempt number, which reproduces the uninterrupted stream.
pub fn run_trial_attempt(
    spec: &CampaignSpec,
    prep: &PolicyPrep<'_>,
    trial: &Trial,
    attempt: u32,
    acc: &mut Registry,
    cfg: ScopeConfig,
) -> AttemptOutcome {
    if attempt == 0 && cfg.tracing() {
        // A trial-start marker first, so the merged trace splits into
        // contiguous per-trial segments (the explainer keys off these).
        acc.trace.push(campaign_record(
            0,
            "trial_start",
            vec![
                ("trial", (trial.index as u64).into()),
                ("method", trial.method.label().to_string().into()),
                ("policy", prep.named.name.clone().into()),
                ("target", trial_target(prep, trial).into()),
            ],
        ));
    }
    let attempt_seed = seed::attempt_seed(trial.seed, attempt);
    let horizon = spec.run_secs + spec.retry.backoff_secs * attempt as u64;
    let horizon_ns = horizon.saturating_mul(1_000_000_000);
    let scope = cfg.scope();
    let mut result = execute(spec, prep, trial, attempt_seed, horizon, &scope);
    acc.merge(&scope.snapshot());
    let inconclusive = matches!(result.verdict, Verdict::Inconclusive(_));
    if !inconclusive || attempt >= spec.retry.max_retries {
        result.retries = attempt;
        bump(acc, "campaign.trials", 1);
        bump(acc, "campaign.retries", attempt as u64);
        let label = trial.method.label();
        bump(acc, &format!("campaign.method.{label}.trials"), 1);
        bump(
            acc,
            &format!("campaign.method.{label}.retries"),
            attempt as u64,
        );
        if inconclusive {
            bump(acc, "campaign.inconclusive_final", 1);
        }
        if cfg.tracing() {
            acc.trace.push(campaign_record(
                horizon_ns,
                "verdict",
                vec![
                    ("verdict", result.verdict.to_string().into()),
                    ("retries", u64::from(attempt).into()),
                ],
            ));
        }
        return AttemptOutcome::Done(Box::new(result));
    }
    if cfg.tracing() {
        // The retry decision itself is a trace-worthy event: it changes
        // the seed and grants backoff horizon, so a verdict that flips
        // across attempts is explained by this record.
        acc.trace.push(campaign_record(
            horizon_ns,
            "retry",
            vec![
                ("attempt", u64::from(attempt + 1).into()),
                ("backoff_secs", spec.retry.backoff_secs.into()),
            ],
        ));
    }
    AttemptOutcome::Retry {
        next_attempt: attempt + 1,
    }
}

fn trial_target(prep: &PolicyPrep<'_>, trial: &Trial) -> String {
    prep.template
        .config()
        .targets
        .get(trial.target_idx)
        .map(|t| t.domain.to_string())
        .unwrap_or_default()
}

fn campaign_record(
    t_ns: u64,
    kind: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
) -> TraceRecord {
    TraceRecord {
        t_ns,
        seq: 0,
        stage: "campaign",
        kind,
        flow: None,
        fields,
    }
}

fn bump(registry: &mut Registry, name: &str, n: u64) {
    if n > 0 {
        *registry.counters.entry(name.to_string()).or_insert(0) += n;
    }
}

/// Fold this trial's adversary-side observations into the per-trial scope
/// as `exposure.*` registry entries (see `underradar_surveil::exposure`).
/// Everything here is read from records the adversary actually holds —
/// censor action log, IDS alert log, retention stores — never from ground
/// truth, so the resulting ledger is the adversary's view of the campaign.
fn export_exposure(
    scope: &Telemetry,
    method_label: &str,
    policy_name: &str,
    actions: &[CensorAction],
    system: &SurveillanceSystem,
) {
    if !scope.is_enabled() {
        return;
    }
    let cell = format!("{method_label}/{policy_name}");
    let mut ledger = ExposureLedger::new();
    for action in actions {
        let kind = match action.kind {
            CensorActionKind::KeywordRst { .. } | CensorActionKind::DnsInjection { .. } => {
                ExposureEventKind::Injection
            }
            _ => ExposureEventKind::Drop,
        };
        ledger.record(
            &cell,
            &action.client.to_string(),
            kind,
            action.time.as_nanos(),
        );
    }
    // Distinct sensitive flows per source: the alert log's flow tuples.
    type FlowTuple = (Option<u16>, u32, Option<u16>);
    let mut flows: BTreeMap<std::net::Ipv4Addr, BTreeSet<FlowTuple>> = BTreeMap::new();
    for alert in system.engine().log().all() {
        ledger.record(
            &cell,
            &alert.src.to_string(),
            ExposureEventKind::Alert,
            alert.time.as_nanos(),
        );
        flows.entry(alert.src).or_default().insert((
            alert.src_port,
            u32::from(alert.dst),
            alert.dst_port,
        ));
    }
    for (src, set) in &flows {
        ledger.add_sensitive_flows(&cell, &src.to_string(), set.len() as u64);
    }
    // Bytes of each host's traffic sitting in the content retention store
    // (trial horizons are far shorter than retention windows, so nothing
    // has evicted by scoring time).
    let mut retained: BTreeMap<std::net::Ipv4Addr, u64> = BTreeMap::new();
    for (_, rec) in system.stores().content.iter() {
        *retained.entry(rec.src).or_insert(0) += rec.bytes as u64;
    }
    for (src, bytes) in &retained {
        ledger.add_retained(&cell, &src.to_string(), *bytes);
    }
    ledger.export(scope);
}

fn execute(
    spec: &CampaignSpec,
    prep: &PolicyPrep<'_>,
    trial: &Trial,
    seed: u64,
    horizon_secs: u64,
    scope: &Telemetry,
) -> TrialResult {
    match trial.method {
        MethodKind::Hops | MethodKind::Stateful => {
            execute_routed(prep, trial, seed, horizon_secs, scope)
        }
        _ => execute_flat(spec, prep, trial, seed, horizon_secs, scope),
    }
}

/// Drive a flat-testbed method (overt, scan, spam, ddos, stateless-*)
/// from the client host and score it with [`RiskReport`].
///
/// Spam and ddos trials optionally run their paper-faithful warm-up
/// phase first (§3.2.2: a spam campaign earns the spammer label before
/// the measured lookup; a flood is already MVR-classified as DDoS by the
/// time the measured samples fire), so campaign cells reproduce the
/// per-experiment setups without bespoke wiring.
fn execute_flat(
    spec: &CampaignSpec,
    prep: &PolicyPrep<'_>,
    trial: &Trial,
    seed: u64,
    horizon_secs: u64,
    scope: &Telemetry,
) -> TrialResult {
    let mut tb = prep.template.instantiate(seed);
    tb.set_telemetry(scope.clone());
    let site = tb.targets[trial.target_idx].clone();
    let domain = site.domain.clone();
    let resolver = tb.resolver_ip;
    let collector = tb.collector_ip;
    let cover = if spec.spoofed_cover > 0 {
        (0..spec.spoofed_cover)
            .map(|i| std::net::Ipv4Addr::new(10, 0, 1, 30 + i as u8))
            .collect()
    } else {
        tb.cover_ips.clone()
    };
    if spec.warmup {
        match trial.method {
            MethodKind::Spam => {
                // Reputation warm-up: spam probes toward the other zone
                // targets stagger in first, earning the spammer label.
                let others: Vec<_> = tb
                    .targets
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != trial.target_idx)
                    .map(|(_, t)| t.domain.clone())
                    .take(3)
                    .collect();
                for (i, warm) in others.into_iter().enumerate() {
                    tb.spawn_on_client(
                        SimTime::ZERO + SimDuration::from_secs(i as u64),
                        Box::new(SpamProbe::new(
                            &warm,
                            resolver,
                            seed.wrapping_add(1 + i as u64),
                        )),
                    );
                }
            }
            MethodKind::Ddos => {
                // Front-page flood: the source is already in the discarded
                // DDoS class when the measured samples ride along.
                tb.spawn_on_client(
                    SimTime::ZERO,
                    Box::new(DdosProbe::new(
                        site.web_ip,
                        &domain.to_string(),
                        "/",
                        3 * DDOS_SAMPLES,
                    )),
                );
            }
            _ => {}
        }
    }
    let idx = match trial.method {
        MethodKind::Overt => tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(OvertProbe::new(
                &domain,
                resolver,
                collector,
                &prep.named.probe_path,
            )),
        ),
        MethodKind::Scan => tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(SynScanProbe::new(
                site.web_ip,
                top_ports(SCAN_PORTS),
                vec![80],
            )),
        ),
        MethodKind::Spam => tb.spawn_on_client(
            if spec.warmup {
                SimTime::ZERO + SimDuration::from_secs(10)
            } else {
                SimTime::ZERO
            },
            Box::new(SpamProbe::new(&domain, resolver, seed)),
        ),
        MethodKind::Ddos => tb.spawn_on_client(
            if spec.warmup {
                SimTime::ZERO + SimDuration::from_secs(5)
            } else {
                SimTime::ZERO
            },
            Box::new(DdosProbe::new(
                site.web_ip,
                &domain.to_string(),
                &prep.named.probe_path,
                DDOS_SAMPLES,
            )),
        ),
        MethodKind::StatelessDns => tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(StatelessDnsMimicry::new(&domain, QType::A, resolver, cover)),
        ),
        MethodKind::StatelessSyn => tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(StatelessSynMimicry::new(site.web_ip, 80, cover)),
        ),
        MethodKind::Hops | MethodKind::Stateful => unreachable!("routed methods"),
    };
    tb.run_secs(horizon_secs);
    let probe: &dyn Probe = match trial.method {
        MethodKind::Overt => tb.client_task::<OvertProbe>(idx).expect("probe state"),
        MethodKind::Scan => tb.client_task::<SynScanProbe>(idx).expect("probe state"),
        MethodKind::Spam => tb.client_task::<SpamProbe>(idx).expect("probe state"),
        MethodKind::Ddos => tb.client_task::<DdosProbe>(idx).expect("probe state"),
        MethodKind::StatelessDns => tb
            .client_task::<StatelessDnsMimicry>(idx)
            .expect("probe state"),
        MethodKind::StatelessSyn => tb
            .client_task::<StatelessSynMimicry>(idx)
            .expect("probe state"),
        MethodKind::Hops | MethodKind::Stateful => unreachable!("routed methods"),
    };
    let verdict = probe.verdict();
    let evidence = probe.evidence();
    let risk = RiskReport::evaluate(&tb, &verdict);
    tb.export_telemetry(scope);
    export_exposure(
        scope,
        trial.method.label(),
        &prep.named.name,
        &tb.censor_actions(),
        tb.surveillance(),
    );
    TrialResult {
        index: trial.index,
        method: trial.method,
        policy: prep.named.name.clone(),
        target: domain.to_string(),
        seed: trial.seed,
        verdict,
        verdict_correct: risk.verdict_correct,
        evaded: risk.evades(),
        alerts_on_client: risk.alerts_on_client,
        attributed: risk.attributed,
        pursued: risk.pursued,
        anonymity_set: risk.anonymity_set,
        retries: 0,
        evidence,
    }
}

/// Drive a routed-topology method (hops, stateful mimicry) and score it
/// against the tap censor and surveillance node directly.
fn execute_routed(
    prep: &PolicyPrep<'_>,
    trial: &Trial,
    seed: u64,
    horizon_secs: u64,
    scope: &Telemetry,
) -> TrialResult {
    let mut net = RoutedMimicryNet::build_with_rules(
        seed,
        prep.named.policy.clone(),
        prep.routed_rules.clone(),
    );
    let tracer = scope.tracer();
    net.sim.set_telemetry(scope.clone());
    if tracer.is_live() {
        if let Some(tap) = net.sim.node_mut::<TapCensor>(net.censor) {
            tap.set_tracer(tracer.clone());
        }
        if let Some(surv) = net.sim.node_mut::<SurveillanceNode>(net.surveillance) {
            surv.set_tracer(tracer);
        }
    }
    match trial.method {
        MethodKind::Hops => {
            let probe = HopProbe::new(net.cover_ip, HOP_PORT, HOP_MAX_TTL);
            net.sim
                .node_mut::<Host>(net.mserver)
                .expect("mserver host")
                .spawn_task_at(SimTime::ZERO, Box::new(probe));
        }
        MethodKind::Stateful => {
            let agreed_iss = (seed as u32) | 1;
            let server = MimicServer::new(
                MIMIC_PORT,
                agreed_iss,
                Some(RoutedMimicryNet::HOPS_TO_COVER),
            );
            net.sim
                .node_mut::<Host>(net.mserver)
                .expect("mserver host")
                .spawn_task_at(SimTime::ZERO, Box::new(server));
            let payload = format!("GET {} HTTP/1.0\r\n\r\n", prep.named.probe_path);
            let client = StatefulMimicry::new(
                net.cover_ip,
                net.mserver_ip,
                MIMIC_PORT,
                agreed_iss,
                payload.as_bytes(),
            );
            net.sim
                .node_mut::<Host>(net.client)
                .expect("client host")
                .spawn_task_at(SimTime::ZERO, Box::new(client));
        }
        _ => unreachable!("flat methods"),
    }
    net.sim
        .run_for(SimDuration::from_secs(horizon_secs))
        .expect("sim run");
    let mserver = net.sim.node_ref::<Host>(net.mserver).expect("mserver host");
    let probe: &dyn Probe = match trial.method {
        MethodKind::Hops => mserver.task_ref::<HopProbe>(0).expect("probe state"),
        MethodKind::Stateful => mserver.task_ref::<MimicServer>(0).expect("server state"),
        _ => unreachable!("flat methods"),
    };
    let verdict = probe.verdict();
    let evidence = probe.evidence();
    let censor_acted = net
        .sim
        .node_ref::<TapCensor>(net.censor)
        .map(|tap| !tap.actions().is_empty())
        .unwrap_or(false);
    let system = net
        .sim
        .node_ref::<SurveillanceNode>(net.surveillance)
        .expect("surveillance node")
        .system();
    if scope.is_enabled() {
        net.sim.export_telemetry(scope);
        if let Some(tap) = net.sim.node_ref::<TapCensor>(net.censor) {
            tap.export_telemetry(scope);
        }
        system.export_telemetry(scope);
        let tap_actions = net
            .sim
            .node_ref::<TapCensor>(net.censor)
            .map(|tap| tap.actions().to_vec())
            .unwrap_or_default();
        export_exposure(
            scope,
            trial.method.label(),
            &prep.named.name,
            &tap_actions,
            system,
        );
    }
    TrialResult {
        index: trial.index,
        method: trial.method,
        policy: prep.named.name.clone(),
        target: prep
            .template
            .config()
            .targets
            .get(trial.target_idx)
            .map(|t| t.domain.to_string())
            .unwrap_or_default(),
        seed: trial.seed,
        verdict_correct: verdict.correct_against(censor_acted),
        evaded: system.alerts_for(net.client_ip) == 0,
        alerts_on_client: system.alerts_for(net.client_ip),
        attributed: system.is_attributed(net.client_ip),
        pursued: system.is_pursued(net.client_ip),
        anonymity_set: None,
        retries: 0,
        evidence,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use underradar_censor::CensorPolicy;

    fn small_spec() -> CampaignSpec {
        CampaignSpec::new("unit", 5)
            .targets(["twitter.com", "bbc.com"])
            .methods([MethodKind::Scan, MethodKind::StatelessSyn])
            .policy(NamedPolicy::new("control", CensorPolicy::new()))
            .run_secs(30)
    }

    #[test]
    fn sequential_and_sharded_runs_agree_byte_for_byte() {
        let tel = Telemetry::disabled();
        let sequential = run(&small_spec(), 1, &tel).to_json();
        let sharded = run(&small_spec(), 4, &tel).to_json();
        assert_eq!(sequential, sharded);
    }

    #[test]
    fn routed_methods_run_through_the_same_entry_point() {
        let spec = CampaignSpec::new("routed", 9)
            .target("twitter.com")
            .methods([MethodKind::Hops, MethodKind::Stateful])
            .policy(NamedPolicy::new("control", CensorPolicy::new()))
            .run_secs(20);
        let tel = Telemetry::disabled();
        let report = run(&spec, 1, &tel);
        assert_eq!(report.trials.len(), 2);
        let hops = &report.trials[0];
        assert_eq!(hops.method, MethodKind::Hops);
        assert!(hops.verdict.is_reachable(), "{:?}", hops.verdict);
        let stateful = &report.trials[1];
        assert!(stateful.verdict.is_reachable(), "{:?}", stateful.verdict);
        assert!(stateful.evaded);
    }

    #[test]
    fn campaign_counters_reach_the_parent_registry() {
        let spec = CampaignSpec::new("tel", 3)
            .target("twitter.com")
            .method(MethodKind::Scan)
            .policy(NamedPolicy::new("control", CensorPolicy::new()))
            .run_secs(20);
        let tel = Telemetry::enabled();
        let report = run(&spec, 1, &tel);
        assert_eq!(report.trials.len(), 1);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("campaign.trials"), 1);
        assert_eq!(snap.counter("campaign.method.scan.trials"), 1);
        assert!(
            snap.counters.len() > 2,
            "simulator/censor/surveillance exports merged in: {:?}",
            snap.counters.keys().collect::<Vec<_>>()
        );
    }
}
