//! Declarative campaign specifications and their expansion into a
//! deterministic trial matrix.

use underradar_censor::CensorPolicy;
use underradar_ids::stream::{OverlapPolicy, ReassemblyConfig};

use crate::seed;

/// One of the paper's measurement methods, selectable in a campaign.
///
/// The variant labels match [`underradar_core::probe::Probe::label`] for
/// the probe that drives each method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MethodKind {
    /// §2: overt DNS + HTTP fetch from the client (the risky baseline).
    Overt,
    /// §3.2.2 Method #1: SYN scanning the target's top ports.
    Scan,
    /// §3.2.2 Method #2: spam-folder delivery probing.
    Spam,
    /// §3.2.2 Method #3: low-rate DDoS-style request sampling.
    Ddos,
    /// §3.2.3: TTL-calibrating hop enumeration from the measurement server.
    Hops,
    /// §3.2.3 Fig 3a: stateless spoofed DNS mimicry.
    StatelessDns,
    /// §3.2.3 Fig 3a: stateless spoofed SYN mimicry.
    StatelessSyn,
    /// §3.2.3 Fig 3b: stateful TTL-limited mimicry (routed topology).
    Stateful,
}

impl MethodKind {
    /// Every method, in canonical (declaration) order.
    pub const ALL: [MethodKind; 8] = [
        MethodKind::Overt,
        MethodKind::Scan,
        MethodKind::Spam,
        MethodKind::Ddos,
        MethodKind::Hops,
        MethodKind::StatelessDns,
        MethodKind::StatelessSyn,
        MethodKind::Stateful,
    ];

    /// The probe label this method drives (matches `Probe::label`).
    pub fn label(self) -> &'static str {
        match self {
            MethodKind::Overt => "overt",
            MethodKind::Scan => "scan",
            MethodKind::Spam => "spam",
            MethodKind::Ddos => "ddos",
            MethodKind::Hops => "hops",
            MethodKind::StatelessDns => "stateless-dns",
            MethodKind::StatelessSyn => "stateless-syn",
            MethodKind::Stateful => "stateful",
        }
    }
}

/// A censor policy with a display name and the HTTP path probes request.
#[derive(Debug, Clone)]
pub struct NamedPolicy {
    /// Display name used in report cells ("control", "keyword", ...).
    pub name: String,
    /// The censor/surveillance policy active for this column.
    pub policy: CensorPolicy,
    /// HTTP path requested by path-carrying probes (overt, ddos, stateful).
    pub probe_path: String,
}

impl NamedPolicy {
    /// A named policy probing the innocuous root path.
    pub fn new(name: &str, policy: CensorPolicy) -> NamedPolicy {
        NamedPolicy {
            name: name.to_string(),
            policy,
            probe_path: "/".to_string(),
        }
    }

    /// Override the HTTP path (e.g. a keyword-bearing path to trip DPI).
    pub fn with_probe_path(mut self, path: &str) -> NamedPolicy {
        self.probe_path = path.to_string();
        self
    }
}

/// Bounded retry of `Inconclusive` trials, with backoff in *simulated*
/// time: each retry re-instantiates the world from a derived seed and
/// extends the simulated horizon by `backoff_secs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Extra simulated seconds granted per retry attempt.
    pub backoff_secs: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_secs: 30,
        }
    }
}

/// A declarative measurement campaign: the full cross product of
/// policies × methods × targets × trial repeats.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name, echoed in reports.
    pub name: String,
    /// Master seed; every trial seed derives from it and the trial index.
    pub master_seed: u64,
    /// Target domains (mapped to numbered [`underradar_core::testbed::TargetSite`]s).
    pub targets: Vec<String>,
    /// Methods to run per cell.
    pub methods: Vec<MethodKind>,
    /// Censor-policy columns.
    pub policies: Vec<NamedPolicy>,
    /// Repeats per (policy, method, target) cell with distinct seeds.
    pub trials_per_cell: usize,
    /// Retry policy for `Inconclusive` verdicts.
    pub retry: RetryPolicy,
    /// Cover hosts sharing the client's home network.
    pub cover_hosts: usize,
    /// Spoofed cover *addresses* for stateless mimicry (0 = use the
    /// testbed's real cover hosts). Spoofed sources need no machines
    /// behind them, so this may exceed `cover_hosts` (Fig 3a's sweep).
    pub spoofed_cover: usize,
    /// Drive spam/ddos trials with their paper-faithful warm-up phases
    /// (reputation-earning probes / an initial flood) before the
    /// measured probe.
    pub warmup: bool,
    /// Packet-loss fraction on the client access link (0.0 = ideal).
    pub client_link_loss: f64,
    /// Reorder probability on the client access link (bounded 2 ms
    /// displacement; 0.0 = strict per-direction FIFO).
    pub client_link_reorder: f64,
    /// Duplication probability on the client access link.
    pub client_link_duplicate: f64,
    /// Single-byte corruption probability on the client access link.
    pub client_link_corrupt: f64,
    /// Simulated seconds per attempt (before retry backoff extensions).
    pub run_secs: u64,
    /// Monitor reassembly limits (flow-table capacity, per-direction
    /// window/hold-back caps) shared by the censors and the surveillance
    /// engine. Shapes which flows monitors still track, so it is part of
    /// the fingerprint.
    pub monitor_reassembly: ReassemblyConfig,
    /// Flight-recorder ring capacity override (`None` = the telemetry
    /// handle's own capacity, normally `DEFAULT_TRACE_CAPACITY`). Shapes
    /// which trace records survive eviction — and therefore journaled
    /// trace bytes — so it is part of the fingerprint.
    pub trace_capacity: Option<usize>,
}

impl CampaignSpec {
    /// A new spec with an empty matrix and paper-scale defaults.
    pub fn new(name: &str, master_seed: u64) -> CampaignSpec {
        CampaignSpec {
            name: name.to_string(),
            master_seed,
            targets: Vec::new(),
            methods: Vec::new(),
            policies: Vec::new(),
            trials_per_cell: 1,
            retry: RetryPolicy::default(),
            cover_hosts: 4,
            spoofed_cover: 0,
            warmup: true,
            client_link_loss: 0.0,
            client_link_reorder: 0.0,
            client_link_duplicate: 0.0,
            client_link_corrupt: 0.0,
            run_secs: 60,
            monitor_reassembly: ReassemblyConfig::default(),
            trace_capacity: None,
        }
    }

    /// Add one target domain.
    pub fn target(mut self, domain: &str) -> CampaignSpec {
        self.targets.push(domain.to_string());
        self
    }

    /// Add many target domains.
    pub fn targets<'a>(mut self, domains: impl IntoIterator<Item = &'a str>) -> CampaignSpec {
        self.targets.extend(domains.into_iter().map(str::to_string));
        self
    }

    /// Add one method.
    pub fn method(mut self, method: MethodKind) -> CampaignSpec {
        self.methods.push(method);
        self
    }

    /// Add many methods.
    pub fn methods(mut self, methods: impl IntoIterator<Item = MethodKind>) -> CampaignSpec {
        self.methods.extend(methods);
        self
    }

    /// Add one policy column.
    pub fn policy(mut self, policy: NamedPolicy) -> CampaignSpec {
        self.policies.push(policy);
        self
    }

    /// Set repeats per cell.
    pub fn trials_per_cell(mut self, n: usize) -> CampaignSpec {
        self.trials_per_cell = n;
        self
    }

    /// Set the retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> CampaignSpec {
        self.retry = retry;
        self
    }

    /// Set the cover-host count.
    pub fn cover_hosts(mut self, n: usize) -> CampaignSpec {
        self.cover_hosts = n;
        self
    }

    /// Set the spoofed cover-address count for stateless mimicry.
    pub fn spoofed_cover(mut self, n: usize) -> CampaignSpec {
        self.spoofed_cover = n;
        self
    }

    /// Enable or disable spam/ddos warm-up phases.
    pub fn warmup(mut self, on: bool) -> CampaignSpec {
        self.warmup = on;
        self
    }

    /// Set the client access-link loss fraction.
    pub fn client_link_loss(mut self, loss: f64) -> CampaignSpec {
        self.client_link_loss = loss;
        self
    }

    /// Set the client access-link reorder probability.
    pub fn client_link_reorder(mut self, reorder: f64) -> CampaignSpec {
        self.client_link_reorder = reorder;
        self
    }

    /// Set the client access-link duplication probability.
    pub fn client_link_duplicate(mut self, duplicate: f64) -> CampaignSpec {
        self.client_link_duplicate = duplicate;
        self
    }

    /// Set the client access-link corruption probability.
    pub fn client_link_corrupt(mut self, corrupt: f64) -> CampaignSpec {
        self.client_link_corrupt = corrupt;
        self
    }

    /// Set the simulated horizon per attempt.
    pub fn run_secs(mut self, secs: u64) -> CampaignSpec {
        self.run_secs = secs;
        self
    }

    /// Set the monitor reassembly limits.
    pub fn monitor_reassembly(mut self, cfg: ReassemblyConfig) -> CampaignSpec {
        self.monitor_reassembly = cfg;
        self
    }

    /// Override the flight-recorder ring capacity for traced runs.
    pub fn trace_capacity(mut self, capacity: Option<usize>) -> CampaignSpec {
        self.trace_capacity = capacity;
        self
    }

    /// Total trials the matrix expands to.
    pub fn trial_count(&self) -> usize {
        self.policies.len() * self.methods.len() * self.targets.len() * self.trials_per_cell
    }

    /// Structural fingerprint of everything that shapes trial outcomes:
    /// seed, matrix axes, retry budget, link impairments, and each policy
    /// column's censor configuration. A checkpoint journal records this in
    /// its header so a resume against an edited spec is rejected instead
    /// of silently mixing incompatible trial streams.
    pub fn fingerprint(&self) -> u64 {
        fn mix(h: &mut u64, v: u64) {
            *h = seed::splitmix64(*h ^ seed::splitmix64(v));
        }
        fn mix_str(h: &mut u64, s: &str) {
            mix(h, s.len() as u64);
            for chunk in s.as_bytes().chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                mix(h, u64::from_le_bytes(word));
            }
        }
        let mut h = seed::splitmix64(0xF1_4C_E5_0E);
        mix(&mut h, self.master_seed);
        mix(&mut h, self.targets.len() as u64);
        for t in &self.targets {
            mix_str(&mut h, t);
        }
        mix(&mut h, self.methods.len() as u64);
        for m in &self.methods {
            mix_str(&mut h, m.label());
        }
        mix(&mut h, self.policies.len() as u64);
        for p in &self.policies {
            mix_str(&mut h, &p.name);
            mix_str(&mut h, &p.probe_path);
            mix_str(&mut h, &p.policy.keywords.join("\n"));
            for d in &p.policy.dns_blocked {
                mix_str(&mut h, &d.to_string());
            }
            mix(&mut h, u64::from(u32::from(p.policy.dns_poison_ip)));
            mix(&mut h, p.policy.dns_nxdomain as u64);
            mix(&mut h, p.policy.ip_blocked.len() as u64);
            mix(&mut h, p.policy.port_blocked.len() as u64);
            mix_str(&mut h, &p.policy.url_blocked.join("\n"));
        }
        mix(&mut h, self.trials_per_cell as u64);
        mix(&mut h, u64::from(self.retry.max_retries));
        mix(&mut h, self.retry.backoff_secs);
        mix(&mut h, self.cover_hosts as u64);
        mix(&mut h, self.spoofed_cover as u64);
        mix(&mut h, self.warmup as u64);
        mix(&mut h, self.client_link_loss.to_bits());
        mix(&mut h, self.client_link_reorder.to_bits());
        mix(&mut h, self.client_link_duplicate.to_bits());
        mix(&mut h, self.client_link_corrupt.to_bits());
        mix(&mut h, self.run_secs);
        mix(&mut h, self.monitor_reassembly.max_flows as u64);
        mix(&mut h, self.monitor_reassembly.limits.window as u64);
        mix(&mut h, self.monitor_reassembly.limits.holdback as u64);
        mix(
            &mut h,
            match self.monitor_reassembly.overlap {
                OverlapPolicy::KeepFirst => 0,
                OverlapPolicy::KeepLast => 1,
            },
        );
        mix(&mut h, self.trace_capacity.is_some() as u64);
        mix(&mut h, self.trace_capacity.unwrap_or(0) as u64);
        h
    }

    /// Expand into the full trial matrix in canonical order:
    /// policy → method → target → repeat. Seeds depend only on
    /// `(master_seed, index)`, never on execution order.
    pub fn expand(&self) -> Vec<Trial> {
        let mut trials = Vec::with_capacity(self.trial_count());
        let mut index = 0usize;
        for (policy_idx, _) in self.policies.iter().enumerate() {
            for &method in &self.methods {
                for (target_idx, _) in self.targets.iter().enumerate() {
                    for repeat in 0..self.trials_per_cell {
                        trials.push(Trial {
                            index,
                            policy_idx,
                            method,
                            target_idx,
                            repeat,
                            seed: seed::trial_seed(self.master_seed, index),
                        });
                        index += 1;
                    }
                }
            }
        }
        trials
    }
}

/// One expanded unit of work: a single probe run under one policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Position in the expanded matrix (also the result order).
    pub index: usize,
    /// Index into [`CampaignSpec::policies`].
    pub policy_idx: usize,
    /// The method to drive.
    pub method: MethodKind,
    /// Index into [`CampaignSpec::targets`].
    pub target_idx: usize,
    /// Repeat number within the cell.
    pub repeat: usize,
    /// Derived trial seed (attempt 0; retries derive from it).
    pub seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec::new("t", 11)
            .targets(["a.com", "b.com", "c.com"])
            .methods([MethodKind::Scan, MethodKind::Spam])
            .policy(NamedPolicy::new("control", CensorPolicy::new()))
            .policy(NamedPolicy::new(
                "kw",
                CensorPolicy::new().block_keyword("x"),
            ))
            .trials_per_cell(2)
    }

    #[test]
    fn expansion_covers_the_cross_product_in_order() {
        let s = spec();
        let trials = s.expand();
        assert_eq!(trials.len(), s.trial_count());
        assert_eq!(trials.len(), 2 * 2 * 3 * 2);
        // Canonical order: policy-major, then method, target, repeat.
        assert_eq!(trials[0].policy_idx, 0);
        assert_eq!(trials[0].method, MethodKind::Scan);
        assert_eq!(trials[0].target_idx, 0);
        assert_eq!(trials[1].repeat, 1);
        assert_eq!(trials.last().map(|t| t.policy_idx), Some(1));
        for (i, t) in trials.iter().enumerate() {
            assert_eq!(t.index, i);
            assert_eq!(t.seed, seed::trial_seed(11, i));
        }
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive_to_every_axis() {
        let base = spec();
        assert_eq!(base.fingerprint(), spec().fingerprint(), "stable");
        let variants = [
            CampaignSpec::new("t", 12)
                .targets(["a.com", "b.com", "c.com"])
                .methods([MethodKind::Scan, MethodKind::Spam])
                .policy(NamedPolicy::new("control", CensorPolicy::new()))
                .policy(NamedPolicy::new(
                    "kw",
                    CensorPolicy::new().block_keyword("x"),
                ))
                .trials_per_cell(2),
            spec().target("d.com"),
            spec().method(MethodKind::Overt),
            spec().trials_per_cell(3),
            spec().run_secs(999),
            spec().client_link_loss(0.01),
            spec().retry(RetryPolicy {
                max_retries: 5,
                backoff_secs: 30,
            }),
            spec().monitor_reassembly(ReassemblyConfig {
                max_flows: 7,
                ..ReassemblyConfig::default()
            }),
            spec().monitor_reassembly(ReassemblyConfig {
                overlap: OverlapPolicy::KeepLast,
                ..ReassemblyConfig::default()
            }),
            spec().trace_capacity(Some(4096)),
            spec().trace_capacity(Some(128)),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base.fingerprint(), v.fingerprint(), "variant {i}");
        }
        // Policy *content* matters, not just the name.
        let kw_swap = CampaignSpec::new("t", 11)
            .targets(["a.com", "b.com", "c.com"])
            .methods([MethodKind::Scan, MethodKind::Spam])
            .policy(NamedPolicy::new("control", CensorPolicy::new()))
            .policy(NamedPolicy::new(
                "kw",
                CensorPolicy::new().block_keyword("y"),
            ))
            .trials_per_cell(2);
        assert_ne!(base.fingerprint(), kw_swap.fingerprint());
    }

    #[test]
    fn labels_cover_all_methods() {
        let labels: Vec<&str> = MethodKind::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            [
                "overt",
                "scan",
                "spam",
                "ddos",
                "hops",
                "stateless-dns",
                "stateless-syn",
                "stateful"
            ]
        );
    }
}
