//! Campaign results: per-trial records, per-cell accuracy/risk matrices,
//! and deterministic JSON/text rendering (no external serializer).

use std::collections::BTreeMap;

use underradar_core::probe::Evidence;
use underradar_core::verdict::Verdict;

use crate::spec::MethodKind;

/// The outcome of one trial (after any retries).
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Trial index in the expanded matrix.
    pub index: usize,
    /// The method that ran.
    pub method: MethodKind,
    /// Policy column name.
    pub policy: String,
    /// Target domain.
    pub target: String,
    /// The attempt-0 seed.
    pub seed: u64,
    /// Final verdict (after retries).
    pub verdict: Verdict,
    /// Whether the verdict matched the censor's observed behaviour.
    pub verdict_correct: bool,
    /// Whether the run raised zero surveillance alerts on the client.
    pub evaded: bool,
    /// Alert count attributed to the client address.
    pub alerts_on_client: usize,
    /// Whether surveillance attributed the activity to the client.
    pub attributed: bool,
    /// Whether surveillance opened a pursuit on the client.
    pub pursued: bool,
    /// Spoofed-source anonymity-set size, when alerts fired at all.
    pub anonymity_set: Option<usize>,
    /// Retries consumed (0 = first attempt sufficed).
    pub retries: u32,
    /// The probe's evidence key/value pairs from the final attempt.
    pub evidence: Evidence,
}

impl TrialResult {
    /// Render this trial as one deterministic JSON object — the exact
    /// per-trial element of [`CampaignReport::to_json`]'s `trials` array,
    /// also emitted standalone as a JSONL row by streaming sinks.
    pub fn to_json_row(&self) -> String {
        format!(
            "{{\"index\":{},\"method\":\"{}\",\"policy\":\"{}\",\"target\":\"{}\",\"seed\":{},\"verdict\":\"{}\",\"correct\":{},\"evaded\":{},\"alerts\":{},\"attributed\":{},\"pursued\":{},\"anonymity_set\":{},\"retries\":{}}}",
            self.index,
            self.method.label(),
            esc(&self.policy),
            esc(&self.target),
            self.seed,
            esc(&self.verdict.to_string()),
            self.verdict_correct,
            self.evaded,
            self.alerts_on_client,
            self.attributed,
            self.pursued,
            self.anonymity_set
                .map_or("null".to_string(), |n| n.to_string()),
            self.retries
        )
    }
}

/// Aggregates for one (method, policy) cell of the campaign matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellStat {
    /// Probe label of the method.
    pub method: &'static str,
    /// Policy column name.
    pub policy: String,
    /// Trials in the cell.
    pub trials: usize,
    /// Trials whose verdict matched ground truth.
    pub correct: usize,
    /// Trials that raised zero alerts on the client.
    pub evaded: usize,
    /// Trials still `Inconclusive` after all retries.
    pub inconclusive: usize,
    /// Total retries consumed across the cell.
    pub retries: u64,
}

/// A completed campaign: every trial plus derived matrices.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name from the spec.
    pub name: String,
    /// Per-trial outcomes in matrix order.
    pub trials: Vec<TrialResult>,
}

impl CampaignReport {
    /// Per-(method, policy) aggregates, sorted by method label then
    /// policy name — a deterministic accuracy/risk matrix.
    pub fn cells(&self) -> Vec<CellStat> {
        let mut map: BTreeMap<(&'static str, String), CellStat> = BTreeMap::new();
        for t in &self.trials {
            let cell = map
                .entry((t.method.label(), t.policy.clone()))
                .or_insert_with(|| CellStat {
                    method: t.method.label(),
                    policy: t.policy.clone(),
                    trials: 0,
                    correct: 0,
                    evaded: 0,
                    inconclusive: 0,
                    retries: 0,
                });
            cell.trials += 1;
            cell.correct += t.verdict_correct as usize;
            cell.evaded += t.evaded as usize;
            cell.inconclusive += matches!(t.verdict, Verdict::Inconclusive(_)) as usize;
            cell.retries += t.retries as u64;
        }
        map.into_values().collect()
    }

    /// Total retries consumed across the campaign.
    pub fn total_retries(&self) -> u64 {
        self.trials.iter().map(|t| t.retries as u64).sum()
    }

    /// Trials still `Inconclusive` after all retries.
    pub fn inconclusive_final(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| matches!(t.verdict, Verdict::Inconclusive(_)))
            .count()
    }

    /// Deterministic JSON rendering: stable key order, stable cell order,
    /// trials in matrix order. Byte-identical across worker counts.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.trials.len() * 192);
        out.push_str(&format!(
            "{{\"campaign\":\"{}\",\"trial_count\":{},\"retries\":{},\"inconclusive_final\":{},",
            esc(&self.name),
            self.trials.len(),
            self.total_retries(),
            self.inconclusive_final()
        ));
        out.push_str("\"cells\":[");
        for (i, c) in self.cells().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"method\":\"{}\",\"policy\":\"{}\",\"trials\":{},\"correct\":{},\"evaded\":{},\"inconclusive\":{},\"retries\":{}}}",
                c.method,
                esc(&c.policy),
                c.trials,
                c.correct,
                c.evaded,
                c.inconclusive,
                c.retries
            ));
        }
        out.push_str("],\"trials\":[");
        for (i, t) in self.trials.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_json_row());
        }
        out.push_str("]}");
        out
    }

    /// Human-readable matrix summary for terminal output.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "campaign '{}': {} trials, {} retries, {} inconclusive after retry\n",
            self.name,
            self.trials.len(),
            self.total_retries(),
            self.inconclusive_final()
        );
        out.push_str(&format!(
            "{:<14} {:<14} {:>6} {:>8} {:>7} {:>13} {:>8}\n",
            "method", "policy", "trials", "correct", "evades", "inconclusive", "retries"
        ));
        for c in self.cells() {
            out.push_str(&format!(
                "{:<14} {:<14} {:>6} {:>8} {:>7} {:>13} {:>8}\n",
                c.method, c.policy, c.trials, c.correct, c.evaded, c.inconclusive, c.retries
            ));
        }
        out
    }
}

/// Bounded-memory incremental aggregation of trial results: the cell
/// matrix and campaign totals of a [`CampaignReport`], built by absorbing
/// one [`TrialResult`] at a time in *any* order (completion order under
/// work stealing included) without retaining the trials themselves.
///
/// Every aggregate is commutative, so for the same set of trials
/// [`StreamReport::render_text`] is byte-identical to
/// [`CampaignReport::render_text`] — the invariant that lets a streaming
/// run service print the same summary as the in-memory engine.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Campaign name from the spec.
    pub name: String,
    trials: usize,
    retries: u64,
    inconclusive: usize,
    cells: BTreeMap<(&'static str, String), CellStat>,
}

impl StreamReport {
    /// An empty aggregator for the named campaign.
    pub fn new(name: &str) -> StreamReport {
        StreamReport {
            name: name.to_string(),
            trials: 0,
            retries: 0,
            inconclusive: 0,
            cells: BTreeMap::new(),
        }
    }

    /// Fold one completed trial into the totals and its (method, policy)
    /// cell. Safe to call in any order; every statistic is commutative.
    pub fn absorb(&mut self, t: &TrialResult) {
        self.trials += 1;
        self.retries += t.retries as u64;
        let inconclusive = matches!(t.verdict, Verdict::Inconclusive(_));
        self.inconclusive += inconclusive as usize;
        let cell = self
            .cells
            .entry((t.method.label(), t.policy.clone()))
            .or_insert_with(|| CellStat {
                method: t.method.label(),
                policy: t.policy.clone(),
                trials: 0,
                correct: 0,
                evaded: 0,
                inconclusive: 0,
                retries: 0,
            });
        cell.trials += 1;
        cell.correct += t.verdict_correct as usize;
        cell.evaded += t.evaded as usize;
        cell.inconclusive += inconclusive as usize;
        cell.retries += t.retries as u64;
    }

    /// Trials absorbed so far.
    pub fn trial_count(&self) -> usize {
        self.trials
    }

    /// Per-(method, policy) aggregates in the same order as
    /// [`CampaignReport::cells`].
    pub fn cells(&self) -> Vec<CellStat> {
        self.cells.values().cloned().collect()
    }

    /// The same matrix summary [`CampaignReport::render_text`] produces
    /// for these trials, byte for byte.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "campaign '{}': {} trials, {} retries, {} inconclusive after retry\n",
            self.name, self.trials, self.retries, self.inconclusive
        );
        out.push_str(&format!(
            "{:<14} {:<14} {:>6} {:>8} {:>7} {:>13} {:>8}\n",
            "method", "policy", "trials", "correct", "evades", "inconclusive", "retries"
        ));
        for c in self.cells.values() {
            out.push_str(&format!(
                "{:<14} {:<14} {:>6} {:>8} {:>7} {:>13} {:>8}\n",
                c.method, c.policy, c.trials, c.correct, c.evaded, c.inconclusive, c.retries
            ));
        }
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(method: MethodKind, policy: &str, verdict: Verdict, retries: u32) -> TrialResult {
        TrialResult {
            index: 0,
            method,
            policy: policy.to_string(),
            target: "a.com".to_string(),
            seed: 1,
            verdict_correct: verdict.is_reachable(),
            evaded: true,
            alerts_on_client: 0,
            attributed: false,
            pursued: false,
            anonymity_set: None,
            retries,
            evidence: Vec::new(),
            verdict,
        }
    }

    #[test]
    fn cells_aggregate_and_sort_deterministically() {
        let report = CampaignReport {
            name: "t".to_string(),
            trials: vec![
                trial(MethodKind::Scan, "control", Verdict::Reachable, 0),
                trial(
                    MethodKind::Scan,
                    "control",
                    Verdict::Inconclusive("x".into()),
                    2,
                ),
                trial(MethodKind::Ddos, "control", Verdict::Reachable, 1),
            ],
        };
        let cells = report.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].method, "ddos", "sorted by label");
        assert_eq!(cells[1].trials, 2);
        assert_eq!(cells[1].inconclusive, 1);
        assert_eq!(cells[1].retries, 2);
        assert_eq!(report.total_retries(), 3);
        assert_eq!(report.inconclusive_final(), 1);
    }

    #[test]
    fn stream_report_matches_batch_report_in_any_absorb_order() {
        let trials = vec![
            trial(MethodKind::Scan, "control", Verdict::Reachable, 0),
            trial(
                MethodKind::Scan,
                "kw",
                Verdict::Inconclusive("timeout".into()),
                2,
            ),
            trial(MethodKind::Ddos, "control", Verdict::Reachable, 1),
            trial(MethodKind::Spam, "kw", Verdict::Reachable, 0),
        ];
        let batch = CampaignReport {
            name: "s".to_string(),
            trials: trials.clone(),
        };
        // Absorb in reverse (a completion order stealing could produce).
        let mut stream = StreamReport::new("s");
        for t in trials.iter().rev() {
            stream.absorb(t);
        }
        assert_eq!(stream.render_text(), batch.render_text());
        assert_eq!(stream.cells(), batch.cells());
        assert_eq!(stream.trial_count(), 4);
    }

    #[test]
    fn json_row_is_exactly_the_envelope_trial_element() {
        let t = trial(MethodKind::Scan, "control", Verdict::Reachable, 0);
        let report = CampaignReport {
            name: "r".to_string(),
            trials: vec![t.clone()],
        };
        assert!(report.to_json().contains(&t.to_json_row()));
    }

    #[test]
    fn json_is_stable_and_escapes_strings() {
        let report = CampaignReport {
            name: "q\"uote".to_string(),
            trials: vec![trial(MethodKind::Scan, "control", Verdict::Reachable, 0)],
        };
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        assert!(a.contains("q\\\"uote"));
        assert!(a.contains("\"anonymity_set\":null"));
        assert!(a.starts_with('{') && a.ends_with('}'));
    }
}
