//! Work-stealing trial execution over `std::thread` with a fixed worker
//! count. Workers pull indices from an atomic cursor; results are
//! committed into their index slot, so the output order is independent of
//! which worker ran which trial.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `run(i)` for every `i in 0..n` across `workers` OS threads and
/// return the results in index order. `workers <= 1` runs inline on the
/// calling thread (the sequential baseline for determinism checks).
pub fn run_sharded<T, F>(n: usize, workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return (0..n).map(run).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = run(i);
                slots.lock().expect("result lock")[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("result lock")
        .into_iter()
        .map(|s| s.expect("every index ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_matches_sequential_in_order() {
        let f = |i: usize| i * i + 1;
        let seq = run_sharded(37, 1, f);
        let par = run_sharded(37, 4, f);
        assert_eq!(seq, par);
        assert_eq!(seq[5], 26);
    }

    #[test]
    fn worker_count_clamps_to_item_count() {
        assert_eq!(run_sharded(2, 16, |i| i), vec![0, 1]);
        assert_eq!(run_sharded(0, 4, |i| i), Vec::<usize>::new());
    }
}
