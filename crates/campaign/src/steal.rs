//! Work-stealing trial scheduling: per-worker deques of chunked trial
//! batches with steal-half semantics.
//!
//! The engine's previous scheduler partitioned work by handing every
//! worker indices off one shared cursor and committing results into
//! index-addressed slots. That keeps workers busy for *uniform* matrices,
//! but a skewed matrix — a block of heavy ddos cells expanded next to
//! cheap scan cells — still serializes behind whichever worker drew the
//! heavy run of indices, because an index, once drawn, can never move.
//!
//! This module replaces it: each worker owns a deque of [`Chunk`]s
//! (contiguous index ranges), pops from the front of its own deque, and
//! when empty steals **half** of the richest victim's deque (splitting a
//! lone chunk in two when that is all the victim has). Work therefore
//! migrates away from stragglers at chunk granularity, and wall-clock
//! time approaches `total_work / workers` even when all the heavy cells
//! landed in one worker's initial block.
//!
//! Determinism: scheduling decides only *where* a trial runs, never what
//! it computes — every trial's seed is a pure function of its index, and
//! results are committed into their index slot — so the output is
//! byte-identical for any worker count and any steal interleaving.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A contiguous half-open range of item positions (`start..end`), the
/// unit of scheduling and of stealing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First item position in the batch.
    pub start: usize,
    /// One past the last item position.
    pub end: usize,
}

impl Chunk {
    /// Number of items in the batch.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Split into two halves; the second is empty when `len() < 2`.
    fn split(self) -> (Chunk, Chunk) {
        let mid = self.start + self.len() / 2;
        (
            Chunk {
                start: self.start,
                end: mid,
            },
            Chunk {
                start: mid,
                end: self.end,
            },
        )
    }
}

/// The chunk size used when the caller passes 0: coarse enough that deque
/// traffic is negligible, fine enough that eight steals per worker can
/// level any initial imbalance.
pub fn auto_chunk(n: usize, workers: usize) -> usize {
    (n / (workers.max(1) * 8)).clamp(1, 64)
}

/// Per-worker chunked deques with steal-half rebalancing.
pub struct Deques {
    queues: Vec<Mutex<VecDeque<Chunk>>>,
    /// Items not yet popped from any deque (for cheap emptiness checks).
    queued: AtomicUsize,
}

impl Deques {
    /// Distribute `0..n` across `workers` deques: each worker starts with
    /// one contiguous block, pre-split into batches of `chunk` items
    /// (`0` = [`auto_chunk`]).
    pub fn split(n: usize, workers: usize, chunk: usize) -> Deques {
        let workers = workers.max(1);
        let chunk = if chunk == 0 {
            auto_chunk(n, workers)
        } else {
            chunk
        };
        let mut queues: Vec<VecDeque<Chunk>> = (0..workers).map(|_| VecDeque::new()).collect();
        let per = n.div_ceil(workers);
        for (w, queue) in queues.iter_mut().enumerate() {
            let lo = (w * per).min(n);
            let hi = ((w + 1) * per).min(n);
            let mut start = lo;
            while start < hi {
                let end = (start + chunk).min(hi);
                queue.push_back(Chunk { start, end });
                start = end;
            }
        }
        Deques {
            queues: queues.into_iter().map(Mutex::new).collect(),
            queued: AtomicUsize::new(n),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Pop the next batch from `worker`'s own deque (front: its oldest
    /// local work, farthest from any thief).
    pub fn pop(&self, worker: usize) -> Option<Chunk> {
        let chunk = self.queues[worker]
            .lock()
            .expect("deque lock poisoned")
            .pop_front();
        if let Some(c) = chunk {
            self.queued.fetch_sub(c.len(), Ordering::Relaxed);
        }
        chunk
    }

    /// Steal half of the richest victim's deque into `thief`'s, returning
    /// the first stolen batch to run immediately. `None` means every
    /// other deque was empty at the moment it was inspected.
    pub fn steal(&self, thief: usize) -> Option<Chunk> {
        if self.queued.load(Ordering::Relaxed) == 0 {
            return None;
        }
        // Pick the victim with the most queued chunks (ties: lowest id).
        let mut victim = None;
        for (w, queue) in self.queues.iter().enumerate() {
            if w == thief {
                continue;
            }
            let len = queue.lock().expect("deque lock poisoned").len();
            if len > 0 && victim.is_none_or(|(_, best)| len > best) {
                victim = Some((w, len));
            }
        }
        let (victim, _) = victim?;
        let mut stolen: VecDeque<Chunk> = {
            let mut queue = self.queues[victim].lock().expect("deque lock poisoned");
            match queue.len() {
                0 => return None,
                1 => {
                    // Split the lone batch; leave the front half in place.
                    let only = queue.pop_front().expect("len checked");
                    let (keep, take) = only.split();
                    if take.is_empty() {
                        // Single item: take it whole.
                        VecDeque::from([only])
                    } else {
                        queue.push_back(keep);
                        VecDeque::from([take])
                    }
                }
                len => queue.split_off(len - len / 2),
            }
        };
        let first = stolen.pop_front()?;
        self.queued.fetch_sub(first.len(), Ordering::Relaxed);
        if !stolen.is_empty() {
            self.queues[thief]
                .lock()
                .expect("deque lock poisoned")
                .append(&mut stolen);
        }
        Some(first)
    }

    /// Whether any deque still holds unclaimed work.
    pub fn has_work(&self) -> bool {
        self.queued.load(Ordering::Relaxed) > 0
    }
}

/// Run `run(i)` for every `i in 0..n` across `workers` OS threads with
/// work stealing, returning results in index order. `workers <= 1` runs
/// inline on the calling thread (the sequential determinism baseline).
pub fn run_chunked<T, F>(n: usize, workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return (0..n).map(run).collect();
    }
    let deques = Deques::split(n, workers, 0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let run = &run;
            scope.spawn(move || {
                while let Some(chunk) = deques.pop(w).or_else(|| deques.steal(w)) {
                    for i in chunk.start..chunk.end {
                        let out = run(i);
                        slots.lock().expect("result lock")[i] = Some(out);
                    }
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("result lock")
        .into_iter()
        .map(|s| s.expect("every index ran"))
        .collect()
}

/// Static contiguous partitioning with **no** stealing: worker `w` runs
/// exactly its initial block. This is the straggler-prone baseline
/// `run_chunked` replaces; it is kept only so `benches/perf.rs` can
/// assert the work-stealing speedup on a skewed matrix.
pub fn run_static<T, F>(n: usize, workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return (0..n).map(run).collect();
    }
    let per = n.div_ceil(workers);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for w in 0..workers {
            let slots = &slots;
            let run = &run;
            scope.spawn(move || {
                for i in (w * per).min(n)..((w + 1) * per).min(n) {
                    let out = run(i);
                    slots.lock().expect("result lock")[i] = Some(out);
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("result lock")
        .into_iter()
        .map(|s| s.expect("every index ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunked_matches_sequential_in_order() {
        let f = |i: usize| i * i + 1;
        let seq = run_chunked(37, 1, f);
        let par = run_chunked(37, 4, f);
        let stat = run_static(37, 4, f);
        assert_eq!(seq, par);
        assert_eq!(seq, stat);
        assert_eq!(seq[5], 26);
    }

    #[test]
    fn worker_count_clamps_to_item_count() {
        assert_eq!(run_chunked(2, 16, |i| i), vec![0, 1]);
        assert_eq!(run_chunked(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn every_index_runs_exactly_once_under_stealing() {
        let ran = AtomicU64::new(0);
        let out = run_chunked(1000, 8, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
        assert_eq!(ran.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn skewed_front_block_still_fills_every_slot() {
        // All the heavy work sits in worker 0's initial block; stealing
        // migrates chunks away mid-run and every result still lands in
        // its own slot.
        let out = run_chunked(256, 4, |i| {
            if i < 64 {
                let mut acc = i as u64;
                for k in 0..20_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                std::hint::black_box(acc);
            }
            i
        });
        assert_eq!(out, (0..256).collect::<Vec<_>>());
    }

    #[test]
    fn deque_split_covers_all_items_in_chunks() {
        let d = Deques::split(100, 4, 8);
        let mut seen = [false; 100];
        for w in 0..4 {
            while let Some(c) = d.pop(w) {
                assert!(c.len() <= 8);
                for (i, s) in seen.iter_mut().enumerate().take(c.end).skip(c.start) {
                    assert!(!*s, "duplicate index {i}");
                    *s = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(!d.has_work());
    }

    #[test]
    fn steal_half_takes_from_the_richest_victim() {
        let d = Deques::split(64, 2, 4);
        // Worker 1 exhausts its own deque, then steals from worker 0.
        while d.pop(1).is_some() {}
        let got = d.steal(1).expect("worker 0 still has chunks");
        assert!(got.start < 32, "stolen from worker 0's block");
        // After the steal, thief's deque holds the rest of the stolen half.
        assert!(d.pop(1).is_some());
    }

    #[test]
    fn steal_splits_a_lone_chunk() {
        let d = Deques::split(10, 2, 16);
        // Each worker has a single chunk; thief 1 drains its own then
        // splits worker 0's lone chunk.
        while d.pop(1).is_some() {}
        let got = d.steal(1).expect("splits the lone chunk");
        assert!(got.len() < 5 || got.len() == 5, "half of 5: {got:?}");
        let rest = d.pop(0).expect("victim keeps the front half");
        assert!(rest.end <= got.start, "victim keeps the front: {rest:?}");
    }
}
