#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # underradar-campaign
//!
//! A deterministic **campaign engine** for running measurement studies at
//! scale: a declarative [`CampaignSpec`] (targets × methods × censor
//! policies × trial seeds) expands into a work matrix, schedules trials
//! across OS threads with work stealing ([`steal`]), caches built testbed
//! templates per policy, retries
//! `Inconclusive` trials with bounded backoff in *simulated* time, and
//! aggregates per-method accuracy/risk matrices plus merged telemetry.
//!
//! Every measurement method from the paper ("Can Censorship Measurements
//! Be Safe(r)?", Jones & Feamster, HotNets 2015) is driven through the
//! unified [`underradar_core::probe::Probe`] trait, so the engine never
//! needs method-specific verdict plumbing — only method-specific setup.
//!
//! Determinism contract: for a fixed spec, [`engine::run`] produces
//! byte-identical reports regardless of the worker count. Trial seeds are
//! derived from `(master_seed, trial index)` alone, never from scheduling
//! order, and results are committed in trial-index order.
//!
//! ```
//! use underradar_campaign::{engine, CampaignSpec, MethodKind, NamedPolicy};
//! use underradar_censor::CensorPolicy;
//!
//! let spec = CampaignSpec::new("doc", 7)
//!     .target("twitter.com")
//!     .method(MethodKind::Scan)
//!     .policy(NamedPolicy::new("control", CensorPolicy::new()))
//!     .run_secs(30);
//! let tel = underradar_telemetry::Telemetry::disabled();
//! let report = engine::run(&spec, 1, &tel);
//! assert_eq!(report.trials.len(), 1);
//! ```

pub mod engine;
pub mod report;
pub mod seed;
pub mod spec;
pub mod steal;

pub use report::{CampaignReport, CellStat, StreamReport, TrialResult};
pub use spec::{CampaignSpec, MethodKind, NamedPolicy, RetryPolicy, Trial};
