//! Seed derivation: every trial's seed is a pure function of the
//! campaign's master seed and the trial's index in the expanded matrix,
//! so sharded and sequential runs agree byte-for-byte.

/// SplitMix64 finalizer — decorrelates seeds that differ in few bits.
///
/// Delegates to the workspace's single shared definition in
/// [`underradar_netsim::rng::splitmix64_mix`] (also used by
/// `bench::runner`), so the two seed-derivation paths cannot drift.
pub fn splitmix64(x: u64) -> u64 {
    underradar_netsim::rng::splitmix64_mix(x)
}

/// The seed for trial `index` of a campaign with `master_seed`.
pub fn trial_seed(master_seed: u64, index: usize) -> u64 {
    splitmix64(master_seed ^ splitmix64(index as u64))
}

/// The seed for retry `attempt` of a trial. Attempt 0 is the trial seed
/// itself; each retry re-rolls the world deterministically so a loss
/// pattern that swallowed the first attempt's packets is re-drawn.
pub fn attempt_seed(trial_seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        trial_seed
    } else {
        splitmix64(trial_seed ^ splitmix64(0x5EED_0000 + attempt as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..64).map(|i| trial_seed(42, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| trial_seed(42, i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "no collisions in a small matrix");
    }

    #[test]
    fn attempt_zero_is_the_trial_seed() {
        assert_eq!(attempt_seed(99, 0), 99);
        assert_ne!(attempt_seed(99, 1), 99);
        assert_ne!(attempt_seed(99, 1), attempt_seed(99, 2));
    }
}
