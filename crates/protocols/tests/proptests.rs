//! Property tests for the protocol substrates: DNS wire roundtrips with
//! arbitrary record sets, name encode/decode with compression, email wire
//! safety, HTTP parser robustness. Inputs come from the in-tree seeded
//! generator ([`underradar_netsim::testprop`]).

use std::net::Ipv4Addr;

use underradar_netsim::testprop::{cases, Gen};
use underradar_protocols::dns::{DnsMessage, DnsName, QType, Rcode, Record, RecordData};
use underradar_protocols::email::EmailMessage;
use underradar_protocols::http::{HttpRequest, HttpResponse};

const LABEL_ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";

fn arb_label(g: &mut Gen) -> String {
    let len = g.usize_in(1, 13);
    g.string_from(LABEL_ALPHABET, len)
}

fn arb_name(g: &mut Gen) -> DnsName {
    let n = g.usize_in(1, 5);
    let labels: Vec<String> = (0..n).map(|_| arb_label(g)).collect();
    DnsName::parse(&labels.join(".")).expect("generated name is valid")
}

fn arb_rdata(g: &mut Gen) -> RecordData {
    match g.usize_in(0, 5) {
        0 => RecordData::A(Ipv4Addr::from(g.u32())),
        1 => RecordData::Ns(arb_name(g)),
        2 => RecordData::Cname(arb_name(g)),
        3 => RecordData::Mx {
            preference: g.u16(),
            exchange: arb_name(g),
        },
        _ => RecordData::Txt(g.bytes(0, 300)),
    }
}

fn arb_record(g: &mut Gen) -> Record {
    Record {
        name: arb_name(g),
        ttl: g.u32_in(0, 100_000),
        data: arb_rdata(g),
    }
}

fn arb_message(g: &mut Gen) -> DnsMessage {
    let qtype = *g.choose(&[QType::A, QType::Mx, QType::Ns, QType::Txt, QType::Cname]);
    let rcode = *g.choose(&[Rcode::NoError, Rcode::NxDomain, Rcode::ServFail]);
    let mut m = DnsMessage::query(g.u16(), arb_name(g), qtype);
    if g.bool() {
        m = DnsMessage::response_to(&m, rcode);
        m.answers = (0..g.usize_in(0, 6)).map(|_| arb_record(g)).collect();
        m.authorities = (0..g.usize_in(0, 3)).map(|_| arb_record(g)).collect();
    }
    m
}

/// DNS messages roundtrip the wire exactly, whatever the record mix.
#[test]
fn dns_message_roundtrip() {
    cases(256, 0xB001, |g| {
        let msg = arb_message(g);
        let decoded = DnsMessage::decode(&msg.encode()).expect("own encoding parses");
        assert_eq!(decoded, msg);
    });
}

/// Arbitrary bytes never panic the DNS decoder.
#[test]
fn dns_decoder_total() {
    cases(512, 0xB002, |g| {
        let bytes = g.bytes(0, 400);
        let _ = DnsMessage::decode(&bytes);
    });
}

/// Name compression never changes the decoded names, in any order.
#[test]
fn name_compression_transparent() {
    cases(256, 0xB003, |g| {
        let n = g.usize_in(1, 10);
        let names: Vec<DnsName> = (0..n).map(|_| arb_name(g)).collect();
        let mut buf = Vec::new();
        let mut offsets = Vec::new();
        for name in &names {
            name.encode(&mut buf, &mut offsets);
        }
        let mut pos = 0usize;
        for name in &names {
            let (decoded, next) = DnsName::decode(&buf, pos).expect("decode");
            assert_eq!(&decoded, name);
            pos = next;
        }
        assert_eq!(pos, buf.len());
    });
}

/// Subdomain relation is reflexive and respects label suffixes.
#[test]
fn subdomain_properties() {
    cases(256, 0xB004, |g| {
        let a = arb_name(g);
        let label = arb_label(g);
        assert!(a.is_subdomain_of(&a));
        let child = a.prepend(&label).expect("prepend");
        assert!(child.is_subdomain_of(&a));
        assert!(!a.is_subdomain_of(&child));
    });
}

/// Email messages survive the wire whatever the body shape (including
/// dot-stuffing hazards).
#[test]
fn email_roundtrip() {
    cases(256, 0xB005, |g| {
        let subject = g.printable(0, 60);
        let n_lines = g.usize_in(0, 9);
        let mut body_lines: Vec<String> = (0..n_lines).map(|_| g.printable(0, 40)).collect();
        body_lines.push(g.printable(0, 40));
        let body = body_lines.join("\n");
        let msg = EmailMessage::new("a@b.example", "c@d.example", &subject, &body);
        let parsed = EmailMessage::from_wire(&msg.to_wire()).expect("parse back");
        assert_eq!(parsed.subject.trim(), subject.trim());
        assert_eq!(parsed.body, body.replace('\r', ""));
    });
}

/// HTTP request roundtrip for safe path/host charsets.
#[test]
fn http_request_roundtrip() {
    cases(256, 0xB006, |g| {
        let host_len = g.usize_in(1, 31);
        let host = g.string_from(b"abcdefghijklmnopqrstuvwxyz0123456789.", host_len);
        let path_len = g.usize_in(0, 41);
        let path = format!(
            "/{}",
            g.string_from(
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/_-",
                path_len
            )
        );
        let req = HttpRequest::get(&host, &path);
        let parsed = HttpRequest::parse(&req.to_wire()).expect("parse");
        assert_eq!(parsed.host, host);
        assert_eq!(parsed.path, path);
    });
}

/// HTTP parsers are total over arbitrary bytes.
#[test]
fn http_parsers_total() {
    cases(512, 0xB007, |g| {
        let bytes = g.bytes(0, 300);
        let _ = HttpRequest::parse(&bytes);
        let _ = HttpResponse::parse(&bytes);
    });
}

/// Response status/body survive the wire.
#[test]
fn http_response_roundtrip() {
    cases(256, 0xB008, |g| {
        let status = g.u32_in(100, 600) as u16;
        let body = g.bytes(0, 200);
        let resp = HttpResponse {
            status,
            reason: "Custom".to_string(),
            headers: vec![("X-Test".to_string(), "v".to_string())],
            body: body.clone(),
        };
        let parsed = HttpResponse::parse(&resp.to_wire()).expect("parse");
        assert_eq!(parsed.status, status);
        assert_eq!(parsed.body, body);
    });
}
