//! Property tests for the protocol substrates: DNS wire roundtrips with
//! arbitrary record sets, name encode/decode with compression, email wire
//! safety, HTTP parser robustness.

use proptest::prelude::*;
use std::net::Ipv4Addr;

use underradar_protocols::dns::{DnsMessage, DnsName, QType, Rcode, Record, RecordData};
use underradar_protocols::email::EmailMessage;
use underradar_protocols::http::{HttpRequest, HttpResponse};

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]{1,12}").expect("valid regex")
}

fn arb_name() -> impl Strategy<Value = DnsName> {
    proptest::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| DnsName::parse(&labels.join(".")).expect("generated name is valid"))
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), 0u32..100_000, arb_rdata()).prop_map(|(name, ttl, data)| Record { name, ttl, data })
}

fn arb_rdata() -> impl Strategy<Value = RecordData> {
    prop_oneof![
        any::<u32>().prop_map(|ip| RecordData::A(Ipv4Addr::from(ip))),
        arb_name().prop_map(RecordData::Ns),
        arb_name().prop_map(RecordData::Cname),
        (any::<u16>(), arb_name())
            .prop_map(|(preference, exchange)| RecordData::Mx { preference, exchange }),
        proptest::collection::vec(any::<u8>(), 0..300).prop_map(RecordData::Txt),
    ]
}

fn arb_message() -> impl Strategy<Value = DnsMessage> {
    (
        any::<u16>(),
        arb_name(),
        prop_oneof![
            Just(QType::A),
            Just(QType::Mx),
            Just(QType::Ns),
            Just(QType::Txt),
            Just(QType::Cname)
        ],
        proptest::collection::vec(arb_record(), 0..6),
        proptest::collection::vec(arb_record(), 0..3),
        prop_oneof![Just(Rcode::NoError), Just(Rcode::NxDomain), Just(Rcode::ServFail)],
        any::<bool>(),
    )
        .prop_map(|(id, qname, qtype, answers, authorities, rcode, is_response)| {
            let mut m = DnsMessage::query(id, qname, qtype);
            if is_response {
                m = DnsMessage::response_to(&m, rcode);
                m.answers = answers;
                m.authorities = authorities;
            }
            m
        })
}

proptest! {
    /// DNS messages roundtrip the wire exactly, whatever the record mix.
    #[test]
    fn dns_message_roundtrip(msg in arb_message()) {
        let decoded = DnsMessage::decode(&msg.encode()).expect("own encoding parses");
        prop_assert_eq!(decoded, msg);
    }

    /// Arbitrary bytes never panic the DNS decoder.
    #[test]
    fn dns_decoder_total(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = DnsMessage::decode(&bytes);
    }

    /// Name compression never changes the decoded names, in any order.
    #[test]
    fn name_compression_transparent(names in proptest::collection::vec(arb_name(), 1..10)) {
        let mut buf = Vec::new();
        let mut offsets = Vec::new();
        for n in &names {
            n.encode(&mut buf, &mut offsets);
        }
        let mut pos = 0usize;
        for n in &names {
            let (decoded, next) = DnsName::decode(&buf, pos).expect("decode");
            prop_assert_eq!(&decoded, n);
            pos = next;
        }
        prop_assert_eq!(pos, buf.len());
    }

    /// Subdomain relation is reflexive and respects label suffixes.
    #[test]
    fn subdomain_properties(a in arb_name(), label in arb_label()) {
        prop_assert!(a.is_subdomain_of(&a));
        let child = a.prepend(&label).expect("prepend");
        prop_assert!(child.is_subdomain_of(&a));
        prop_assert!(!a.is_subdomain_of(&child));
    }

    /// Email messages survive the wire whatever the body shape (including
    /// dot-stuffing hazards).
    #[test]
    fn email_roundtrip(
        subject in "[ -~]{0,60}",
        body in proptest::string::string_regex("([ -~]{0,40}\n){0,8}[ -~]{0,40}").expect("regex"),
    ) {
        // Header-safe subject (no colon confusion beyond the first).
        let msg = EmailMessage::new("a@b.example", "c@d.example", &subject, &body);
        let parsed = EmailMessage::from_wire(&msg.to_wire()).expect("parse back");
        prop_assert_eq!(parsed.subject.trim(), subject.trim());
        prop_assert_eq!(parsed.body, body.replace('\r', ""));
    }

    /// HTTP request roundtrip for safe path/host charsets.
    #[test]
    fn http_request_roundtrip(
        host in proptest::string::string_regex("[a-z0-9.]{1,30}").expect("regex"),
        path in proptest::string::string_regex("/[a-zA-Z0-9/_-]{0,40}").expect("regex"),
    ) {
        let req = HttpRequest::get(&host, &path);
        let parsed = HttpRequest::parse(&req.to_wire()).expect("parse");
        prop_assert_eq!(parsed.host, host);
        prop_assert_eq!(parsed.path, path);
    }

    /// HTTP parsers are total over arbitrary bytes.
    #[test]
    fn http_parsers_total(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = HttpRequest::parse(&bytes);
        let _ = HttpResponse::parse(&bytes);
    }

    /// Response status/body survive the wire.
    #[test]
    fn http_response_roundtrip(status in 100u16..600, body in proptest::collection::vec(any::<u8>(), 0..200)) {
        let resp = HttpResponse {
            status,
            reason: "Custom".to_string(),
            headers: vec![("X-Test".to_string(), "v".to_string())],
            body: body.clone(),
        };
        let parsed = HttpResponse::parse(&resp.to_wire()).expect("parse");
        prop_assert_eq!(parsed.status, status);
        prop_assert_eq!(parsed.body, body);
    }
}
