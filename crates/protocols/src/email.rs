//! An RFC 5322-ish email message.
//!
//! Shared between the SMTP substrate (which transports it) and the spam
//! scorer (which extracts features from it). The format is the small subset
//! real spam filters key on: headers, a blank line, a body.

use std::fmt;

/// A simple email message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmailMessage {
    /// Envelope/header sender, e.g. `promo@deals.example`.
    pub from: String,
    /// Recipient, e.g. `user@censored.example`.
    pub to: String,
    /// Subject line.
    pub subject: String,
    /// Additional headers as (name, value) pairs.
    pub extra_headers: Vec<(String, String)>,
    /// Body text.
    pub body: String,
}

impl EmailMessage {
    /// Create a message with no extra headers.
    pub fn new(from: &str, to: &str, subject: &str, body: &str) -> EmailMessage {
        EmailMessage {
            from: from.to_string(),
            to: to.to_string(),
            subject: subject.to_string(),
            extra_headers: Vec::new(),
            body: body.to_string(),
        }
    }

    /// Add a header (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> EmailMessage {
        self.extra_headers
            .push((name.to_string(), value.to_string()));
        self
    }

    /// The domain part of the recipient address, if well-formed.
    pub fn to_domain(&self) -> Option<&str> {
        self.to.rsplit_once('@').map(|(_, d)| d)
    }

    /// The domain part of the sender address, if well-formed.
    pub fn from_domain(&self) -> Option<&str> {
        self.from.rsplit_once('@').map(|(_, d)| d)
    }

    /// Serialize into RFC 5322 wire text (CRLF line endings). Lines in the
    /// body consisting of a single `.` are dot-stuffed for SMTP safety.
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("From: {}\r\n", self.from));
        out.push_str(&format!("To: {}\r\n", self.to));
        out.push_str(&format!("Subject: {}\r\n", self.subject));
        for (name, value) in &self.extra_headers {
            out.push_str(&format!("{name}: {value}\r\n"));
        }
        out.push_str("\r\n");
        for line in self.body.split('\n') {
            let line = line.strip_suffix('\r').unwrap_or(line);
            if line.starts_with('.') {
                out.push('.');
            }
            out.push_str(line);
            out.push_str("\r\n");
        }
        out
    }

    /// Parse wire text back into a message. Unknown headers land in
    /// `extra_headers`; dot-stuffing is reversed.
    pub fn from_wire(text: &str) -> Option<EmailMessage> {
        let (head, body) = match text.split_once("\r\n\r\n") {
            Some(x) => x,
            None => text.split_once("\n\n")?,
        };
        let mut msg = EmailMessage::new("", "", "", "");
        for line in head.lines() {
            let (name, value) = line.split_once(':')?;
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "from" => msg.from = value.to_string(),
                "to" => msg.to = value.to_string(),
                "subject" => msg.subject = value.to_string(),
                _ => msg
                    .extra_headers
                    .push((name.to_string(), value.to_string())),
            }
        }
        let mut body_out = String::new();
        for (i, line) in body.split("\r\n").enumerate() {
            if i > 0 {
                body_out.push('\n');
            }
            body_out.push_str(line.strip_prefix('.').unwrap_or(line));
        }
        // Trim the trailing newline added by serialization.
        if body_out.ends_with('\n') {
            body_out.pop();
        }
        msg.body = body_out;
        Some(msg)
    }

    /// Count `http://`/`https://` URLs in the body (a spam feature).
    pub fn url_count(&self) -> usize {
        self.body.matches("http://").count() + self.body.matches("https://").count()
    }
}

impl fmt::Display for EmailMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}> -> <{}>: {}", self.from, self.to, self.subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let m = EmailMessage::new(
            "promo@deals.example",
            "user@twitter.com",
            "AMAZING offer",
            "Buy now!\nVisit http://deals.example/win",
        )
        .with_header("X-Mailer", "bulk-v3");
        let parsed = EmailMessage::from_wire(&m.to_wire()).expect("parse");
        assert_eq!(parsed.from, m.from);
        assert_eq!(parsed.to, m.to);
        assert_eq!(parsed.subject, m.subject);
        assert_eq!(parsed.extra_headers, m.extra_headers);
        assert_eq!(parsed.body, m.body);
    }

    #[test]
    fn dot_stuffing() {
        let m = EmailMessage::new("a@b.c", "d@e.f", "s", "line1\n.\n.hidden\nline2");
        let wire = m.to_wire();
        assert!(wire.contains("\r\n..\r\n"), "bare dot line stuffed");
        assert!(wire.contains("\r\n..hidden\r\n"));
        let parsed = EmailMessage::from_wire(&wire).expect("parse");
        assert_eq!(parsed.body, m.body);
    }

    #[test]
    fn domains_extracted() {
        let m = EmailMessage::new("x@sender.org", "y@youtube.com", "s", "b");
        assert_eq!(m.from_domain(), Some("sender.org"));
        assert_eq!(m.to_domain(), Some("youtube.com"));
        let bad = EmailMessage::new("no-at-sign", "also-none", "s", "b");
        assert_eq!(bad.from_domain(), None);
        assert_eq!(bad.to_domain(), None);
    }

    #[test]
    fn url_counting() {
        let m = EmailMessage::new(
            "a@b.c",
            "d@e.f",
            "s",
            "http://x.test https://y.test and http://z.test/page",
        );
        assert_eq!(m.url_count(), 3);
        assert_eq!(
            EmailMessage::new("a@b.c", "d@e.f", "s", "no links").url_count(),
            0
        );
    }

    #[test]
    fn malformed_wire_returns_none() {
        assert!(EmailMessage::from_wire("no separator here").is_none());
        assert!(EmailMessage::from_wire("BadHeaderNoColon\r\n\r\nbody").is_none());
    }
}
