//! A minimal SMTP implementation (RFC 5321 subset).
//!
//! Supplies both halves the spam method (§3.1, Method #2) needs: an SMTP
//! server [`Service`] to run on simulated mail exchangers, and a client
//! state machine a measurement task drives over its TCP connection.
//!
//! The dialogue covered: `220` greeting, `HELO`, `MAIL FROM`, `RCPT TO`,
//! `DATA`/`354`, message terminated by `<CRLF>.<CRLF>`, `QUIT`/`221`.

use underradar_netsim::host::{Service, ServiceApi};

use crate::email::EmailMessage;

/// Server-side SMTP session states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerState {
    Greeted,
    Helo,
    Mail,
    Rcpt,
    Data,
    Done,
}

/// An SMTP server service: accepts one mail transaction per connection and
/// stores received messages for inspection.
///
/// Received messages are kept in the service instance; since the host keeps
/// the instance alive until the connection closes, experiments usually use
/// [`SmtpServerService::with_sink`] to collect messages into a shared log.
pub struct SmtpServerService {
    state: ServerState,
    buffer: String,
    data: String,
    sender: String,
    recipient: String,
    /// Messages received over this connection.
    pub received: Vec<EmailMessage>,
    sink: Option<std::rc::Rc<std::cell::RefCell<Vec<EmailMessage>>>>,
}

impl SmtpServerService {
    /// New session handler with no shared sink.
    pub fn new() -> SmtpServerService {
        SmtpServerService {
            state: ServerState::Greeted,
            buffer: String::new(),
            data: String::new(),
            sender: String::new(),
            recipient: String::new(),
            received: Vec::new(),
            sink: None,
        }
    }

    /// New session handler that appends completed messages to `sink`.
    pub fn with_sink(
        sink: std::rc::Rc<std::cell::RefCell<Vec<EmailMessage>>>,
    ) -> SmtpServerService {
        let mut s = SmtpServerService::new();
        s.sink = Some(sink);
        s
    }

    fn handle_line(&mut self, api: &mut ServiceApi<'_, '_>, line: &str) {
        if self.state == ServerState::Data {
            if line == "." {
                if let Some(msg) = EmailMessage::from_wire(&self.data) {
                    if let Some(sink) = &self.sink {
                        sink.borrow_mut().push(msg.clone());
                    }
                    self.received.push(msg);
                    api.send(b"250 OK: queued\r\n");
                } else {
                    api.send(b"554 Transaction failed: unparseable message\r\n");
                }
                self.data.clear();
                self.state = ServerState::Helo;
            } else {
                // Reverse dot-stuffing happens in EmailMessage parsing; keep
                // the raw line (including the stuffed dot) here.
                self.data.push_str(line);
                self.data.push_str("\r\n");
            }
            return;
        }

        let upper = line.to_ascii_uppercase();
        if upper.starts_with("HELO") || upper.starts_with("EHLO") {
            self.state = ServerState::Helo;
            api.send(b"250 mx.sim Hello\r\n");
        } else if upper.starts_with("MAIL FROM:") {
            if self.state == ServerState::Helo {
                self.sender = line[10..].trim().trim_matches(['<', '>']).to_string();
                self.state = ServerState::Mail;
                api.send(b"250 OK\r\n");
            } else {
                api.send(b"503 Bad sequence of commands\r\n");
            }
        } else if upper.starts_with("RCPT TO:") {
            if self.state == ServerState::Mail || self.state == ServerState::Rcpt {
                self.recipient = line[8..].trim().trim_matches(['<', '>']).to_string();
                self.state = ServerState::Rcpt;
                api.send(b"250 OK\r\n");
            } else {
                api.send(b"503 Bad sequence of commands\r\n");
            }
        } else if upper.starts_with("DATA") {
            if self.state == ServerState::Rcpt {
                self.state = ServerState::Data;
                api.send(b"354 End data with <CR><LF>.<CR><LF>\r\n");
            } else {
                api.send(b"503 Bad sequence of commands\r\n");
            }
        } else if upper.starts_with("QUIT") {
            self.state = ServerState::Done;
            api.send(b"221 Bye\r\n");
            api.close();
        } else if upper.starts_with("RSET") {
            self.state = ServerState::Helo;
            self.data.clear();
            api.send(b"250 OK\r\n");
        } else {
            api.send(b"502 Command not implemented\r\n");
        }
    }
}

impl Default for SmtpServerService {
    fn default() -> Self {
        Self::new()
    }
}

impl Service for SmtpServerService {
    fn on_connected(&mut self, api: &mut ServiceApi<'_, '_>) {
        api.send(b"220 mx.sim ESMTP ready\r\n");
    }

    fn on_data(&mut self, api: &mut ServiceApi<'_, '_>, data: &[u8]) {
        self.buffer.push_str(&String::from_utf8_lossy(data));
        while let Some(idx) = self.buffer.find("\r\n") {
            let line: String = self.buffer[..idx].to_string();
            self.buffer.drain(..idx + 2);
            self.handle_line(api, &line);
        }
    }

    fn on_peer_closed(&mut self, api: &mut ServiceApi<'_, '_>) {
        api.close();
    }
}

/// Phases of the client-side SMTP dialogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmtpPhase {
    /// Waiting for the 220 greeting.
    AwaitGreeting,
    /// Sent HELO, waiting for 250.
    AwaitHelo,
    /// Sent MAIL FROM, waiting for 250.
    AwaitMail,
    /// Sent RCPT TO, waiting for 250.
    AwaitRcpt,
    /// Sent DATA, waiting for 354.
    AwaitDataGo,
    /// Sent message, waiting for 250.
    AwaitAccept,
    /// Sent QUIT, waiting for 221.
    AwaitQuit,
    /// Transaction finished successfully.
    Done,
    /// Server rejected a step.
    Failed,
}

/// Client-side SMTP state machine.
///
/// Feed it server bytes with [`SmtpClientMachine::on_data`]; it returns the
/// next bytes to send. The owning task moves data over its TCP connection.
#[derive(Debug)]
pub struct SmtpClientMachine {
    phase: SmtpPhase,
    message: EmailMessage,
    helo_name: String,
    buffer: String,
    /// The last status code received from the server.
    pub last_code: Option<u16>,
}

impl SmtpClientMachine {
    /// Prepare to deliver `message`, announcing `helo_name`.
    pub fn new(helo_name: &str, message: EmailMessage) -> SmtpClientMachine {
        SmtpClientMachine {
            phase: SmtpPhase::AwaitGreeting,
            message,
            helo_name: helo_name.to_string(),
            buffer: String::new(),
            last_code: None,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> SmtpPhase {
        self.phase
    }

    /// Whether the transaction completed (message accepted and QUIT acked).
    pub fn is_done(&self) -> bool {
        self.phase == SmtpPhase::Done
    }

    /// Whether the server rejected the transaction.
    pub fn is_failed(&self) -> bool {
        self.phase == SmtpPhase::Failed
    }

    /// Consume server bytes; returns client bytes to transmit (possibly
    /// empty).
    pub fn on_data(&mut self, data: &[u8]) -> Vec<u8> {
        self.buffer.push_str(&String::from_utf8_lossy(data));
        let mut out = Vec::new();
        while let Some(idx) = self.buffer.find("\r\n") {
            let line: String = self.buffer[..idx].to_string();
            self.buffer.drain(..idx + 2);
            out.extend_from_slice(&self.on_line(&line));
        }
        out
    }

    fn on_line(&mut self, line: &str) -> Vec<u8> {
        let code: u16 = line.get(..3).and_then(|c| c.parse().ok()).unwrap_or(0);
        self.last_code = Some(code);
        let ok = (200..400).contains(&code);
        match self.phase {
            SmtpPhase::AwaitGreeting if ok => {
                self.phase = SmtpPhase::AwaitHelo;
                format!("HELO {}\r\n", self.helo_name).into_bytes()
            }
            SmtpPhase::AwaitHelo if ok => {
                self.phase = SmtpPhase::AwaitMail;
                format!("MAIL FROM:<{}>\r\n", self.message.from).into_bytes()
            }
            SmtpPhase::AwaitMail if ok => {
                self.phase = SmtpPhase::AwaitRcpt;
                format!("RCPT TO:<{}>\r\n", self.message.to).into_bytes()
            }
            SmtpPhase::AwaitRcpt if ok => {
                self.phase = SmtpPhase::AwaitDataGo;
                b"DATA\r\n".to_vec()
            }
            SmtpPhase::AwaitDataGo if ok => {
                self.phase = SmtpPhase::AwaitAccept;
                let mut payload = self.message.to_wire().into_bytes();
                payload.extend_from_slice(b".\r\n");
                payload
            }
            SmtpPhase::AwaitAccept if ok => {
                self.phase = SmtpPhase::AwaitQuit;
                b"QUIT\r\n".to_vec()
            }
            SmtpPhase::AwaitQuit if ok => {
                self.phase = SmtpPhase::Done;
                Vec::new()
            }
            SmtpPhase::Done | SmtpPhase::Failed => Vec::new(),
            _ => {
                self.phase = SmtpPhase::Failed;
                b"QUIT\r\n".to_vec()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::net::Ipv4Addr;
    use std::rc::Rc;
    use underradar_netsim::{
        ConnId, Host, HostApi, HostTask, LinkConfig, SimDuration, SimTime, Simulator, TcpEvent,
        HOST_IFACE,
    };

    fn spam() -> EmailMessage {
        EmailMessage::new(
            "winner@prizes.example",
            "user@twitter.com",
            "You WON",
            "Claim at http://prizes.example/claim",
        )
    }

    /// Drive client machine against server service over a real simulated
    /// TCP connection.
    struct SmtpClientTask {
        server: Ipv4Addr,
        machine: SmtpClientMachine,
        conn: Option<ConnId>,
    }

    impl HostTask for SmtpClientTask {
        fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
            self.conn = Some(api.tcp_connect(self.server, 25));
        }
        fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, event: TcpEvent) {
            if let TcpEvent::Data(d) = event {
                let reply = self.machine.on_data(&d);
                if !reply.is_empty() {
                    api.tcp_send(conn, &reply);
                }
                if self.machine.is_done() {
                    api.tcp_close(conn);
                }
            }
        }
    }

    #[test]
    fn full_transaction_over_simulated_tcp() {
        let client_ip = Ipv4Addr::new(10, 0, 1, 2);
        let server_ip = Ipv4Addr::new(10, 0, 2, 25);
        let inbox: Rc<RefCell<Vec<EmailMessage>>> = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(8);
        let client = sim.add_node(Box::new(Host::new("client", client_ip)));
        let mut server = Host::new("mx", server_ip);
        let sink = inbox.clone();
        server.add_tcp_listener(25, move || {
            Box::new(SmtpServerService::with_sink(sink.clone()))
        });
        let server = sim.add_node(Box::new(server));
        sim.wire(
            client,
            HOST_IFACE,
            server,
            HOST_IFACE,
            LinkConfig::default(),
        )
        .expect("wire");
        sim.node_mut::<Host>(client).expect("c").spawn_task_at(
            SimTime::ZERO,
            Box::new(SmtpClientTask {
                server: server_ip,
                machine: SmtpClientMachine::new("client.sim", spam()),
                conn: None,
            }),
        );
        sim.run_for(SimDuration::from_secs(10)).expect("run");
        let delivered = inbox.borrow();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].subject, "You WON");
        assert_eq!(delivered[0].to, "user@twitter.com");
        let task = sim
            .node_ref::<Host>(client)
            .expect("c")
            .task_ref::<SmtpClientTask>(0)
            .expect("t");
        assert!(task.machine.is_done());
    }

    #[test]
    fn client_machine_happy_path_scripted() {
        let mut m = SmtpClientMachine::new("probe.sim", spam());
        let helo = m.on_data(b"220 mx.sim ESMTP ready\r\n");
        assert_eq!(helo, b"HELO probe.sim\r\n");
        let mail = m.on_data(b"250 mx.sim Hello\r\n");
        assert!(mail.starts_with(b"MAIL FROM:<winner@prizes.example>"));
        let rcpt = m.on_data(b"250 OK\r\n");
        assert!(rcpt.starts_with(b"RCPT TO:<user@twitter.com>"));
        let data = m.on_data(b"250 OK\r\n");
        assert_eq!(data, b"DATA\r\n");
        let body = m.on_data(b"354 go\r\n");
        assert!(body.ends_with(b"\r\n.\r\n"));
        let quit = m.on_data(b"250 OK: queued\r\n");
        assert_eq!(quit, b"QUIT\r\n");
        assert!(!m.is_done());
        let end = m.on_data(b"221 Bye\r\n");
        assert!(end.is_empty());
        assert!(m.is_done());
        assert_eq!(m.last_code, Some(221));
    }

    #[test]
    fn rejection_fails_the_machine() {
        let mut m = SmtpClientMachine::new("probe.sim", spam());
        let _ = m.on_data(b"220 ready\r\n");
        let _ = m.on_data(b"250 hello\r\n");
        let out = m.on_data(b"550 blocked sender\r\n");
        assert_eq!(out, b"QUIT\r\n");
        assert!(m.is_failed());
    }

    #[test]
    fn split_lines_across_packets_reassembled() {
        let mut m = SmtpClientMachine::new("probe.sim", spam());
        assert!(m.on_data(b"22").is_empty());
        assert!(m.on_data(b"0 ready\r").is_empty());
        let helo = m.on_data(b"\n");
        assert_eq!(helo, b"HELO probe.sim\r\n");
    }

    #[test]
    fn server_enforces_command_order() {
        // Scripted through the service trait using a fake connection is
        // heavyweight; instead check ordering logic through the sim in
        // `full_transaction_over_simulated_tcp` and unit-test the state
        // transitions here via a minimal harness below.
        // Out-of-order DATA before RCPT: replies 503 but session survives.
        let client_ip = Ipv4Addr::new(10, 0, 1, 2);
        let server_ip = Ipv4Addr::new(10, 0, 2, 25);
        struct BadClient {
            server: Ipv4Addr,
            responses: Vec<String>,
        }
        impl HostTask for BadClient {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                api.tcp_connect(self.server, 25);
            }
            fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, ev: TcpEvent) {
                if let TcpEvent::Data(d) = ev {
                    let text = String::from_utf8_lossy(&d).to_string();
                    let first = self.responses.is_empty();
                    self.responses.push(text);
                    if first {
                        api.tcp_send(conn, b"DATA\r\n"); // skipped HELO/MAIL/RCPT
                    }
                }
            }
        }
        let mut sim = Simulator::new(9);
        let client = sim.add_node(Box::new(Host::new("client", client_ip)));
        let mut server = Host::new("mx", server_ip);
        server.add_tcp_listener(25, || Box::new(SmtpServerService::new()));
        let server = sim.add_node(Box::new(server));
        sim.wire(
            client,
            HOST_IFACE,
            server,
            HOST_IFACE,
            LinkConfig::default(),
        )
        .expect("wire");
        sim.node_mut::<Host>(client).expect("c").spawn_task_at(
            SimTime::ZERO,
            Box::new(BadClient {
                server: server_ip,
                responses: vec![],
            }),
        );
        sim.run_for(SimDuration::from_secs(5)).expect("run");
        let task = sim
            .node_ref::<Host>(client)
            .expect("c")
            .task_ref::<BadClient>(0)
            .expect("t");
        assert!(
            task.responses.iter().any(|r| r.starts_with("503")),
            "{:?}",
            task.responses
        );
    }
}
