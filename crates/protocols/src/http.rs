//! A small HTTP/1.0 implementation.
//!
//! Used by the DDoS-mimicry measurement (§3.1, Method #3) — repeated GETs
//! whose responses double as per-sample censorship measurements — and by
//! keyword-censorship tests (the GFC-style censor matches on request URLs
//! and payload keywords).

use std::collections::HashMap;

use underradar_netsim::host::{Service, ServiceApi};

/// Errors from HTTP parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpError {
    /// Request/status line missing or malformed.
    BadStartLine,
    /// A header line had no colon.
    BadHeader,
    /// The message is incomplete.
    Incomplete,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadStartLine => write!(f, "malformed HTTP start line"),
            HttpError::BadHeader => write!(f, "malformed HTTP header"),
            HttpError::Incomplete => write!(f, "incomplete HTTP message"),
        }
    }
}

impl std::error::Error for HttpError {}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Method (GET, POST, ...).
    pub method: String,
    /// Request path, e.g. `/news/article-7`.
    pub path: String,
    /// Host header value.
    pub host: String,
    /// Other headers, in order.
    pub headers: Vec<(String, String)>,
    /// Body (empty for GET).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Build a GET request.
    pub fn get(host: &str, path: &str) -> HttpRequest {
        HttpRequest {
            method: "GET".to_string(),
            path: path.to_string(),
            host: host.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Add a header (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> HttpRequest {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serialize to wire bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = format!(
            "{} {} HTTP/1.0\r\nHost: {}\r\n",
            self.method, self.path, self.host
        );
        for (name, value) in &self.headers {
            out.push_str(&format!("{name}: {value}\r\n"));
        }
        if !self.body.is_empty() {
            out.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        }
        out.push_str("\r\n");
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }

    /// Parse a complete request from wire bytes.
    pub fn parse(data: &[u8]) -> Result<HttpRequest, HttpError> {
        let text = String::from_utf8_lossy(data);
        let head_end = text.find("\r\n\r\n").ok_or(HttpError::Incomplete)?;
        let head = &text[..head_end];
        let mut lines = head.split("\r\n");
        let start = lines.next().ok_or(HttpError::BadStartLine)?;
        let mut parts = start.split_whitespace();
        let method = parts.next().ok_or(HttpError::BadStartLine)?.to_string();
        let path = parts.next().ok_or(HttpError::BadStartLine)?.to_string();
        let version = parts.next().ok_or(HttpError::BadStartLine)?;
        if !version.starts_with("HTTP/") {
            return Err(HttpError::BadStartLine);
        }
        let mut host = String::new();
        let mut headers = Vec::new();
        for line in lines {
            let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
            let value = value.trim().to_string();
            if name.eq_ignore_ascii_case("host") {
                host = value;
            } else if !name.eq_ignore_ascii_case("content-length") {
                headers.push((name.to_string(), value));
            }
        }
        let body = data[head_end + 4..].to_vec();
        Ok(HttpRequest {
            method,
            path,
            host,
            headers,
            body,
        })
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Headers.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A 200 OK with an HTML body.
    pub fn ok(body: &str) -> HttpResponse {
        HttpResponse {
            status: 200,
            reason: "OK".to_string(),
            headers: vec![("Content-Type".to_string(), "text/html".to_string())],
            body: body.as_bytes().to_vec(),
        }
    }

    /// A 404 Not Found.
    pub fn not_found() -> HttpResponse {
        HttpResponse {
            status: 404,
            reason: "Not Found".to_string(),
            headers: Vec::new(),
            body: b"<html><body>404</body></html>".to_vec(),
        }
    }

    /// A 403 Forbidden — what an HTTP-level censor serves for blocked URLs.
    pub fn forbidden() -> HttpResponse {
        HttpResponse {
            status: 403,
            reason: "Forbidden".to_string(),
            headers: Vec::new(),
            body: b"<html><body>Blocked</body></html>".to_vec(),
        }
    }

    /// Serialize to wire bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = format!("HTTP/1.0 {} {}\r\n", self.status, self.reason);
        for (name, value) in &self.headers {
            out.push_str(&format!("{name}: {value}\r\n"));
        }
        out.push_str(&format!("Content-Length: {}\r\n\r\n", self.body.len()));
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }

    /// Parse a complete response from wire bytes.
    pub fn parse(data: &[u8]) -> Result<HttpResponse, HttpError> {
        let text = String::from_utf8_lossy(data);
        let head_end = text.find("\r\n\r\n").ok_or(HttpError::Incomplete)?;
        let head = &text[..head_end];
        let mut lines = head.split("\r\n");
        let start = lines.next().ok_or(HttpError::BadStartLine)?;
        let mut parts = start.splitn(3, ' ');
        let version = parts.next().ok_or(HttpError::BadStartLine)?;
        if !version.starts_with("HTTP/") {
            return Err(HttpError::BadStartLine);
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(HttpError::BadStartLine)?;
        let reason = parts.next().unwrap_or("").to_string();
        let mut headers = Vec::new();
        for line in lines {
            let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
            if !name.eq_ignore_ascii_case("content-length") {
                headers.push((name.to_string(), value.trim().to_string()));
            }
        }
        Ok(HttpResponse {
            status,
            reason,
            headers,
            body: data[head_end + 4..].to_vec(),
        })
    }
}

/// A static-content HTTP server service (one request per connection,
/// HTTP/1.0 style: respond then close).
pub struct HttpServer {
    routes: HashMap<String, String>,
    default_body: Option<String>,
    buffer: Vec<u8>,
    /// Requests served by this connection (for assertions).
    pub served: Vec<HttpRequest>,
}

impl HttpServer {
    /// A server with explicit path → body routes.
    pub fn new(routes: HashMap<String, String>) -> HttpServer {
        HttpServer {
            routes,
            default_body: None,
            buffer: Vec::new(),
            served: Vec::new(),
        }
    }

    /// A server answering every path with the same body.
    pub fn catch_all(body: &str) -> HttpServer {
        HttpServer {
            routes: HashMap::new(),
            default_body: Some(body.to_string()),
            buffer: Vec::new(),
            served: Vec::new(),
        }
    }
}

impl Service for HttpServer {
    fn on_data(&mut self, api: &mut ServiceApi<'_, '_>, data: &[u8]) {
        self.buffer.extend_from_slice(data);
        // HTTP/1.0 GETs: complete once the blank line arrives.
        let Ok(req) = HttpRequest::parse(&self.buffer) else {
            return;
        };
        self.buffer.clear();
        let response = match self.routes.get(&req.path) {
            Some(body) => HttpResponse::ok(body),
            None => match &self.default_body {
                Some(body) => HttpResponse::ok(body),
                None => HttpResponse::not_found(),
            },
        };
        self.served.push(req);
        api.send(&response.to_wire());
        api.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = HttpRequest::get("bbc.com", "/news").with_header("User-Agent", "probe/1.0");
        let parsed = HttpRequest::parse(&req.to_wire()).expect("parse");
        assert_eq!(parsed.method, "GET");
        assert_eq!(parsed.path, "/news");
        assert_eq!(parsed.host, "bbc.com");
        assert_eq!(
            parsed.headers,
            vec![("User-Agent".to_string(), "probe/1.0".to_string())]
        );
    }

    #[test]
    fn response_roundtrip() {
        let resp = HttpResponse::ok("<html>hello</html>");
        let parsed = HttpResponse::parse(&resp.to_wire()).expect("parse");
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.reason, "OK");
        assert_eq!(parsed.body, b"<html>hello</html>");
    }

    #[test]
    fn status_constructors() {
        assert_eq!(HttpResponse::not_found().status, 404);
        assert_eq!(HttpResponse::forbidden().status, 403);
    }

    #[test]
    fn incomplete_and_malformed_inputs() {
        assert_eq!(
            HttpRequest::parse(b"GET / HTTP/1.0\r\n"),
            Err(HttpError::Incomplete)
        );
        assert_eq!(
            HttpRequest::parse(b"NONSENSE\r\n\r\n"),
            Err(HttpError::BadStartLine)
        );
        assert_eq!(
            HttpRequest::parse(b"GET / HTTP/1.0\r\nBadHeader\r\n\r\n"),
            Err(HttpError::BadHeader)
        );
        assert_eq!(
            HttpResponse::parse(b"HTTP/1.0 abc OK\r\n\r\n"),
            Err(HttpError::BadStartLine)
        );
    }

    #[test]
    fn server_serves_route_over_sim() {
        use std::net::Ipv4Addr;
        use underradar_netsim::{
            ConnId, Host, HostApi, HostTask, LinkConfig, SimDuration, SimTime, Simulator, TcpEvent,
            HOST_IFACE,
        };

        struct Fetcher {
            server: Ipv4Addr,
            path: String,
            response: Vec<u8>,
            status: Option<u16>,
        }
        impl HostTask for Fetcher {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                api.tcp_connect(self.server, 80);
            }
            fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, ev: TcpEvent) {
                match ev {
                    TcpEvent::Connected => {
                        let req = HttpRequest::get("news.example", &self.path);
                        api.tcp_send(conn, &req.to_wire());
                    }
                    TcpEvent::Data(d) => {
                        self.response.extend_from_slice(&d);
                        if let Ok(resp) = HttpResponse::parse(&self.response) {
                            self.status = Some(resp.status);
                        }
                    }
                    _ => {}
                }
            }
        }

        let client_ip = Ipv4Addr::new(10, 0, 1, 2);
        let server_ip = Ipv4Addr::new(10, 0, 2, 80);
        let mut sim = Simulator::new(13);
        let client = sim.add_node(Box::new(Host::new("client", client_ip)));
        let mut server = Host::new("web", server_ip);
        server.add_tcp_listener(80, || {
            let mut routes = HashMap::new();
            routes.insert("/news".to_string(), "<html>headlines</html>".to_string());
            Box::new(HttpServer::new(routes))
        });
        let server = sim.add_node(Box::new(server));
        sim.wire(
            client,
            HOST_IFACE,
            server,
            HOST_IFACE,
            LinkConfig::default(),
        )
        .expect("wire");
        sim.node_mut::<Host>(client).expect("c").spawn_task_at(
            SimTime::ZERO,
            Box::new(Fetcher {
                server: server_ip,
                path: "/news".to_string(),
                response: Vec::new(),
                status: None,
            }),
        );
        sim.node_mut::<Host>(client).expect("c").spawn_task_at(
            SimTime::from_nanos(1),
            Box::new(Fetcher {
                server: server_ip,
                path: "/missing".to_string(),
                response: Vec::new(),
                status: None,
            }),
        );
        sim.run_for(SimDuration::from_secs(5)).expect("run");
        let host = sim.node_ref::<Host>(client).expect("c");
        assert_eq!(host.task_ref::<Fetcher>(0).expect("t0").status, Some(200));
        assert_eq!(host.task_ref::<Fetcher>(1).expect("t1").status, Some(404));
    }
}
