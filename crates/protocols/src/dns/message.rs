//! DNS messages: header, questions, resource records, wire encode/decode.

use std::fmt;
use std::net::Ipv4Addr;

use super::name::DnsName;

/// Errors from DNS parsing and construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsError {
    /// The buffer ended before the structure did.
    Truncated,
    /// A malformed name (bad label, pointer loop, overlength).
    BadName(&'static str),
    /// A structurally invalid message.
    Malformed(&'static str),
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::Truncated => write!(f, "truncated DNS message"),
            DnsError::BadName(w) => write!(f, "bad DNS name: {w}"),
            DnsError::Malformed(w) => write!(f, "malformed DNS message: {w}"),
        }
    }
}

impl std::error::Error for DnsError {}

/// Query/record types the simulator understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QType {
    /// IPv4 address record.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Mail exchanger — the record the spam method queries first.
    Mx,
    /// Free-form text.
    Txt,
    /// Any other type, carried numerically.
    Other(u16),
}

impl QType {
    /// Wire value.
    pub fn number(self) -> u16 {
        match self {
            QType::A => 1,
            QType::Ns => 2,
            QType::Cname => 5,
            QType::Mx => 15,
            QType::Txt => 16,
            QType::Other(n) => n,
        }
    }

    /// From wire value.
    pub fn from_number(n: u16) -> QType {
        match n {
            1 => QType::A,
            2 => QType::Ns,
            5 => QType::Cname,
            15 => QType::Mx,
            16 => QType::Txt,
            other => QType::Other(other),
        }
    }
}

impl fmt::Display for QType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QType::A => write!(f, "A"),
            QType::Ns => write!(f, "NS"),
            QType::Cname => write!(f, "CNAME"),
            QType::Mx => write!(f, "MX"),
            QType::Txt => write!(f, "TXT"),
            QType::Other(n) => write!(f, "TYPE{n}"),
        }
    }
}

/// Record class; only IN is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsClass {
    /// Internet.
    In,
    /// Anything else.
    Other(u16),
}

impl DnsClass {
    fn number(self) -> u16 {
        match self {
            DnsClass::In => 1,
            DnsClass::Other(n) => n,
        }
    }
    fn from_number(n: u16) -> DnsClass {
        match n {
            1 => DnsClass::In,
            other => DnsClass::Other(other),
        }
    }
}

/// Response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist — the verdict-relevant code for DNS censorship
    /// measurements.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused.
    Refused,
    /// Any other code.
    Other(u8),
}

impl Rcode {
    fn number(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(n) => n,
        }
    }
    fn from_number(n: u8) -> Rcode {
        match n {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// A question entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Queried name.
    pub name: DnsName,
    /// Queried type.
    pub qtype: QType,
    /// Class (IN).
    pub class: DnsClass,
}

/// Record data by type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordData {
    /// An IPv4 address.
    A(Ipv4Addr),
    /// A name server.
    Ns(DnsName),
    /// An alias target.
    Cname(DnsName),
    /// A mail exchanger with preference.
    Mx {
        /// Lower is preferred.
        preference: u16,
        /// The exchanger host name.
        exchange: DnsName,
    },
    /// Text data.
    Txt(Vec<u8>),
    /// Opaque data under an unknown type.
    Other {
        /// Wire type.
        rtype: u16,
        /// Raw RDATA.
        data: Vec<u8>,
    },
}

impl RecordData {
    /// The record type of this data.
    pub fn qtype(&self) -> QType {
        match self {
            RecordData::A(_) => QType::A,
            RecordData::Ns(_) => QType::Ns,
            RecordData::Cname(_) => QType::Cname,
            RecordData::Mx { .. } => QType::Mx,
            RecordData::Txt(_) => QType::Txt,
            RecordData::Other { rtype, .. } => QType::Other(*rtype),
        }
    }
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owner name.
    pub name: DnsName,
    /// Time to live in seconds.
    pub ttl: u32,
    /// Typed data.
    pub data: RecordData,
}

/// A DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    /// Transaction id.
    pub id: u16,
    /// Whether this is a response.
    pub is_response: bool,
    /// Authoritative-answer flag.
    pub authoritative: bool,
    /// Recursion-desired flag.
    pub recursion_desired: bool,
    /// Recursion-available flag.
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
}

impl DnsMessage {
    /// Build a standard recursive query.
    pub fn query(id: u16, name: DnsName, qtype: QType) -> DnsMessage {
        DnsMessage {
            id,
            is_response: false,
            authoritative: false,
            recursion_desired: true,
            recursion_available: false,
            rcode: Rcode::NoError,
            questions: vec![Question {
                name,
                qtype,
                class: DnsClass::In,
            }],
            answers: Vec::new(),
            authorities: Vec::new(),
        }
    }

    /// Build a response skeleton echoing `query`'s id and question.
    pub fn response_to(query: &DnsMessage, rcode: Rcode) -> DnsMessage {
        DnsMessage {
            id: query.id,
            is_response: true,
            authoritative: true,
            recursion_desired: query.recursion_desired,
            recursion_available: true,
            rcode,
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
        }
    }

    /// First question, if present.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// All A addresses in the answer section.
    pub fn a_records(&self) -> Vec<Ipv4Addr> {
        self.answers
            .iter()
            .filter_map(|r| match &r.data {
                RecordData::A(a) => Some(*a),
                _ => None,
            })
            .collect()
    }

    /// All MX (preference, exchange) pairs in the answer section, sorted by
    /// preference.
    pub fn mx_records(&self) -> Vec<(u16, DnsName)> {
        let mut v: Vec<(u16, DnsName)> = self
            .answers
            .iter()
            .filter_map(|r| match &r.data {
                RecordData::Mx {
                    preference,
                    exchange,
                } => Some((*preference, exchange.clone())),
                _ => None,
            })
            .collect();
        v.sort();
        v
    }

    /// Serialize to wire bytes (with name compression).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        let mut offsets: Vec<(DnsName, usize)> = Vec::new();
        buf.extend_from_slice(&self.id.to_be_bytes());
        let mut flags: u16 = 0;
        if self.is_response {
            flags |= 0x8000;
        }
        if self.authoritative {
            flags |= 0x0400;
        }
        if self.recursion_desired {
            flags |= 0x0100;
        }
        if self.recursion_available {
            flags |= 0x0080;
        }
        flags |= u16::from(self.rcode.number() & 0x0f);
        buf.extend_from_slice(&flags.to_be_bytes());
        buf.extend_from_slice(&(self.questions.len() as u16).to_be_bytes());
        buf.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        buf.extend_from_slice(&(self.authorities.len() as u16).to_be_bytes());
        buf.extend_from_slice(&0u16.to_be_bytes()); // no additionals
        for q in &self.questions {
            q.name.encode(&mut buf, &mut offsets);
            buf.extend_from_slice(&q.qtype.number().to_be_bytes());
            buf.extend_from_slice(&q.class.number().to_be_bytes());
        }
        for r in self.answers.iter().chain(self.authorities.iter()) {
            Self::encode_record(r, &mut buf, &mut offsets);
        }
        buf
    }

    fn encode_record(r: &Record, buf: &mut Vec<u8>, offsets: &mut Vec<(DnsName, usize)>) {
        r.name.encode(buf, offsets);
        buf.extend_from_slice(&r.data.qtype().number().to_be_bytes());
        buf.extend_from_slice(&DnsClass::In.number().to_be_bytes());
        buf.extend_from_slice(&r.ttl.to_be_bytes());
        let rdlen_pos = buf.len();
        buf.extend_from_slice(&[0, 0]); // RDLENGTH placeholder
        let rdata_start = buf.len();
        match &r.data {
            RecordData::A(a) => buf.extend_from_slice(&a.octets()),
            RecordData::Ns(n) => n.encode(buf, offsets),
            RecordData::Cname(n) => n.encode(buf, offsets),
            RecordData::Mx {
                preference,
                exchange,
            } => {
                buf.extend_from_slice(&preference.to_be_bytes());
                exchange.encode(buf, offsets);
            }
            RecordData::Txt(t) => {
                // Single character-string; long TXT split into 255-byte runs.
                for chunk in t.chunks(255) {
                    buf.push(chunk.len() as u8);
                    buf.extend_from_slice(chunk);
                }
                if t.is_empty() {
                    buf.push(0);
                }
            }
            RecordData::Other { data, .. } => buf.extend_from_slice(data),
        }
        let rdlen = (buf.len() - rdata_start) as u16;
        buf[rdlen_pos..rdlen_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
    }

    /// Parse from wire bytes.
    pub fn decode(msg: &[u8]) -> Result<DnsMessage, DnsError> {
        if msg.len() < 12 {
            return Err(DnsError::Truncated);
        }
        let id = u16::from_be_bytes([msg[0], msg[1]]);
        let flags = u16::from_be_bytes([msg[2], msg[3]]);
        let qd = u16::from_be_bytes([msg[4], msg[5]]) as usize;
        let an = u16::from_be_bytes([msg[6], msg[7]]) as usize;
        let ns = u16::from_be_bytes([msg[8], msg[9]]) as usize;
        let ar = u16::from_be_bytes([msg[10], msg[11]]) as usize;
        let mut pos = 12usize;

        let mut questions = Vec::with_capacity(qd.min(32));
        for _ in 0..qd {
            let (name, next) = DnsName::decode(msg, pos)?;
            pos = next;
            let qt = msg.get(pos..pos + 2).ok_or(DnsError::Truncated)?;
            let cl = msg.get(pos + 2..pos + 4).ok_or(DnsError::Truncated)?;
            questions.push(Question {
                name,
                qtype: QType::from_number(u16::from_be_bytes([qt[0], qt[1]])),
                class: DnsClass::from_number(u16::from_be_bytes([cl[0], cl[1]])),
            });
            pos += 4;
        }

        let mut sections = [Vec::new(), Vec::new()];
        for (idx, count) in [(0usize, an), (1usize, ns)] {
            for _ in 0..count {
                let (record, next) = Self::decode_record(msg, pos)?;
                pos = next;
                sections[idx].push(record);
            }
        }
        // Skip additionals (parsed for position correctness only).
        for _ in 0..ar {
            let (_, next) = Self::decode_record(msg, pos)?;
            pos = next;
        }

        let [answers, authorities] = sections;
        Ok(DnsMessage {
            id,
            is_response: flags & 0x8000 != 0,
            authoritative: flags & 0x0400 != 0,
            recursion_desired: flags & 0x0100 != 0,
            recursion_available: flags & 0x0080 != 0,
            rcode: Rcode::from_number((flags & 0x0f) as u8),
            questions,
            answers,
            authorities,
        })
    }

    fn decode_record(msg: &[u8], pos: usize) -> Result<(Record, usize), DnsError> {
        let (name, next) = DnsName::decode(msg, pos)?;
        let fixed = msg.get(next..next + 10).ok_or(DnsError::Truncated)?;
        let rtype = u16::from_be_bytes([fixed[0], fixed[1]]);
        let ttl = u32::from_be_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]);
        let rdlen = u16::from_be_bytes([fixed[8], fixed[9]]) as usize;
        let rdata_start = next + 10;
        let rdata_end = rdata_start + rdlen;
        let rdata = msg.get(rdata_start..rdata_end).ok_or(DnsError::Truncated)?;
        let data = match QType::from_number(rtype) {
            QType::A => {
                if rdata.len() != 4 {
                    return Err(DnsError::Malformed("A RDATA length"));
                }
                RecordData::A(Ipv4Addr::new(rdata[0], rdata[1], rdata[2], rdata[3]))
            }
            QType::Ns => {
                let (n, _) = DnsName::decode(msg, rdata_start)?;
                RecordData::Ns(n)
            }
            QType::Cname => {
                let (n, _) = DnsName::decode(msg, rdata_start)?;
                RecordData::Cname(n)
            }
            QType::Mx => {
                if rdata.len() < 3 {
                    return Err(DnsError::Malformed("MX RDATA length"));
                }
                let preference = u16::from_be_bytes([rdata[0], rdata[1]]);
                let (exchange, _) = DnsName::decode(msg, rdata_start + 2)?;
                RecordData::Mx {
                    preference,
                    exchange,
                }
            }
            QType::Txt => {
                let mut text = Vec::new();
                let mut p = 0usize;
                while p < rdata.len() {
                    let l = rdata[p] as usize;
                    let chunk = rdata.get(p + 1..p + 1 + l).ok_or(DnsError::Truncated)?;
                    text.extend_from_slice(chunk);
                    p += 1 + l;
                }
                RecordData::Txt(text)
            }
            QType::Other(t) => RecordData::Other {
                rtype: t,
                data: rdata.to_vec(),
            },
        };
        Ok((Record { name, ttl, data }, rdata_end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).expect("name")
    }

    #[test]
    fn query_roundtrip() {
        let q = DnsMessage::query(0x1234, name("twitter.com"), QType::Mx);
        let decoded = DnsMessage::decode(&q.encode()).expect("decode");
        assert_eq!(decoded, q);
        assert!(!decoded.is_response);
        assert_eq!(decoded.question().expect("q").qtype, QType::Mx);
    }

    #[test]
    fn response_with_all_record_types_roundtrips() {
        let q = DnsMessage::query(7, name("example.com"), QType::A);
        let mut r = DnsMessage::response_to(&q, Rcode::NoError);
        r.answers = vec![
            Record {
                name: name("example.com"),
                ttl: 300,
                data: RecordData::A("93.184.216.34".parse().expect("ip")),
            },
            Record {
                name: name("example.com"),
                ttl: 300,
                data: RecordData::Cname(name("edge.example.com")),
            },
            Record {
                name: name("example.com"),
                ttl: 3600,
                data: RecordData::Mx {
                    preference: 10,
                    exchange: name("mail.example.com"),
                },
            },
            Record {
                name: name("example.com"),
                ttl: 60,
                data: RecordData::Txt(b"v=spf1 -all".to_vec()),
            },
        ];
        r.authorities = vec![Record {
            name: name("example.com"),
            ttl: 86400,
            data: RecordData::Ns(name("ns1.example.com")),
        }];
        let decoded = DnsMessage::decode(&r.encode()).expect("decode");
        assert_eq!(decoded, r);
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let q = DnsMessage::query(7, name("very.long.domain.example.com"), QType::A);
        let mut r = DnsMessage::response_to(&q, Rcode::NoError);
        for i in 0..5u8 {
            r.answers.push(Record {
                name: name("very.long.domain.example.com"),
                ttl: 60,
                data: RecordData::A(Ipv4Addr::new(10, 0, 0, i)),
            });
        }
        let encoded = r.encode();
        // Uncompressed, 6 copies of a 30-byte name would dominate; with
        // compression each repeat is a 2-byte pointer.
        assert!(encoded.len() < 150, "compressed size {}", encoded.len());
        assert_eq!(DnsMessage::decode(&encoded).expect("decode"), r);
    }

    #[test]
    fn helpers_extract_records() {
        let q = DnsMessage::query(1, name("site.test"), QType::A);
        let mut r = DnsMessage::response_to(&q, Rcode::NoError);
        r.answers = vec![
            Record {
                name: name("site.test"),
                ttl: 1,
                data: RecordData::A(Ipv4Addr::new(1, 1, 1, 1)),
            },
            Record {
                name: name("site.test"),
                ttl: 1,
                data: RecordData::Mx {
                    preference: 20,
                    exchange: name("mx2.site.test"),
                },
            },
            Record {
                name: name("site.test"),
                ttl: 1,
                data: RecordData::Mx {
                    preference: 10,
                    exchange: name("mx1.site.test"),
                },
            },
        ];
        assert_eq!(r.a_records(), vec![Ipv4Addr::new(1, 1, 1, 1)]);
        let mx = r.mx_records();
        assert_eq!(mx[0], (10, name("mx1.site.test")));
        assert_eq!(mx[1], (20, name("mx2.site.test")));
    }

    #[test]
    fn nxdomain_flag_roundtrip() {
        let q = DnsMessage::query(9, name("blocked.example"), QType::A);
        let r = DnsMessage::response_to(&q, Rcode::NxDomain);
        let decoded = DnsMessage::decode(&r.encode()).expect("decode");
        assert_eq!(decoded.rcode, Rcode::NxDomain);
        assert!(decoded.is_response);
        assert!(decoded.authoritative);
    }

    #[test]
    fn truncated_and_garbage_inputs_error() {
        assert_eq!(DnsMessage::decode(&[0; 5]), Err(DnsError::Truncated));
        let q = DnsMessage::query(1, name("a.b"), QType::A).encode();
        for cut in [6usize, 13, q.len() - 1] {
            assert!(DnsMessage::decode(&q[..cut]).is_err());
        }
        // Random bytes must never panic (also covered by proptests).
        let garbage = [0xffu8; 40];
        let _ = DnsMessage::decode(&garbage);
    }

    #[test]
    fn empty_txt_roundtrips() {
        let q = DnsMessage::query(2, name("t.test"), QType::Txt);
        let mut r = DnsMessage::response_to(&q, Rcode::NoError);
        r.answers = vec![Record {
            name: name("t.test"),
            ttl: 1,
            data: RecordData::Txt(Vec::new()),
        }];
        assert_eq!(DnsMessage::decode(&r.encode()).expect("d"), r);
    }

    #[test]
    fn long_txt_splits_and_rejoins() {
        let big = vec![b'x'; 700];
        let q = DnsMessage::query(2, name("t.test"), QType::Txt);
        let mut r = DnsMessage::response_to(&q, Rcode::NoError);
        r.answers = vec![Record {
            name: name("t.test"),
            ttl: 1,
            data: RecordData::Txt(big.clone()),
        }];
        let decoded = DnsMessage::decode(&r.encode()).expect("d");
        match &decoded.answers[0].data {
            RecordData::Txt(t) => assert_eq!(t, &big),
            other => panic!("wrong type {other:?}"),
        }
    }
}
