//! A simulated DNS server.
//!
//! One [`DnsServer`] instance plays the role of "the resolver the client
//! uses" (or an authoritative server — in the testbed the distinction does
//! not matter, since the censor sits on the path either way). It answers
//! from a static zone database, follows CNAME chains within its own data,
//! and returns NXDOMAIN for unknown names.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use underradar_netsim::host::{UdpApi, UdpService};

use super::message::{DnsMessage, QType, Rcode, Record, RecordData};
use super::name::DnsName;

/// Statistics the server keeps for experiment assertions.
#[derive(Debug, Clone, Copy, Default)]
pub struct DnsServerStats {
    /// Queries received.
    pub queries: u64,
    /// Responses with at least one answer.
    pub answered: u64,
    /// NXDOMAIN responses.
    pub nxdomain: u64,
}

/// Builder for a zone database.
#[derive(Debug, Default)]
pub struct ZoneBuilder {
    records: Vec<Record>,
}

impl ZoneBuilder {
    /// Empty zone.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an A record.
    pub fn a(mut self, name: &DnsName, addr: Ipv4Addr) -> Self {
        self.records.push(Record {
            name: name.clone(),
            ttl: 300,
            data: RecordData::A(addr),
        });
        self
    }

    /// Add an MX record.
    pub fn mx(mut self, name: &DnsName, preference: u16, exchange: &DnsName) -> Self {
        self.records.push(Record {
            name: name.clone(),
            ttl: 3600,
            data: RecordData::Mx {
                preference,
                exchange: exchange.clone(),
            },
        });
        self
    }

    /// Add a CNAME record.
    pub fn cname(mut self, name: &DnsName, target: &DnsName) -> Self {
        self.records.push(Record {
            name: name.clone(),
            ttl: 300,
            data: RecordData::Cname(target.clone()),
        });
        self
    }

    /// Add a TXT record.
    pub fn txt(mut self, name: &DnsName, text: &[u8]) -> Self {
        self.records.push(Record {
            name: name.clone(),
            ttl: 60,
            data: RecordData::Txt(text.to_vec()),
        });
        self
    }

    /// Add an NS record.
    pub fn ns(mut self, name: &DnsName, target: &DnsName) -> Self {
        self.records.push(Record {
            name: name.clone(),
            ttl: 86400,
            data: RecordData::Ns(target.clone()),
        });
        self
    }

    /// Finish into the record list.
    pub fn build(self) -> Vec<Record> {
        self.records
    }
}

/// A zone-backed DNS server, attachable to a host as a UDP service on
/// port 53.
pub struct DnsServer {
    zone: HashMap<DnsName, Vec<Record>>,
    stats: DnsServerStats,
    /// Answer queries even when the queried name has records of other types
    /// only (NOERROR with empty answer), as real servers do.
    names_present: HashMap<DnsName, ()>,
}

impl DnsServer {
    /// Build a server over `records`.
    pub fn new(records: Vec<Record>) -> DnsServer {
        let mut zone: HashMap<DnsName, Vec<Record>> = HashMap::new();
        let mut names_present = HashMap::new();
        for r in records {
            names_present.insert(r.name.clone(), ());
            zone.entry(r.name.clone()).or_default().push(r);
        }
        DnsServer {
            zone,
            stats: DnsServerStats::default(),
            names_present,
        }
    }

    /// Server statistics.
    pub fn stats(&self) -> DnsServerStats {
        self.stats
    }

    /// Mirror server totals into `tel` under `<prefix>.*` (e.g.
    /// `protocols.dns.resolver`). Idempotent.
    pub fn export_telemetry(&self, tel: &underradar_telemetry::Telemetry, prefix: &str) {
        if !tel.is_enabled() {
            return;
        }
        tel.set_counter(&format!("{prefix}.queries"), self.stats.queries);
        tel.set_counter(&format!("{prefix}.answered"), self.stats.answered);
        tel.set_counter(&format!("{prefix}.nxdomain"), self.stats.nxdomain);
    }

    /// Resolve a question against the zone, following CNAMEs (bounded).
    /// Returns the answer records and rcode.
    pub fn resolve(&self, name: &DnsName, qtype: QType) -> (Vec<Record>, Rcode) {
        let mut answers = Vec::new();
        let mut current = name.clone();
        for _ in 0..8 {
            match self.zone.get(&current) {
                Some(records) => {
                    let matching: Vec<&Record> =
                        records.iter().filter(|r| r.data.qtype() == qtype).collect();
                    if !matching.is_empty() {
                        answers.extend(matching.into_iter().cloned());
                        return (answers, Rcode::NoError);
                    }
                    // Follow a CNAME if present (and we were not asking for
                    // the CNAME itself).
                    if qtype != QType::Cname {
                        if let Some(cname) = records.iter().find_map(|r| match &r.data {
                            RecordData::Cname(t) => Some((r.clone(), t.clone())),
                            _ => None,
                        }) {
                            answers.push(cname.0);
                            current = cname.1;
                            continue;
                        }
                    }
                    // Name exists, no data of this type.
                    return (answers, Rcode::NoError);
                }
                None => {
                    return (
                        answers,
                        if self.names_present.contains_key(&current) {
                            Rcode::NoError
                        } else {
                            Rcode::NxDomain
                        },
                    );
                }
            }
        }
        (answers, Rcode::ServFail) // CNAME chain too deep
    }

    /// Produce the full response message for a query.
    pub fn answer(&mut self, query: &DnsMessage) -> DnsMessage {
        self.stats.queries += 1;
        let Some(q) = query.question() else {
            return DnsMessage::response_to(query, Rcode::FormErr);
        };
        let (answers, rcode) = self.resolve(&q.name, q.qtype);
        let mut resp = DnsMessage::response_to(query, rcode);
        resp.answers = answers;
        match rcode {
            Rcode::NxDomain => self.stats.nxdomain += 1,
            _ if !resp.answers.is_empty() => self.stats.answered += 1,
            _ => {}
        }
        resp
    }
}

impl UdpService for DnsServer {
    fn on_datagram(
        &mut self,
        api: &mut UdpApi<'_, '_>,
        src: Ipv4Addr,
        src_port: u16,
        payload: &[u8],
    ) {
        let Ok(query) = DnsMessage::decode(payload) else {
            return; // malformed queries are dropped
        };
        if query.is_response {
            return;
        }
        let resp = self.answer(&query);
        api.send(src, src_port, resp.encode());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).expect("name")
    }

    fn test_server() -> DnsServer {
        let zone = ZoneBuilder::new()
            .a(&name("bbc.com"), Ipv4Addr::new(151, 101, 0, 81))
            .a(&name("www.bbc.com"), Ipv4Addr::new(151, 101, 0, 82))
            .mx(&name("twitter.com"), 10, &name("mx1.twitter.com"))
            .mx(&name("twitter.com"), 20, &name("mx2.twitter.com"))
            .a(&name("mx1.twitter.com"), Ipv4Addr::new(199, 59, 150, 10))
            .a(&name("mx2.twitter.com"), Ipv4Addr::new(199, 59, 150, 11))
            .cname(&name("alias.bbc.com"), &name("www.bbc.com"))
            .txt(&name("bbc.com"), b"v=spf1 include:_spf.bbc.com -all")
            .ns(&name("bbc.com"), &name("ns1.bbc.com"))
            .build();
        DnsServer::new(zone)
    }

    #[test]
    fn a_lookup() {
        let srv = test_server();
        let (answers, rcode) = srv.resolve(&name("bbc.com"), QType::A);
        assert_eq!(rcode, Rcode::NoError);
        assert_eq!(answers.len(), 1);
        assert_eq!(
            answers[0].data,
            RecordData::A(Ipv4Addr::new(151, 101, 0, 81))
        );
    }

    #[test]
    fn mx_lookup_returns_both_exchangers() {
        let srv = test_server();
        let (answers, rcode) = srv.resolve(&name("twitter.com"), QType::Mx);
        assert_eq!(rcode, Rcode::NoError);
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn cname_chain_followed() {
        let srv = test_server();
        let (answers, rcode) = srv.resolve(&name("alias.bbc.com"), QType::A);
        assert_eq!(rcode, Rcode::NoError);
        assert_eq!(answers.len(), 2, "CNAME + target A");
        assert!(matches!(answers[0].data, RecordData::Cname(_)));
        assert!(matches!(answers[1].data, RecordData::A(_)));
    }

    #[test]
    fn unknown_name_is_nxdomain() {
        let srv = test_server();
        let (answers, rcode) = srv.resolve(&name("no.such.name"), QType::A);
        assert!(answers.is_empty());
        assert_eq!(rcode, Rcode::NxDomain);
    }

    #[test]
    fn existing_name_with_no_matching_type_is_noerror_empty() {
        let srv = test_server();
        // twitter.com has MX but no A.
        let (answers, rcode) = srv.resolve(&name("twitter.com"), QType::A);
        assert!(answers.is_empty());
        assert_eq!(rcode, Rcode::NoError);
    }

    #[test]
    fn answer_builds_full_response_and_counts() {
        let mut srv = test_server();
        let q = DnsMessage::query(0xbeef, name("bbc.com"), QType::A);
        let resp = srv.answer(&q);
        assert_eq!(resp.id, 0xbeef);
        assert!(resp.is_response);
        assert_eq!(resp.a_records(), vec![Ipv4Addr::new(151, 101, 0, 81)]);
        let q2 = DnsMessage::query(2, name("missing.example"), QType::A);
        let resp2 = srv.answer(&q2);
        assert_eq!(resp2.rcode, Rcode::NxDomain);
        let stats = srv.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.answered, 1);
        assert_eq!(stats.nxdomain, 1);
    }

    #[test]
    fn cname_loop_ends_in_servfail() {
        let zone = ZoneBuilder::new()
            .cname(&name("a.test"), &name("b.test"))
            .cname(&name("b.test"), &name("a.test"))
            .build();
        let srv = DnsServer::new(zone);
        let (_, rcode) = srv.resolve(&name("a.test"), QType::A);
        assert_eq!(rcode, Rcode::ServFail);
    }

    #[test]
    fn end_to_end_over_the_simulator() {
        use underradar_netsim::{
            Host, HostApi, HostTask, LinkConfig, SimDuration, SimTime, Simulator, HOST_IFACE,
        };

        struct Lookup {
            resolver: Ipv4Addr,
            result: Option<Vec<Ipv4Addr>>,
        }
        impl HostTask for Lookup {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                let port = api.udp_bind(0).expect("bind");
                let q = DnsMessage::query(42, DnsName::parse("bbc.com").expect("n"), QType::A);
                api.udp_send(port, self.resolver, 53, q.encode());
            }
            fn on_udp(
                &mut self,
                _api: &mut HostApi<'_, '_>,
                _local: u16,
                _src: Ipv4Addr,
                _sport: u16,
                payload: &[u8],
            ) {
                let resp = DnsMessage::decode(payload).expect("response parses");
                assert_eq!(resp.id, 42);
                self.result = Some(resp.a_records());
            }
        }

        let client_ip = Ipv4Addr::new(10, 0, 1, 2);
        let resolver_ip = Ipv4Addr::new(10, 0, 2, 53);
        let mut sim = Simulator::new(4);
        let client = sim.add_node(Box::new(Host::new("client", client_ip)));
        let mut resolver_host = Host::new("resolver", resolver_ip);
        resolver_host.add_udp_service(53, Box::new(test_server()));
        let resolver = sim.add_node(Box::new(resolver_host));
        sim.wire(
            client,
            HOST_IFACE,
            resolver,
            HOST_IFACE,
            LinkConfig::default(),
        )
        .expect("wire");
        sim.node_mut::<Host>(client).expect("client").spawn_task_at(
            SimTime::ZERO,
            Box::new(Lookup {
                resolver: resolver_ip,
                result: None,
            }),
        );
        sim.run_for(SimDuration::from_secs(2)).expect("run");
        let task = sim
            .node_ref::<Host>(client)
            .expect("c")
            .task_ref::<Lookup>(0)
            .expect("t");
        assert_eq!(
            task.result.as_deref(),
            Some(&[Ipv4Addr::new(151, 101, 0, 81)][..])
        );
    }
}
