//! DNS: wire format, names, and a simulated server.
//!
//! The subset implemented is what censorship measurement exercises: A, NS,
//! CNAME, MX and TXT records, queries/responses with compression, and the
//! response codes that matter for verdicts (NOERROR, NXDOMAIN, SERVFAIL,
//! REFUSED).

pub mod message;
pub mod name;
pub mod server;

pub use message::{DnsClass, DnsError, DnsMessage, QType, Question, Rcode, Record, RecordData};
pub use name::DnsName;
pub use server::{DnsServer, ZoneBuilder};
