//! Domain names: label sequences with RFC 1035 wire encoding, including
//! compression-pointer decoding and suffix-compressing encoding.

use std::fmt;
use std::str::FromStr;

use super::message::DnsError;

/// Maximum total encoded name length (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;
/// Maximum label length.
pub const MAX_LABEL_LEN: usize = 63;

/// A fully-qualified domain name, stored as lowercase labels.
///
/// Comparison is case-insensitive by construction (labels are normalized to
/// ASCII lowercase on creation, which is how resolvers treat names).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DnsName {
    labels: Vec<Vec<u8>>,
}

impl DnsName {
    /// The root name (empty label sequence).
    pub fn root() -> DnsName {
        DnsName { labels: Vec::new() }
    }

    /// Build from dotted text, e.g. `"www.bbc.com"`. Trailing dots are
    /// accepted and ignored.
    pub fn parse(s: &str) -> Result<DnsName, DnsError> {
        let s = s.trim_end_matches('.');
        if s.is_empty() {
            return Ok(DnsName::root());
        }
        let mut labels = Vec::new();
        let mut total = 0usize;
        for label in s.split('.') {
            if label.is_empty() {
                return Err(DnsError::BadName("empty label"));
            }
            if label.len() > MAX_LABEL_LEN {
                return Err(DnsError::BadName("label too long"));
            }
            total += label.len() + 1;
            labels.push(label.as_bytes().to_ascii_lowercase());
        }
        if total + 1 > MAX_NAME_LEN {
            return Err(DnsError::BadName("name too long"));
        }
        Ok(DnsName { labels })
    }

    /// The labels, most-specific first.
    pub fn labels(&self) -> &[Vec<u8>] {
        &self.labels
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Whether this name equals `suffix` or ends with it (zone membership):
    /// `www.bbc.com` is under `bbc.com` and under the root.
    pub fn is_subdomain_of(&self, suffix: &DnsName) -> bool {
        if suffix.labels.len() > self.labels.len() {
            return false;
        }
        let skip = self.labels.len() - suffix.labels.len();
        self.labels[skip..] == suffix.labels[..]
    }

    /// The parent name (one label removed), or the root if already root.
    pub fn parent(&self) -> DnsName {
        if self.labels.is_empty() {
            return DnsName::root();
        }
        DnsName {
            labels: self.labels[1..].to_vec(),
        }
    }

    /// Prepend a label, e.g. `"mail"` + `example.com` = `mail.example.com`.
    pub fn prepend(&self, label: &str) -> Result<DnsName, DnsError> {
        if label.is_empty() || label.len() > MAX_LABEL_LEN {
            return Err(DnsError::BadName("bad label for prepend"));
        }
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.as_bytes().to_ascii_lowercase());
        labels.extend_from_slice(&self.labels);
        Ok(DnsName { labels })
    }

    /// Encode at the end of `buf`. `offsets` maps previously written name
    /// suffixes (rendered as dotted strings) to their buffer offsets, and is
    /// updated; matching suffixes are emitted as compression pointers.
    pub fn encode(&self, buf: &mut Vec<u8>, offsets: &mut Vec<(DnsName, usize)>) {
        let mut remaining = self.clone();
        let mut idx = 0usize;
        loop {
            if remaining.labels.is_empty() {
                buf.push(0);
                return;
            }
            // A pointer offset must fit in 14 bits.
            if let Some(&(_, off)) = offsets
                .iter()
                .find(|(n, off)| *n == remaining && *off < 0x3fff)
            {
                buf.push(0xc0 | ((off >> 8) as u8));
                buf.push((off & 0xff) as u8);
                return;
            }
            if buf.len() < 0x3fff {
                offsets.push((remaining.clone(), buf.len()));
            }
            let label = &self.labels[idx];
            buf.push(label.len() as u8);
            buf.extend_from_slice(label);
            idx += 1;
            remaining = remaining.parent();
        }
    }

    /// Decode a name starting at `pos` in `msg`. Returns the name and the
    /// position just past it (pointers do not advance past the pointer).
    pub fn decode(msg: &[u8], pos: usize) -> Result<(DnsName, usize), DnsError> {
        let mut labels = Vec::new();
        let mut cursor = pos;
        let mut end: Option<usize> = None;
        let mut jumps = 0usize;
        let mut total = 0usize;
        loop {
            let len = *msg.get(cursor).ok_or(DnsError::Truncated)? as usize;
            if len == 0 {
                let after = cursor + 1;
                return Ok((DnsName { labels }, end.unwrap_or(after)));
            }
            if len & 0xc0 == 0xc0 {
                // Compression pointer.
                let lo = *msg.get(cursor + 1).ok_or(DnsError::Truncated)? as usize;
                let target = ((len & 0x3f) << 8) | lo;
                if end.is_none() {
                    end = Some(cursor + 2);
                }
                if target >= cursor {
                    return Err(DnsError::BadName("forward compression pointer"));
                }
                jumps += 1;
                if jumps > 32 {
                    return Err(DnsError::BadName("compression pointer loop"));
                }
                cursor = target;
                continue;
            }
            if len > MAX_LABEL_LEN {
                return Err(DnsError::BadName("label length"));
            }
            let start = cursor + 1;
            let stop = start + len;
            let label = msg.get(start..stop).ok_or(DnsError::Truncated)?;
            total += len + 1;
            if total > MAX_NAME_LEN {
                return Err(DnsError::BadName("decoded name too long"));
            }
            labels.push(label.to_ascii_lowercase());
            cursor = stop;
        }
    }
}

impl fmt::Display for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        let mut first = true;
        for label in &self.labels {
            if !first {
                f.write_str(".")?;
            }
            first = false;
            f.write_str(&String::from_utf8_lossy(label))?;
        }
        Ok(())
    }
}

impl FromStr for DnsName {
    type Err = DnsError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DnsName::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n = DnsName::parse("WWW.Example.COM").expect("parse");
        assert_eq!(n.to_string(), "www.example.com");
        assert_eq!(n.label_count(), 3);
        assert_eq!(
            DnsName::parse("example.com.")
                .expect("trailing dot")
                .to_string(),
            "example.com"
        );
        assert_eq!(DnsName::root().to_string(), ".");
    }

    #[test]
    fn rejects_bad_names() {
        assert!(DnsName::parse("a..b").is_err());
        let long_label = "x".repeat(64);
        assert!(DnsName::parse(&long_label).is_err());
        let long_name = vec!["abcdefgh"; 40].join(".");
        assert!(DnsName::parse(&long_name).is_err());
    }

    #[test]
    fn subdomain_relation() {
        let site = DnsName::parse("www.bbc.com").expect("p");
        let zone = DnsName::parse("bbc.com").expect("p");
        let other = DnsName::parse("bbc.org").expect("p");
        assert!(site.is_subdomain_of(&zone));
        assert!(site.is_subdomain_of(&DnsName::root()));
        assert!(zone.is_subdomain_of(&zone), "a zone contains itself");
        assert!(!site.is_subdomain_of(&other));
        assert!(!zone.is_subdomain_of(&site));
    }

    #[test]
    fn parent_and_prepend() {
        let n = DnsName::parse("mail.example.com").expect("p");
        assert_eq!(n.parent().to_string(), "example.com");
        let back = n.parent().prepend("MAIL").expect("prepend");
        assert_eq!(back, n);
        assert_eq!(DnsName::root().parent(), DnsName::root());
    }

    #[test]
    fn encode_decode_roundtrip_uncompressed() {
        let n = DnsName::parse("a.bc.def.example").expect("p");
        let mut buf = Vec::new();
        let mut offsets = Vec::new();
        n.encode(&mut buf, &mut offsets);
        let (decoded, next) = DnsName::decode(&buf, 0).expect("decode");
        assert_eq!(decoded, n);
        assert_eq!(next, buf.len());
    }

    #[test]
    fn compression_reuses_suffixes() {
        let a = DnsName::parse("mail.example.com").expect("p");
        let b = DnsName::parse("www.example.com").expect("p");
        let mut buf = Vec::new();
        let mut offsets = Vec::new();
        a.encode(&mut buf, &mut offsets);
        let first_len = buf.len();
        b.encode(&mut buf, &mut offsets);
        // Second name should be "www" label (4 bytes) + pointer (2 bytes).
        assert_eq!(buf.len() - first_len, 6, "suffix compressed");
        let (da, na) = DnsName::decode(&buf, 0).expect("a");
        let (db, nb) = DnsName::decode(&buf, na).expect("b");
        assert_eq!(da, a);
        assert_eq!(db, b);
        assert_eq!(nb, buf.len());
    }

    #[test]
    fn identical_name_is_pure_pointer() {
        let a = DnsName::parse("twitter.com").expect("p");
        let mut buf = Vec::new();
        let mut offsets = Vec::new();
        a.encode(&mut buf, &mut offsets);
        let first_len = buf.len();
        a.encode(&mut buf, &mut offsets);
        assert_eq!(
            buf.len() - first_len,
            2,
            "full name collapses to one pointer"
        );
    }

    #[test]
    fn decode_rejects_pointer_loops_and_forward_pointers() {
        // Self-pointing pointer at offset 0.
        let looped = [0xc0u8, 0x00];
        assert!(DnsName::decode(&looped, 0).is_err());
        // Forward pointer.
        let fwd = [0xc0u8, 0x04, 0, 0, 1, b'a', 0];
        assert!(DnsName::decode(&fwd, 0).is_err());
        // Truncated label.
        let trunc = [5u8, b'a', b'b'];
        assert!(DnsName::decode(&trunc, 0).is_err());
    }

    #[test]
    fn case_insensitive_equality() {
        let a = DnsName::parse("Twitter.COM").expect("p");
        let b = DnsName::parse("twitter.com").expect("p");
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }
}
