#![warn(missing_docs)]
// Library paths must surface failures as typed errors or documented
// invariant expects — never bare unwraps (test code is exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # underradar-protocols
//!
//! Application-protocol substrates for the simulated testbed:
//!
//! * [`dns`] — a DNS wire format (RFC 1035 subset with name compression),
//!   plus an authoritative/recursive server that runs as a
//!   [`underradar_netsim::UdpService`]. DNS is the protocol the paper's
//!   spam method (§3.1, Method #2) and stateless mimicry (§4.1, Fig 3a)
//!   measure, and the protocol the GFC-style censor poisons.
//! * [`smtp`] — a minimal SMTP server and client state machine (RFC 5321
//!   subset), enough to deliver the paper's spam-cloaked measurements.
//! * [`http`] — HTTP/1.0 request/response handling for the DDoS-mimicry
//!   method (§3.1, Method #3) and keyword censorship tests.
//! * [`email`] — an RFC 5322-ish message type shared by the SMTP substrate
//!   and the spam scorer.

pub mod dns;
pub mod email;
pub mod http;
pub mod smtp;

pub use dns::{
    DnsClass, DnsError, DnsMessage, DnsName, DnsServer, QType, Rcode, Record, RecordData,
};
pub use email::EmailMessage;
pub use http::{HttpError, HttpRequest, HttpResponse, HttpServer};
pub use smtp::{SmtpClientMachine, SmtpPhase, SmtpServerService};
